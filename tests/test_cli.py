"""Smoke tests for the ``python -m repro`` CLI."""

import pytest

from repro.cli import main


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "host calibration" in out
        assert "V100" in out and "T4" in out

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "criteo-tb" in out
        assert "45,840,617" in out  # Criteo Kaggle samples

    def test_quickcheck(self, capsys):
        assert main(["quickcheck", "--steps", "5"]) == 0
        out = capsys.readouterr().out
        assert "eff_tt" in out
        assert "serving" in out  # serving smoke rides along
        assert "FAILED" not in out

    def test_serve(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        assert main(
            [
                "serve", "--requests", "120", "--train-steps", "3",
                "--trace", str(trace),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Serving SLO report" in out
        assert "latency_p99_ms" in out
        assert "hot swaps at" in out
        assert trace.exists()

    def test_serve_without_swap(self, capsys):
        assert main(["serve", "--requests", "80", "--train-steps", "0"]) == 0
        out = capsys.readouterr().out
        assert "num_swaps" in out
        assert "hot swaps at" not in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["bogus"])
