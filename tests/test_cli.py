"""Smoke tests for the ``python -m repro`` CLI."""

import json
from pathlib import Path

import pytest

from repro.cli import main


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "host calibration" in out
        assert "V100" in out and "T4" in out

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "criteo-tb" in out
        assert "45,840,617" in out  # Criteo Kaggle samples

    def test_quickcheck(self, capsys):
        assert main(["quickcheck", "--steps", "5"]) == 0
        out = capsys.readouterr().out
        assert "eff_tt" in out
        assert "serving" in out  # serving smoke rides along
        assert "numpy == instrumented" in out  # backend equivalence gate
        assert "numpy == sanitizer" in out  # numsan equivalence gate
        assert "0 trap(s)" in out
        assert "shape" in out  # static shapecheck gate
        assert "det" in out  # determinism-taint gate
        assert "FAILED" not in out

    def test_train(self, capsys):
        assert main(["train", "--steps", "5"]) == 0
        out = capsys.readouterr().out
        assert "numpy backend" in out
        assert "plan cache" in out

    def test_train_instrumented_prints_zone_table(self, capsys):
        assert main(
            ["train", "--steps", "3", "--backend", "instrumented"]
        ) == 0
        out = capsys.readouterr().out
        assert "efftt_forward" in out
        assert "fused_update" in out

    def test_train_dense_embedding_backend(self, capsys):
        assert main(
            ["train", "--steps", "3", "--embedding-backend", "dense"]
        ) == 0

    def test_train_sharded(self, capsys):
        assert main(["train", "--steps", "6", "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "placement plan" in out
        assert "2-shard PS" in out
        assert "PS links:" in out
        assert "exactly-once:" in out

    def test_train_sharded_loss_is_shard_count_invariant(self, capsys):
        assert main(["train", "--steps", "6", "--shards", "1"]) == 0
        one = capsys.readouterr().out
        assert main(["train", "--steps", "6", "--shards", "4"]) == 0
        four = capsys.readouterr().out

        def final_loss(out):
            line = next(ln for ln in out.splitlines() if "loss" in ln)
            return line.split("loss", 1)[1]

        assert final_loss(one) == final_loss(four)

    def test_train_sharded_compressed(self, capsys):
        assert main(
            [
                "train", "--steps", "6", "--shards", "2",
                "--compress", "both", "--topk-fraction", "0.25",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "compression 'both'" in out
        # Compressed links must report real savings (ratio > 1).
        ratio = float(out.split("ratio ", 1)[1].split("x")[0])
        assert ratio > 1.0

    def test_chaos_sharded(self, capsys):
        rc = main([
            "chaos", "--plan", "none", "--shards", "2",
            "--batches", "8", "--checkpoint-interval", "4",
            "--requests", "200",
        ])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "PASS" in out

    def test_bench_instrumented(self, capsys):
        assert main(
            [
                "bench", "--steps", "2", "--requests", "40",
                "--backend", "instrumented",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "zone" in out and "gflops" in out
        assert "serving_lookup" in out
        assert "plan cache" in out

    def test_bench_numpy_suggests_instrumented(self, capsys):
        assert main(["bench", "--steps", "2", "--requests", "40"]) == 0
        out = capsys.readouterr().out
        assert "--backend instrumented" in out

    def test_torch_backend_unavailable_message(self, capsys):
        from repro.backend import torch_available

        if torch_available():
            pytest.skip("torch is installed")
        assert main(["train", "--steps", "2", "--backend", "torch"]) == 2
        err = capsys.readouterr().err
        assert "backend 'torch' unavailable" in err
        assert "--backend numpy" in err

    def test_serve_instrumented_backend(self, capsys):
        assert main(
            [
                "serve", "--requests", "60", "--train-steps", "0",
                "--backend", "instrumented",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "serving_lookup" in out

    def test_serve(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        assert main(
            [
                "serve", "--requests", "120", "--train-steps", "3",
                "--trace", str(trace),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Serving SLO report" in out
        assert "latency_p99_ms" in out
        assert "hot swaps at" in out
        assert trace.exists()

    def test_serve_without_swap(self, capsys):
        assert main(["serve", "--requests", "80", "--train-steps", "0"]) == 0
        out = capsys.readouterr().out
        assert "num_swaps" in out
        assert "hot swaps at" not in out

    def test_lint_shipped_tree_clean(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_lint_flags_bad_file(self, capsys, tmp_path):
        bad = tmp_path / "repro" / "nn" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import numpy as np\nx = np.zeros((2, 2))\n")
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "implicit-dtype" in out

    def test_lint_json_format(self, capsys):
        assert main(["lint", "--format", "json"]) == 0
        out = capsys.readouterr().out
        assert '"findings"' in out

    def test_lint_missing_path_errors(self, capsys, tmp_path):
        assert main(["lint", str(tmp_path / "nope")]) == 2

    def test_lint_sarif_format(self, capsys):
        assert main(["lint", "--format", "sarif"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out)
        assert payload["version"] == "2.1.0"
        assert payload["runs"][0]["tool"]["driver"]["name"] == "reprolint"

    def test_train_sanitizer_backend(self, capsys):
        assert main(["train", "--steps", "3", "--backend", "sanitizer"]) == 0
        out = capsys.readouterr().out
        assert "numsan: no traps" in out

    def test_shapecheck_shipped_tree_clean(self, capsys):
        assert main(["shapecheck"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_shapecheck_flags_corpus(self, capsys):
        corpus = Path(__file__).resolve().parent / "analysis" / "corpus"
        assert main(["shapecheck", str(corpus)]) == 1
        out = capsys.readouterr().out
        assert "SHP" in out

    def test_shapecheck_json_format(self, capsys):
        assert main(["shapecheck", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert payload["files_scanned"] > 80

    def test_shapecheck_sarif_format(self, capsys):
        assert main(["shapecheck", "--format", "sarif"]) == 0
        payload = json.loads(capsys.readouterr().out)
        driver = payload["runs"][0]["tool"]["driver"]
        assert driver["name"] == "shapecheck"
        assert {r["id"] for r in driver["rules"]} >= {"SHP001", "SHP008"}

    def test_shapecheck_select_unknown_rule(self, capsys):
        assert main(["shapecheck", "--select", "bogus"]) == 2

    def test_shapecheck_missing_path_errors(self, capsys, tmp_path):
        assert main(["shapecheck", str(tmp_path / "nope")]) == 2

    def test_hazards_clean(self, capsys):
        assert main(["hazards", "--batches", "6"]) == 0
        out = capsys.readouterr().out
        assert "RAW hazards     : 0" in out

    def test_hazards_inject(self, capsys):
        assert main(["hazards", "--inject", "--batches", "6"]) == 0
        out = capsys.readouterr().out
        assert "FAULT INJECTION" in out
        assert "detector caught the injected RAW conflict" in out

    def test_detcheck_shipped_tree_clean(self, capsys):
        assert main(["detcheck"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_detcheck_flags_corpus(self, capsys):
        corpus = (
            Path(__file__).resolve().parent / "analysis" / "corpus" / "det"
        )
        assert main(["detcheck", str(corpus)]) == 1
        out = capsys.readouterr().out
        assert "DET" in out

    def test_detcheck_sarif_format(self, capsys):
        assert main(["detcheck", "--format", "sarif"]) == 0
        payload = json.loads(capsys.readouterr().out)
        driver = payload["runs"][0]["tool"]["driver"]
        assert driver["name"] == "detcheck"
        assert {r["id"] for r in driver["rules"]} >= {"DET001", "DET006"}

    def test_detcheck_select_unknown_rule(self, capsys):
        assert main(["detcheck", "--select", "bogus"]) == 2

    def test_detcheck_missing_path_errors(self, capsys, tmp_path):
        assert main(["detcheck", str(tmp_path / "nope")]) == 2

    def test_hazards_sarif_format(self, capsys):
        assert main(["hazards", "--batches", "6", "--format", "sarif"]) == 0
        payload = json.loads(capsys.readouterr().out)
        driver = payload["runs"][0]["tool"]["driver"]
        assert driver["name"] == "hazards"
        assert payload["runs"][0]["results"] == []

    def test_hazards_inject_sarif_reports_conflicts(self, capsys):
        assert (
            main(
                ["hazards", "--inject", "--batches", "6", "--format", "sarif"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        results = payload["runs"][0]["results"]
        assert results and all(
            r["ruleId"].startswith("HAZ") for r in results
        )

    def test_analyze_shipped_tree_clean(self, capsys):
        assert main(["analyze"]) == 0
        out = capsys.readouterr().out
        for gate in ("lint", "shape", "det", "hazard"):
            assert gate in out

    def test_analyze_flags_bad_tree(self, capsys, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "from typing import Dict\n"
            "\n"
            "def total(parts: Dict[str, float]) -> float:\n"
            "    out = 0.0\n"
            "    for name in parts:\n"
            "        out += parts[name]\n"
            "    return out\n"
        )
        assert main(["analyze", str(tmp_path)]) == 1

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["bogus"])
