"""Smoke tests for the ``python -m repro`` CLI."""

import pytest

from repro.cli import main


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "host calibration" in out
        assert "V100" in out and "T4" in out

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "criteo-tb" in out
        assert "45,840,617" in out  # Criteo Kaggle samples

    def test_quickcheck(self, capsys):
        assert main(["quickcheck", "--steps", "5"]) == 0
        out = capsys.readouterr().out
        assert "eff_tt" in out
        assert "FAILED" not in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["bogus"])
