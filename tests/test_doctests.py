"""Run the doctest examples embedded in module docstrings."""

import doctest

import pytest

import repro.embeddings.inference
import repro.embeddings.tt_indices
import repro.serving.requests
import repro.utils.factorize
import repro.utils.timer


@pytest.mark.parametrize(
    "module",
    [
        repro.utils.factorize,
        repro.utils.timer,
        repro.embeddings.tt_indices,
        repro.embeddings.inference,
        repro.serving.requests,
    ],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(
        module,
        verbose=False,
        optionflags=doctest.NORMALIZE_WHITESPACE,
        extraglobs={"np": __import__("numpy")},
    )
    assert results.failed == 0, f"{results.failed} doctest failures"
    assert results.attempted > 0, "no doctests collected"
