"""Tests for the from-scratch Louvain implementation, cross-checked
against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.reorder.community import louvain_communities, modularity


def _two_cliques(n=8, bridge=True):
    edges = []
    for base in (0, n):
        for i in range(n):
            for j in range(i + 1, n):
                edges.append((base + i, base + j, 1.0))
    if bridge:
        edges.append((0, n, 1.0))
    src = np.array([e[0] for e in edges])
    dst = np.array([e[1] for e in edges])
    w = np.array([e[2] for e in edges])
    return 2 * n, src, dst, w, edges


class TestModularity:
    def test_matches_networkx(self):
        n, src, dst, w, edges = _two_cliques()
        labels = np.array([0] * 8 + [1] * 8)
        ours = modularity(labels, n, src, dst, w)
        g = nx.Graph()
        g.add_weighted_edges_from(edges)
        theirs = nx.community.modularity(g, [set(range(8)), set(range(8, 16))])
        assert ours == pytest.approx(theirs, abs=1e-12)

    def test_matches_networkx_random_partition(self, rng):
        n, src, dst, w, edges = _two_cliques()
        labels = rng.integers(0, 3, size=n)
        g = nx.Graph()
        g.add_weighted_edges_from(edges)
        comms = [set(np.flatnonzero(labels == c)) for c in range(3)]
        comms = [c for c in comms if c]
        ours = modularity(labels, n, src, dst, w)
        theirs = nx.community.modularity(g, comms)
        assert ours == pytest.approx(theirs, abs=1e-12)

    def test_self_loop_consistent_with_networkx(self):
        src = np.array([0, 0, 1])
        dst = np.array([1, 0, 2])  # one self loop at 0
        w = np.array([1.0, 2.0, 1.0])
        labels = np.array([0, 0, 1])
        g = nx.Graph()
        g.add_weighted_edges_from([(0, 1, 1.0), (0, 0, 2.0), (1, 2, 1.0)])
        theirs = nx.community.modularity(g, [{0, 1}, {2}])
        ours = modularity(labels, 3, src, dst, w)
        assert ours == pytest.approx(theirs, abs=1e-12)

    def test_empty_graph(self):
        assert modularity(np.array([0, 1]), 2, np.array([]), np.array([]), np.array([])) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            modularity(np.array([0]), 2, np.array([0]), np.array([1]), np.array([1.0]))
        with pytest.raises(ValueError):
            modularity(np.array([0, 0]), 2, np.array([0]), np.array([5]), np.array([1.0]))
        with pytest.raises(ValueError):
            modularity(np.array([0, 0]), 2, np.array([0]), np.array([1]), np.array([-1.0]))


class TestLouvain:
    def test_separates_cliques(self):
        n, src, dst, w, _ = _two_cliques()
        labels = louvain_communities(n, src, dst, w, seed=0)
        assert len(set(labels[:8].tolist())) == 1
        assert len(set(labels[8:].tolist())) == 1
        assert labels[0] != labels[8]

    def test_disconnected_components(self):
        # two disjoint edges -> two communities, isolated vertex alone
        labels = louvain_communities(
            5, np.array([0, 2]), np.array([1, 3]), np.array([1.0, 1.0]), seed=0
        )
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]
        assert labels[4] not in (labels[0], labels[2])

    def test_no_edges_singletons(self):
        labels = louvain_communities(
            4, np.array([]), np.array([]), np.array([]), seed=0
        )
        assert len(set(labels.tolist())) == 4

    def test_empty_graph(self):
        labels = louvain_communities(0, np.array([]), np.array([]), np.array([]))
        assert labels.size == 0

    def test_labels_compact(self):
        n, src, dst, w, _ = _two_cliques()
        labels = louvain_communities(n, src, dst, w, seed=1)
        uniq = np.unique(labels)
        np.testing.assert_array_equal(uniq, np.arange(uniq.size))

    def test_deterministic_given_seed(self):
        n, src, dst, w, _ = _two_cliques()
        a = louvain_communities(n, src, dst, w, seed=7)
        b = louvain_communities(n, src, dst, w, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_modularity_not_worse_than_singletons(self, rng):
        # random graph: Louvain should never end below the trivial
        # all-singletons baseline
        n = 30
        src = rng.integers(0, n, size=80)
        dst = rng.integers(0, n, size=80)
        w = rng.random(80) + 0.1
        labels = louvain_communities(n, src, dst, w, seed=0)
        q_louvain = modularity(labels, n, src, dst, w)
        q_singletons = modularity(np.arange(n), n, src, dst, w)
        assert q_louvain >= q_singletons - 1e-12

    def test_quality_comparable_to_networkx(self):
        # ring of cliques, the classic benchmark
        g = nx.ring_of_cliques(6, 5)
        edges = list(g.edges())
        src = np.array([e[0] for e in edges])
        dst = np.array([e[1] for e in edges])
        w = np.ones(len(edges))
        n = g.number_of_nodes()
        labels = louvain_communities(n, src, dst, w, seed=0)
        q_ours = modularity(labels, n, src, dst, w)
        nx_comms = nx.community.louvain_communities(g, seed=0)
        q_nx = nx.community.modularity(g, nx_comms)
        assert q_ours >= 0.9 * q_nx
