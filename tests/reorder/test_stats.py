"""Tests for locality statistics."""

import numpy as np
import pytest

from repro.reorder.bijection import IndexBijection
from repro.reorder.stats import batch_locality_stats, reuse_improvement


class TestBatchLocalityStats:
    def test_counts(self):
        stats = batch_locality_stats(np.array([0, 0, 1, 6]), [4, 3, 2])
        assert stats.num_occurrences == 4
        assert stats.num_unique_rows == 3
        # rows 0 and 1 share prefix (0,0); row 6 -> (1,0)
        assert stats.num_unique_prefixes == 2

    def test_ratios(self):
        stats = batch_locality_stats(np.array([0, 0, 0, 0]), [4, 3, 2])
        assert stats.full_row_reuse_ratio == pytest.approx(4.0)
        assert stats.prefix_reuse_ratio == pytest.approx(1.0)

    def test_with_bijection(self):
        # map scattered indices {0, 12} (different prefixes) onto
        # {0, 1} (shared prefix)
        forward = np.arange(24)
        forward[12] = 1
        forward[1] = 12
        bij = IndexBijection.from_forward(forward)
        before = batch_locality_stats(np.array([0, 12]), [4, 3, 2])
        after = batch_locality_stats(np.array([0, 12]), [4, 3, 2], bij)
        assert before.num_unique_prefixes == 2
        assert after.num_unique_prefixes == 1


class TestReuseImprovement:
    def test_identity_no_change(self):
        batches = [np.array([0, 5, 11]), np.array([3, 7])]
        out = reuse_improvement(batches, [4, 3, 2], IndexBijection.identity(24))
        assert out["partial_gemm_reduction"] == pytest.approx(1.0)
        assert (
            out["mean_unique_prefixes_before"]
            == out["mean_unique_prefixes_after"]
        )

    def test_empty_batches_rejected(self):
        with pytest.raises(ValueError):
            reuse_improvement([], [4, 3, 2], IndexBijection.identity(24))
