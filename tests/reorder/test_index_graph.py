"""Tests for index-graph generation (Algorithm 2)."""

import numpy as np
import pytest

from repro.reorder.index_graph import build_index_graph, frequency_order


class TestFrequencyOrder:
    def test_ranks_by_count(self):
        batches = [np.array([3, 3, 3, 1, 1, 0])]
        index_of_rank, rank_of_index = frequency_order(batches, 5)
        assert index_of_rank[0] == 3
        assert index_of_rank[1] == 1
        assert index_of_rank[2] == 0
        # inverse property
        np.testing.assert_array_equal(
            rank_of_index[index_of_rank], np.arange(5)
        )

    def test_ties_broken_by_index(self):
        index_of_rank, _ = frequency_order([np.array([2, 1])], 4)
        assert index_of_rank[0] == 1  # same count, lower index first
        assert index_of_rank[1] == 2

    def test_unaccessed_at_tail(self):
        index_of_rank, _ = frequency_order([np.array([4])], 5)
        assert index_of_rank[0] == 4
        assert set(index_of_rank[1:].tolist()) == {0, 1, 2, 3}

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            frequency_order([np.array([5])], 5)


class TestBuildIndexGraph:
    def test_co_occurrence_edges(self):
        # no hot region: every pair in a batch becomes an edge
        batches = [np.array([0, 1, 2]), np.array([0, 1])]
        graph = build_index_graph(batches, 4, hot_ratio=0.0)
        assert graph.hot_count == 0
        assert graph.num_vertices == 4
        # edge between freq-ranks of (0,1) should have weight 2
        r = graph.rank_of_index
        key_pairs = {
            (min(s, d), max(s, d)): w
            for s, d, w in zip(graph.src, graph.dst, graph.weight)
        }
        pair01 = (min(r[0], r[1]), max(r[0], r[1]))
        assert key_pairs[pair01] == 2.0
        assert graph.num_edges == 3  # (0,1), (0,2), (1,2) in rank space

    def test_hot_indices_excluded(self):
        batches = [np.array([0, 1, 2])] * 10 + [np.array([3, 4])]
        # hot_ratio 0.6 of 5 rows -> 3 hot indices = ranks 0,1,2 = {0,1,2}
        graph = build_index_graph(batches, 5, hot_ratio=0.6)
        assert graph.hot_count == 3
        assert graph.num_vertices == 2
        assert graph.num_edges == 1  # only (3,4)

    def test_duplicate_indices_within_batch(self):
        graph = build_index_graph([np.array([1, 1, 2])], 3, hot_ratio=0.0)
        # duplicates collapse: single (1,2) edge with weight 1
        assert graph.num_edges == 1
        assert graph.weight[0] == 1.0

    def test_single_index_batch_no_edges(self):
        graph = build_index_graph([np.array([2])], 3, hot_ratio=0.0)
        assert graph.num_edges == 0

    def test_degree_weights(self):
        graph = build_index_graph([np.array([0, 1])], 2, hot_ratio=0.0)
        deg = graph.degree_weights()
        np.testing.assert_array_equal(np.sort(deg), [1.0, 1.0])

    def test_pair_budget_respected(self):
        big_batch = np.arange(1000)
        graph = build_index_graph([big_batch], 1000, hot_ratio=0.0,
                                  max_pairs_per_batch=100)
        assert graph.num_edges <= 100

    def test_invalid_hot_ratio(self):
        with pytest.raises(ValueError):
            build_index_graph([np.array([0])], 2, hot_ratio=1.5)
