"""Tests for the index bijection and its generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reorder.bijection import (
    IndexBijection,
    build_bijection,
    build_frequency_bijection,
)
from repro.reorder.index_graph import build_index_graph


class TestIndexBijection:
    def test_identity(self):
        bij = IndexBijection.identity(5)
        np.testing.assert_array_equal(bij.apply(np.array([0, 4])), [0, 4])
        assert bij.is_identity()

    def test_from_forward_valid(self):
        bij = IndexBijection.from_forward(np.array([2, 0, 1]))
        np.testing.assert_array_equal(bij.apply(np.array([0, 1, 2])), [2, 0, 1])
        np.testing.assert_array_equal(bij.invert(np.array([2, 0, 1])), [0, 1, 2])

    def test_roundtrip(self, rng):
        perm = rng.permutation(100)
        bij = IndexBijection.from_forward(perm)
        idx = rng.integers(0, 100, size=50)
        np.testing.assert_array_equal(bij.invert(bij.apply(idx)), idx)

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            IndexBijection.from_forward(np.array([0, 0, 1]))
        with pytest.raises(ValueError):
            IndexBijection.from_forward(np.array([0, 3]))

    def test_compose(self, rng):
        a = IndexBijection.from_forward(rng.permutation(10))
        b = IndexBijection.from_forward(rng.permutation(10))
        c = a.compose(b)
        idx = np.arange(10)
        np.testing.assert_array_equal(c.apply(idx), b.apply(a.apply(idx)))

    def test_compose_size_mismatch(self):
        with pytest.raises(ValueError):
            IndexBijection.identity(3).compose(IndexBijection.identity(4))

    def test_out_of_range(self):
        bij = IndexBijection.identity(3)
        with pytest.raises(ValueError):
            bij.apply(np.array([3]))


class TestBuildBijection:
    def _clustered_batches(self, rng, num_rows=64, clusters=4, batches=40):
        """Batches drawn from scattered latent clusters."""
        perm = rng.permutation(num_rows)
        out = []
        size = num_rows // clusters
        for _ in range(batches):
            c = rng.integers(0, clusters)
            members = rng.choice(
                np.arange(c * size, (c + 1) * size), size=6, replace=False
            )
            out.append(perm[members])
        return out

    def test_result_is_permutation(self, rng):
        batches = self._clustered_batches(rng)
        bij = build_bijection(batches, 64, hot_ratio=0.05, seed=0)
        assert bij.num_rows == 64
        assert sorted(bij.new_from_old.tolist()) == list(range(64))

    def test_hot_indices_get_lowest_ids(self, rng):
        batches = [np.array([7, 7, 7, 7, 3])] * 20
        bij = build_bijection(batches, 10, hot_ratio=0.1, seed=0)
        # hot_count = 1, most frequent index is 7 -> new id 0
        assert bij.new_from_old[7] == 0

    def test_cluster_members_become_contiguous(self, rng):
        batches = self._clustered_batches(rng, clusters=4)
        bij = build_bijection(batches, 64, hot_ratio=0.0, seed=0)
        # indices co-occurring in batches should land near each other:
        # measure mean within-batch id spread before and after.
        def mean_spread(mapper):
            spreads = []
            for batch in batches:
                ids = mapper(batch)
                spreads.append(np.ptp(ids))
            return float(np.mean(spreads))

        before = mean_spread(lambda b: b)
        after = mean_spread(bij.apply)
        assert after < before

    def test_improves_prefix_reuse(self, rng):
        from repro.reorder.stats import reuse_improvement

        batches = self._clustered_batches(rng, clusters=8, batches=60)
        bij = build_bijection(batches, 64, hot_ratio=0.05, seed=0)
        stats = reuse_improvement(batches, [4, 4, 4], bij)
        assert stats["partial_gemm_reduction"] >= 1.0

    def test_prebuilt_graph_accepted(self, rng):
        batches = self._clustered_batches(rng)
        graph = build_index_graph(batches, 64, hot_ratio=0.05)
        bij = build_bijection([], 64, graph=graph, seed=0)
        assert sorted(bij.new_from_old.tolist()) == list(range(64))

    def test_graph_size_mismatch(self, rng):
        batches = self._clustered_batches(rng)
        graph = build_index_graph(batches, 64, hot_ratio=0.05)
        with pytest.raises(ValueError):
            build_bijection([], 100, graph=graph)


class TestFrequencyBijection:
    def test_is_permutation(self, rng):
        batches = [rng.integers(0, 50, size=10) for _ in range(5)]
        bij = build_frequency_bijection(batches, 50)
        assert sorted(bij.new_from_old.tolist()) == list(range(50))

    def test_most_frequent_gets_id_zero(self):
        batches = [np.array([7, 7, 7, 2])]
        bij = build_frequency_bijection(batches, 10)
        assert bij.new_from_old[7] == 0
        assert bij.new_from_old[2] == 1

    def test_unseen_rows_at_tail(self):
        bij = build_frequency_bijection([np.array([9])], 10)
        assert bij.new_from_old[9] == 0
        assert set(bij.new_from_old[:9].tolist()) == set(range(1, 10))

    def test_community_beats_frequency_on_clustered_data(self, rng):
        """The paper's §IV claim, at unit-test scale."""
        from repro.reorder.stats import reuse_improvement

        num_rows = 64
        perm = rng.permutation(num_rows)
        batches = []
        for _ in range(40):
            cluster = rng.integers(0, 4)
            members = rng.choice(
                np.arange(cluster * 16, cluster * 16 + 16), size=6,
                replace=False,
            )
            batches.append(perm[members])
        freq = build_frequency_bijection(batches, num_rows)
        community = build_bijection(batches, num_rows, hot_ratio=0.0, seed=0)
        shape = [4, 4, 4]
        freq_red = reuse_improvement(batches, shape, freq)[
            "partial_gemm_reduction"
        ]
        comm_red = reuse_improvement(batches, shape, community)[
            "partial_gemm_reduction"
        ]
        assert comm_red >= freq_red


@given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=1000))
@settings(max_examples=40, deadline=None)
def test_property_bijection_always_permutation(num_rows, seed):
    rng = np.random.default_rng(seed)
    batches = [
        rng.integers(0, num_rows, size=rng.integers(1, 8))
        for _ in range(5)
    ]
    bij = build_bijection(batches, num_rows, hot_ratio=0.1, seed=seed)
    assert sorted(bij.new_from_old.tolist()) == list(range(num_rows))
    idx = rng.integers(0, num_rows, size=20)
    np.testing.assert_array_equal(bij.invert(bij.apply(idx)), idx)
