"""Contraction-plan cache: keying, LRU bounds, and FLOP metadata."""

import numpy as np
import pytest

from repro.backend import (
    ContractionPlanCache,
    get_plan_cache,
    reset_plan_cache,
)

CORE_SHAPES = ((5, 1, 4, 8), (5, 8, 4, 8), (8, 8, 4, 1))


class TestChainPlans:
    def test_plan_covers_every_core(self):
        cache = ContractionPlanCache()
        plan = cache.chain_plan("chain_forward", CORE_SHAPES)
        assert len(plan.stages) == len(CORE_SHAPES)
        assert [s.core_index for s in plan.stages] == [0, 1, 2]

    def test_flops_per_row_is_sum_of_gemms(self):
        cache = ContractionPlanCache()
        plan = cache.chain_plan("chain_forward", CORE_SHAPES)
        # Stage 0 is the gather (no GEMM); stage k contracts the
        # accumulated (prod n_l, r_in) prefix against (r_in, n_k*r_out).
        expected = 0
        prefix = 1
        for k, (_m, r_in, n_k, r_out) in enumerate(CORE_SHAPES):
            if k > 0:
                expected += 2 * prefix * r_in * n_k * r_out
            prefix *= n_k
        assert plan.flops_per_row == expected
        assert plan.flops(64) == 64 * expected
        assert plan.stages[0].flops_per_row == 0

    def test_same_spec_hits_regardless_of_batch(self):
        # Chain keys are batch-extent-invariant: the second batch of a
        # training run hits even when its unique-row count differs.
        cache = ContractionPlanCache()
        first = cache.chain_plan("chain_forward", CORE_SHAPES)
        second = cache.chain_plan("chain_forward", CORE_SHAPES)
        assert first is second
        assert cache.stats == {"hits": 1, "misses": 1, "entries": 1}

    def test_forward_and_backward_keyed_separately(self):
        cache = ContractionPlanCache()
        cache.chain_plan("chain_forward", CORE_SHAPES)
        cache.chain_plan("chain_backward", CORE_SHAPES)
        assert cache.misses == 2


class TestEinsumPlans:
    def test_plan_caches_on_signature(self):
        cache = ContractionPlanCache()
        a = np.ones((8, 3, 4))
        cache.einsum_plan("bfd,bgd->bfg", a, a)
        cache.einsum_plan("bfd,bgd->bfg", a, a)
        assert cache.stats == {"hits": 1, "misses": 1, "entries": 1}

    def test_different_shapes_miss(self):
        cache = ContractionPlanCache()
        cache.einsum_plan("bfd,bgd->bfg", np.ones((8, 3, 4)), np.ones((8, 3, 4)))
        cache.einsum_plan("bfd,bgd->bfg", np.ones((4, 3, 4)), np.ones((4, 3, 4)))
        assert cache.misses == 2

    def test_flop_count_positive_and_path_usable(self):
        cache = ContractionPlanCache()
        a = np.ones((8, 3, 4))
        plan = cache.einsum_plan("bfd,bgd->bfg", a, a)
        assert plan.flop_count > 0
        assert plan.optimize_arg[0] == "einsum_path"
        # The path must be consumable as einsum's optimize= argument.
        out = np.einsum("bfd,bgd->bfg", a, a, optimize=plan.optimize_arg)
        assert out.shape == (8, 3, 3)


class TestLruBehaviour:
    def test_eviction_at_capacity(self):
        cache = ContractionPlanCache(max_entries=2)
        cache.chain_plan("chain_forward", ((2, 1, 2, 3),))
        cache.chain_plan("chain_forward", ((3, 1, 2, 3),))
        cache.chain_plan("chain_forward", ((4, 1, 2, 3),))
        assert len(cache) == 2
        # Oldest entry was evicted: re-requesting it misses again.
        cache.chain_plan("chain_forward", ((2, 1, 2, 3),))
        assert cache.misses == 4

    def test_hit_refreshes_recency(self):
        cache = ContractionPlanCache(max_entries=2)
        cache.chain_plan("chain_forward", ((2, 1, 2, 3),))
        cache.chain_plan("chain_forward", ((3, 1, 2, 3),))
        cache.chain_plan("chain_forward", ((2, 1, 2, 3),))  # refresh
        cache.chain_plan("chain_forward", ((4, 1, 2, 3),))  # evicts (3,...)
        cache.chain_plan("chain_forward", ((2, 1, 2, 3),))
        assert cache.hits == 2

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError, match="max_entries"):
            ContractionPlanCache(max_entries=0)

    def test_clear_zeroes_counters(self):
        cache = ContractionPlanCache()
        cache.chain_plan("chain_forward", CORE_SHAPES)
        cache.clear()
        assert cache.stats == {"hits": 0, "misses": 0, "entries": 0}


class TestProcessWideCache:
    def test_singleton_reset(self):
        reset_plan_cache()
        pc = get_plan_cache()
        assert pc.stats["entries"] == 0
        pc.chain_plan("chain_forward", CORE_SHAPES)
        assert get_plan_cache() is pc
        assert get_plan_cache().stats["entries"] == 1
        reset_plan_cache()
        assert pc.stats["entries"] == 0
