"""Analytic FLOP model vs. instrumented backend: counts must agree.

``embeddings/flops.py`` derives chain-contraction FLOPs from the TT
spec and reuse statistics; the ``InstrumentedBackend`` derives them
from the runtime shapes of every matmul the kernels actually issue.
Both are exact (2 FLOPs per multiply-add), so they must agree to the
FLOP — any gap means the analytic model and the kernels have diverged.
"""

import numpy as np

from repro.backend import (
    ZONE_EFFTT_BACKWARD,
    ZONE_EFFTT_FORWARD,
    ZONE_TT_FORWARD,
    InstrumentedBackend,
    get_plan_cache,
    use_backend,
)
from repro.embeddings.eff_tt_embedding import EffTTEmbeddingBag
from repro.embeddings.flops import (
    efftt_backward_flops,
    efftt_forward_flops,
    measured_zone_flops,
    tt_forward_flops,
)
from repro.embeddings.tt_core import row_index_to_tt
from repro.embeddings.tt_embedding import TTEmbeddingBag, tt_chain_forward


class TestForwardCounts:
    def test_tt_chain_forward_matches_analytic(self):
        bag = TTEmbeddingBag(1000, 8, tt_rank=4, seed=0)
        rng = np.random.default_rng(1)
        idx = rng.integers(0, 1000, size=37)
        tt_idx = row_index_to_tt(idx, bag.tt.spec.row_shape)
        inst = InstrumentedBackend()
        with use_backend(inst):
            tt_chain_forward(bag.tt.cores, tt_idx)
        assert measured_zone_flops(inst, ZONE_TT_FORWARD) == tt_forward_flops(
            bag.tt.spec, num_items=idx.size
        )

    def test_efftt_forward_matches_analytic(self):
        bag = EffTTEmbeddingBag(1000, 8, tt_rank=4, seed=0)
        rng = np.random.default_rng(2)
        idx = rng.integers(0, 1000, size=64)
        inst = InstrumentedBackend()
        with use_backend(inst):
            bag.forward(idx, np.arange(idx.size))
        plan = bag.last_plan
        assert measured_zone_flops(
            inst, ZONE_EFFTT_FORWARD
        ) == efftt_forward_flops(
            bag.tt.spec, plan.num_unique_prefixes, plan.num_unique_rows
        )


class TestBackwardCounts:
    def test_efftt_backward_matches_analytic(self):
        bag = EffTTEmbeddingBag(1000, 8, tt_rank=4, seed=0)
        rng = np.random.default_rng(3)
        idx = rng.integers(0, 1000, size=64)
        inst = InstrumentedBackend()
        with use_backend(inst):
            out = bag.forward(idx, np.arange(idx.size))
            bag.backward(rng.standard_normal(out.shape))
        plan = bag.last_plan
        assert measured_zone_flops(
            inst, ZONE_EFFTT_BACKWARD
        ) == efftt_backward_flops(bag.tt.spec, plan.num_unique_rows)


class TestPlanFlopMetadata:
    def test_chain_plan_flops_match_analytic_forward(self):
        bag = TTEmbeddingBag(1000, 8, tt_rank=4, seed=0)
        plan = get_plan_cache().chain_plan(
            "chain_forward", tuple(c.shape for c in bag.tt.cores)
        )
        # Stage 0 is the gather (zero FLOPs), so the whole-plan per-row
        # cost is exactly the analytic chain count.
        assert plan.flops_per_row == tt_forward_flops(bag.tt.spec, num_items=1)
