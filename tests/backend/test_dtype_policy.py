"""Explicit-dtype policy: a float32-configured model stays float32.

Before the backend refactor several kernels seeded intermediates at
numpy's float64 default (``np.ones`` in the chain backward, implicit
``np.zeros`` in the PS bag backward), silently upcasting float32
configurations.  These tests pin the fix: every allocation flows
through the backend with an explicit dtype, and a float32 model's
forward/backward/update never touches float64.
"""

import numpy as np
import pytest

from repro.backend import InstrumentedBackend, use_backend
from repro.embeddings.eff_tt_embedding import EffTTEmbeddingBag
from repro.embeddings.tt_embedding import TTEmbeddingBag
from repro.nn.mlp import MLP
from repro.nn.optim import SGD, SparseSGD


class TestFloat32StaysFloat32:
    @pytest.mark.parametrize("bag_cls", [TTEmbeddingBag, EffTTEmbeddingBag])
    def test_tt_train_step_never_upcasts(self, bag_cls):
        inst = InstrumentedBackend()
        with use_backend(inst):
            bag = bag_cls(500, 8, tt_rank=4, seed=1, dtype=np.float32)
            idx = np.arange(0, 500, 11)
            with inst.expect_dtype(np.float32):
                out = bag.forward(idx, np.arange(idx.size))
                assert out.dtype == np.float32
                bag.backward(np.ones_like(out))
                bag.step(lr=0.05)
        assert inst.dtype_violations == []
        for core in bag.tt.cores:
            assert core.dtype == np.float32

    def test_mlp_train_step_never_upcasts(self):
        inst = InstrumentedBackend()
        with use_backend(inst):
            mlp = MLP((6, 8, 4), seed=2, dtype=np.float32)
            opt = SGD(mlp.parameters(), lr=0.1, momentum=0.9)
            x = np.ones((5, 6), dtype=np.float32)
            with inst.expect_dtype(np.float32):
                out = mlp.forward(x)
                assert out.dtype == np.float32
                grad_in = mlp.backward(np.ones_like(out))
                assert grad_in.dtype == np.float32
                opt.step()
        assert inst.dtype_violations == []
        for p in mlp.parameters():
            assert p.data.dtype == np.float32

    def test_sparse_sgd_updates_at_table_dtype(self):
        table = np.zeros((10, 4), dtype=np.float32)
        rows = np.array([1, 3, 3])
        # Gradients arriving as float64 must be applied at float32.
        grads = np.ones((3, 4), dtype=np.float64)
        SparseSGD(lr=0.5).step_rows(table, rows, grads)
        assert table.dtype == np.float32
        np.testing.assert_array_equal(table[3], np.full(4, -1.0, np.float32))

    def test_float64_default_unchanged(self):
        bag = TTEmbeddingBag(100, 4, tt_rank=2, seed=0)
        out = bag.forward(np.arange(10), np.arange(10))
        assert out.dtype == np.float64
        assert all(c.dtype == np.float64 for c in bag.tt.cores)


class TestViolationDetection:
    def test_expect_dtype_records_departures(self):
        inst = InstrumentedBackend()
        with inst.expect_dtype(np.float32):
            with inst.zone("mlp"):
                inst.zeros((2, 2), dtype=np.float64)
        assert len(inst.dtype_violations) == 1
        violation = inst.dtype_violations[0]
        assert violation.zone == "mlp"
        assert violation.expected == "float32"
        assert violation.actual == "float64"

    def test_integer_results_not_flagged(self):
        inst = InstrumentedBackend()
        with inst.expect_dtype(np.float32):
            inst.zeros(4, dtype=np.int64)
        assert inst.dtype_violations == []

    def test_scope_is_bounded(self):
        inst = InstrumentedBackend()
        with inst.expect_dtype(np.float32):
            pass
        inst.zeros((2, 2), dtype=np.float64)
        assert inst.dtype_violations == []
