"""Backend registry, protocol conformance, and the torch import guard."""

import numpy as np
import pytest

from repro.backend import (
    BACKEND_NAMES,
    KERNEL_ZONE_NAMES,
    BackendUnavailableError,
    InstrumentedBackend,
    NumpyBackend,
    TorchBackend,
    get_backend,
    resolve_backend,
    set_backend,
    torch_available,
    use_backend,
)


class TestRegistry:
    def test_default_backend_is_numpy(self):
        assert get_backend().name == "numpy"

    def test_use_backend_swaps_and_restores(self):
        before = get_backend()
        with use_backend("instrumented") as inst:
            assert get_backend() is inst
            assert isinstance(inst, InstrumentedBackend)
        assert get_backend() is before

    def test_use_backend_restores_on_exception(self):
        before = get_backend()
        with pytest.raises(RuntimeError):
            with use_backend("instrumented"):
                raise RuntimeError("boom")
        assert get_backend() is before

    def test_use_backend_accepts_instance(self):
        mine = NumpyBackend()
        with use_backend(mine) as active:
            assert active is mine

    def test_set_backend_installs_globally(self):
        before = get_backend()
        try:
            installed = set_backend("instrumented")
            assert get_backend() is installed
        finally:
            set_backend(before)

    def test_resolve_none_returns_active(self):
        assert resolve_backend(None) is get_backend()

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("cuda")

    def test_backend_names_catalog(self):
        assert BACKEND_NAMES == ("numpy", "instrumented", "sanitizer", "torch")


class TestTorchGuard:
    @pytest.mark.skipif(torch_available(), reason="torch is installed")
    def test_torch_unavailable_raises_with_guidance(self):
        with pytest.raises(BackendUnavailableError, match="--backend numpy"):
            TorchBackend()

    @pytest.mark.skipif(torch_available(), reason="torch is installed")
    def test_resolve_torch_surfaces_guard(self):
        with pytest.raises(BackendUnavailableError):
            resolve_backend("torch")


class TestNumpyBackendOps:
    """The reference backend must match plain numpy bit for bit."""

    def setup_method(self):
        self.bk = NumpyBackend()
        self.rng = np.random.default_rng(7)

    def test_allocators_honor_dtype(self):
        for dtype in (np.float32, np.float64):
            assert self.bk.zeros((3, 2), dtype=dtype).dtype == dtype
            assert self.bk.ones(4, dtype=dtype).dtype == dtype
            assert self.bk.empty((2,), dtype=dtype).dtype == dtype
            assert self.bk.full((2, 2), 0.5, dtype=dtype).dtype == dtype

    def test_matmul_matches_numpy(self):
        a = self.rng.standard_normal((5, 4, 3))
        b = self.rng.standard_normal((5, 3, 2))
        np.testing.assert_array_equal(self.bk.matmul(a, b), np.matmul(a, b))

    def test_einsum_ignores_plan_for_execution(self):
        from repro.backend import get_plan_cache

        a = self.rng.standard_normal((6, 3, 4))
        plan = get_plan_cache().einsum_plan("bfd,bgd->bfg", a, a)
        planned = self.bk.einsum("bfd,bgd->bfg", a, a, plan=plan)
        unplanned = self.bk.einsum("bfd,bgd->bfg", a, a)
        np.testing.assert_array_equal(planned, unplanned)
        np.testing.assert_array_equal(
            planned, np.einsum("bfd,bgd->bfg", a, a, optimize=False)
        )

    def test_gather_scatter_round_trip(self):
        table = self.rng.standard_normal((8, 4))
        idx = np.array([1, 3, 3, 7])
        rows = self.bk.gather_rows(table, idx)
        np.testing.assert_array_equal(rows, table[idx])
        target = np.zeros((8, 4))
        self.bk.scatter_add_rows(target, idx, rows)
        expected = np.zeros((8, 4))
        np.add.at(expected, idx, rows)
        np.testing.assert_array_equal(target, expected)

    def test_axpy_matches_inplace_subtract(self):
        x = self.rng.standard_normal((4, 3))
        u = self.rng.standard_normal((4, 3))
        via_backend = x.copy()
        self.bk.axpy(via_backend, u, -0.05)
        direct = x.copy()
        direct -= 0.05 * u
        np.testing.assert_array_equal(via_backend, direct)

    def test_zone_is_noop(self):
        with self.bk.zone("tt_forward"):
            pass


class TestInstrumentedCounting:
    def test_zone_attribution_innermost_wins(self):
        bk = InstrumentedBackend()
        a = np.ones((4, 3))
        b = np.ones((3, 2))
        with bk.zone("mlp"):
            with bk.zone("tt_forward"):
                bk.matmul(a, b)
        assert "tt_forward" in bk.zone_stats
        assert "mlp" not in bk.zone_stats

    def test_matmul_flops_from_shapes(self):
        bk = InstrumentedBackend()
        a = np.ones((5, 4, 3))
        b = np.ones((5, 3, 2))
        with bk.zone("tt_forward"):
            bk.matmul(a, b)
        assert bk.zone_stats["tt_forward"].flops == 2 * 5 * 4 * 3 * 2

    def test_results_bitwise_match_inner(self):
        rng = np.random.default_rng(3)
        a = rng.standard_normal((6, 5))
        b = rng.standard_normal((5, 4))
        np.testing.assert_array_equal(
            InstrumentedBackend().matmul(a, b), NumpyBackend().matmul(a, b)
        )

    def test_reset_clears_counters(self):
        bk = InstrumentedBackend()
        bk.matmul(np.ones((2, 2)), np.ones((2, 2)))
        assert bk.totals().calls == 1
        bk.reset()
        assert bk.totals().calls == 0

    def test_report_lists_zones(self):
        bk = InstrumentedBackend()
        with bk.zone("fused_update"):
            bk.scatter_add_rows(
                np.zeros((4, 2)), np.array([0, 1]), np.ones((2, 2)), scale=-0.1
            )
        report = bk.report()
        assert "fused_update" in report
        assert "total" in report


def test_zone_catalog_is_complete():
    assert set(KERNEL_ZONE_NAMES) >= {
        "tt_forward",
        "tt_backward",
        "efftt_forward",
        "efftt_backward",
        "fused_update",
        "mlp",
        "interaction",
        "optimizer",
        "serving_lookup",
    }
