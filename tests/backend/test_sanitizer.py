"""Tests for the numeric-sanitizer backend (numsan).

Two obligations, per the design: (1) a clean workload through
``SanitizerBackend`` is *bitwise identical* to ``NumpyBackend`` with
zero traps — the sanitizer observes, never perturbs; (2) injected
numeric hazards (NaN/Inf, out-of-range gather indices, implicit dtype
upcasts) are trapped with the enclosing kernel zone in the report.
"""

import numpy as np
import pytest

from repro.backend import (
    NumericTrapError,
    NumpyBackend,
    SanitizerBackend,
    ZONE_OPTIMIZER,
    ZONE_PS_GATHER,
    ZONE_TT_FORWARD,
    resolve_backend,
)

from tests.backend.test_equivalence import (
    _efftt_workload,
    _interaction_workload,
    _mlp_workload,
    _pipeline_workload,
    _tt_workload,
)

WORKLOADS = {
    "tt": _tt_workload,
    "efftt": _efftt_workload,
    "mlp": _mlp_workload,
    "interaction": _interaction_workload,
    "pipeline": _pipeline_workload,
}


def _assert_same(ref, got):
    """Recursively compare workload outputs bitwise."""
    if isinstance(ref, np.ndarray):
        np.testing.assert_array_equal(ref, got)
    elif isinstance(ref, (list, tuple)):
        assert len(ref) == len(got)
        for a, b in zip(ref, got):
            _assert_same(a, b)
    elif hasattr(ref, "losses"):  # pipeline TrainResult
        np.testing.assert_array_equal(ref.losses, got.losses)
    elif hasattr(ref, "tables"):  # pipeline HostParameterServer
        _assert_same(list(ref.tables), list(got.tables))
    else:
        assert ref == got


class TestTransparency:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_bitwise_identical_and_trap_free(self, name):
        reference = WORKLOADS[name](NumpyBackend())
        sanitizer = SanitizerBackend()
        observed = WORKLOADS[name](sanitizer)
        assert sanitizer.traps == []
        _assert_same(reference, observed)

    def test_empty_is_exempt_from_finite_checks(self):
        bk = SanitizerBackend()
        bk.empty((4, 4), dtype=np.float32)  # uninitialised memory: no trap
        assert bk.traps == []

    def test_resolve_backend_knows_sanitizer(self):
        assert isinstance(resolve_backend("sanitizer"), SanitizerBackend)


class TestTraps:
    def test_nan_output_is_trapped_with_zone(self):
        bk = SanitizerBackend()
        poisoned = bk.zeros((2, 2), dtype=np.float32)
        poisoned[0, 0] = np.nan
        with bk.zone(ZONE_TT_FORWARD):
            with pytest.raises(NumericTrapError) as exc:
                bk.matmul(poisoned, bk.ones((2, 2), dtype=np.float32))
        record = exc.value.record
        assert record.zone == ZONE_TT_FORWARD
        assert record.kind == "nonfinite"
        assert record.op == "matmul"

    def test_inf_from_exp_overflow_is_trapped(self):
        bk = SanitizerBackend()
        with np.errstate(over="ignore"):  # the overflow is the point
            with pytest.raises(NumericTrapError) as exc:
                bk.exp(np.float32(1e5) * bk.ones((3,), dtype=np.float32))
        assert exc.value.record.kind == "nonfinite"

    def test_oob_gather_index_is_trapped_before_the_read(self):
        bk = SanitizerBackend()
        table = bk.zeros((8, 4), dtype=np.float32)
        with bk.zone(ZONE_PS_GATHER):
            with pytest.raises(NumericTrapError) as exc:
                bk.gather_rows(table, np.array([0, 11]))
        record = exc.value.record
        assert record.zone == ZONE_PS_GATHER
        assert record.kind == "gather-index"
        assert "11" in record.detail and "8" in record.detail

    def test_negative_index_wrap_is_trapped(self):
        # numpy silently wraps negative indices; that is almost always
        # a bug in a hashed-id pipeline, so numsan refuses it.
        bk = SanitizerBackend()
        table = bk.zeros((8, 4), dtype=np.float32)
        with pytest.raises(NumericTrapError) as exc:
            bk.gather_rows(table, np.array([-1]))
        assert exc.value.record.kind == "gather-index"
        assert "negative" in exc.value.record.detail

    def test_scatter_indices_are_checked(self):
        bk = SanitizerBackend()
        table = bk.zeros((8, 4), dtype=np.float32)
        with pytest.raises(NumericTrapError):
            bk.scatter_add_rows(
                table, np.array([9]), bk.ones((1, 4), dtype=np.float32)
            )

    def test_implicit_float64_upcast_is_trapped(self):
        # The table drifted to float64 (numpy's default leaked in)
        # while the gradient pipeline is float32: the scatter target
        # being wider than its updates is exactly the drift numsan
        # polices.
        bk = SanitizerBackend()
        table = np.zeros((8, 4), dtype=np.float64)
        grads = bk.zeros((2, 4), dtype=np.float32)
        with bk.zone(ZONE_OPTIMIZER):
            with pytest.raises(NumericTrapError) as exc:
                bk.scatter_add_rows(table, np.array([0, 1]), grads)
        assert exc.value.record.kind == "dtype-drift"
        assert exc.value.record.zone == ZONE_OPTIMIZER

    def test_nan_in_axpy_values_is_trapped(self):
        bk = SanitizerBackend()
        target = bk.zeros((4,), dtype=np.float32)
        bad = np.full((4,), np.nan, dtype=np.float32)
        with pytest.raises(NumericTrapError):
            bk.axpy(target, bad, -0.1)


class TestRecordMode:
    def test_record_mode_accumulates_without_raising(self):
        bk = SanitizerBackend(mode="record")
        table = bk.zeros((8, 4), dtype=np.float32)
        with bk.zone(ZONE_PS_GATHER):
            bk.gather_rows(table, np.array([-2]))
        with np.errstate(over="ignore"):
            bk.exp(np.float32(1e5) * bk.ones((2,), dtype=np.float32))
        kinds = [t.kind for t in bk.traps]
        assert kinds == ["gather-index", "nonfinite"]
        assert bk.traps[0].zone == ZONE_PS_GATHER
        assert bk.traps[1].zone == "unzoned"

    def test_report_and_reset(self):
        bk = SanitizerBackend(mode="record")
        assert "no traps" in bk.report()
        bk.asarray(np.array([np.inf], dtype=np.float32))
        report = bk.report()
        assert "nonfinite" in report and "asarray" in report
        bk.reset()
        assert bk.traps == [] and "no traps" in bk.report()

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            SanitizerBackend(mode="warn")

    def test_trap_record_format_carries_zone(self):
        bk = SanitizerBackend(mode="record")
        with bk.zone(ZONE_TT_FORWARD):
            bk.asarray(np.array([np.nan], dtype=np.float32))
        line = bk.traps[0].format()
        assert line.startswith(f"[{ZONE_TT_FORWARD}]")
