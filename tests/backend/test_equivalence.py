"""Cross-backend equivalence: every backend-routed kernel, bit for bit.

The refactor's core contract: routing hot paths through
``repro.backend`` must not change a single bit with the reference
``NumpyBackend``, and the ``InstrumentedBackend`` wrapper forwards to
it unchanged — so every pair below is asserted with
``assert_array_equal``, not ``allclose``.
"""

import numpy as np
import pytest

from repro.backend import (
    ZONE_EFFTT_FORWARD,
    ZONE_FUSED_UPDATE,
    InstrumentedBackend,
    get_plan_cache,
    reset_plan_cache,
    use_backend,
)
from repro.data.dataloader import SyntheticClickLog
from repro.data.datasets import criteo_kaggle_like
from repro.embeddings.eff_tt_embedding import EffTTEmbeddingBag
from repro.embeddings.tt_embedding import TTEmbeddingBag
from repro.models.config import DLRMConfig, EmbeddingBackend
from repro.models.dlrm import DLRM, build_embedding_bag
from repro.nn.interaction import DotInteraction
from repro.nn.mlp import MLP
from repro.system.parameter_server import (
    HostBackedEmbeddingBag,
    HostParameterServer,
)
from repro.system.pipeline import PipelinedPSTrainer

BACKENDS = ["numpy", "instrumented"]

RNG = lambda: np.random.default_rng(42)  # noqa: E731


def _tt_workload(backend):
    """One TT train step; returns everything the step touched."""
    with use_backend(backend):
        bag = TTEmbeddingBag(1000, 8, tt_rank=4, seed=11)
        rng = RNG()
        idx = rng.integers(0, 1000, size=48)
        off = np.arange(0, 48, 3)
        out = bag.forward(idx, off)
        bag.backward(rng.standard_normal(out.shape))
        bag.step(lr=0.05)
        out2 = bag.forward(idx, off)
    return out, out2, [c.copy() for c in bag.tt.cores]


def _efftt_workload(backend):
    with use_backend(backend):
        bag = EffTTEmbeddingBag(1000, 8, tt_rank=4, seed=11)
        rng = RNG()
        idx = rng.integers(0, 1000, size=48)
        off = np.arange(0, 48, 3)
        out = bag.forward(idx, off)
        bag.backward(rng.standard_normal(out.shape))
        bag.apply_pending_update(bag.pop_pending_update(), lr=0.05)
        out2 = bag.forward(idx, off)
    return out, out2, [c.copy() for c in bag.tt.cores]


def _mlp_workload(backend):
    with use_backend(backend):
        mlp = MLP((13, 16, 8), seed=5)
        x = RNG().standard_normal((32, 13))
        out = mlp.forward(x)
        grad_in = mlp.backward(np.ones_like(out))
        grads = [p.grad.copy() for p in mlp.parameters()]
    return out, grad_in, grads


def _interaction_workload(backend):
    with use_backend(backend):
        rng = RNG()
        dense = rng.standard_normal((16, 8))
        embs = [rng.standard_normal((16, 8)) for _ in range(3)]
        inter = DotInteraction()
        out = inter.forward(dense, embs)
        grad_dense, grad_embs = inter.backward(np.ones_like(out))
    return out, grad_dense, grad_embs


def _pipeline_workload(backend, num_batches=4):
    """A short pipelined PS training run (the integration surface)."""
    spec = criteo_kaggle_like(scale=2e-5)
    log = SyntheticClickLog(spec, batch_size=32, seed=0)
    cfg = DLRMConfig.from_dataset(
        spec, embedding_dim=8, backend=EmbeddingBackend.EFF_TT, tt_rank=4,
        tt_threshold_rows=100, bottom_mlp=(16,), top_mlp=(16,),
    )
    rows = list(cfg.table_rows)
    host_positions = sorted(range(len(rows)), key=lambda t: -rows[t])[:2]
    host_map = {p: i for i, p in enumerate(host_positions)}
    with use_backend(backend):
        bags = []
        for t, nrows in enumerate(cfg.table_rows):
            if t in host_map:
                bags.append(HostBackedEmbeddingBag(nrows, cfg.embedding_dim))
            else:
                bags.append(
                    build_embedding_bag(
                        cfg.backend_for_table(t), nrows, cfg.embedding_dim,
                        cfg.tt_rank, seed=(200 + t),
                    )
                )
        model = DLRM(cfg, seed=7, embedding_bags=bags)
        server = HostParameterServer(
            [rows[p] for p in host_positions], cfg.embedding_dim, lr=0.05,
            seed=3,
        )
        trainer = PipelinedPSTrainer(
            model, server, host_map, lr=0.05, prefetch_depth=2,
            grad_queue_depth=2, use_cache=True,
        )
        result = trainer.train(log, num_batches)
    return result, server


class TestBitwiseEquivalence:
    def test_tt_forward_backward_step(self):
        ref = _tt_workload("numpy")
        inst = _tt_workload(InstrumentedBackend())
        np.testing.assert_array_equal(ref[0], inst[0])
        np.testing.assert_array_equal(ref[1], inst[1])
        for a, b in zip(ref[2], inst[2]):
            np.testing.assert_array_equal(a, b)

    def test_efftt_forward_backward_fused_update(self):
        ref = _efftt_workload("numpy")
        inst = _efftt_workload(InstrumentedBackend())
        np.testing.assert_array_equal(ref[0], inst[0])
        np.testing.assert_array_equal(ref[1], inst[1])
        for a, b in zip(ref[2], inst[2]):
            np.testing.assert_array_equal(a, b)

    def test_mlp_forward_backward(self):
        ref = _mlp_workload("numpy")
        inst = _mlp_workload("instrumented")
        np.testing.assert_array_equal(ref[0], inst[0])
        np.testing.assert_array_equal(ref[1], inst[1])
        for a, b in zip(ref[2], inst[2]):
            np.testing.assert_array_equal(a, b)

    def test_interaction_forward_backward(self):
        ref = _interaction_workload("numpy")
        inst = _interaction_workload("instrumented")
        np.testing.assert_array_equal(ref[0], inst[0])
        np.testing.assert_array_equal(ref[1], inst[1])
        for a, b in zip(ref[2], inst[2]):
            np.testing.assert_array_equal(a, b)

    def test_pipelined_training_run(self):
        ref_result, ref_server = _pipeline_workload("numpy")
        inst_result, inst_server = _pipeline_workload("instrumented")
        np.testing.assert_array_equal(ref_result.losses, inst_result.losses)
        for a, b in zip(ref_server.tables, inst_server.tables):
            np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_refactor_matches_pinned_reference(self, backend):
        """Pinned digest: TT numerics must never drift across refactors.

        The hash was computed from this exact workload at the
        pre-backend-refactor revision; it certifies the routing changed
        nothing, on any backend.
        """
        import hashlib

        with use_backend(backend):
            bag = TTEmbeddingBag(
                120, 4, tt_rank=2, row_shape=(4, 5, 6), col_shape=(2, 2, 1),
                seed=3,
            )
            idx = np.arange(0, 120, 7)
            out = bag.forward(idx, np.arange(idx.size))
            bag.backward(np.ones_like(out))
            bag.step(lr=0.1)
            digest = hashlib.sha256()
            digest.update(out.tobytes())
            for core in bag.tt.cores:
                digest.update(core.tobytes())
        assert digest.hexdigest() == (
            "98accadd34117d28fea561e764d8f04ccb6e9986edaec1cc4978addd3a111849"
        )


class TestInstrumentedZones:
    def test_efftt_step_hits_named_zones(self):
        inst = InstrumentedBackend()
        _efftt_workload(inst)
        forward = inst.zone_stats[ZONE_EFFTT_FORWARD]
        fused = inst.zone_stats[ZONE_FUSED_UPDATE]
        assert forward.flops > 0 and forward.bytes > 0
        assert fused.flops > 0 and fused.bytes > 0

    def test_pipeline_covers_expected_zones(self):
        inst = InstrumentedBackend()
        _pipeline_workload(inst, num_batches=2)
        zones = set(inst.zone_stats)
        assert {
            "efftt_forward",
            "efftt_backward",
            "fused_update",
            "mlp",
            "interaction",
            "ps_gather",
            "ps_apply",
        } <= zones


class TestPlanCacheInPipeline:
    def test_second_batch_hits_plan_cache(self):
        reset_plan_cache()
        spec = criteo_kaggle_like(scale=2e-5)
        log = SyntheticClickLog(spec, batch_size=32, seed=0)
        cfg = DLRMConfig.from_dataset(
            spec, embedding_dim=8, backend=EmbeddingBackend.EFF_TT, tt_rank=4,
            tt_threshold_rows=100, bottom_mlp=(16,), top_mlp=(16,),
        )
        model = DLRM(cfg, seed=7)
        # Two same-spec batches through the model: the second must hit.
        for i in range(2):
            model.forward(log.batch(i))
        stats = get_plan_cache().stats
        assert stats["hits"] >= 1

    def test_trainlog_reports_plan_cache_traffic(self):
        reset_plan_cache()
        result, _ = _pipeline_workload("numpy", num_batches=3)
        assert result.plan_cache_misses >= 1
        assert result.plan_cache_hits >= 1
