"""Tests for the benchmark harness."""

import numpy as np
import pytest

from repro.bench.harness import (
    format_series,
    format_table,
    measure_workload,
    workload_for_dataset,
)
from repro.data.datasets import criteo_kaggle_like


class TestMeasureWorkload:
    @pytest.fixture(scope="class")
    def profile(self):
        # Large enough that kernel compute dominates per-batch planning
        # overhead (at degenerate scales the reuse-plan bookkeeping is
        # the only cost and the comparison is noise).
        spec = criteo_kaggle_like(scale=5e-4)
        return measure_workload(
            spec, batch_size=1024, embedding_dim=16, tt_rank=16, repeats=2
        )

    def test_all_times_positive(self, profile):
        for attr in (
            "host_mlp_time",
            "host_dense_emb_time",
            "host_tt_fwd_time",
            "host_tt_bwd_time",
            "host_efftt_fwd_time",
            "host_efftt_bwd_time",
        ):
            assert getattr(profile, attr) > 0, attr

    def test_efftt_faster_than_ttrec(self, profile):
        """The paper's kernel claim, measured on the real substrate."""
        assert profile.host_efftt_bwd_time < profile.host_tt_bwd_time
        assert profile.host_efftt_fwd_time < profile.host_tt_fwd_time

    def test_metadata(self, profile):
        assert profile.name == "criteo-kaggle"
        assert profile.batch_size == 1024
        assert profile.indices_per_batch == 1024 * 26
        assert profile.tt_param_bytes > 0

    def test_named_factory(self):
        prof = workload_for_dataset(
            "avazu", scale=2e-5, batch_size=128, embedding_dim=8,
            tt_rank=8, repeats=1,
        )
        assert prof.name == "avazu"
        with pytest.raises(KeyError):
            workload_for_dataset("bogus")


class TestFormatters:
    def test_format_table_alignment(self):
        out = format_table(
            ["name", "value"], [["a", 1.0], ["longer", 2.5]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert len(lines) == 5

    def test_format_table_numbers(self):
        out = format_table(["x"], [[1234.5678], [0.000012], [0.5]])
        assert "1.235e+03" in out
        assert "1.200e-05" in out
        assert "0.5" in out

    def test_format_series(self):
        out = format_series(
            "Fig", "batch", [512, 1024], {"a": [1.0, 2.0], "b": [3.0, 4.0]}
        )
        lines = out.splitlines()
        assert lines[0] == "Fig"
        assert "batch" in lines[1]
        # title + header + separator + one row per x value
        assert len(lines) == 5

    def test_empty_rows(self):
        out = format_table(["h1", "h2"], [])
        assert "h1" in out
