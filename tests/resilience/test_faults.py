"""Tests for the deterministic fault injector and its queue/probe seams."""

import pytest

from repro.resilience.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultProbe,
    FaultSite,
    FaultSpec,
    FaultyQueue,
    H2DCopyError,
    InjectedCrash,
    QueueStallTimeout,
)


def _plan(*specs: FaultSpec) -> FaultPlan:
    return FaultPlan(name="t", specs=specs)


class TestFaultSpec:
    def test_invalid_kind_site_combo_rejected(self):
        with pytest.raises(ValueError, match="cannot target"):
            FaultSpec(FaultKind.CRASH, FaultSite.PREFETCH_QUEUE, step=1)
        with pytest.raises(ValueError, match="cannot target"):
            FaultSpec(FaultKind.DROP, FaultSite.PREFETCH_QUEUE, step=1)

    def test_trainer_fault_needs_step(self):
        with pytest.raises(ValueError, match="step"):
            FaultSpec(FaultKind.CRASH, FaultSite.TRAIN)
        with pytest.raises(ValueError, match="step"):
            FaultSpec(FaultKind.CRASH, FaultSite.TRAIN, step=-1)

    def test_slowdown_validation(self):
        with pytest.raises(ValueError, match="time"):
            FaultSpec(FaultKind.SLOWDOWN, FaultSite.SERVE, duration=1.0)
        with pytest.raises(ValueError, match="duration"):
            FaultSpec(FaultKind.SLOWDOWN, FaultSite.SERVE, time=0.0)
        with pytest.raises(ValueError, match="factor"):
            FaultSpec(
                FaultKind.SLOWDOWN, FaultSite.SERVE,
                time=0.0, duration=1.0, factor=0.5,
            )

    def test_describe_mentions_kind_site_step(self):
        spec = FaultSpec(FaultKind.CRASH, FaultSite.APPLY, step=7)
        text = spec.describe()
        assert "crash" in text and "apply" in text and "7" in text


class TestFaultPlan:
    def test_random_is_deterministic(self):
        a = FaultPlan.random("fuzz", seed=3, num_faults=4, max_step=20)
        b = FaultPlan.random("fuzz", seed=3, num_faults=4, max_step=20)
        assert a.specs == b.specs
        assert len(a.specs) == 4
        assert all(1 <= s.step < 20 for s in a.specs)
        # distinct steps, ascending
        steps = [s.step for s in a.specs]
        assert steps == sorted(set(steps))

    def test_random_different_seed_differs(self):
        a = FaultPlan.random("fuzz", seed=3, num_faults=4, max_step=20)
        b = FaultPlan.random("fuzz", seed=4, num_faults=4, max_step=20)
        assert a.specs != b.specs

    def test_random_caps_at_available_steps(self):
        plan = FaultPlan.random("fuzz", seed=0, num_faults=50, max_step=5)
        assert len(plan.specs) == 4

    def test_train_serve_partition(self):
        plan = _plan(
            FaultSpec(FaultKind.CRASH, FaultSite.TRAIN, step=1),
            FaultSpec(
                FaultKind.SLOWDOWN, FaultSite.SERVE,
                time=0.0, duration=1.0, factor=2.0,
            ),
        )
        assert len(plan.train_specs) == 1
        assert len(plan.serve_specs) == 1


class TestFaultInjector:
    def test_crash_fires_exactly_once(self):
        spec = FaultSpec(FaultKind.CRASH, FaultSite.TRAIN, step=2)
        injector = _plan(spec).injector()
        injector.stage_crash(FaultSite.TRAIN, 1)  # wrong step: no fire
        with pytest.raises(InjectedCrash) as err:
            injector.stage_crash(FaultSite.TRAIN, 2)
        assert err.value.spec is spec
        # one-shot: the replay of step 2 passes cleanly
        injector.stage_crash(FaultSite.TRAIN, 2)
        assert injector.pending == ()
        assert injector.fired == (spec,)
        assert injector.records[0].fired_step == 2

    def test_site_is_matched(self):
        injector = _plan(
            FaultSpec(FaultKind.CRASH, FaultSite.GATHER, step=3)
        ).injector()
        injector.stage_crash(FaultSite.TRAIN, 3)  # other stage unaffected
        with pytest.raises(InjectedCrash):
            injector.stage_crash(FaultSite.GATHER, 3)

    def test_slowdown_window(self):
        injector = _plan(
            FaultSpec(
                FaultKind.SLOWDOWN, FaultSite.SERVE,
                time=1.0, duration=0.5, factor=4.0,
            ),
        ).injector()
        assert injector.slowdown_factor(0.5) == 1.0
        assert injector.slowdown_factor(1.2) == 4.0
        assert injector.slowdown_factor(1.5) == 1.0  # half-open window
        # entering the window is recorded once, not per query
        assert injector.slowdown_factor(1.3) == 4.0
        assert len(injector.records) == 1


class TestFaultyQueue:
    def test_h2d_fault_on_get_is_one_shot(self):
        injector = _plan(
            FaultSpec(FaultKind.H2D_FAIL, FaultSite.PREFETCH_QUEUE, step=1),
        ).injector()
        queue = FaultyQueue(4, injector, FaultSite.PREFETCH_QUEUE)
        queue.put("batch")
        injector.current_step = 1
        with pytest.raises(H2DCopyError):
            queue.get()
        assert queue.get() == "batch"  # item survived the failed copy

    def test_stall_on_get(self):
        injector = _plan(
            FaultSpec(FaultKind.STALL, FaultSite.PREFETCH_QUEUE, step=0),
        ).injector()
        queue = FaultyQueue(4, injector, FaultSite.PREFETCH_QUEUE)
        queue.put("batch")
        injector.current_step = 0
        with pytest.raises(QueueStallTimeout):
            queue.get()

    def test_drop_on_put_is_silent(self):
        injector = _plan(
            FaultSpec(FaultKind.DROP, FaultSite.GRAD_QUEUE, step=4),
        ).injector()
        queue = FaultyQueue(4, injector, FaultSite.GRAD_QUEUE)
        injector.current_step = 4
        queue.put("grad")  # swallowed, no error
        assert queue.dropped == 1
        assert len(queue) == 0
        queue.put("next")  # one-shot: subsequent puts land
        assert len(queue) == 1


class TestFaultProbe:
    def test_segment_accounting(self):
        probe = FaultProbe(_plan().injector())
        probe.on_batch_start(0)
        probe.on_update(0, 0, None)
        probe.on_apply(0, 0, None)
        probe.on_batch_start(1)
        probe.on_update(1, 0, None)  # trained but never applied
        assert probe.steps_started == 2
        assert probe.missing_applies() == [1]
        assert probe.duplicate_applies() == []
        probe.on_apply(0, 0, None)  # same (batch, table) again
        assert probe.duplicate_applies() == [(0, 0)]
        probe.begin_segment()
        assert probe.steps_started == 0
        assert probe.missing_applies() == []

    def test_make_queue_wraps_known_sites_only(self):
        probe = FaultProbe(_plan().injector())
        assert isinstance(probe.make_queue(2, "prefetch"), FaultyQueue)
        assert isinstance(probe.make_queue(2, "gradient"), FaultyQueue)
        assert not isinstance(probe.make_queue(2, "other"), FaultyQueue)
