"""Tests for supervised rollback-and-replay recovery.

The headline property (the issue's acceptance criterion): kill the
pipeline at step *k* in **any** stage, resume from the last committed
snapshot, and the committed loss trajectory is bitwise identical to an
uninterrupted run.
"""

import pytest

from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.faults import (
    FaultKind,
    FaultPlan,
    FaultProbe,
    FaultSite,
    FaultSpec,
)
from repro.resilience.supervisor import (
    PipelineSupervisor,
    RecoveryBudgetExceeded,
    RetryPolicy,
)


def _run(harness, small_config, tmp_path, plan, max_restarts=8):
    _, log, factory = harness
    injector = plan.injector()
    probe = FaultProbe(injector)
    store = CheckpointStore(str(tmp_path), keep_last=8, injector=injector)
    policy = RetryPolicy(max_restarts=max_restarts, seed=plan.seed)
    supervisor = PipelineSupervisor(factory, store, probe, policy)
    report = supervisor.run(
        log, small_config.num_batches, small_config.checkpoint_interval
    )
    return report, injector, policy


class TestRetryPolicy:
    def test_backoff_is_capped_exponential_with_jitter(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.4, jitter=0.5)
        for attempt, base in ((1, 0.1), (2, 0.2), (3, 0.4), (4, 0.4)):
            delay = policy.backoff(attempt)
            assert base <= delay <= base * 1.5

    def test_backoff_is_deterministic_per_attempt(self):
        a = RetryPolicy(seed=7)
        b = RetryPolicy(seed=7)
        assert a.schedule(5) == b.schedule(5)
        assert RetryPolicy(seed=8).schedule(5) != a.schedule(5)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_restarts=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=1.0, max_delay=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy().backoff(0)


class TestCrashSweep:
    """Kill at step k in every stage; recovery must be bitwise."""

    @pytest.mark.parametrize(
        "site", [FaultSite.GATHER, FaultSite.TRAIN, FaultSite.APPLY]
    )
    @pytest.mark.parametrize("step", [1, 6, 11])
    def test_crash_then_resume_is_bitwise(
        self, harness, small_config, reference_run, tmp_path, site, step
    ):
        plan = FaultPlan(
            name=f"{site.value}@{step}",
            specs=(FaultSpec(FaultKind.CRASH, site, step=step),),
        )
        report, injector, _ = _run(harness, small_config, tmp_path, plan)
        _, ref_losses = reference_run
        assert report.losses == ref_losses
        assert report.restarts == 1
        assert injector.pending == ()
        assert not report.duplicate_applies


class TestSupervisor:
    def test_fault_free_run_matches_reference(
        self, harness, small_config, reference_run, tmp_path
    ):
        report, _, _ = _run(
            harness, small_config, tmp_path, FaultPlan(name="clean")
        )
        _, ref_losses = reference_run
        assert report.losses == ref_losses
        assert report.restarts == 0
        assert report.rollbacks == 0
        assert report.replayed_batches == 0
        assert report.events == []
        assert report.final_loss == ref_losses[-1]

    def test_silent_drop_detected_and_healed(
        self, harness, small_config, reference_run, tmp_path
    ):
        plan = FaultPlan(
            name="drop",
            specs=(FaultSpec(FaultKind.DROP, FaultSite.GRAD_QUEUE, step=6),),
        )
        report, _, _ = _run(harness, small_config, tmp_path, plan)
        _, ref_losses = reference_run
        assert report.losses == ref_losses
        assert report.rollbacks == 1
        assert report.restarts == 0
        assert any("lost host updates" in event for event in report.events)

    def test_backoff_totals_match_schedule(
        self, harness, small_config, reference_run, tmp_path
    ):
        plan = FaultPlan(
            name="two-crashes",
            specs=(
                FaultSpec(FaultKind.CRASH, FaultSite.TRAIN, step=3),
                FaultSpec(FaultKind.CRASH, FaultSite.APPLY, step=9),
            ),
        )
        report, _, policy = _run(harness, small_config, tmp_path, plan)
        _, ref_losses = reference_run
        assert report.losses == ref_losses
        assert report.restarts == 2
        assert report.total_backoff == sum(policy.schedule(2))
        assert report.replayed_batches > 0

    def test_torn_snapshot_falls_back_one_interval(
        self, harness, small_config, reference_run, tmp_path
    ):
        # snapshot@4 is torn, so the crash at step 6 must roll all the
        # way back to the seed snapshot at step 0 — and still recover.
        plan = FaultPlan(
            name="torn-then-crash",
            specs=(
                FaultSpec(FaultKind.TORN, FaultSite.CHECKPOINT, step=4),
                FaultSpec(FaultKind.CRASH, FaultSite.TRAIN, step=6),
            ),
        )
        report, _, _ = _run(harness, small_config, tmp_path, plan)
        _, ref_losses = reference_run
        assert report.losses == ref_losses
        assert report.torn_steps == [4]
        assert any("resume from step 0" in event for event in report.events)

    def test_restart_budget_enforced(self, harness, small_config, tmp_path):
        plan = FaultPlan(
            name="over-budget",
            specs=(FaultSpec(FaultKind.CRASH, FaultSite.TRAIN, step=2),),
        )
        with pytest.raises(RecoveryBudgetExceeded):
            _run(harness, small_config, tmp_path, plan, max_restarts=0)

    def test_run_validates_arguments(self, harness, small_config, tmp_path):
        _, log, factory = harness
        plan = FaultPlan(name="clean")
        probe = FaultProbe(plan.injector())
        supervisor = PipelineSupervisor(
            factory, CheckpointStore(str(tmp_path)), probe
        )
        with pytest.raises(ValueError):
            supervisor.run(log, 0, 4)
        with pytest.raises(ValueError):
            supervisor.run(log, 4, 0)
