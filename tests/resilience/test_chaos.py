"""End-to-end chaos harness and CLI tests.

The default-run tests cover the acceptance path (``repro chaos --plan
smoke`` green, snapshot/restore bitwise); the remaining named plans are
``chaos_slow`` (each is a full train+serve scenario).
"""

import pytest

from repro.cli import main
from repro.resilience.chaos import (
    FAULT_PLANS,
    ChaosHarnessConfig,
    FleetChaosConfig,
    resume_determinism_check,
    run_chaos,
    run_fleet_chaos,
)
from repro.resilience.faults import FaultPlan


@pytest.fixture(scope="module")
def smoke_outcome(tmp_path_factory):
    scratch = tmp_path_factory.mktemp("chaos-smoke")
    return run_chaos(FAULT_PLANS["smoke"], str(scratch))


class TestSmokePlan:
    def test_all_invariants_hold(self, smoke_outcome):
        assert smoke_outcome.passed, smoke_outcome.format()

    def test_recovery_story(self, smoke_outcome):
        rec = smoke_outcome.recovery
        assert rec is not None
        # CRASH@5 and H2D_FAIL@9 restart; DROP@12 rolls back silently.
        assert rec.restarts == 2
        assert rec.rollbacks == 1
        assert rec.corrupt_skipped == [8]  # CORRUPT@8 skipped on fallback
        assert rec.replayed_batches > 0
        assert not rec.duplicate_applies

    def test_serving_story(self, smoke_outcome):
        degraded = smoke_outcome.serving_degraded
        assert degraded is not None
        assert degraded.fallback_batches > 0

    def test_format_renders_checks_and_verdict(self, smoke_outcome):
        text = smoke_outcome.format()
        assert "bitwise loss trajectory" in text
        assert "[ok]" in text
        assert text.rstrip().endswith("PASS")


class TestResumeDeterminism:
    def test_snapshot_restore_is_bitwise(self, tmp_path):
        assert resume_determinism_check(
            str(tmp_path),
            config=ChaosHarnessConfig(num_batches=10, checkpoint_interval=4),
        )

    def test_split_validated(self, tmp_path):
        with pytest.raises(ValueError):
            resume_determinism_check(str(tmp_path), split=0)


class TestCli:
    def test_chaos_none_plan_exits_zero(self, capsys):
        rc = main([
            "chaos", "--plan", "none",
            "--batches", "8", "--checkpoint-interval", "4",
            "--requests", "200",
        ])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "PASS" in out

    def test_unknown_plan_rejected(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--plan", "nonexistent"])


@pytest.mark.chaos_slow
@pytest.mark.parametrize(
    "plan_name", ["stage-sweep", "torn-checkpoint", "serve-degrade"]
)
def test_named_plan_passes(plan_name, tmp_path):
    outcome = run_chaos(FAULT_PLANS[plan_name], str(tmp_path))
    assert outcome.passed, outcome.format()


@pytest.mark.chaos_slow
def test_random_plan_recovers(tmp_path):
    plan = FaultPlan.random("fuzz", seed=4, num_faults=3, max_step=18)
    outcome = run_chaos(plan, str(tmp_path))
    assert outcome.passed, outcome.format()


class TestFleetChaos:
    def test_smoke_plan_passes(self):
        outcome = run_fleet_chaos(
            "fleet-smoke", FleetChaosConfig(num_requests=240)
        )
        assert outcome.passed, outcome.format()
        assert "kill-one-replica bitwise" in outcome.format()

    def test_unknown_plan_rejected(self):
        with pytest.raises(KeyError):
            run_fleet_chaos("fleet-nonexistent")

    def test_cli_fleet_smoke_exits_zero(self, capsys):
        rc = main(["chaos", "--plan", "fleet-smoke", "--requests", "240"])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "PASS" in out


@pytest.mark.chaos_slow
def test_fleet_replica_sweep_passes():
    outcome = run_fleet_chaos("fleet-replica-sweep")
    assert outcome.passed, outcome.format()
    text = outcome.format()
    assert "kill-any-replica bitwise at every injection point" in text
    assert "rolling swap" in text
