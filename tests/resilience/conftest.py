"""Shared fixtures for the resilience suite.

Everything runs on the same small PS-pipeline workload as the chaos
CLI (``repro.resilience.chaos._build_harness``), sized down to 12
batches so the crash sweep stays fast.  The fixtures are session-scoped
and read-only: the reference trainer is trained once and only inspected
afterwards.
"""

from __future__ import annotations

import pytest

from repro.resilience.chaos import ChaosHarnessConfig, _build_harness


@pytest.fixture(scope="session")
def small_config():
    return ChaosHarnessConfig(num_batches=12, checkpoint_interval=4)


@pytest.fixture(scope="session")
def harness(small_config):
    """(dataset spec, click log, trainer factory) for the small workload."""
    return _build_harness(small_config)


@pytest.fixture(scope="session")
def reference_run(harness, small_config):
    """Uninterrupted run: (trained trainer, its loss trajectory)."""
    _, log, factory = harness
    trainer = factory(None)
    losses = [
        float(x) for x in trainer.train(log, small_config.num_batches).losses
    ]
    return trainer, losses
