"""Tests for the serving circuit breaker state machine."""

import pytest

from repro.resilience.circuit import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
)

CFG = BreakerConfig(failure_threshold=3, cooldown=1.0, half_open_successes=2)


def _tripped(at: float = 0.0) -> CircuitBreaker:
    breaker = CircuitBreaker(CFG)
    for _ in range(CFG.failure_threshold):
        breaker.record_failure(at)
    assert breaker.state is BreakerState.OPEN
    return breaker


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerConfig(cooldown=0.0)
        with pytest.raises(ValueError):
            BreakerConfig(half_open_successes=0)


class TestClosed:
    def test_allows_traffic(self):
        breaker = CircuitBreaker(CFG)
        assert breaker.allow(0.0)
        assert breaker.transitions == []

    def test_trips_on_consecutive_failures_only(self):
        breaker = CircuitBreaker(CFG)
        breaker.record_failure(0.0)
        breaker.record_failure(0.1)
        breaker.record_success(0.2)  # resets the streak
        breaker.record_failure(0.3)
        breaker.record_failure(0.4)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(0.5)
        assert breaker.state is BreakerState.OPEN
        assert breaker.transitions[-1].reason == "3 consecutive SLO breaches"


class TestOpen:
    def test_blocks_until_cooldown(self):
        breaker = _tripped(at=5.0)
        assert not breaker.allow(5.5)
        assert breaker.state is BreakerState.OPEN

    def test_cooldown_elapsed_moves_to_half_open(self):
        breaker = _tripped(at=5.0)
        assert breaker.allow(6.0)  # exactly cooldown later: probe granted
        assert breaker.state is BreakerState.HALF_OPEN


class TestHalfOpen:
    def test_single_probe_slot(self):
        breaker = _tripped(at=0.0)
        assert breaker.allow(1.0)       # claims the probe slot
        assert not breaker.allow(1.01)  # second batch must wait
        breaker.record_success(1.1)     # frees the slot
        assert breaker.allow(1.2)

    def test_successes_close_the_breaker(self):
        breaker = _tripped(at=0.0)
        for t in (1.0, 1.2):
            assert breaker.allow(t)
            breaker.record_success(t + 0.05)
        assert breaker.state is BreakerState.CLOSED
        trajectory = [
            (tr.src.value, tr.dst.value) for tr in breaker.transitions
        ]
        assert trajectory == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        breaker = _tripped(at=0.0)
        assert breaker.allow(1.0)
        breaker.record_failure(1.1)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(1.5)  # old cooldown point: still blocked
        assert breaker.allow(2.1)      # new cooldown from t=1.1
        assert breaker.state is BreakerState.HALF_OPEN

    def test_reclose_resets_failure_streak(self):
        breaker = _tripped(at=0.0)
        for t in (1.0, 1.2):
            breaker.allow(t)
            breaker.record_success(t)
        # back in CLOSED, the streak starts from zero
        breaker.record_failure(2.0)
        breaker.record_failure(2.1)
        assert breaker.state is BreakerState.CLOSED

    def test_describe_lists_transitions(self):
        breaker = _tripped(at=0.0)
        text = breaker.describe()
        assert "open" in text and "closed -> open" in text


class TestHalfOpenStaleCompletions:
    """Batches dispatched before the trip report back during HALF_OPEN."""

    def test_stale_success_does_not_close(self):
        # No probe outstanding: a success from a pre-trip batch says
        # nothing about the probe path and must not count.
        breaker = _tripped(at=0.0)
        assert breaker.allow(1.0)        # enter HALF_OPEN, claim slot
        breaker.record_success(1.1)      # probe 1 of 2 succeeds
        assert not breaker.probe_outstanding
        breaker.record_success(1.15)     # STALE: no probe outstanding
        assert breaker.state is BreakerState.HALF_OPEN  # still not closed
        assert breaker.allow(1.2)        # second real probe
        breaker.record_success(1.3)
        assert breaker.state is BreakerState.CLOSED

    def test_stale_failure_re_trips_immediately(self):
        breaker = _tripped(at=0.0)
        assert breaker.allow(1.0)
        breaker.record_success(1.1)      # slot free, still HALF_OPEN
        breaker.record_failure(1.2)      # STALE breach: path still sick
        assert breaker.state is BreakerState.OPEN
        assert breaker.transitions[-1].reason == "stale breach in half-open"

    def test_re_trip_frees_probe_slot_and_restarts_cooldown(self):
        breaker = _tripped(at=0.0)
        assert breaker.allow(1.0)
        breaker.record_failure(1.2)      # probe fails -> OPEN again
        assert not breaker.probe_outstanding  # slot must not stay claimed
        assert not breaker.allow(2.1)    # cooldown restarted from 1.2
        assert breaker.allow(2.2)        # 1.2 + 1.0 elapsed
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.probe_outstanding

    def test_re_trip_resets_probe_success_count(self):
        breaker = _tripped(at=0.0)
        assert breaker.allow(1.0)
        breaker.record_success(1.1)      # 1 of 2 successes banked
        breaker.record_failure(1.2)      # stale breach re-trips
        assert breaker.allow(2.3)        # back to HALF_OPEN
        breaker.record_success(2.4)      # banked count restarted: 1 of 2
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow(2.5)
        breaker.record_success(2.6)
        assert breaker.state is BreakerState.CLOSED

    def test_full_trajectory_is_time_ordered(self):
        breaker = _tripped(at=0.0)
        breaker.allow(1.0)
        breaker.record_failure(1.2)
        breaker.allow(2.3)
        breaker.record_success(2.4)
        breaker.allow(2.5)
        breaker.record_success(2.6)
        times = [tr.time for tr in breaker.transitions]
        assert times == sorted(times)
        trajectory = [
            (tr.src.value, tr.dst.value) for tr in breaker.transitions
        ]
        assert trajectory == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]

    def test_time_regression_rejected(self):
        # Transitions must be fed in event-loop order; a timestamp
        # older than the last transition is a harness bug, not data.
        breaker = _tripped(at=5.0)
        with pytest.raises(ValueError):
            breaker.allow(6.0)           # HALF_OPEN at t=6.0
            breaker.record_failure(4.0)  # would transition backwards
