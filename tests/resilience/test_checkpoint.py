"""Tests for crash-consistent trainer snapshots."""

import os

import numpy as np
import pytest

from repro.models.serialization import CheckpointCorruptError
from repro.resilience.checkpoint import (
    CheckpointStore,
    NoCheckpointError,
    capture_trainer_arrays,
    restore_trainer_arrays,
)
from repro.resilience.faults import FaultKind, FaultPlan, FaultSite, FaultSpec


@pytest.fixture(scope="module")
def trained_arrays(harness, small_config):
    _, log, factory = harness
    trainer = factory(None)
    trainer.train(log, 3)
    return capture_trainer_arrays(trainer)


class TestCaptureRestore:
    def test_roundtrip_is_bitwise(self, harness, trained_arrays):
        _, _, factory = harness
        fresh = factory(None)
        restore_trainer_arrays(fresh, trained_arrays)
        recaptured = capture_trainer_arrays(fresh)
        assert sorted(recaptured) == sorted(trained_arrays)
        for name, arr in trained_arrays.items():
            np.testing.assert_array_equal(arr, recaptured[name])

    def test_covers_server_tables(self, trained_arrays):
        assert any(k.startswith("server/table") for k in trained_arrays)
        assert any(k.startswith("param/") for k in trained_arrays)

    def test_missing_array_rejected_before_any_write(
        self, harness, trained_arrays
    ):
        _, _, factory = harness
        fresh = factory(None)
        before = capture_trainer_arrays(fresh)
        partial = dict(trained_arrays)
        del partial[next(iter(partial))]
        with pytest.raises(KeyError, match="missing"):
            restore_trainer_arrays(fresh, partial)
        after = capture_trainer_arrays(fresh)
        for name in before:  # all-or-nothing: nothing was written
            np.testing.assert_array_equal(before[name], after[name])

    def test_shape_mismatch_rejected_before_any_write(
        self, harness, trained_arrays
    ):
        _, _, factory = harness
        fresh = factory(None)
        before = capture_trainer_arrays(fresh)
        bad = dict(trained_arrays)
        name = next(k for k in bad if k.startswith("server/table"))
        bad[name] = bad[name][:-1]
        with pytest.raises(ValueError, match="shape"):
            restore_trainer_arrays(fresh, bad)
        after = capture_trainer_arrays(fresh)
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])


class TestCheckpointStore:
    def test_save_load_roundtrip(self, tmp_path, trained_arrays):
        store = CheckpointStore(str(tmp_path))
        assert store.save(4, trained_arrays)
        state = store.load(4)
        assert state.step == 4
        for name, arr in trained_arrays.items():
            np.testing.assert_array_equal(arr, state.arrays[name])

    def test_prune_keeps_newest(self, tmp_path, trained_arrays):
        store = CheckpointStore(str(tmp_path), keep_last=2)
        for step in (0, 4, 8, 12):
            store.save(step, trained_arrays)
        assert store.steps() == [8, 12]

    def test_missing_step_raises_no_checkpoint(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        with pytest.raises(NoCheckpointError):
            store.load(7)
        with pytest.raises(NoCheckpointError):
            store.load_latest()

    def test_torn_write_never_commits(self, tmp_path, trained_arrays):
        plan = FaultPlan(
            name="torn",
            specs=(FaultSpec(FaultKind.TORN, FaultSite.CHECKPOINT, step=4),),
        )
        store = CheckpointStore(str(tmp_path), injector=plan.injector())
        assert store.save(4, trained_arrays) is False
        assert store.steps() == []  # the .tmp orphan is never visible
        assert os.path.exists(str(tmp_path / "ckpt-00000004.npz.tmp"))
        with pytest.raises(NoCheckpointError):
            store.load_latest()

    def test_corrupt_snapshot_detected_and_skipped(
        self, tmp_path, trained_arrays
    ):
        plan = FaultPlan(
            name="rot",
            specs=(
                FaultSpec(FaultKind.CORRUPT, FaultSite.CHECKPOINT, step=8),
            ),
        )
        store = CheckpointStore(str(tmp_path), injector=plan.injector())
        assert store.save(0, trained_arrays)
        assert store.save(8, trained_arrays)  # committed, then bit-rotted
        with pytest.raises(CheckpointCorruptError):
            store.load(8)
        state, skipped = store.load_latest()
        assert state.step == 0
        assert skipped == [8]

    def test_manifest_mismatch_detected(self, tmp_path, trained_arrays):
        store = CheckpointStore(str(tmp_path))
        store.save(0, trained_arrays)
        # a snapshot with extra/missing members vs its manifest is corrupt
        path = str(tmp_path / "ckpt-00000000.npz")
        with np.load(path, allow_pickle=True) as archive:
            payload = {k: archive[k] for k in archive.files}
        del payload[next(k for k in payload if k.startswith("param/"))]
        np.savez_compressed(path, **payload)
        with pytest.raises(CheckpointCorruptError, match="manifest"):
            store.load(0)

    def test_keep_last_validated(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointStore(str(tmp_path), keep_last=0)
