"""Tests for the breaker-gated serving degradation ladder."""

import pytest

from repro.models.config import DLRMConfig, EmbeddingBackend
from repro.models.dlrm import DLRM
from repro.resilience.circuit import BreakerConfig, BreakerState
from repro.resilience.degradation import (
    DegradationPolicy,
    ResilientInferenceServer,
)
from repro.resilience.faults import FaultKind, FaultPlan, FaultSite, FaultSpec
from repro.serving.batcher import BatchingPolicy
from repro.serving.requests import RequestGenerator
from repro.serving.server import ServingModel
from repro.serving.snapshot import ModelSnapshot

NUM_REQUESTS = 600

POLICY = DegradationPolicy(
    slo_target=5e-3,
    max_staleness=10.0,
    breaker=BreakerConfig(
        failure_threshold=3, cooldown=0.02, half_open_successes=2,
    ),
)

SLOWDOWN = FaultPlan(
    name="slow",
    specs=(
        FaultSpec(
            FaultKind.SLOWDOWN, FaultSite.SERVE,
            time=0.05, duration=0.1, factor=40.0,
        ),
    ),
)


@pytest.fixture(scope="module")
def serving_setup(harness):
    spec, _, _ = harness
    cfg = DLRMConfig.from_dataset(
        spec, embedding_dim=8, backend=EmbeddingBackend.EFF_TT, tt_rank=8,
        tt_threshold_rows=100, bottom_mlp=(16,), top_mlp=(16,),
    )
    model = DLRM(cfg, seed=3)
    generator = RequestGenerator(spec, rate=1500.0, seed=5)
    requests = generator.generate(NUM_REQUESTS)
    hot_rows = {
        t: generator.hot_rows(t, 0.3) for t in range(spec.num_sparse)
    }
    fallback = ModelSnapshot.from_model(model, version=0)
    return model, requests, hot_rows, fallback


def _server(model, hot_rows, injector=None, policy=POLICY):
    return ResilientInferenceServer(
        ServingModel(model, hot_rows=hot_rows, version=1),
        batching=BatchingPolicy(max_batch_size=16, max_wait=1e-3),
        degradation=policy,
        injector=injector,
    )


def _accounted(outcome) -> int:
    return (
        outcome.report.completed
        + len(outcome.rejected_ids)
        + len(outcome.shed_ids)
    )


class TestHealthyPath:
    def test_clean_run_stays_primary(self, serving_setup):
        model, requests, hot_rows, fallback = serving_setup
        server = _server(model, hot_rows)
        server.set_fallback(fallback, hot_rows=hot_rows, time=0.0)
        outcome = server.run(requests)
        assert outcome.fallback_batches == 0
        assert outcome.shed_ids == ()
        assert outcome.breaker_transitions == ()
        assert outcome.final_breaker_state is BreakerState.CLOSED
        assert _accounted(outcome) == NUM_REQUESTS
        assert all(r.model_version == 1 for r in outcome.results)


class TestDegradedPath:
    def test_slowdown_trips_breaker_and_serves_stale(self, serving_setup):
        model, requests, hot_rows, fallback = serving_setup
        server = _server(model, hot_rows, injector=SLOWDOWN.injector())
        server.set_fallback(fallback, hot_rows=hot_rows, time=0.0)
        outcome = server.run(requests)
        assert any(
            tr.dst is BreakerState.OPEN for tr in outcome.breaker_transitions
        )
        assert outcome.fallback_batches > 0
        # stale answers are stamped with the fallback's version
        stale = [r for r in outcome.results if r.model_version == 0]
        assert stale
        assert outcome.max_fallback_age <= POLICY.max_staleness
        # the window ends mid-stream, so the breaker must heal
        assert outcome.final_breaker_state is BreakerState.CLOSED
        assert _accounted(outcome) == NUM_REQUESTS

    def test_no_fallback_means_shedding(self, serving_setup):
        model, requests, hot_rows, _ = serving_setup
        server = _server(model, hot_rows, injector=SLOWDOWN.injector())
        outcome = server.run(requests)
        assert outcome.fallback_batches == 0
        assert len(outcome.shed_ids) > 0
        assert _accounted(outcome) == NUM_REQUESTS

    def test_too_stale_fallback_is_shed(self, serving_setup):
        model, requests, hot_rows, fallback = serving_setup
        tight = DegradationPolicy(
            slo_target=POLICY.slo_target,
            max_staleness=0.01,  # snapshot at t=0 ages out before the trip
            breaker=POLICY.breaker,
        )
        server = _server(
            model, hot_rows, injector=SLOWDOWN.injector(), policy=tight
        )
        server.set_fallback(fallback, hot_rows=hot_rows, time=0.0)
        outcome = server.run(requests)
        assert outcome.fallback_batches == 0
        assert len(outcome.shed_ids) > 0
        assert _accounted(outcome) == NUM_REQUESTS


class TestValidation:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            DegradationPolicy(slo_target=0.0)
        with pytest.raises(ValueError):
            DegradationPolicy(max_staleness=-1.0)

    def test_fallback_time_validated(self, serving_setup):
        model, _, hot_rows, fallback = serving_setup
        server = _server(model, hot_rows)
        with pytest.raises(ValueError):
            server.set_fallback(fallback, time=-1.0)
