"""Shared fixtures and numerical-gradient helpers for the test suite."""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def numerical_gradient(
    fn: Callable[[np.ndarray], float],
    x: np.ndarray,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central finite-difference gradient of a scalar function."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = fn(x)
        flat[i] = orig - eps
        f_minus = fn(x)
        flat[i] = orig
        gflat[i] = (f_plus - f_minus) / (2.0 * eps)
    return grad


def assert_grad_close(
    analytic: np.ndarray,
    numeric: np.ndarray,
    rtol: float = 1e-5,
    atol: float = 1e-7,
) -> None:
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)
