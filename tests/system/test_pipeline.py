"""Tests for pipelined PS training and the timing recurrence.

The headline test proves the paper's §V-B claim: pipelined training
with the LC-managed embedding cache is *bit-identical* to sequential
training, while naive prefetching (cache off) trains on stale rows.
"""

import numpy as np
import pytest

from repro.data.dataloader import SyntheticClickLog
from repro.data.datasets import criteo_kaggle_like
from repro.models.config import DLRMConfig, EmbeddingBackend
from repro.models.dlrm import DLRM, build_embedding_bag
from repro.system.parameter_server import (
    HostBackedEmbeddingBag,
    HostParameterServer,
)
from repro.system.pipeline import (
    PipelinedPSTrainer,
    SequentialPSTrainer,
    pipeline_schedule,
)

LR = 0.05


@pytest.fixture(scope="module")
def setup():
    spec = criteo_kaggle_like(scale=2e-5)
    log = SyntheticClickLog(spec, batch_size=64, seed=0)
    cfg = DLRMConfig.from_dataset(
        spec, embedding_dim=8, backend=EmbeddingBackend.EFF_TT, tt_rank=8,
        tt_threshold_rows=100, bottom_mlp=(16,), top_mlp=(16,),
    )
    rows = list(cfg.table_rows)
    host_positions = sorted(range(len(rows)), key=lambda t: -rows[t])[:2]
    host_map = {p: i for i, p in enumerate(host_positions)}
    server_rows = [rows[p] for p in host_positions]
    return log, cfg, host_map, server_rows


def _build_model(cfg, host_map):
    bags = []
    for t, rows in enumerate(cfg.table_rows):
        if t in host_map:
            bags.append(HostBackedEmbeddingBag(rows, cfg.embedding_dim))
        else:
            bags.append(
                build_embedding_bag(
                    cfg.backend_for_table(t), rows, cfg.embedding_dim,
                    cfg.tt_rank, seed=(200 + t),
                )
            )
    return DLRM(cfg, seed=7, embedding_bags=bags)


def _run(setup, trainer_cls, num_batches=16, **kwargs):
    log, cfg, host_map, server_rows = setup
    model = _build_model(cfg, host_map)
    server = HostParameterServer(server_rows, cfg.embedding_dim, lr=LR, seed=3)
    trainer = trainer_cls(model, server, host_map, lr=LR, **kwargs)
    result = trainer.train(log, num_batches)
    return model, server, result


class TestFunctionalEquivalence:
    def test_pipeline_with_cache_bitwise_equals_sequential(self, setup):
        _, s_seq, r_seq = _run(setup, SequentialPSTrainer)
        _, s_pipe, r_pipe = _run(
            setup, PipelinedPSTrainer, prefetch_depth=3, grad_queue_depth=2,
            use_cache=True,
        )
        for a, b in zip(s_seq.tables, s_pipe.tables):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(r_seq.losses, r_pipe.losses)

    @pytest.mark.parametrize("depth", [1, 2, 5])
    def test_equivalence_across_queue_depths(self, setup, depth):
        _, s_seq, _ = _run(setup, SequentialPSTrainer)
        _, s_pipe, _ = _run(
            setup, PipelinedPSTrainer, prefetch_depth=depth,
            grad_queue_depth=depth, use_cache=True,
        )
        for a, b in zip(s_seq.tables, s_pipe.tables):
            np.testing.assert_array_equal(a, b)

    def test_no_cache_consumes_stale_rows(self, setup):
        _, s_seq, r_stale = _run(
            setup, PipelinedPSTrainer, prefetch_depth=3, grad_queue_depth=2,
            use_cache=False,
        )
        assert r_stale.stale_rows_consumed > 0
        _, s_seq2, _ = _run(setup, SequentialPSTrainer)
        identical = all(
            np.array_equal(a, b) for a, b in zip(s_seq2.tables, s_seq.tables)
        )
        assert not identical  # stale run differs from the clean run

    def test_cache_hits_recorded(self, setup):
        _, _, result = _run(
            setup, PipelinedPSTrainer, prefetch_depth=3, grad_queue_depth=2,
            use_cache=True,
        )
        assert result.cache_hits > 0
        assert result.cache_misses > 0

    def test_losses_recorded(self, setup):
        _, _, result = _run(setup, SequentialPSTrainer, num_batches=5)
        assert len(result.losses) == 5
        assert result.final_loss == result.losses[-1]

    def test_model_validation(self, setup):
        log, cfg, host_map, server_rows = setup
        model = DLRM(cfg, seed=0)  # no host-backed bags
        server = HostParameterServer(server_rows, cfg.embedding_dim, lr=LR)
        with pytest.raises(TypeError):
            SequentialPSTrainer(model, server, host_map, lr=LR)

    def test_invalid_depths(self, setup):
        log, cfg, host_map, server_rows = setup
        model = _build_model(cfg, host_map)
        server = HostParameterServer(server_rows, cfg.embedding_dim, lr=LR)
        with pytest.raises(ValueError):
            PipelinedPSTrainer(model, server, host_map, lr=LR, prefetch_depth=0)


class TestPipelineSchedule:
    def test_single_stage(self):
        res = pipeline_schedule(np.full((5, 1), 2.0))
        assert res.makespan == pytest.approx(10.0)

    def test_perfect_overlap(self):
        # equal stages: makespan -> fill + N * bottleneck
        times = np.full((100, 3), 1.0)
        res = pipeline_schedule(times, queue_capacity=4)
        assert res.makespan == pytest.approx(102.0)
        assert res.steady_state_interval == pytest.approx(1.0, rel=0.01)

    def test_bottleneck_dominates(self):
        times = np.tile([0.1, 5.0, 0.1], (50, 1))
        res = pipeline_schedule(times, queue_capacity=4)
        assert res.makespan == pytest.approx(50 * 5.0 + 0.2, rel=0.01)

    def test_capacity_one_serializes(self):
        # Blocking-after-service convention: a 1-slot buffer holds the
        # item during downstream service, so depth-1 degenerates to
        # sequential execution — the paper's "EL-Rec (Sequential)".
        times = np.full((10, 2), 1.0)
        res = pipeline_schedule(times, queue_capacity=1)
        assert res.makespan == pytest.approx(times.sum())
        overlapped = pipeline_schedule(times, queue_capacity=2)
        assert overlapped.makespan < res.makespan

    def test_sequential_upper_bound(self):
        rng = np.random.default_rng(0)
        times = rng.random((20, 3))
        res = pipeline_schedule(times, queue_capacity=8)
        assert res.makespan <= times.sum() + 1e-9
        assert res.makespan >= times.sum(axis=0).max() - 1e-9

    def test_larger_queues_never_slower(self):
        rng = np.random.default_rng(1)
        times = rng.random((30, 3))
        prev = np.inf
        for cap in (1, 2, 4, 8):
            makespan = pipeline_schedule(times, queue_capacity=cap).makespan
            assert makespan <= prev + 1e-9
            prev = makespan

    def test_validation(self):
        with pytest.raises(ValueError):
            pipeline_schedule(np.zeros((0, 3)))
        with pytest.raises(ValueError):
            pipeline_schedule(np.full((2, 2), -1.0))
        with pytest.raises(ValueError):
            pipeline_schedule(np.ones((2, 3)), queue_capacity=[1])
        with pytest.raises(ValueError):
            pipeline_schedule(np.ones((2, 3)), queue_capacity=0)

    def test_stage_busy(self):
        times = np.tile([1.0, 2.0], (4, 1))
        res = pipeline_schedule(times)
        np.testing.assert_allclose(res.stage_busy, [4.0, 8.0])
