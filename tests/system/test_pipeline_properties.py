"""Property-based tests for the pipeline scheduling machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.system.pipeline import pipeline_schedule
from repro.system.simclock import simulate_pipeline_trace

stage_arrays = st.integers(min_value=1, max_value=20).flatmap(
    lambda n: st.tuples(
        st.lists(
            st.floats(min_value=0.0, max_value=0.1, allow_nan=False),
            min_size=n, max_size=n,
        ),
        st.lists(
            st.floats(min_value=0.0, max_value=0.1, allow_nan=False),
            min_size=n, max_size=n,
        ),
        st.lists(
            st.floats(min_value=0.0, max_value=0.1, allow_nan=False),
            min_size=n, max_size=n,
        ),
    )
)


class TestScheduleProperties:
    @given(stage_arrays, st.integers(min_value=1, max_value=6))
    @settings(max_examples=60, deadline=None)
    def test_makespan_bounds(self, stages, capacity):
        """Pipelined makespan lies between the bottleneck-stage lower
        bound and the fully sequential upper bound."""
        times = np.column_stack(stages)
        result = pipeline_schedule(times, queue_capacity=capacity)
        lower = max(times.sum(axis=0).max(), times.sum(axis=1).max())
        upper = times.sum()
        assert lower - 1e-9 <= result.makespan <= upper + 1e-9

    @given(stage_arrays)
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_capacity(self, stages):
        times = np.column_stack(stages)
        makespans = [
            pipeline_schedule(times, queue_capacity=c).makespan
            for c in (1, 2, 4, 8)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(makespans, makespans[1:]))

    @given(stage_arrays, st.integers(min_value=1, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_des_within_schedule_bounds(self, stages, depth):
        """The event-driven simulation respects the same bounds.

        (The DES and the recurrence differ slightly in how the
        backpressure slot frees — one blocks per stage pair, the other
        end-to-end — so exact equality only holds for constant stage
        times; the bounds hold always.)
        """
        cpu, pcie, gpu = stages
        trace = simulate_pipeline_trace(cpu, pcie, gpu, prefetch_depth=depth)
        times = np.column_stack(stages)
        lower = max(times.sum(axis=0).max(), times.sum(axis=1).max())
        upper = times.sum()
        assert lower - 1e-9 <= trace.makespan <= upper + 1e-9

    @given(stage_arrays)
    @settings(max_examples=40, deadline=None)
    def test_finish_times_nondecreasing(self, stages):
        times = np.column_stack(stages)
        result = pipeline_schedule(times, queue_capacity=4)
        last_stage = result.finish_times[:, -1]
        assert np.all(np.diff(last_stage) >= -1e-12)
