"""Tests for Chrome-trace export and PS checkpointing."""

import json

import numpy as np
import pytest

from repro.system.parameter_server import HostParameterServer
from repro.system.simclock import simulate_pipeline_trace
from repro.system.trace_export import export_chrome_trace, pipeline_trace_events


class TestPipelineTraceEvents:
    def test_event_counts(self):
        n = 10
        events = pipeline_trace_events(
            [0.01] * n, [0.002] * n, [0.008] * n, prefetch_depth=4
        )
        complete = [e for e in events if e.get("ph") == "X"]
        metadata = [e for e in events if e.get("ph") == "M"]
        assert len(complete) == 3 * n  # one per (batch, stage)
        assert len(metadata) == 3

    def test_intervals_consistent_with_des(self):
        n = 12
        cpu, pcie, gpu = [0.01] * n, [0.002] * n, [0.008] * n
        events = pipeline_trace_events(cpu, pcie, gpu, prefetch_depth=4)
        trace = simulate_pipeline_trace(cpu, pcie, gpu, prefetch_depth=4)
        gpu_events = [
            e for e in events if e.get("cat") == "gpu" and e.get("ph") == "X"
        ]
        last_end = max(e["ts"] + e["dur"] for e in gpu_events) / 1e6
        assert last_end == pytest.approx(trace.makespan, rel=1e-9)

    def test_no_overlap_within_stage(self):
        n = 20
        rng = np.random.default_rng(0)
        events = pipeline_trace_events(
            rng.random(n) * 0.01,
            rng.random(n) * 0.004,
            rng.random(n) * 0.01,
            prefetch_depth=3,
        )
        for stage in ("cpu", "pcie", "gpu"):
            spans = sorted(
                (e["ts"], e["ts"] + e["dur"])
                for e in events
                if e.get("cat") == stage and e.get("ph") == "X"
            )
            for (s1, e1), (s2, _) in zip(spans, spans[1:]):
                assert s2 >= e1 - 1e-6  # unit-capacity resource

    def test_validation(self):
        with pytest.raises(ValueError):
            pipeline_trace_events([], [], [])
        with pytest.raises(ValueError):
            pipeline_trace_events([0.1], [0.1, 0.2], [0.1])

    def test_export_writes_json(self, tmp_path):
        path = tmp_path / "trace.json"
        count = export_chrome_trace(
            str(path), [0.01] * 4, [0.001] * 4, [0.005] * 4
        )
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == count
        assert any(e.get("ph") == "X" for e in payload["traceEvents"])


class TestServerCheckpoint:
    def test_roundtrip(self, tmp_path):
        server = HostParameterServer([20, 30], embedding_dim=4, lr=0.1, seed=0)
        server.apply_gradients(0, np.array([3]), np.ones((1, 4)))
        path = tmp_path / "server.npz"
        server.save(str(path))
        restored = HostParameterServer.load(str(path))
        assert restored.lr == server.lr
        assert restored.num_tables == 2
        for a, b in zip(server.tables, restored.tables):
            np.testing.assert_array_equal(a, b)

    def test_restored_server_usable(self, tmp_path):
        server = HostParameterServer([10], embedding_dim=2, lr=0.5, seed=0)
        path = tmp_path / "s.npz"
        server.save(str(path))
        restored = HostParameterServer.load(str(path))
        out = restored.gather(0, np.array([1, 1, 4]))
        np.testing.assert_array_equal(out.unique_indices, [1, 4])
        restored.apply_gradients(0, out.unique_indices, np.ones((2, 2)))

    def test_empty_checkpoint_rejected(self, tmp_path):
        import numpy as np_

        path = tmp_path / "bad.npz"
        np_.savez(path, __lr__=np_.array([0.1]))
        with pytest.raises(ValueError):
            HostParameterServer.load(str(path))
