"""Tests for the placement planner (paper §V-A policy)."""

import pytest

from repro.system.devices import TESLA_V100, DeviceSpec
from repro.system.memory import (
    PlacementDecision,
    plan_placement,
)


TINY_GPU = DeviceSpec(
    name="tiny",
    peak_gflops=1000.0,
    mem_bw_gbps=100.0,
    hbm_bytes=10e6,  # 10 MB
    h2d_gbps=10.0,
    p2p_gbps=10.0,
)


class TestPlanPlacement:
    def test_large_tables_compressed(self):
        plan = plan_placement(
            [5_000_000, 500], 64, TESLA_V100, tt_rank=32,
            tt_threshold_rows=1_000_000,
        )
        assert plan.placements[0].decision is PlacementDecision.GPU_TT
        assert plan.placements[0].tt_spec is not None
        assert plan.placements[1].decision is PlacementDecision.GPU_DENSE

    def test_compression_shrinks_footprint(self):
        plan = plan_placement(
            [10_000_000], 64, TESLA_V100, tt_rank=64, tt_threshold_rows=0
        )
        dense_bytes = 10_000_000 * 64 * 4
        assert plan.placements[0].nbytes < dense_bytes / 50

    def test_spill_to_host_when_over_budget(self):
        # dense tables too large for the tiny GPU spill to the host
        plan = plan_placement(
            [200_000, 150_000, 100], 16, TINY_GPU, compress=False
        )
        decisions = [p.decision for p in plan.placements]
        assert PlacementDecision.HOST_DENSE in decisions
        # the small table should stay on GPU (smallest-first packing)
        assert plan.placements[2].decision is PlacementDecision.GPU_DENSE
        assert plan.fits_gpu()

    def test_compress_false_reproduces_baseline(self):
        plan = plan_placement(
            [5_000_000], 64, TESLA_V100, compress=False
        )
        assert plan.placements[0].decision is PlacementDecision.GPU_DENSE

    def test_accounting(self):
        plan = plan_placement(
            [1000, 2000], 16, TESLA_V100, compress=False, mlp_bytes=500
        )
        assert plan.gpu_bytes == 500 + (1000 + 2000) * 16 * 4
        assert plan.host_bytes == 0
        summary = plan.summary()
        assert summary["gpu_dense_tables"] == 2
        assert summary["host_tables"] == 0

    def test_tt_tables_listed(self):
        plan = plan_placement(
            [5_000_000, 10], 64, TESLA_V100, tt_threshold_rows=1000
        )
        assert len(plan.tt_tables) == 1
        assert plan.tt_tables[0].table_idx == 0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            plan_placement([10], 4, TESLA_V100, hbm_fraction=0.0)

    def test_paper_scenario_criteo_tb(self):
        """Criteo-TB dense tables exceed one V100; TT makes them fit."""
        from repro.data.datasets import criteo_tb_like

        spec = criteo_tb_like()
        rows = [t.num_rows for t in spec.tables]
        uncompressed = plan_placement(
            rows, 64, TESLA_V100, compress=False
        )
        assert len(uncompressed.host_tables) > 0  # cannot fit dense
        compressed = plan_placement(
            rows, 64, TESLA_V100, tt_rank=64, tt_threshold_rows=1_000_000
        )
        assert len(compressed.host_tables) == 0  # TT fits on one GPU
        assert compressed.fits_gpu()
