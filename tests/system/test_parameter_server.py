"""Tests for the host parameter server and host-backed bags."""

import numpy as np
import pytest

from repro.system.parameter_server import (
    HostBackedEmbeddingBag,
    HostParameterServer,
)


@pytest.fixture
def server():
    return HostParameterServer([20, 30], embedding_dim=4, lr=0.1, seed=0)


class TestHostParameterServer:
    def test_gather_unique_sorted(self, server):
        out = server.gather(0, np.array([5, 3, 5, 7]))
        np.testing.assert_array_equal(out.unique_indices, [3, 5, 7])
        np.testing.assert_array_equal(out.rows, server.tables[0][[3, 5, 7]])

    def test_gather_returns_copy(self, server):
        out = server.gather(0, np.array([1]))
        out.rows[:] = 99.0
        assert not np.allclose(server.tables[0][1], 99.0)

    def test_apply_gradients(self, server):
        before = server.tables[1].copy()
        grads = np.ones((2, 4))
        server.apply_gradients(1, np.array([2, 9]), grads)
        np.testing.assert_allclose(server.tables[1][2], before[2] - 0.1)
        np.testing.assert_allclose(server.tables[1][9], before[9] - 0.1)

    def test_counters(self, server):
        server.gather(0, np.array([1]))
        server.apply_gradients(0, np.array([1]), np.zeros((1, 4)))
        assert server.gather_count == 1
        assert server.update_count == 1

    def test_out_of_range(self, server):
        with pytest.raises(ValueError):
            server.gather(0, np.array([20]))

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            HostParameterServer([10], 4, lr=0.0)

    def test_nbytes(self, server):
        assert server.nbytes() == (20 + 30) * 4 * 8


class TestHostBackedEmbeddingBag:
    def _loaded_bag(self, server):
        bag = HostBackedEmbeddingBag(20, 4)
        prefetched = server.gather(0, np.array([2, 5, 5, 11]))
        bag.load_rows(prefetched.unique_indices, prefetched.rows)
        return bag

    def test_forward_matches_table(self, server):
        bag = self._loaded_bag(server)
        out = bag.forward(np.array([2, 5, 5, 11]), np.array([0, 2]))
        table = server.tables[0]
        np.testing.assert_allclose(out[0], table[2] + table[5])
        np.testing.assert_allclose(out[1], table[5] + table[11])

    def test_forward_before_load(self):
        bag = HostBackedEmbeddingBag(20, 4)
        with pytest.raises(RuntimeError):
            bag.forward(np.array([0]))

    def test_unloaded_row_rejected(self, server):
        bag = self._loaded_bag(server)
        with pytest.raises(KeyError):
            bag.forward(np.array([3]))

    def test_backward_aggregates_unique(self, server):
        bag = self._loaded_bag(server)
        bag.forward(np.array([2, 5, 5]), np.array([0, 1, 2, 3]))
        g = np.ones((3, 4))
        bag.backward(g)
        uidx, grads = bag.pop_row_gradients()
        np.testing.assert_array_equal(uidx, [2, 5, 11])
        np.testing.assert_allclose(grads[0], np.ones(4))
        np.testing.assert_allclose(grads[1], 2 * np.ones(4))  # 5 twice
        np.testing.assert_allclose(grads[2], np.zeros(4))  # 11 unused

    def test_compute_updated_rows(self, server):
        bag = self._loaded_bag(server)
        bag.forward(np.array([2]), np.array([0]))
        bag.backward(np.ones((1, 4)))
        uidx, updated = bag.compute_updated_rows(lr=0.5)
        np.testing.assert_allclose(
            updated[0], server.tables[0][2] - 0.5
        )

    def test_step_raises(self, server):
        bag = self._loaded_bag(server)
        with pytest.raises(RuntimeError):
            bag.step(0.1)

    def test_load_rows_validation(self):
        bag = HostBackedEmbeddingBag(20, 4)
        with pytest.raises(ValueError):
            bag.load_rows(np.array([5, 3]), np.zeros((2, 4)))  # not sorted
        with pytest.raises(ValueError):
            bag.load_rows(np.array([3]), np.zeros((2, 4)))  # shape mismatch

    def test_nbytes_tracks_loaded(self, server):
        bag = HostBackedEmbeddingBag(20, 4)
        assert bag.nbytes == 0
        prefetched = server.gather(0, np.array([1, 2]))
        bag.load_rows(prefetched.unique_indices, prefetched.rows)
        assert bag.nbytes == 2 * 4 * 8
