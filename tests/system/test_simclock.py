"""Tests for the discrete-event simulation kernel."""

import numpy as np
import pytest

from repro.system.pipeline import pipeline_schedule
from repro.system.simclock import (
    Resource,
    Simulator,
    simulate_pipeline_trace,
)


class TestSimulator:
    def test_event_ordering(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, lambda: log.append("b"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(3.0, lambda: log.append("c"))
        assert sim.run() == 3.0
        assert log == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(1.0, lambda: log.append(2))
        sim.run()
        assert log == [1, 2]

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def first():
            log.append(sim.now)
            sim.schedule(0.5, lambda: log.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert log == [1.0, 1.5]

    def test_negative_delay(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_runaway_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)


class TestResource:
    def test_serializes_requests(self):
        sim = Simulator()
        res = Resource(sim, "r")
        done = []
        res.request(1.0, lambda: done.append(sim.now))
        res.request(2.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [1.0, 3.0]
        assert res.served == 2
        assert res.busy_time == pytest.approx(3.0)

    def test_queue_stats(self):
        sim = Simulator()
        res = Resource(sim, "r")
        for _ in range(4):
            res.request(1.0, lambda: None)
        sim.run()
        assert res.max_queue_len == 3

    def test_utilization(self):
        sim = Simulator()
        res = Resource(sim, "r")
        res.request(1.0, lambda: None)
        horizon = sim.run()
        assert res.utilization(horizon) == pytest.approx(1.0)
        assert res.utilization(0.0) == 0.0

    def test_invalid_duration(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Resource(sim, "r").request(-1.0, lambda: None)


class TestPipelineTrace:
    def test_matches_closed_form_constant_times(self):
        """DES and the pipeline_schedule recurrence agree exactly for
        constant stage times and matching queue conventions."""
        n = 40
        cpu, pcie, gpu = 0.01, 0.002, 0.008
        trace = simulate_pipeline_trace(
            [cpu] * n, [pcie] * n, [gpu] * n, prefetch_depth=4
        )
        closed = pipeline_schedule(
            np.tile([cpu, pcie, gpu], (n, 1)), queue_capacity=4
        )
        # steady-state interval equals the bottleneck stage
        assert trace.steady_state_interval == pytest.approx(cpu, rel=0.02)
        assert closed.steady_state_interval == pytest.approx(cpu, rel=0.02)
        assert trace.makespan == pytest.approx(closed.makespan, rel=0.05)

    def test_bottleneck_utilization(self):
        n = 50
        trace = simulate_pipeline_trace(
            [0.001] * n, [0.001] * n, [0.010] * n, prefetch_depth=4
        )
        assert trace.stage_utilization["gpu"] > 0.9
        assert trace.stage_utilization["cpu"] < 0.2

    def test_backpressure_bounds_occupancy(self):
        n = 30
        trace = simulate_pipeline_trace(
            [0.001] * n, [0.001] * n, [0.02] * n, prefetch_depth=3
        )
        assert trace.max_prefetch_occupancy <= 3

    def test_depth_one_serializes(self):
        n = 10
        trace = simulate_pipeline_trace(
            [1.0] * n, [1.0] * n, [1.0] * n, prefetch_depth=1
        )
        assert trace.makespan == pytest.approx(30.0)

    def test_variable_times_straggler(self):
        # one slow CPU batch delays the tail but the pipeline absorbs
        # part of it thanks to queued work
        cpu = [0.01] * 20
        cpu[10] = 0.2
        trace = simulate_pipeline_trace(
            cpu, [0.001] * 20, [0.05] * 20, prefetch_depth=4
        )
        no_straggler = simulate_pipeline_trace(
            [0.01] * 20, [0.001] * 20, [0.05] * 20, prefetch_depth=4
        )
        slowdown = trace.makespan - no_straggler.makespan
        assert slowdown < 0.19  # absorbed partially, not fully serialized

    def test_finish_times_monotone(self):
        rng = np.random.default_rng(0)
        trace = simulate_pipeline_trace(
            rng.random(20) * 0.01,
            rng.random(20) * 0.002,
            rng.random(20) * 0.01,
            prefetch_depth=4,
        )
        assert np.all(np.diff(trace.finish_times) > 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_pipeline_trace([], [], [])
        with pytest.raises(ValueError):
            simulate_pipeline_trace([1.0], [1.0, 2.0], [1.0])
        with pytest.raises(ValueError):
            simulate_pipeline_trace([-1.0], [1.0], [1.0])
        with pytest.raises(ValueError):
            simulate_pipeline_trace([1.0], [1.0], [1.0], prefetch_depth=0)
