"""Tests for the timed functional trainer."""

import numpy as np
import pytest

from repro.data.dataloader import SyntheticClickLog
from repro.data.datasets import criteo_kaggle_like
from repro.models.config import DLRMConfig, EmbeddingBackend
from repro.models.dlrm import DLRM, build_embedding_bag
from repro.system.devices import HostProfile, KernelCostModel, TESLA_V100
from repro.system.parameter_server import (
    HostBackedEmbeddingBag,
    HostParameterServer,
)
from repro.system.timed_trainer import run_timed_pipeline


@pytest.fixture(scope="module")
def setup():
    spec = criteo_kaggle_like(scale=2e-5)
    log = SyntheticClickLog(spec, batch_size=64, seed=0)
    cfg = DLRMConfig.from_dataset(
        spec, embedding_dim=8, backend=EmbeddingBackend.EFF_TT, tt_rank=8,
        tt_threshold_rows=100, bottom_mlp=(16,), top_mlp=(16,),
    )
    rows = list(cfg.table_rows)
    host_positions = sorted(range(len(rows)), key=lambda t: -rows[t])[:2]
    host_map = {p: i for i, p in enumerate(host_positions)}
    server_rows = [rows[p] for p in host_positions]
    return log, cfg, host_map, server_rows


def _build(cfg, host_map):
    bags = []
    for t, rows in enumerate(cfg.table_rows):
        if t in host_map:
            bags.append(HostBackedEmbeddingBag(rows, cfg.embedding_dim))
        else:
            bags.append(
                build_embedding_bag(
                    cfg.backend_for_table(t), rows, cfg.embedding_dim,
                    cfg.tt_rank, seed=(900 + t),
                )
            )
    return DLRM(cfg, seed=3, embedding_bags=bags)


class TestRunTimedPipeline:
    def test_real_training_happens(self, setup):
        log, cfg, host_map, server_rows = setup
        model = _build(cfg, host_map)
        server = HostParameterServer(server_rows, cfg.embedding_dim, lr=0.1)
        result = run_timed_pipeline(
            model, server, host_map, log, num_batches=12, lr=0.1,
            device=TESLA_V100,
            cost_model=KernelCostModel(HostProfile(50.0, 5.0, 5.0)),
        )
        assert len(result.losses) == 12
        assert np.isfinite(result.losses).all()
        # the numerics actually trained (server received updates)
        assert server.update_count == 12 * len(host_map)

    def test_stage_times_positive_and_variable(self, setup):
        log, cfg, host_map, server_rows = setup
        model = _build(cfg, host_map)
        server = HostParameterServer(server_rows, cfg.embedding_dim, lr=0.1)
        result = run_timed_pipeline(
            model, server, host_map, log, num_batches=10, lr=0.1,
            device=TESLA_V100,
        )
        assert (result.cpu_times > 0).all()
        assert (result.transfer_times > 0).all()
        assert (result.gpu_times > 0).all()
        # measured times vary batch to batch (real execution)
        assert result.cpu_times.std() > 0

    def test_pipeline_beats_sequential(self, setup):
        log, cfg, host_map, server_rows = setup
        model = _build(cfg, host_map)
        server = HostParameterServer(server_rows, cfg.embedding_dim, lr=0.1)
        result = run_timed_pipeline(
            model, server, host_map, log, num_batches=16, lr=0.1,
            device=TESLA_V100, prefetch_depth=4,
        )
        assert result.pipelined_seconds < result.sequential_seconds
        assert result.pipeline_speedup > 1.0

    def test_trace_consistent(self, setup):
        log, cfg, host_map, server_rows = setup
        model = _build(cfg, host_map)
        server = HostParameterServer(server_rows, cfg.embedding_dim, lr=0.1)
        result = run_timed_pipeline(
            model, server, host_map, log, num_batches=8, lr=0.1,
            device=TESLA_V100,
        )
        assert result.trace.finish_times.size == 8
        assert result.trace.makespan >= result.gpu_times.sum() - 1e-9

    def test_rejects_non_host_bags(self, setup):
        log, cfg, host_map, server_rows = setup
        model = DLRM(cfg, seed=0)  # all local bags
        server = HostParameterServer(server_rows, cfg.embedding_dim, lr=0.1)
        with pytest.raises(TypeError):
            run_timed_pipeline(
                model, server, host_map, log, num_batches=2, lr=0.1,
                device=TESLA_V100,
            )
