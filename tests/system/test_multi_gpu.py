"""Tests for functional data parallelism and collective cost formulas."""

import numpy as np
import pytest

from repro.data.dataloader import SyntheticClickLog
from repro.data.datasets import criteo_kaggle_like
from repro.models.config import DLRMConfig, EmbeddingBackend
from repro.models.dlrm import DLRM
from repro.system.devices import TESLA_T4, TESLA_V100
from repro.system.multi_gpu import (
    DataParallelTrainer,
    all2all_time,
    allgather_time,
    ring_allreduce_time,
    shard_batch,
)


@pytest.fixture(scope="module")
def setup():
    spec = criteo_kaggle_like(scale=2e-5)
    log = SyntheticClickLog(spec, batch_size=64, seed=0)
    cfg = DLRMConfig.from_dataset(
        spec, embedding_dim=8, backend=EmbeddingBackend.EFF_TT, tt_rank=8,
        bottom_mlp=(16,), top_mlp=(16,),
    )
    return log, cfg


class TestShardBatch:
    def test_shapes(self, setup):
        log, _ = setup
        shards = shard_batch(log.batch(0), 4)
        assert len(shards) == 4
        assert all(s.batch_size == 16 for s in shards)

    def test_concatenation_recovers_batch(self, setup):
        log, _ = setup
        batch = log.batch(0)
        shards = shard_batch(batch, 2)
        np.testing.assert_array_equal(
            np.concatenate([s.dense for s in shards]), batch.dense
        )
        for t in range(batch.num_tables):
            np.testing.assert_array_equal(
                np.concatenate([s.sparse_indices[t] for s in shards]),
                batch.sparse_indices[t],
            )
            # offsets restart at 0 per shard
            assert all(s.sparse_offsets[t][0] == 0 for s in shards)

    def test_indivisible_rejected(self, setup):
        log, _ = setup
        with pytest.raises(ValueError):
            shard_batch(log.batch(0), 7)


class TestDataParallelTrainer:
    def test_replicas_stay_synchronized(self, setup):
        log, cfg = setup
        dp = DataParallelTrainer(cfg, num_replicas=2, seed=4)
        for i in range(4):
            dp.train_step(log.batch(i), lr=0.05)
        assert dp.replicas_synchronized()

    def test_matches_single_worker_training(self, setup):
        log, cfg = setup
        dp = DataParallelTrainer(cfg, num_replicas=4, seed=4)
        single = DLRM(cfg, seed=4)
        for i in range(4):
            dp.train_step(log.batch(i), lr=0.05)
            single.train_step(log.batch(i), lr=0.05)
        for p_dp, p_single in zip(
            dp.replicas[0].parameters(), single.parameters()
        ):
            np.testing.assert_allclose(p_dp.data, p_single.data, atol=1e-12)
        for bag_dp, bag_single in zip(
            dp.replicas[0].embedding_bags, single.embedding_bags
        ):
            for c_dp, c_single in zip(bag_dp.tt.cores, bag_single.tt.cores):
                np.testing.assert_allclose(c_dp, c_single, atol=1e-12)

    def test_loss_is_global_mean(self, setup):
        log, cfg = setup
        dp = DataParallelTrainer(cfg, num_replicas=2, seed=4)
        single = DLRM(cfg, seed=4)
        batch = log.batch(0)
        loss_dp = dp.train_step(batch, lr=0.05)
        logits = single.forward(batch)
        loss_single = single.loss_fn.forward(logits, batch.labels)
        assert loss_dp == pytest.approx(loss_single, rel=1e-10)

    def test_dense_backend_supported(self, setup):
        log, _ = setup
        spec = criteo_kaggle_like(scale=2e-5)
        cfg = DLRMConfig.from_dataset(
            spec, embedding_dim=8, backend=EmbeddingBackend.DENSE,
            bottom_mlp=(16,), top_mlp=(16,),
        )
        dp = DataParallelTrainer(cfg, num_replicas=2, seed=0)
        dp.train_step(log.batch(0), lr=0.05)
        assert dp.replicas_synchronized()

    def test_invalid_replicas(self, setup):
        _, cfg = setup
        with pytest.raises(ValueError):
            DataParallelTrainer(cfg, num_replicas=0)


class TestCollectiveFormulas:
    def test_single_device_free(self):
        assert ring_allreduce_time(1e9, 1, TESLA_V100) == 0.0
        assert all2all_time(1e9, 1, TESLA_V100) == 0.0
        assert allgather_time(1e9, 1, TESLA_V100) == 0.0

    def test_allreduce_bandwidth_term(self):
        t = ring_allreduce_time(150e9, 2, TESLA_V100, latency_s=0.0)
        # 2 * (1/2) * 150 GB over 150 GB/s = 1 s
        assert t == pytest.approx(1.0)

    def test_nvlink_faster_than_pcie(self):
        v = ring_allreduce_time(1e9, 4, TESLA_V100)
        t = ring_allreduce_time(1e9, 4, TESLA_T4)
        assert v < t

    def test_allreduce_scales_sublinearly_in_k(self):
        t2 = ring_allreduce_time(1e9, 2, TESLA_V100, latency_s=0.0)
        t8 = ring_allreduce_time(1e9, 8, TESLA_V100, latency_s=0.0)
        assert t8 / t2 == pytest.approx((2 * 7 / 8) / (2 * 1 / 2))

    def test_allgather_grows_with_k(self):
        t2 = allgather_time(1e9, 2, TESLA_V100, latency_s=0.0)
        t4 = allgather_time(1e9, 4, TESLA_V100, latency_s=0.0)
        assert t4 > t2

    def test_validation(self):
        with pytest.raises(ValueError):
            ring_allreduce_time(-1.0, 2, TESLA_V100)
        with pytest.raises(ValueError):
            all2all_time(1.0, 0, TESLA_V100)
