"""Tests for the bounded FIFO queue."""

import pytest

from repro.system.queues import BoundedQueue, QueueClosed


class TestBoundedQueue:
    def test_fifo_order(self):
        q = BoundedQueue(3)
        q.put(1)
        q.put(2)
        assert q.get() == 1
        assert q.get() == 2

    def test_capacity_enforced(self):
        q = BoundedQueue(1)
        q.put("a")
        assert q.full()
        with pytest.raises(OverflowError):
            q.put("b")

    def test_empty_get(self):
        q = BoundedQueue(1)
        with pytest.raises(LookupError):
            q.get()
        with pytest.raises(LookupError):
            q.peek()

    def test_peek_non_destructive(self):
        q = BoundedQueue(2)
        q.put(5)
        assert q.peek() == 5
        assert len(q) == 1

    def test_close_semantics(self):
        q = BoundedQueue(2)
        q.put(1)
        q.close()
        with pytest.raises(QueueClosed):
            q.put(2)
        assert q.get() == 1  # drain allowed
        with pytest.raises(QueueClosed):
            q.get()

    def test_counters(self):
        q = BoundedQueue(4)
        q.put(1)
        q.put(2)
        q.get()
        assert q.total_puts == 2
        assert q.total_gets == 1

    def test_drain(self):
        q = BoundedQueue(4)
        for i in range(3):
            q.put(i)
        assert q.drain() == [0, 1, 2]
        assert q.empty()

    def test_iteration_non_destructive(self):
        q = BoundedQueue(3)
        q.put(1)
        q.put(2)
        assert list(q) == [1, 2]
        assert len(q) == 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BoundedQueue(0)
