"""Tests for the bounded FIFO queue."""

import pytest

from repro.system.queues import BoundedQueue, QueueClosed
from repro.system.simclock import Simulator


class TestBoundedQueue:
    def test_fifo_order(self):
        q = BoundedQueue(3)
        q.put(1)
        q.put(2)
        assert q.get() == 1
        assert q.get() == 2

    def test_capacity_enforced(self):
        q = BoundedQueue(1)
        q.put("a")
        assert q.full()
        with pytest.raises(OverflowError):
            q.put("b")

    def test_empty_get(self):
        q = BoundedQueue(1)
        with pytest.raises(LookupError):
            q.get()
        with pytest.raises(LookupError):
            q.peek()

    def test_peek_non_destructive(self):
        q = BoundedQueue(2)
        q.put(5)
        assert q.peek() == 5
        assert len(q) == 1

    def test_close_semantics(self):
        q = BoundedQueue(2)
        q.put(1)
        q.close()
        with pytest.raises(QueueClosed):
            q.put(2)
        assert q.get() == 1  # drain allowed
        with pytest.raises(QueueClosed):
            q.get()

    def test_counters(self):
        q = BoundedQueue(4)
        q.put(1)
        q.put(2)
        q.get()
        assert q.total_puts == 2
        assert q.total_gets == 1

    def test_drain(self):
        q = BoundedQueue(4)
        for i in range(3):
            q.put(i)
        assert q.drain() == [0, 1, 2]
        assert q.empty()

    def test_iteration_non_destructive(self):
        q = BoundedQueue(3)
        q.put(1)
        q.put(2)
        assert list(q) == [1, 2]
        assert len(q) == 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BoundedQueue(0)

    def test_drain_on_closed_queue(self):
        # close() forbids new puts but must not strand queued items:
        # drain() empties a closed queue like any other.
        q = BoundedQueue(4)
        q.put(1)
        q.put(2)
        q.close()
        assert q.drain() == [1, 2]
        assert q.empty()
        assert q.total_gets == 2

    def test_drain_closed_empty_queue(self):
        q = BoundedQueue(2)
        q.close()
        assert q.drain() == []

    def test_put_after_close_leaves_queue_untouched(self):
        q = BoundedQueue(4)
        q.put(1)
        q.close()
        with pytest.raises(QueueClosed):
            q.put(2)
        # the rejected put must not corrupt contents or counters
        assert list(q) == [1]
        assert q.total_puts == 1
        assert q.closed

    def test_close_is_idempotent(self):
        q = BoundedQueue(2)
        q.close()
        q.close()
        assert q.closed

    def test_iteration_stable_while_draining(self):
        # __iter__ snapshots: concurrent gets during iteration must not
        # affect the values the iterator yields.
        q = BoundedQueue(8)
        for i in range(5):
            q.put(i)
        seen = []
        for item in q:
            seen.append(item)
            if not q.empty():
                q.get()  # mutate mid-iteration
        assert seen == [0, 1, 2, 3, 4]

    def test_iteration_stable_under_drain(self):
        q = BoundedQueue(4)
        q.put("a")
        q.put("b")
        iterator = iter(q)
        q.drain()
        assert list(iterator) == ["a", "b"]

    def test_peek_on_closed_empty_raises_queue_closed(self):
        # Same drain-then-raise contract as get(): while items remain,
        # peek works; once dry, a closed queue reports QueueClosed (not
        # the generic "empty" LookupError a consumer would retry on).
        q = BoundedQueue(2)
        q.put(1)
        q.close()
        assert q.peek() == 1
        q.get()
        with pytest.raises(QueueClosed):
            q.peek()


class TestCloseRacesUnderSimClock:
    """Close/consume interleavings driven by the deterministic event loop.

    These are the single-threaded analogue of close races: the
    Simulator fixes the interleaving, so each scenario pins down
    exactly which side of the close every operation lands on.
    """

    def test_close_while_full_drains_before_raising(self):
        q = BoundedQueue(2)
        sim = Simulator()
        events = []

        def consume():
            try:
                events.append(("got", q.get()))
            except QueueClosed:
                events.append(("closed", None))

        sim.schedule(0.0, lambda: (q.put("a"), q.put("b")))
        sim.schedule(1.0, q.close)  # close while the queue is FULL
        sim.schedule(2.0, consume)
        sim.schedule(3.0, consume)
        sim.schedule(4.0, consume)
        sim.run()
        # Both in-flight items survive the close; only the dry get raises.
        assert events == [("got", "a"), ("got", "b"), ("closed", None)]

    def test_close_while_empty_rejects_put_and_get(self):
        q = BoundedQueue(2)
        sim = Simulator()
        events = []

        def probe_get():
            try:
                q.get()
            except QueueClosed:
                events.append("get-closed")
            except LookupError:
                events.append("get-empty")

        def probe_put():
            try:
                q.put("late")
                events.append("put-ok")
            except QueueClosed:
                events.append("put-closed")

        sim.schedule(0.0, probe_get)   # empty but still open: plain empty
        sim.schedule(1.0, q.close)     # close while EMPTY
        sim.schedule(2.0, probe_get)   # now surfaces the close
        sim.schedule(3.0, probe_put)   # producers locked out
        sim.run()
        assert events == ["get-empty", "get-closed", "put-closed"]
        assert q.empty() and q.closed

    def test_producer_racing_close_never_leaks_items(self):
        # A put scheduled in the same interleaving as close either
        # lands wholly before (item is drainable) or wholly after
        # (QueueClosed, queue untouched) — never a half-state.
        q = BoundedQueue(4)
        sim = Simulator()
        outcome = []

        sim.schedule(0.0, lambda: q.put(1))
        sim.schedule(1.0, q.close)

        def racing_put():
            try:
                q.put(2)
                outcome.append("accepted")
            except QueueClosed:
                outcome.append("rejected")

        sim.schedule(1.0, racing_put)  # same timestamp as the close
        sim.run()
        assert outcome == ["rejected"]  # FIFO event order: close first
        assert q.drain() == [1]
        assert q.total_puts == 1


class TestTryGet:
    def test_open_empty_returns_none(self):
        q = BoundedQueue(2)
        assert q.try_get() is None
        q.put(1)
        assert q.try_get() == 1
        assert q.try_get() is None  # empty again, still open

    def test_closed_drains_then_raises(self):
        q = BoundedQueue(4)
        q.put("a")
        q.put("b")
        q.close()
        assert q.try_get() == "a"
        assert q.try_get() == "b"
        with pytest.raises(QueueClosed):
            q.try_get()

    def test_counts_as_get(self):
        q = BoundedQueue(2)
        q.put(1)
        q.try_get()
        q.try_get()  # None path must not bump the counter
        assert q.total_gets == 1


class TestMultiConsumer:
    """MPMC contract: N consumers interleaving on one queue.

    The serving fleet drains one BatchingQueue from N replica
    executors; these tests pin the delivery and shutdown semantics
    that design leans on.
    """

    def test_each_item_delivered_exactly_once_fifo(self):
        q = BoundedQueue(16)
        sim = Simulator()
        deliveries = []  # (consumer, item)

        def consumer(cid):
            item = q.try_get()
            if item is not None:
                deliveries.append((cid, item))

        # bursts of 3 items, then one poll per consumer each wave
        for wave in range(3):
            base = float(wave)
            sim.schedule(
                base, lambda w=wave: [q.put(3 * w + i) for i in range(3)]
            )
            for cid in range(3):
                sim.schedule(base + 0.1 + cid * 0.01,
                             lambda c=cid: consumer(c))
        sim.run()
        items = [item for _, item in deliveries]
        assert sorted(items) == list(range(len(items)))  # no duplicates
        assert items == sorted(items)  # FIFO across all consumers
        # every consumer actually took part
        assert {cid for cid, _ in deliveries} == {0, 1, 2}

    def test_all_consumers_observe_drain_then_raise(self):
        q = BoundedQueue(8)
        sim = Simulator()
        log = {0: [], 1: [], 2: []}

        def consumer(cid):
            try:
                item = q.try_get()
                log[cid].append(("got", item))
            except QueueClosed:
                log[cid].append(("closed", None))

        sim.schedule(0.0, lambda: [q.put(i) for i in range(4)])
        sim.schedule(1.0, q.close)
        # after the close, each of 3 consumers polls repeatedly: the
        # 4-item backlog drains first, then every poller sees
        # QueueClosed -- never a lost item, never a half-state.
        for tick in range(3):
            for cid in range(3):
                sim.schedule(2.0 + tick + cid * 0.1,
                             lambda c=cid: consumer(c))
        sim.run()
        got = [e for events in log.values() for e in events
               if e[0] == "got" and e[1] is not None]
        assert sorted(item for _, item in got) == [0, 1, 2, 3]
        closed_counts = {
            cid: sum(1 for e in events if e[0] == "closed")
            for cid, events in log.items()
        }
        # all three consumers independently hit the closed signal
        assert all(count >= 1 for count in closed_counts.values())

    def test_peek_never_transfers_ownership_across_consumers(self):
        q = BoundedQueue(4)
        q.put("x")
        # consumer A peeks, consumer B gets: B owns the item, and A's
        # subsequent get sees the queue state honestly.
        assert q.peek() == "x"
        assert q.get() == "x"
        with pytest.raises(LookupError):
            q.get()
        q.close()
        with pytest.raises(QueueClosed):
            q.peek()
