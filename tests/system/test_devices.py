"""Tests for the device specs and kernel cost model."""

import numpy as np
import pytest

from repro.system.devices import (
    CPU_HOST,
    DeviceSpec,
    HostProfile,
    KernelCostModel,
    TESLA_T4,
    TESLA_V100,
    calibrate_host,
)


@pytest.fixture(scope="module")
def cost():
    return KernelCostModel(HostProfile(gemm_gflops=50.0, gather_gbps=5.0))


class TestDeviceSpec:
    def test_datasheet_sanity(self):
        assert TESLA_V100.peak_gflops > TESLA_T4.peak_gflops
        assert TESLA_V100.mem_bw_gbps > TESLA_T4.mem_bw_gbps
        assert TESLA_V100.hbm_bytes == TESLA_T4.hbm_bytes == 16e9
        # p3.8xlarge has NVLink; g4dn has PCIe-only peer transfers
        assert TESLA_V100.p2p_gbps > TESLA_T4.p2p_gbps

    def test_effective_gflops(self):
        assert TESLA_V100.effective_gflops == pytest.approx(
            TESLA_V100.peak_gflops * TESLA_V100.efficiency
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceSpec("bad", 0, 1, 1, 1, 1)
        with pytest.raises(ValueError):
            DeviceSpec("bad", 1, 1, 1, 1, 1, efficiency=0.0)


class TestCalibration:
    def test_measures_positive(self):
        profile = calibrate_host(gemm_size=128, gather_rows=10_000)
        assert profile.gemm_gflops > 0
        assert profile.gather_gbps > 0

    def test_cached(self):
        a = calibrate_host(gemm_size=128, gather_rows=10_000)
        b = calibrate_host(gemm_size=128, gather_rows=10_000)
        assert a is b


class TestScaling:
    def test_compute_scaling_ratio(self, cost):
        host_time = 1.0
        v100 = cost.scale_compute(host_time, TESLA_V100)
        t4 = cost.scale_compute(host_time, TESLA_T4)
        # V100 is faster than T4 by the peak ratio
        assert v100 < t4
        assert t4 / v100 == pytest.approx(
            TESLA_V100.effective_gflops / TESLA_T4.effective_gflops
        )

    def test_memory_scaling_ratio(self, cost):
        v100 = cost.scale_memory(1.0, TESLA_V100)
        t4 = cost.scale_memory(1.0, TESLA_T4)
        assert t4 / v100 == pytest.approx(900.0 / 300.0)

    def test_negative_time_rejected(self, cost):
        with pytest.raises(ValueError):
            cost.scale_compute(-1.0, TESLA_V100)

    def test_measure_and_scale(self, cost):
        t = cost.measure_and_scale(
            lambda: np.zeros(1000).sum(), TESLA_V100, bound="compute", repeats=2
        )
        assert t > 0
        with pytest.raises(ValueError):
            cost.measure_and_scale(lambda: None, TESLA_V100, bound="bogus")


class TestAnalyticKernels:
    def test_gemm_time_scales_with_flops(self, cost):
        small = cost.gemm_time(64, 64, 64, TESLA_V100)
        large = cost.gemm_time(512, 512, 512, TESLA_V100)
        assert large > small

    def test_mlp_backward_factor(self, cost):
        fwd = cost.mlp_time([16, 64, 1], 128, TESLA_V100, backward=False)
        both = cost.mlp_time([16, 64, 1], 128, TESLA_V100, backward=True)
        assert both == pytest.approx(3.0 * fwd)

    def test_transfer_times(self, cost):
        t = cost.h2d_time(12e9, TESLA_V100)
        assert t == pytest.approx(1.0, rel=0.01)  # 12 GB over 12 GB/s
        assert cost.p2p_time(150e9, TESLA_V100) == pytest.approx(1.0, rel=0.01)

    def test_gather_time_memory_bound(self, cost):
        t = cost.gather_time(1000, 256, TESLA_V100)
        expected = 2 * 1000 * 256 / (900e9)
        assert t == pytest.approx(expected + TESLA_V100.kernel_launch_us * 1e-6)

    def test_launch_overhead(self, cost):
        assert cost.launch_time(TESLA_V100) == pytest.approx(5e-6)
        assert cost.launch_time(CPU_HOST) == 0.0
