"""Tests for DLRM checkpointing."""

import io

import numpy as np
import pytest

from repro.data.dataloader import SyntheticClickLog
from repro.data.datasets import criteo_kaggle_like
from repro.embeddings.base import EmbeddingBagBase
from repro.models.config import DLRMConfig, EmbeddingBackend
from repro.models.dlrm import DLRM
from repro.models.serialization import (
    CheckpointCorruptError,
    load_checkpoint,
    save_checkpoint,
)
from repro.system.parameter_server import HostBackedEmbeddingBag


@pytest.fixture(scope="module")
def setup():
    spec = criteo_kaggle_like(scale=2e-5)
    log = SyntheticClickLog(spec, batch_size=64, seed=0)
    return spec, log


def _roundtrip(model: DLRM) -> DLRM:
    buffer = io.BytesIO()
    save_checkpoint(model, buffer)
    buffer.seek(0)
    return load_checkpoint(buffer)


@pytest.mark.parametrize(
    "backend",
    [
        EmbeddingBackend.DENSE,
        EmbeddingBackend.TT,
        EmbeddingBackend.EFF_TT,
        EmbeddingBackend.HASH,
        EmbeddingBackend.ROBE,
        EmbeddingBackend.PQ,
    ],
)
class TestRoundtrip:
    def test_parameters_identical(self, setup, backend):
        spec, log = setup
        cfg = DLRMConfig.from_dataset(
            spec, embedding_dim=8, backend=backend, tt_rank=8,
            bottom_mlp=(16,), top_mlp=(16,),
        )
        model = DLRM(cfg, seed=4)
        model.train_step(log.batch(0), lr=0.1)  # move off init
        restored = _roundtrip(model)
        for (n1, p1), (n2, p2) in zip(
            model.named_parameters(), restored.named_parameters()
        ):
            assert n1 == n2
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_predictions_identical(self, setup, backend):
        spec, log = setup
        cfg = DLRMConfig.from_dataset(
            spec, embedding_dim=8, backend=backend, tt_rank=8,
            bottom_mlp=(16,), top_mlp=(16,),
        )
        model = DLRM(cfg, seed=4)
        model.train_step(log.batch(0), lr=0.1)
        restored = _roundtrip(model)
        batch = log.batch(5)
        np.testing.assert_array_equal(
            model.forward(batch), restored.forward(batch)
        )

    def test_training_continues_identically(self, setup, backend):
        spec, log = setup
        cfg = DLRMConfig.from_dataset(
            spec, embedding_dim=8, backend=backend, tt_rank=8,
            bottom_mlp=(16,), top_mlp=(16,),
        )
        model = DLRM(cfg, seed=4)
        model.train_step(log.batch(0), lr=0.1)
        restored = _roundtrip(model)
        a = model.train_step(log.batch(1), lr=0.1).loss
        b = restored.train_step(log.batch(1), lr=0.1).loss
        assert a == b


class TestErrors:
    def test_host_backed_bag_rejected(self, setup):
        spec, _ = setup
        cfg = DLRMConfig.from_dataset(
            spec, embedding_dim=8, backend=EmbeddingBackend.DENSE,
            bottom_mlp=(16,), top_mlp=(16,),
        )
        bags: list = [
            HostBackedEmbeddingBag(rows, 8) for rows in cfg.table_rows
        ]
        model = DLRM(cfg, seed=0, embedding_bags=bags)
        with pytest.raises(TypeError, match="parameter-server"):
            save_checkpoint(model, io.BytesIO())

    def test_file_path_roundtrip(self, setup, tmp_path):
        spec, log = setup
        cfg = DLRMConfig.from_dataset(
            spec, embedding_dim=8, backend=EmbeddingBackend.EFF_TT,
            tt_rank=8, bottom_mlp=(16,), top_mlp=(16,),
        )
        model = DLRM(cfg, seed=1)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(model, str(path))
        restored = load_checkpoint(str(path))
        batch = log.batch(0)
        np.testing.assert_array_equal(
            model.forward(batch), restored.forward(batch)
        )

    def test_config_survives(self, setup):
        spec, _ = setup
        cfg = DLRMConfig.from_dataset(
            spec, embedding_dim=8, backend=EmbeddingBackend.TT, tt_rank=8,
            bottom_mlp=(16,), top_mlp=(16,),
        )
        restored = _roundtrip(DLRM(cfg, seed=0))
        assert restored.config == cfg


class TestMixedStrategyRoundtrip:
    """Per-bag kind tags: a model mixing every strategy round-trips."""

    def test_mixed_bags_bitwise(self, setup):
        from repro.embeddings.dense import DenseEmbeddingBag
        from repro.embeddings.eff_tt_embedding import EffTTEmbeddingBag
        from repro.embeddings.hash_embedding import HashEmbeddingBag
        from repro.embeddings.pq_embedding import PQEmbeddingBag
        from repro.embeddings.robe_embedding import RobeEmbeddingBag
        from repro.embeddings.tt_embedding import TTEmbeddingBag

        spec, log = setup
        cfg = DLRMConfig.from_dataset(
            spec, embedding_dim=8, backend=EmbeddingBackend.DENSE,
            bottom_mlp=(16,), top_mlp=(16,),
        )
        kinds = [
            DenseEmbeddingBag,
            TTEmbeddingBag,
            EffTTEmbeddingBag,
            HashEmbeddingBag,
            RobeEmbeddingBag,
            PQEmbeddingBag,
        ]
        bags = [
            kinds[t % len(kinds)](rows, cfg.embedding_dim, seed=200 + t)
            for t, rows in enumerate(cfg.table_rows)
        ]
        model = DLRM(cfg, seed=4, embedding_bags=bags)
        model.train_step(log.batch(0), lr=0.1)
        restored = _roundtrip(model)
        for orig, back in zip(
            model.embedding_bags, restored.embedding_bags
        ):
            assert type(back) is type(orig)
            for name, arr in orig.state_arrays().items():
                np.testing.assert_array_equal(
                    back.state_arrays()[name], arr
                )
        a = model.train_step(log.batch(1), lr=0.1).loss
        b = restored.train_step(log.batch(1), lr=0.1).loss
        assert a == b


def _saved_bytes(setup) -> bytes:
    spec, log = setup
    cfg = DLRMConfig.from_dataset(
        spec, embedding_dim=8, backend=EmbeddingBackend.EFF_TT, tt_rank=8,
        bottom_mlp=(16,), top_mlp=(16,),
    )
    model = DLRM(cfg, seed=9)
    model.train_step(log.batch(0), lr=0.1)
    buffer = io.BytesIO()
    save_checkpoint(model, buffer)
    return buffer.getvalue()


def _rewrite(data: bytes, mutate) -> io.BytesIO:
    """Unpack an archive, apply ``mutate(arrays)``, repack it.

    Repacking preserves whatever ``__crc__`` manifest the dict holds, so
    mutating an array *without* touching the manifest models in-archive
    tampering, and editing/dropping ``__crc__`` models manifest damage.
    """
    with np.load(io.BytesIO(data), allow_pickle=True) as archive:
        arrays = {name: archive[name] for name in archive.files}
    mutate(arrays)
    out = io.BytesIO()
    np.savez_compressed(out, **arrays)
    out.seek(0)
    return out


class TestCorruption:
    def test_flipped_byte_detected(self, setup):
        import struct
        import zipfile

        # Flip a byte in the middle of the largest member's *compressed
        # payload* (a flip in an unused local-header field would be
        # silently ignored by zip readers).
        data = bytearray(_saved_bytes(setup))
        with zipfile.ZipFile(io.BytesIO(bytes(data))) as archive:
            info = max(archive.infolist(), key=lambda i: i.compress_size)
        name_len, extra_len = struct.unpack_from(
            "<HH", data, info.header_offset + 26
        )
        payload_start = info.header_offset + 30 + name_len + extra_len
        data[payload_start + info.compress_size // 2] ^= 0xFF
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(io.BytesIO(bytes(data)))

    def test_truncated_archive_detected(self, setup):
        data = _saved_bytes(setup)
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(io.BytesIO(data[: len(data) // 3]))

    def test_tampered_array_fails_crc(self, setup):
        def bump_first_param(arrays):
            name = next(k for k in arrays if k.startswith("param/"))
            arrays[name] = arrays[name] + 1.0

        tampered = _rewrite(_saved_bytes(setup), bump_first_param)
        with pytest.raises(CheckpointCorruptError, match="CRC32"):
            load_checkpoint(tampered)

    def test_entry_missing_from_manifest(self, setup):
        import json

        def drop_manifest_entry(arrays):
            crc = json.loads(str(arrays["__crc__"][0]))
            crc.pop(next(k for k in crc if k.startswith("param/")))
            arrays["__crc__"] = np.array([json.dumps(crc)], dtype=object)

        tampered = _rewrite(_saved_bytes(setup), drop_manifest_entry)
        with pytest.raises(CheckpointCorruptError, match="absent"):
            load_checkpoint(tampered)

    def test_unreadable_manifest(self, setup):
        def garble(arrays):
            arrays["__crc__"] = np.array(["not json"], dtype=object)

        tampered = _rewrite(_saved_bytes(setup), garble)
        with pytest.raises(CheckpointCorruptError, match="manifest"):
            load_checkpoint(tampered)

    def test_legacy_archive_without_crc_loads(self, setup):
        import json

        spec, log = setup

        def to_v2(arrays):
            del arrays["__crc__"]
            arrays["__meta__"] = np.array(
                [json.dumps({"version": 2})], dtype=object
            )

        legacy = _rewrite(_saved_bytes(setup), to_v2)
        model = load_checkpoint(legacy)
        reference = load_checkpoint(io.BytesIO(_saved_bytes(setup)))
        batch = log.batch(3)
        np.testing.assert_array_equal(
            model.forward(batch), reference.forward(batch)
        )

    def test_missing_file_is_not_corruption(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(str(tmp_path / "absent.npz"))
