"""Tests for DLRM checkpointing."""

import io

import numpy as np
import pytest

from repro.data.dataloader import SyntheticClickLog
from repro.data.datasets import criteo_kaggle_like
from repro.embeddings.base import EmbeddingBagBase
from repro.models.config import DLRMConfig, EmbeddingBackend
from repro.models.dlrm import DLRM
from repro.models.serialization import load_checkpoint, save_checkpoint
from repro.system.parameter_server import HostBackedEmbeddingBag


@pytest.fixture(scope="module")
def setup():
    spec = criteo_kaggle_like(scale=2e-5)
    log = SyntheticClickLog(spec, batch_size=64, seed=0)
    return spec, log


def _roundtrip(model: DLRM) -> DLRM:
    buffer = io.BytesIO()
    save_checkpoint(model, buffer)
    buffer.seek(0)
    return load_checkpoint(buffer)


@pytest.mark.parametrize(
    "backend",
    [EmbeddingBackend.DENSE, EmbeddingBackend.TT, EmbeddingBackend.EFF_TT],
)
class TestRoundtrip:
    def test_parameters_identical(self, setup, backend):
        spec, log = setup
        cfg = DLRMConfig.from_dataset(
            spec, embedding_dim=8, backend=backend, tt_rank=8,
            bottom_mlp=(16,), top_mlp=(16,),
        )
        model = DLRM(cfg, seed=4)
        model.train_step(log.batch(0), lr=0.1)  # move off init
        restored = _roundtrip(model)
        for (n1, p1), (n2, p2) in zip(
            model.named_parameters(), restored.named_parameters()
        ):
            assert n1 == n2
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_predictions_identical(self, setup, backend):
        spec, log = setup
        cfg = DLRMConfig.from_dataset(
            spec, embedding_dim=8, backend=backend, tt_rank=8,
            bottom_mlp=(16,), top_mlp=(16,),
        )
        model = DLRM(cfg, seed=4)
        model.train_step(log.batch(0), lr=0.1)
        restored = _roundtrip(model)
        batch = log.batch(5)
        np.testing.assert_array_equal(
            model.forward(batch), restored.forward(batch)
        )

    def test_training_continues_identically(self, setup, backend):
        spec, log = setup
        cfg = DLRMConfig.from_dataset(
            spec, embedding_dim=8, backend=backend, tt_rank=8,
            bottom_mlp=(16,), top_mlp=(16,),
        )
        model = DLRM(cfg, seed=4)
        model.train_step(log.batch(0), lr=0.1)
        restored = _roundtrip(model)
        a = model.train_step(log.batch(1), lr=0.1).loss
        b = restored.train_step(log.batch(1), lr=0.1).loss
        assert a == b


class TestErrors:
    def test_host_backed_bag_rejected(self, setup):
        spec, _ = setup
        cfg = DLRMConfig.from_dataset(
            spec, embedding_dim=8, backend=EmbeddingBackend.DENSE,
            bottom_mlp=(16,), top_mlp=(16,),
        )
        bags: list = [
            HostBackedEmbeddingBag(rows, 8) for rows in cfg.table_rows
        ]
        model = DLRM(cfg, seed=0, embedding_bags=bags)
        with pytest.raises(TypeError, match="parameter-server"):
            save_checkpoint(model, io.BytesIO())

    def test_file_path_roundtrip(self, setup, tmp_path):
        spec, log = setup
        cfg = DLRMConfig.from_dataset(
            spec, embedding_dim=8, backend=EmbeddingBackend.EFF_TT,
            tt_rank=8, bottom_mlp=(16,), top_mlp=(16,),
        )
        model = DLRM(cfg, seed=1)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(model, str(path))
        restored = load_checkpoint(str(path))
        batch = log.batch(0)
        np.testing.assert_array_equal(
            model.forward(batch), restored.forward(batch)
        )

    def test_config_survives(self, setup):
        spec, _ = setup
        cfg = DLRMConfig.from_dataset(
            spec, embedding_dim=8, backend=EmbeddingBackend.TT, tt_rank=8,
            bottom_mlp=(16,), top_mlp=(16,),
        )
        restored = _roundtrip(DLRM(cfg, seed=0))
        assert restored.config == cfg
