"""Tests for DLRM configuration."""

import pytest

from repro.data.datasets import criteo_kaggle_like
from repro.models.config import DLRMConfig, EmbeddingBackend


class TestDLRMConfig:
    def test_derived_sizes(self):
        cfg = DLRMConfig(
            num_dense=13,
            table_rows=(100, 200),
            embedding_dim=16,
            bottom_mlp=(64, 32),
            top_mlp=(64,),
        )
        assert cfg.bottom_mlp_sizes == (13, 64, 32, 16)
        assert cfg.interaction_dim == 16 + 3 * 2 // 2
        assert cfg.top_mlp_sizes == (cfg.interaction_dim, 64, 1)
        assert cfg.num_tables == 2

    def test_backend_threshold(self):
        cfg = DLRMConfig(
            num_dense=1,
            table_rows=(100, 2_000_000),
            backend=EmbeddingBackend.EFF_TT,
            tt_threshold_rows=1_000_000,
        )
        assert cfg.backend_for_table(0) is EmbeddingBackend.DENSE
        assert cfg.backend_for_table(1) is EmbeddingBackend.EFF_TT

    def test_dense_backend_ignores_threshold(self):
        cfg = DLRMConfig(
            num_dense=1,
            table_rows=(2_000_000,),
            backend=EmbeddingBackend.DENSE,
            tt_threshold_rows=0,
        )
        assert cfg.backend_for_table(0) is EmbeddingBackend.DENSE

    def test_from_dataset(self):
        spec = criteo_kaggle_like(scale=1e-4)
        cfg = DLRMConfig.from_dataset(spec, embedding_dim=8)
        assert cfg.num_dense == 13
        assert cfg.num_tables == 26
        assert cfg.table_rows == tuple(t.num_rows for t in spec.tables)

    def test_validation(self):
        with pytest.raises(ValueError):
            DLRMConfig(num_dense=0, table_rows=(10,))
        with pytest.raises(ValueError):
            DLRMConfig(num_dense=1, table_rows=())
        with pytest.raises(ValueError):
            DLRMConfig(num_dense=1, table_rows=(0,))
        with pytest.raises(ValueError):
            DLRMConfig(num_dense=1, table_rows=(10,), embedding_dim=0)

    def test_backend_enum_values(self):
        assert EmbeddingBackend("dense") is EmbeddingBackend.DENSE
        assert EmbeddingBackend("eff_tt") is EmbeddingBackend.EFF_TT
        assert EmbeddingBackend("tt") is EmbeddingBackend.TT
