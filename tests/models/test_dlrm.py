"""Tests for the full DLRM model."""

import numpy as np
import pytest

from repro.data.dataloader import SyntheticClickLog
from repro.data.datasets import criteo_kaggle_like
from repro.models.config import DLRMConfig, EmbeddingBackend
from repro.models.dlrm import DLRM, build_embedding_bag, roc_auc
from repro.embeddings.dense import DenseEmbeddingBag
from repro.embeddings.eff_tt_embedding import EffTTEmbeddingBag
from repro.embeddings.tt_embedding import TTEmbeddingBag


@pytest.fixture(scope="module")
def small_setup():
    spec = criteo_kaggle_like(scale=3e-5)
    log = SyntheticClickLog(spec, batch_size=128, seed=0)
    cfg = DLRMConfig.from_dataset(
        spec, embedding_dim=8, tt_rank=8, bottom_mlp=(16,), top_mlp=(16,)
    )
    return spec, log, cfg


class TestBuildEmbeddingBag:
    def test_backends(self):
        assert isinstance(
            build_embedding_bag(EmbeddingBackend.DENSE, 10, 4, 2, seed=0),
            DenseEmbeddingBag,
        )
        assert isinstance(
            build_embedding_bag(EmbeddingBackend.TT, 100, 4, 2, seed=0),
            TTEmbeddingBag,
        )
        assert isinstance(
            build_embedding_bag(EmbeddingBackend.EFF_TT, 100, 4, 2, seed=0),
            EffTTEmbeddingBag,
        )


class TestForward:
    def test_logit_shape(self, small_setup):
        _, log, cfg = small_setup
        model = DLRM(cfg, seed=0)
        logits = model.forward(log.batch(0))
        assert logits.shape == (128,)

    def test_table_count_mismatch(self, small_setup):
        spec, log, cfg = small_setup
        bad_cfg = DLRMConfig(
            num_dense=13, table_rows=cfg.table_rows[:5], embedding_dim=8
        )
        model = DLRM(bad_cfg, seed=0)
        with pytest.raises(ValueError):
            model.forward(log.batch(0))

    def test_same_seed_reproducible(self, small_setup):
        _, log, cfg = small_setup
        a = DLRM(cfg, seed=9)
        b = DLRM(cfg, seed=9)
        np.testing.assert_array_equal(
            a.forward(log.batch(0)), b.forward(log.batch(0))
        )

    def test_injected_bags_validated(self, small_setup):
        _, _, cfg = small_setup
        with pytest.raises(ValueError):
            DLRM(cfg, embedding_bags=[DenseEmbeddingBag(10, 8)])
        bags = [
            DenseEmbeddingBag(rows, 4) for rows in cfg.table_rows
        ]  # wrong dim
        with pytest.raises(ValueError):
            DLRM(cfg, embedding_bags=bags)


class TestTraining:
    @pytest.mark.parametrize(
        "backend",
        [EmbeddingBackend.DENSE, EmbeddingBackend.TT, EmbeddingBackend.EFF_TT],
    )
    def test_loss_decreases(self, small_setup, backend):
        spec, log, _ = small_setup
        cfg = DLRMConfig.from_dataset(
            spec, embedding_dim=8, backend=backend, tt_rank=8,
            bottom_mlp=(16,), top_mlp=(16,),
        )
        model = DLRM(cfg, seed=1)
        first = model.train_step(log.batch(0), lr=0.1).loss
        for i in range(1, 40):
            last = model.train_step(log.batch(i % 8), lr=0.1).loss
        assert last < first

    def test_tt_and_eff_tt_train_identically(self, small_setup):
        spec, log, _ = small_setup
        losses = {}
        for backend in (EmbeddingBackend.TT, EmbeddingBackend.EFF_TT):
            cfg = DLRMConfig.from_dataset(
                spec, embedding_dim=8, backend=backend, tt_rank=8,
                bottom_mlp=(16,), top_mlp=(16,),
            )
            model = DLRM(cfg, seed=2)
            losses[backend] = [
                model.train_step(log.batch(i), lr=0.05).loss for i in range(6)
            ]
        np.testing.assert_allclose(
            losses[EmbeddingBackend.TT],
            losses[EmbeddingBackend.EFF_TT],
            rtol=1e-8,
        )

    def test_evaluate_keys(self, small_setup):
        _, log, cfg = small_setup
        model = DLRM(cfg, seed=0)
        metrics = model.evaluate([log.batch(100), log.batch(101)])
        assert set(metrics) == {"loss", "accuracy", "auc"}
        assert 0.0 <= metrics["accuracy"] <= 1.0
        assert 0.0 <= metrics["auc"] <= 1.0

    def test_predict_proba_range(self, small_setup):
        _, log, cfg = small_setup
        model = DLRM(cfg, seed=0)
        probs = model.predict_proba(log.batch(0))
        assert probs.min() > 0.0 and probs.max() < 1.0

    def test_footprint_accessors(self, small_setup):
        _, _, cfg = small_setup
        model = DLRM(cfg, seed=0)
        assert model.embedding_nbytes() > 0
        assert model.mlp_nbytes() > 0


class TestRocAuc:
    def test_perfect(self):
        assert roc_auc(np.array([0, 0, 1, 1]), np.array([0.1, 0.2, 0.8, 0.9])) == 1.0

    def test_inverted(self):
        assert roc_auc(np.array([0, 0, 1, 1]), np.array([0.9, 0.8, 0.2, 0.1])) == 0.0

    def test_random_is_half(self, rng):
        labels = rng.integers(0, 2, size=5000).astype(float)
        scores = rng.random(5000)
        assert roc_auc(labels, scores) == pytest.approx(0.5, abs=0.05)

    def test_ties_averaged(self):
        # all scores equal -> AUC 0.5 by the tie-average convention
        assert roc_auc(np.array([0, 1, 0, 1]), np.zeros(4)) == pytest.approx(0.5)

    def test_single_class(self):
        assert roc_auc(np.ones(4), np.arange(4.0)) == 0.5

    def test_matches_sklearn_formula(self, rng):
        # cross-check against a direct pairwise computation
        labels = rng.integers(0, 2, size=60).astype(float)
        if labels.sum() in (0, 60):
            labels[0] = 1 - labels[0]
        scores = rng.random(60)
        pos = scores[labels == 1]
        neg = scores[labels == 0]
        pairwise = np.mean(
            (pos[:, None] > neg[None, :]) + 0.5 * (pos[:, None] == neg[None, :])
        )
        assert roc_auc(labels, scores) == pytest.approx(float(pairwise))
