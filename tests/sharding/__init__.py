"""Tests for the sharded parameter-server tier (repro.sharding)."""
