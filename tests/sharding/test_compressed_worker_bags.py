"""Sharded PS training with hash/ROBE/PQ worker-resident bags.

The placement tier can now keep a table on-device under any
compression strategy (``StatsDrivenStrategy(compress_strategy=...)``),
so the 2-shard trainer must (a) actually build those bags, (b) train
deterministically, and (c) round-trip bitwise through the resilience
capture/restore path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataloader import SyntheticClickLog
from repro.data.datasets import criteo_kaggle_like
from repro.embeddings.hash_embedding import HashEmbeddingBag
from repro.embeddings.pq_embedding import PQEmbeddingBag
from repro.embeddings.robe_embedding import RobeEmbeddingBag
from repro.models.config import DLRMConfig, EmbeddingBackend
from repro.resilience.checkpoint import (
    capture_trainer_arrays,
    restore_trainer_arrays,
)
from repro.sharding import build_sharded_ps_trainer
from repro.sharding.placement import PlacementKind, StatsDrivenStrategy

_NUM_BATCHES = 4

_BAG_TYPES = {
    "hash": (PlacementKind.HASH_DEVICE, HashEmbeddingBag),
    "robe": (PlacementKind.ROBE_DEVICE, RobeEmbeddingBag),
    "pq": (PlacementKind.PQ_DEVICE, PQEmbeddingBag),
}


@pytest.fixture(scope="module")
def workload():
    spec = criteo_kaggle_like(scale=2e-5)
    log = SyntheticClickLog(spec, batch_size=32, seed=0)
    cfg = DLRMConfig.from_dataset(
        spec, embedding_dim=8, backend=EmbeddingBackend.EFF_TT, tt_rank=8,
        tt_threshold_rows=100, bottom_mlp=(16,), top_mlp=(16,),
    )
    return log, cfg


def _build(workload, strategy_name):
    log, cfg = workload
    # Budget/threshold sized so the larger tables cannot stay dense
    # (5% of 40 kB < their dense bytes) but the compressed form fits
    # (10% of 40 kB), making the strategy's kind appear in the plan.
    return build_sharded_ps_trainer(
        cfg,
        num_shards=2,
        strategy=StatsDrivenStrategy(
            compress_strategy=strategy_name, tt_threshold_rows=100
        ),
        device_budget_bytes=40_000,
    )


@pytest.mark.parametrize("strategy_name", sorted(_BAG_TYPES))
class TestCompressedWorkerBags:
    def test_plan_places_compressed_kind(self, workload, strategy_name):
        kind, bag_type = _BAG_TYPES[strategy_name]
        setup = _build(workload, strategy_name)
        placed = [
            t
            for t in range(setup.model.config.num_tables)
            if setup.plan.kind_of(t) == kind
        ]
        assert placed, f"budget never produced a {kind.value} table"
        for t in placed:
            assert isinstance(setup.model.embedding_bags[t], bag_type)

    def test_training_is_deterministic(self, workload, strategy_name):
        log, _ = workload
        a = _build(workload, strategy_name)
        b = _build(workload, strategy_name)
        la = [float(x) for x in a.trainer.train(log, _NUM_BATCHES).losses]
        lb = [float(x) for x in b.trainer.train(log, _NUM_BATCHES).losses]
        assert la == lb

    def test_capture_restore_roundtrip_bitwise(self, workload, strategy_name):
        log, _ = workload
        trained = _build(workload, strategy_name)
        trained.trainer.train(log, _NUM_BATCHES)
        arrays = capture_trainer_arrays(trained.trainer)

        fresh = _build(workload, strategy_name)
        restore_trainer_arrays(fresh.trainer, arrays)
        recaptured = capture_trainer_arrays(fresh.trainer)
        assert sorted(recaptured) == sorted(arrays)
        for name, arr in arrays.items():
            np.testing.assert_array_equal(arr, recaptured[name])

    def test_restored_trainer_continues_identically(
        self, workload, strategy_name
    ):
        log, _ = workload
        reference = _build(workload, strategy_name)
        losses = [
            float(x)
            for x in reference.trainer.train(log, 2 * _NUM_BATCHES).losses
        ]

        half = _build(workload, strategy_name)
        half.trainer.train(log, _NUM_BATCHES)
        arrays = capture_trainer_arrays(half.trainer)
        resumed = _build(workload, strategy_name)
        restore_trainer_arrays(resumed.trainer, arrays)
        tail = [
            float(x)
            for x in resumed.trainer.train(
                log, _NUM_BATCHES, start=_NUM_BATCHES
            ).losses
        ]
        assert tail == losses[_NUM_BATCHES:]
