"""Link compression: error-feedback invariants and quantization bounds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sharding import (
    COMPRESSION_MODES,
    LinkCompressionConfig,
    PullQuantizer,
    TopKErrorFeedback,
)
from repro.sharding.compression import build_pull_quantizer, build_push_compressor

_ROWS = [50, 30]
_DIM = 4


def _grads(rng, n):
    return rng.standard_normal((n, _DIM))


def test_config_modes_and_validation():
    assert LinkCompressionConfig().bitwise
    cfg = LinkCompressionConfig(mode="both", topk_fraction=0.25)
    assert cfg.push_topk and cfg.pull_quant and not cfg.bitwise
    assert set(COMPRESSION_MODES) == {"none", "topk", "quant", "both"}
    with pytest.raises(ValueError):
        LinkCompressionConfig(mode="zip")
    with pytest.raises(ValueError):
        LinkCompressionConfig(mode="topk", topk_fraction=0.0)
    with pytest.raises(ValueError):
        LinkCompressionConfig(mode="topk", topk_fraction=1.5)


def test_factories_gate_on_mode():
    off = LinkCompressionConfig()
    on = LinkCompressionConfig(mode="both")
    assert build_push_compressor(off, _ROWS, _DIM) is None
    assert build_pull_quantizer(off, _DIM) is None
    assert build_push_compressor(on, _ROWS, _DIM) is not None
    assert build_pull_quantizer(on, _DIM) is not None


def test_error_feedback_conserves_gradient_mass():
    """sent + residual_after == residual_before + grads, exactly.

    The EF invariant: nothing is lost, only delayed.  Holds bitwise
    because dropped rows are *moved* into the residual, not recomputed.
    """
    ef = TopKErrorFeedback(_ROWS, _DIM, fraction=0.3)
    rng = np.random.default_rng(0)
    for step in range(5):
        uidx = np.unique(rng.integers(0, _ROWS[0], size=20))
        grads = _grads(rng, uidx.size)
        before = ef.residuals[0].copy()
        sent = np.zeros_like(before)
        push = ef.compress(0, uidx, grads)
        sent[push.unique_indices] = push.row_grads
        after = ef.residuals[0]
        total = before.copy()
        total[uidx] += grads
        assert np.array_equal(sent + after, total)
        # Sent rows leave no residual behind.
        assert np.all(after[push.unique_indices] == 0.0)


def test_topk_selection_is_deterministic_and_sorted():
    ef1 = TopKErrorFeedback(_ROWS, _DIM, fraction=0.25)
    ef2 = TopKErrorFeedback(_ROWS, _DIM, fraction=0.25)
    rng = np.random.default_rng(1)
    uidx = np.unique(rng.integers(0, _ROWS[1], size=16))
    grads = _grads(rng, uidx.size)
    p1 = ef1.compress(1, uidx, grads)
    p2 = ef2.compress(1, uidx, grads)
    assert np.array_equal(p1.unique_indices, p2.unique_indices)
    assert np.array_equal(p1.row_grads, p2.row_grads)
    # Kept indices come back ascending (the PS apply contract).
    assert np.all(np.diff(p1.unique_indices) > 0)
    # ceil(fraction * n), at least one row.
    expected = max(1, int(np.ceil(0.25 * uidx.size)))
    assert p1.unique_indices.size == expected


def test_topk_keeps_largest_rows():
    ef = TopKErrorFeedback([10], _DIM, fraction=0.2)
    grads = np.ones((5, _DIM))
    grads[3] = 100.0  # dominant row
    push = ef.compress(0, np.arange(5), grads)
    assert push.unique_indices.size == 1
    assert push.unique_indices[0] == 3


def test_push_wire_byte_accounting():
    ef = TopKErrorFeedback([100], _DIM, fraction=0.5)
    uidx = np.arange(10)
    push = ef.compress(0, uidx, np.ones((10, _DIM)))
    row_bytes = _DIM * 8 + 8  # payload + row id
    assert push.raw_bytes == 10 * row_bytes
    assert push.wire_bytes == push.unique_indices.size * row_bytes
    assert push.wire_bytes < push.raw_bytes


def test_ef_state_roundtrip_and_validation():
    ef = TopKErrorFeedback(_ROWS, _DIM, fraction=0.3)
    rng = np.random.default_rng(2)
    uidx = np.unique(rng.integers(0, _ROWS[0], size=12))
    ef.compress(0, uidx, _grads(rng, uidx.size))
    state = ef.state_arrays()
    assert set(state) == {"ef0", "ef1"}

    fresh = TopKErrorFeedback(_ROWS, _DIM, fraction=0.3)
    fresh.load_state_arrays({k: np.array(v, copy=True) for k, v in state.items()})
    for k in state:
        assert np.array_equal(fresh.state_arrays()[k], state[k])
    with pytest.raises(KeyError):
        fresh.load_state_arrays({"ef0": state["ef0"]})
    with pytest.raises(ValueError):
        fresh.load_state_arrays(
            {"ef0": state["ef0"], "ef1": np.zeros((1, 1))}
        )


def test_pull_quantizer_error_bound():
    """int8 symmetric rounding: per-element error <= scale / 2."""
    quant = PullQuantizer(_DIM)
    rng = np.random.default_rng(3)
    rows = rng.standard_normal((32, _DIM))
    out, raw, wire = quant.apply(rows)
    scale = np.abs(rows).max(axis=1, keepdims=True) / 127.0
    assert np.all(np.abs(out - rows) <= scale / 2 + 1e-12)
    assert out.dtype == np.float64
    assert raw == 32 * _DIM * 8
    assert wire == 32 * (_DIM * 1 + 8)
    assert wire < raw


def test_pull_quantizer_zero_rows_pass_through():
    quant = PullQuantizer(_DIM)
    rows = np.zeros((3, _DIM))
    out, _, _ = quant.apply(rows)
    assert np.array_equal(out, rows)
