"""ShardedParameterServer: bitwise equivalence to the host server."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sharding import LinkCompressionConfig, ShardedParameterServer
from repro.system.parameter_server import HostParameterServer

_ROWS = [97, 40]
_DIM = 4
_SEED = 3


def _servers(num_shards, compression=None):
    host = HostParameterServer(_ROWS, _DIM, lr=0.05, seed=_SEED)
    sharded = ShardedParameterServer(
        _ROWS, _DIM, lr=0.05, num_shards=num_shards, seed=_SEED,
        compression=compression,
    )
    return host, sharded


@pytest.mark.parametrize("num_shards", [1, 2, 8])
def test_init_matches_host_server_bitwise(num_shards):
    host, sharded = _servers(num_shards)
    for t in range(len(_ROWS)):
        assert np.array_equal(np.asarray(sharded.tables[t]), host.tables[t])


@pytest.mark.parametrize("num_shards", [1, 2, 8])
def test_gather_apply_cycle_matches_host_bitwise(num_shards):
    host, sharded = _servers(num_shards)
    rng = np.random.default_rng(0)
    for step in range(4):
        for t, rows in enumerate(_ROWS):
            idx = rng.integers(0, rows, size=16)
            a = host.gather(t, idx)
            b = sharded.gather(t, idx)
            assert np.array_equal(a.unique_indices, b.unique_indices)
            assert np.array_equal(a.rows, b.rows)
            grads = rng.standard_normal((a.unique_indices.size, _DIM))
            host.apply_gradients(t, a.unique_indices, grads)
            sharded.apply_gradients(t, b.unique_indices, grads)
    for t in range(len(_ROWS)):
        assert np.array_equal(np.asarray(sharded.tables[t]), host.tables[t])


def test_table_view_global_indexing():
    _, sharded = _servers(3)
    full = np.asarray(sharded.tables[0])
    view = sharded.tables[0]
    assert view.shape == (_ROWS[0], _DIM)
    assert len(view) == _ROWS[0]
    assert view.nbytes == full.nbytes
    idx = np.array([0, 5, 96, 5])
    assert np.array_equal(view[idx], full[idx])
    assert np.array_equal(view[7], full[7])
    assert len(list(sharded.tables)) == len(_ROWS)


def test_exactly_once_accounting():
    _, sharded = _servers(2)
    # Rows 0 and 2 both live on shard 0; shard 1 receives nothing.
    sharded.apply_gradients(0, np.array([0, 2]), np.ones((2, _DIM)))
    assert sharded.update_count == 1
    assert sharded.shard_apply_counts.tolist() == [1, 0]
    sharded.apply_gradients(0, np.array([1, 2]), np.ones((2, _DIM)))
    assert sharded.update_count == 2
    assert sharded.shard_apply_counts.tolist() == [2, 1]


def test_link_stats_meter_uncompressed_traffic():
    _, sharded = _servers(2)
    sharded.gather(0, np.array([0, 1, 2, 3]))
    stats = sharded.link_stats
    row_bytes = _DIM * 8 + 8  # payload + row id
    assert stats.pull_raw.sum() == 4 * row_bytes
    assert np.array_equal(stats.pull_raw, stats.pull_wire)
    sharded.apply_gradients(0, np.arange(4), np.ones((4, _DIM)))
    assert stats.push_raw.sum() == 4 * row_bytes
    assert stats.compression_ratio == 1.0
    summary = stats.summary()
    assert summary["pull_raw_bytes"] == 4 * row_bytes


def test_compression_meters_wire_savings_and_bounded_error():
    host, sharded = _servers(
        2, compression=LinkCompressionConfig(mode="both", topk_fraction=0.5)
    )
    rng = np.random.default_rng(1)
    # First gather happens before any apply, so the only divergence
    # from the host server is int8 rounding: <= scale/2 per element.
    idx = rng.integers(0, _ROWS[0], size=16)
    a = host.gather(0, idx)
    b = sharded.gather(0, idx)
    scale = np.abs(a.rows).max(axis=1, keepdims=True) / 127.0
    assert np.all(np.abs(a.rows - b.rows) <= scale / 2 + 1e-12)
    # Keep training: top-k drops gradient mass into the residual, so
    # tables drift — but only within the banked-gradient envelope.
    grads = rng.standard_normal((a.unique_indices.size, _DIM))
    host.apply_gradients(0, a.unique_indices, grads)
    sharded.apply_gradients(0, b.unique_indices, grads)
    for _ in range(2):
        idx = rng.integers(0, _ROWS[0], size=16)
        a = host.gather(0, idx)
        b = sharded.gather(0, idx)
        grads = rng.standard_normal((a.unique_indices.size, _DIM))
        host.apply_gradients(0, a.unique_indices, grads)
        sharded.apply_gradients(0, b.unique_indices, grads)
    stats = sharded.link_stats
    assert stats.total_wire < stats.total_raw
    assert stats.compression_ratio > 1.0
    assert np.allclose(np.asarray(sharded.tables[0]), host.tables[0], atol=0.5)


def test_state_roundtrip_including_ef_residuals():
    cfg = LinkCompressionConfig(mode="topk", topk_fraction=0.3)
    _, src = _servers(2, compression=cfg)
    rng = np.random.default_rng(2)
    for _ in range(3):
        idx = rng.integers(0, _ROWS[0], size=12)
        got = src.gather(0, idx)
        src.apply_gradients(
            0, got.unique_indices,
            rng.standard_normal((got.unique_indices.size, _DIM)),
        )
    state = {k: np.array(v, copy=True) for k, v in src.state_arrays().items()}
    assert "table0/shard0" in state and "ef0" in state

    _, dst = _servers(2, compression=cfg)
    dst.load_state_arrays(state)
    for k, v in dst.state_arrays().items():
        assert np.array_equal(v, state[k])


def test_load_state_arrays_validates_before_writing():
    _, sharded = _servers(2)
    state = {k: np.array(v, copy=True) for k, v in sharded.state_arrays().items()}
    before = np.asarray(sharded.tables[0])
    with pytest.raises(KeyError):
        sharded.load_state_arrays({"table0/shard0": state["table0/shard0"]})
    bad = dict(state)
    bad["table1/shard1"] = np.zeros((1, 1))
    with pytest.raises(ValueError):
        sharded.load_state_arrays(bad)
    # Failed loads leave the server untouched.
    assert np.array_equal(np.asarray(sharded.tables[0]), before)


def test_gather_validates_indices():
    _, sharded = _servers(2)
    with pytest.raises(ValueError):
        sharded.gather(0, np.array([_ROWS[0]]))
    with pytest.raises(ValueError):
        ShardedParameterServer(_ROWS, _DIM, lr=0.0, num_shards=2)


def test_nbytes_matches_host():
    host, sharded = _servers(4)
    assert sharded.nbytes() == host.nbytes()
    assert sharded.num_tables == host.num_tables
