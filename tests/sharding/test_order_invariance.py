"""Insertion-order invariance regressions for the detcheck self-fixes.

Each test permutes an input ordering that *used* to leak into an
artifact — placement plans, measured table statistics, checkpoint
payload bytes, framework time totals — and asserts the artifact is
bitwise identical regardless.  These pin the canonicalization fixes
(sorted iteration, ``np.bincount``, ``math.fsum``) that make detcheck's
DET002/DET003 rules pass on the shipped tree.
"""

import hashlib
import random

import numpy as np

from repro.frameworks.base import TimeBreakdown
from repro.models.config import DLRMConfig
from repro.models.dlrm import DLRM
from repro.models.serialization import save_checkpoint
from repro.reorder.stats import TableStats, measure_table_stats
from repro.resilience.checkpoint import CheckpointStore
from repro.sharding.placement import StatsDrivenStrategy

_BUDGET = 1 << 20  # 1 MiB device budget: forces a mix of placements


def _stats_pool():
    rows = [64, 512, 4096, 50_000, 200_000, 1_000_000]
    alphas = [0.0, 0.4, 0.8, 1.05, 1.2, 0.6]
    return [
        TableStats.from_spec(t, n, a)
        for t, (n, a) in enumerate(zip(rows, alphas))
    ]


def test_placement_plan_insertion_order_invariant():
    stats = _stats_pool()
    strategy = StatsDrivenStrategy()
    baseline = strategy.plan(
        stats, num_devices=4, device_budget_bytes=_BUDGET, embedding_dim=16
    )
    by_table = {d.table_idx: d for d in baseline.decisions}

    rng = random.Random(13)
    for _ in range(5):
        shuffled = list(stats)
        rng.shuffle(shuffled)
        plan = strategy.plan(
            shuffled,
            num_devices=4,
            device_budget_bytes=_BUDGET,
            embedding_dim=16,
        )
        # Decisions are per-table pure functions of the stats: the
        # same table gets the same frozen decision from any ordering.
        assert {d.table_idx: d for d in plan.decisions} == by_table
        assert plan.per_device_bytes == baseline.per_device_bytes
        assert plan.host_bytes == baseline.host_bytes
        assert plan.feasible == baseline.feasible


def test_measured_table_stats_stream_order_invariant():
    rng = np.random.default_rng(7)
    num_rows = 1000
    stream = rng.zipf(1.3, size=5000) % num_rows
    baseline = measure_table_stats(stream, num_rows, table_idx=3)

    for seed in range(4):
        perm = np.random.default_rng(seed).permutation(stream.size)
        permuted = measure_table_stats(stream[perm], num_rows, table_idx=3)
        # Frozen-dataclass equality compares every float field exactly:
        # the histogram path (np.bincount) ignores stream order.
        assert permuted == baseline


def _arrays_fixture():
    rng = np.random.default_rng(11)
    return {
        f"bag{t}/weight": rng.standard_normal((8, 4))
        for t in range(5)
    } | {"mlp/top0": rng.standard_normal((4, 4)), "step": np.array([17])}


def test_checkpoint_payload_bytes_insertion_order_invariant(tmp_path):
    arrays = _arrays_fixture()
    names = list(arrays)

    digests = set()
    for seed in range(3):
        order = list(names)
        random.Random(seed).shuffle(order)
        store = CheckpointStore(str(tmp_path / f"store{seed}"), keep_last=2)
        assert store.save(42, {name: arrays[name] for name in order})
        blob = (tmp_path / f"store{seed}" / "ckpt-00000042.npz").read_bytes()
        digests.add(hashlib.sha256(blob).hexdigest())
    assert len(digests) == 1, "payload bytes leaked dict insertion order"


def test_model_checkpoint_bytes_stable(tmp_path):
    cfg = DLRMConfig(
        num_dense=4,
        table_rows=(64, 128),
        embedding_dim=8,
        bottom_mlp=(8,),
        top_mlp=(8,),
    )
    paths = []
    for i in range(2):
        model = DLRM(cfg, seed=5)
        path = tmp_path / f"model{i}.npz"
        save_checkpoint(model, str(path))
        paths.append(path.read_bytes())
    assert paths[0] == paths[1]


def test_time_breakdown_total_insertion_order_invariant():
    # Naive left-to-right float addition gives 0.0 or 1.0 for these
    # components depending on insertion order; math.fsum gives the
    # correctly rounded 2.0 from every order.
    parts = {"fwd": 1.0, "spike": 1e100, "bwd": 1.0, "dip": -1e100}
    totals = set()
    for seed in range(6):
        order = list(parts)
        random.Random(seed).shuffle(order)
        tb = TimeBreakdown(
            framework="el-rec",
            device="v100",
            num_gpus=1,
            components={k: parts[k] for k in order},
        )
        totals.add(tb.total)
    assert totals == {2.0}
