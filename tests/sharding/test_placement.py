"""Placement planning: decision rules, N-invariance, feasibility."""

from __future__ import annotations

import pytest

from repro.frameworks.base import WorkloadProfile
from repro.frameworks.hugectr import HugeCTR
from repro.reorder import TableStats
from repro.sharding import (
    PlacementKind,
    PlacementStrategy,
    RowShardedStrategy,
    StatsDrivenStrategy,
    server_resident,
    tt_core_bytes,
)
from repro.system.devices import TESLA_V100, KernelCostModel

GB = int(1e9)


def _stats(num_rows, alpha=1.05, hot_mass=None):
    if hot_mass is None:
        return TableStats.from_spec(0, num_rows, alpha)
    return TableStats(
        table_idx=0, num_rows=num_rows, zipf_alpha=alpha,
        hot_fraction=0.1, hot_mass=hot_mass,
    )


def test_strategies_satisfy_protocol():
    assert isinstance(StatsDrivenStrategy(), PlacementStrategy)
    assert isinstance(RowShardedStrategy(), PlacementStrategy)


def test_small_table_stays_dense_on_device():
    plan = StatsDrivenStrategy().plan(
        [_stats(1000)], num_devices=4, device_budget_bytes=GB,
        embedding_dim=64,
    )
    assert plan.kind_of(0) is PlacementKind.DENSE_DEVICE
    assert plan.feasible


def test_large_compressible_table_goes_tt():
    plan = StatsDrivenStrategy().plan(
        [_stats(40_000_000)], num_devices=4,
        device_budget_bytes=12 * GB, embedding_dim=128, dtype_bytes=4,
    )
    assert plan.kind_of(0) is PlacementKind.TT_DEVICE
    decision = plan.decisions[0]
    assert decision.device_bytes == tt_core_bytes(40_000_000, 128, 8, 4)
    assert decision.device_bytes < 40_000_000 * 128 * 4 // 1000


def test_skewed_table_splits_hot_cold():
    # Dense (25.6 MB) misses the 5 MB dense slice, TT is disabled, but
    # the 2.56 MB hot set fits — skew buys the table a device cache.
    strategy = StatsDrivenStrategy(
        dense_fraction=0.05, tt_fraction=1e-9, shard_fraction=0.5
    )
    budget = 100_000_000
    stats = _stats(200_000, hot_mass=0.9)
    plan = strategy.plan(
        [stats], num_devices=2, device_budget_bytes=budget, embedding_dim=16
    )
    decision = plan.decisions[0]
    assert decision.kind is PlacementKind.HOT_COLD
    assert decision.device_bytes == stats.hot_rows * 16 * 8
    assert decision.server_bytes == (200_000 - stats.hot_rows) * 16 * 8
    assert server_resident(decision.kind)


def test_unskewed_overflow_row_shards_then_hosts():
    strategy = StatsDrivenStrategy(
        dense_fraction=0.01, tt_fraction=1e-9, shard_fraction=0.5
    )
    stats = _stats(1_000_000, alpha=0.0, hot_mass=0.1)
    small = strategy.plan(
        [stats], num_devices=8, device_budget_bytes=200_000_000,
        embedding_dim=64,
    )
    assert small.kind_of(0) is PlacementKind.ROW_SHARDED
    tiny = strategy.plan(
        [stats], num_devices=1, device_budget_bytes=2_000_000,
        embedding_dim=64,
    )
    assert tiny.kind_of(0) is PlacementKind.HOST
    # Both sides of the N-dependent boundary are server-resident.
    assert server_resident(small.kind_of(0))
    assert server_resident(tiny.kind_of(0))


@pytest.mark.parametrize("num_devices", [1, 2, 8, 64])
def test_worker_vs_server_split_is_n_invariant(num_devices):
    """The device/server side of every decision never moves with N —
    the property behind bitwise-equal training across shard counts."""
    stats = [
        TableStats.from_spec(t, rows, 1.05)
        for t, rows in enumerate([100, 5_000, 200_000, 3_000_000])
    ]
    plan = StatsDrivenStrategy().plan(
        stats, num_devices=num_devices,
        device_budget_bytes=50_000_000, embedding_dim=16,
    )
    reference = StatsDrivenStrategy().plan(
        stats, num_devices=1,
        device_budget_bytes=50_000_000, embedding_dim=16,
    )
    assert plan.server_table_positions() == reference.server_table_positions()


def test_row_sharded_strategy_feasibility_boundary():
    stats = [_stats(40_000_000)]
    strategy = RowShardedStrategy()
    one = strategy.plan(
        stats, num_devices=1,
        device_budget_bytes=int(TESLA_V100.hbm_bytes * 0.8),
        embedding_dim=128, dtype_bytes=4,
    )
    assert not one.feasible
    assert one.infeasible_reason is not None
    four = strategy.plan(
        stats, num_devices=4,
        device_budget_bytes=int(TESLA_V100.hbm_bytes * 0.8),
        embedding_dim=128, dtype_bytes=4,
    )
    assert four.feasible
    assert four.per_device_bytes == 10_000_000 * 128 * 4


def test_format_table_mentions_feasibility():
    plan = RowShardedStrategy().plan(
        [_stats(1000)], num_devices=2, device_budget_bytes=GB,
        embedding_dim=8,
    )
    text = plan.format_table()
    assert "row_sharded" in text
    assert "feasible" in text


def test_hugectr_uses_row_sharded_strategy():
    """The framework model delegates feasibility to the shared
    placement strategy (same decisions the functional tier executes)."""
    cost = KernelCostModel()
    fw = HugeCTR(cost)
    assert isinstance(fw.placement, RowShardedStrategy)
    profile = WorkloadProfile(
        name="big", batch_size=2048, embedding_dim=128,
        table_rows=(40_000_000,), indices_per_batch=2048,
        host_mlp_time=1e-3, host_dense_emb_time=1e-3,
        host_tt_fwd_time=1e-3, host_tt_bwd_time=1e-3,
        host_efftt_fwd_time=1e-3, host_efftt_bwd_time=1e-3,
        dtype_bytes=4,
    )
    plan1 = fw.placement_plan(profile, TESLA_V100, num_gpus=1)
    plan4 = fw.placement_plan(profile, TESLA_V100, num_gpus=4)
    assert not plan1.feasible and plan4.feasible
    assert not fw.iteration_time(profile, TESLA_V100, num_gpus=1).feasible
    assert fw.iteration_time(profile, TESLA_V100, num_gpus=4).feasible
