"""End-to-end sharded training: bitwise equivalence + kill-and-recover."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataloader import SyntheticClickLog
from repro.data.datasets import criteo_kaggle_like
from repro.models.config import DLRMConfig, EmbeddingBackend
from repro.resilience.chaos import (
    FAULT_PLANS,
    ChaosHarnessConfig,
    _build_harness,
    resume_determinism_check,
    run_chaos,
)
from repro.sharding import LinkCompressionConfig, build_sharded_ps_trainer

_NUM_BATCHES = 10


@pytest.fixture(scope="module")
def workload():
    spec = criteo_kaggle_like(scale=2e-5)
    log = SyntheticClickLog(spec, batch_size=32, seed=0)
    cfg = DLRMConfig.from_dataset(
        spec, embedding_dim=8, backend=EmbeddingBackend.EFF_TT, tt_rank=8,
        tt_threshold_rows=100, bottom_mlp=(16,), top_mlp=(16,),
    )
    rows = list(cfg.table_rows)
    positions = sorted(sorted(range(len(rows)), key=lambda t: -rows[t])[:2])
    return log, cfg, positions


@pytest.fixture(scope="module")
def host_baseline(workload):
    """Legacy HostParameterServer trajectory on the same harness."""
    log, _, _ = workload
    _, _, factory = _build_harness(ChaosHarnessConfig())
    trainer = factory(None)
    losses = [float(x) for x in trainer.train(log, _NUM_BATCHES).losses]
    return trainer, losses


def _run_sharded(workload, num_shards, compression=None):
    log, cfg, positions = workload
    setup = build_sharded_ps_trainer(
        cfg,
        num_shards=num_shards,
        compression=compression,
        host_positions=positions,
    )
    losses = [float(x) for x in setup.trainer.train(log, _NUM_BATCHES).losses]
    return setup, losses


@pytest.mark.parametrize("num_shards", [1, 2, 8])
def test_sharded_training_bitwise_matches_host_baseline(
    workload, host_baseline, num_shards
):
    """The acceptance criterion: N-shard run == 1-table run, bitwise."""
    baseline_trainer, baseline_losses = host_baseline
    setup, losses = _run_sharded(workload, num_shards)
    assert losses == baseline_losses
    host_state = baseline_trainer.server.state_arrays()
    for t in range(setup.server.num_tables):
        assert np.array_equal(
            np.asarray(setup.server.tables[t]), host_state[f"table{t}"]
        )
    # Exactly-once: one logical update per (table, batch).
    assert setup.server.update_count == baseline_trainer.server.update_count
    assert setup.server.shard_apply_counts.sum() > 0


def test_compressed_training_stays_within_documented_bound(
    workload, host_baseline
):
    _, baseline_losses = host_baseline
    setup, losses = _run_sharded(
        workload, 2,
        compression=LinkCompressionConfig(mode="both", topk_fraction=0.25),
    )
    drift = abs(losses[-1] - baseline_losses[-1]) / abs(baseline_losses[-1])
    assert drift < 5e-2  # the quickcheck gate's bound (DESIGN.md §11)
    # And the links actually got cheaper.
    assert setup.server.link_stats.compression_ratio > 1.0


def test_chaos_kill_and_recover_on_sharded_run(tmp_path):
    """`repro chaos` smoke plan green with the PS tier sharded 2-way."""
    outcome = run_chaos(
        FAULT_PLANS["smoke"], str(tmp_path),
        config=ChaosHarnessConfig(num_shards=2),
    )
    assert outcome.passed, outcome.format()
    assert outcome.recovery is not None and outcome.recovery.restarts > 0


def test_resume_determinism_with_sharded_server(tmp_path):
    assert resume_determinism_check(
        str(tmp_path),
        config=ChaosHarnessConfig(
            num_batches=10, checkpoint_interval=4, num_shards=2
        ),
    )
