"""Mod-N row routing: layout, inverses, and order preservation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sharding import ShardPartitioner


@pytest.mark.parametrize("num_shards", [1, 2, 3, 8])
@pytest.mark.parametrize("num_rows", [0, 1, 7, 64, 1001])
def test_shard_rows_partition_the_table(num_shards, num_rows):
    part = ShardPartitioner(num_shards)
    per_shard = [part.shard_rows(num_rows, s) for s in range(num_shards)]
    assert sum(per_shard) == num_rows
    table = np.arange(num_rows * 2, dtype=np.float64).reshape(num_rows, 2)
    blocks = part.split_table(table)
    assert [b.shape[0] for b in blocks] == per_shard


def test_split_table_block_layout():
    part = ShardPartitioner(3)
    table = np.arange(14, dtype=np.float64).reshape(7, 2)
    blocks = part.split_table(table)
    for s, block in enumerate(blocks):
        for local in range(block.shape[0]):
            assert np.array_equal(block[local], table[local * 3 + s])


def test_route_and_to_global_are_inverse():
    part = ShardPartitioner(4)
    rng = np.random.default_rng(0)
    idx = rng.integers(0, 1000, size=256)
    shard_ids, local = part.route(idx)
    assert np.all((0 <= shard_ids) & (shard_ids < 4))
    for s in range(4):
        mask = shard_ids == s
        back = part.to_global(s, local[mask])
        assert np.array_equal(back, idx[mask])


def test_route_preserves_sorted_order_within_shard():
    """Sorted globals restricted to one shard have sorted locals —
    the property that makes per-shard gathers reassemble bitwise."""
    part = ShardPartitioner(5)
    unique = np.unique(np.random.default_rng(1).integers(0, 500, size=300))
    shard_ids, local = part.route(unique)
    for mask in part.shard_masks(shard_ids):
        locals_s = local[mask]
        assert np.all(np.diff(locals_s) > 0)


def test_split_table_returns_copies():
    part = ShardPartitioner(2)
    table = np.zeros((4, 2), dtype=np.float64)
    blocks = part.split_table(table)
    blocks[0][0, 0] = 7.0
    assert table[0, 0] == 0.0


def test_invalid_arguments():
    with pytest.raises(ValueError):
        ShardPartitioner(0)
    part = ShardPartitioner(2)
    with pytest.raises(ValueError):
        part.shard_rows(10, 2)
    with pytest.raises(ValueError):
        part.to_global(-1, np.array([0]))
