"""TableStats: measured and analytic access-distribution summaries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataloader import SyntheticClickLog
from repro.data.datasets import criteo_kaggle_like
from repro.data.synthetic import ZipfSampler, analytic_hot_mass
from repro.reorder import TableStats, measure_table_stats, table_stats_from_log


def test_analytic_hot_mass_matches_exact_cdf():
    probs_mass = analytic_hot_mass(1000, 1.05, 0.1)
    # Exact pmf path: directly the CDF at 100 ranks.
    from repro.data.synthetic import zipf_probabilities

    expected = float(zipf_probabilities(1000, 1.05)[:100].sum())
    assert probs_mass == pytest.approx(expected)
    assert 0.5 < probs_mass < 1.0  # paper-grade skew: hot 10% dominates


def test_analytic_hot_mass_edges():
    assert analytic_hot_mass(100, 1.05, 1.0) == 1.0
    assert analytic_hot_mass(1, 1.05, 0.5) == 1.0
    # Uniform distribution: hot mass equals the hot fraction (ceil'd).
    assert analytic_hot_mass(1000, 0.0, 0.1) == pytest.approx(0.1)


def test_analytic_hot_mass_large_table_approximation():
    # Above the exact-CDF limit the continuous integral takes over;
    # it must agree with the exact value to a few percent.
    exact_scale = analytic_hot_mass(4_000_000, 1.05, 0.1)
    approx_scale = analytic_hot_mass(4_000_001, 1.05, 0.1)
    assert approx_scale == pytest.approx(exact_scale, rel=0.05)


def test_sampler_hot_mass_delegates():
    sampler = ZipfSampler(10_000, alpha=1.05, seed=0)
    assert sampler.hot_mass(0.1) == pytest.approx(
        analytic_hot_mass(10_000, 1.05, 0.1)
    )


def test_measure_table_stats_skewed_stream():
    sampler = ZipfSampler(2_000, alpha=1.05, scatter=True, seed=0)
    rng = np.random.default_rng(1)
    idx = sampler.sample(50_000, rng)
    stats = measure_table_stats(idx, num_rows=2_000, table_idx=3)
    assert stats.table_idx == 3
    assert stats.num_rows == 2_000
    assert stats.total_accesses == 50_000
    assert 0.0 < stats.unique_fraction <= 1.0
    assert stats.skewed
    # Measured skew should land in the right ballpark of the generator.
    assert 0.7 < stats.zipf_alpha < 1.4
    assert stats.hot_mass == pytest.approx(
        analytic_hot_mass(2_000, 1.05, 0.1), abs=0.1
    )


def test_measure_table_stats_uniform_stream():
    rng = np.random.default_rng(2)
    idx = rng.integers(0, 500, size=20_000)
    stats = measure_table_stats(idx, num_rows=500)
    assert not stats.skewed
    assert stats.zipf_alpha < 0.3
    assert stats.hot_mass == pytest.approx(0.1, abs=0.05)


def test_measure_table_stats_validation():
    with pytest.raises(ValueError):
        measure_table_stats(np.array([], dtype=np.int64), num_rows=10)
    with pytest.raises(ValueError):
        measure_table_stats(np.array([10]), num_rows=10)
    with pytest.raises(ValueError):
        measure_table_stats(np.array([0]), num_rows=10, hot_fraction=0.0)


def test_table_stats_from_log_matches_manual_concat():
    spec = criteo_kaggle_like(scale=2e-5)
    log = SyntheticClickLog(spec, batch_size=32, seed=0)
    stats = table_stats_from_log(log, table_idx=0, num_batches=4)
    manual = np.concatenate(
        [log.batch(i).sparse_indices[0] for i in range(4)]
    )
    expected = measure_table_stats(
        manual, num_rows=spec.tables[0].num_rows, table_idx=0
    )
    assert stats == expected


def test_from_spec_analytic():
    stats = TableStats.from_spec(2, 10_000, 1.05)
    assert stats.total_accesses == 0
    assert stats.unique_fraction == 1.0
    assert stats.hot_rows == 1000
    assert stats.skewed


def test_table_stats_validation():
    with pytest.raises(ValueError):
        TableStats(0, 0, 1.0, 0.1, 0.5)
    with pytest.raises(ValueError):
        TableStats(0, 10, 1.0, 0.1, 1.5)
