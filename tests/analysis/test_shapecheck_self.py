"""Self-check: the shipped tree passes its own shape checker.

The abstract domain is one-sided (findings only on *provable*
inconsistencies), so symbolic repo code must produce zero findings —
any finding here is either a real shape bug or a checker false
positive, and both block the tree.
"""

from pathlib import Path

import repro
from repro.analysis.shapecheck import shapecheck_paths

PKG = Path(repro.__file__).resolve().parent


def test_shipped_tree_shapechecks_clean():
    result = shapecheck_paths([PKG])
    formatted = "\n".join(f.format() for f in result.findings)
    assert result.findings == [], f"shapecheck findings:\n{formatted}"
    assert result.files_scanned > 80


def test_self_check_covers_the_kernel_modules():
    # The checker must actually visit the TT/backend kernels, not skip
    # them: spot-check that the files exist and parse under the runner.
    kernels = [
        PKG / "embeddings" / "tt_core.py",
        PKG / "embeddings" / "eff_tt_embedding.py",
        PKG / "nn" / "interaction.py",
        PKG / "backend" / "numpy_backend.py",
    ]
    result = shapecheck_paths(kernels)
    assert result.files_scanned == len(kernels)
    assert result.findings == []
