"""Determinism corpus: every DET rule must catch its seeded mutant.

``tests/analysis/corpus/det/`` pairs each ``mut_*`` file (one seeded
non-determinism, docstring explains it) with a ``clean_*`` twin that
performs the same computation canonically.  Zone-scoped rules (DET004,
DET005) live under ``det/repro/<zone>/`` so :func:`package_rel`
resolves them into the lint zone they target.  The manifest below pins
the exact rule id *and* line of every expected hit: a detcheck change
that moves, drops, or duplicates a finding fails here.
"""

from pathlib import Path

import pytest

from repro.analysis.detcheck import detcheck_paths

CORPUS = Path(__file__).resolve().parent / "corpus" / "det"

# relative path -> exact (rule_id, line) hits, in sort order
EXPECTED = {
    "mut_det001_tainted_state.py": [("DET001", 11), ("DET001", 12)],
    "mut_det002_unordered_accum.py": [("DET002", 9)],
    "mut_det003_unordered_payload.py": [("DET003", 11)],
    "mut_det006_queue_mutation.py": [("DET006", 10)],
    "repro/system/mut_det004_entropy_escape.py": [("DET004", 11)],
    "repro/serving/mut_det005_wall_clock.py": [("DET005", 9)],
}

CLEAN_TWINS = [
    "clean_det001_seeded_state.py",
    "clean_det002_sorted_accum.py",
    "clean_det003_sorted_payload.py",
    "clean_det006_queue_copy.py",
    "repro/system/clean_det004_seeded.py",
    "repro/serving/clean_det005_simclock.py",
]


def test_manifest_matches_corpus_directory():
    mutants = sorted(
        str(p.relative_to(CORPUS)) for p in CORPUS.rglob("mut_*.py")
    )
    assert mutants == sorted(EXPECTED), "mutants and manifest diverged"
    twins = sorted(
        str(p.relative_to(CORPUS)) for p in CORPUS.rglob("clean_*.py")
    )
    assert twins == sorted(CLEAN_TWINS), "clean twins and manifest diverged"
    assert len(mutants) >= 6, "ISSUE requires at least 6 seeded mutants"


def test_every_det_rule_is_exercised():
    fired = {rule_id for hits in EXPECTED.values() for rule_id, _ in hits}
    assert fired == {f"DET{n:03d}" for n in range(1, 7)}


@pytest.mark.parametrize("rel", sorted(EXPECTED))
def test_mutant_is_flagged_at_exact_line(rel):
    result = detcheck_paths([CORPUS / rel])
    hits = [(f.rule_id, f.line) for f in result.findings]
    assert hits == EXPECTED[rel], (
        f"{rel}: expected {EXPECTED[rel]}, got {hits or 'no findings'}"
    )


@pytest.mark.parametrize("rel", sorted(CLEAN_TWINS))
def test_clean_twin_has_zero_findings(rel):
    result = detcheck_paths([CORPUS / rel])
    formatted = "\n".join(f.format() for f in result.findings)
    assert result.findings == [], f"false positives on {rel}:\n{formatted}"


def test_whole_det_corpus_fails_the_gate():
    result = detcheck_paths([CORPUS])
    assert not result.ok
    assert result.files_scanned == len(EXPECTED) + len(CLEAN_TWINS)
    flagged = {
        str(Path(f.path).resolve().relative_to(CORPUS))
        for f in result.findings
    }
    # Mutants all flagged, clean twins never — even analyzed together
    # as one program (name-merge must not bleed taint across twins).
    assert flagged == set(EXPECTED)
