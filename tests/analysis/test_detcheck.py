"""Unit tests for the detcheck determinism-taint analyzer.

Covers the behaviors the corpus can't pin file-by-file: whole-program
(cross-file) taint resolution, pragma suppression, rule selection,
SARIF rendering, and syntax-error degradation.
"""

import json

import pytest

from repro.analysis.detcheck import (
    DET_RULES,
    detcheck_paths,
    detcheck_source,
)
from repro.analysis.sarif import result_to_sarif

_ACCUM = (
    "from typing import Dict\n"
    "\n"
    "def total(parts: Dict[str, float]) -> float:\n"
    "    out = 0.0\n"
    "    for name in parts:\n"
    "        out += parts[name]\n"
    "    return out\n"
)


class TestInterprocedural:
    def test_entropy_rng_escape_across_modules(self, tmp_path):
        # The entropy generator is minted in a helper *module*; the
        # zone file only ever sees the returned value.  Summary-based
        # propagation must still carry the taint to the call site.
        zone = tmp_path / "repro" / "system"
        zone.mkdir(parents=True)
        (zone / "rng_helpers.py").write_text(
            "import numpy as np\n"
            "\n"
            "def fresh_generator():\n"
            "    return np.random.default_rng()\n"
        )
        (zone / "shuffler.py").write_text(
            "from repro.system.rng_helpers import fresh_generator\n"
            "\n"
            "def shuffle(batch):\n"
            "    rng = fresh_generator()\n"
            "    return rng.permutation(batch)\n"
        )
        result = detcheck_paths([tmp_path])
        hits = [(f.rule_id, f.path.endswith("shuffler.py")) for f in result.findings]
        assert ("DET004", True) in hits
        assert all(rule == "DET004" for rule, _ in hits)

    def test_seeded_helper_stays_clean_across_modules(self, tmp_path):
        zone = tmp_path / "repro" / "system"
        zone.mkdir(parents=True)
        (zone / "rng_helpers.py").write_text(
            "import numpy as np\n"
            "\n"
            "def fresh_generator(seed):\n"
            "    return np.random.default_rng(seed)\n"
        )
        (zone / "shuffler.py").write_text(
            "from repro.system.rng_helpers import fresh_generator\n"
            "\n"
            "def shuffle(batch):\n"
            "    rng = fresh_generator(7)\n"
            "    return rng.permutation(batch)\n"
        )
        result = detcheck_paths([tmp_path])
        assert result.findings == []

    def test_sink_reached_through_callee(self, tmp_path):
        # Taint flows *into* a checkpoint payload through a helper's
        # parameter: the writer function is the sink even though the
        # tainted value is minted one frame up.
        pkg = tmp_path / "repro"
        pkg.mkdir()
        (pkg / "writer.py").write_text(
            "import numpy as np\n"
            "\n"
            "def persist(path, blob):\n"
            "    np.savez(path, data=blob)\n"
            "\n"
            "def snapshot(path):\n"
            "    salt = np.random.default_rng().standard_normal(4)\n"
            "    persist(path, salt)\n"
        )
        result = detcheck_paths([tmp_path])
        assert any(f.rule_id == "DET001" for f in result.findings)


class TestSuppressionAndSelection:
    def test_unordered_accum_fires(self):
        result = detcheck_source(_ACCUM)
        assert [f.rule_id for f in result.findings] == ["DET002"]
        assert result.findings[0].line == 6

    def test_line_pragma_suppresses(self):
        source = _ACCUM.replace(
            "out += parts[name]",
            "out += parts[name]  # reprolint: disable=unordered-float-accum",
        )
        result = detcheck_source(source)
        assert result.findings == []
        assert result.suppressed == 1

    def test_rule_id_pragma_suppresses(self):
        source = _ACCUM.replace(
            "out += parts[name]",
            "out += parts[name]  # reprolint: disable=DET002",
        )
        result = detcheck_source(source)
        assert result.findings == []
        assert result.suppressed == 1

    def test_select_filters_rules(self):
        assert detcheck_source(_ACCUM, select=["DET002"]).findings
        assert not detcheck_source(_ACCUM, select=["tainted-state"]).findings

    def test_unknown_select_raises(self):
        with pytest.raises(KeyError):
            detcheck_source(_ACCUM, select=["DET999"])


class TestOutputs:
    def test_sarif_document_is_valid(self):
        result = detcheck_source(_ACCUM)
        doc = json.loads(
            result_to_sarif(result, "detcheck", DET_RULES.values())
        )
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "detcheck"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert rule_ids == {f"DET{n:03d}" for n in range(1, 7)}
        assert [r["ruleId"] for r in run["results"]] == ["DET002"]

    def test_syntax_error_degrades_to_det000(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n    pass\n")
        result = detcheck_paths([bad])
        assert [f.rule_id for f in result.findings] == ["DET000"]
        assert not result.ok


class TestRuleCatalog:
    def test_rule_table_is_complete(self):
        assert sorted(r.id for r in DET_RULES.values()) == [
            f"DET{n:03d}" for n in range(1, 7)
        ]
        for name, rule in DET_RULES.items():
            assert rule.name == name
            assert rule.description
