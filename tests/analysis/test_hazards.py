"""Hazard-detector tests: the §V RAW conflict, mechanically verified.

The headline assertions mirror the paper's claim structure:

* the default pipeline (LC cache on) analyzes to **zero** hazards —
  every stale gather is repaired before the worker consumes it;
* disabling life-cycle management (fault injection) surfaces the
  Figure-10(a) read-after-write conflict as ≥1 RAW hazard on a hot
  row;
* the detector itself is deterministic: identical runs produce
  identical traces and identical reports;
* instrumentation is passive: an instrumented run is bit-identical to
  a bare run.
"""

import numpy as np
import pytest

from repro.analysis import run_hazard_experiment
from repro.analysis.hazards import (
    EventKind,
    Hazard,
    RowEvent,
    TraceRecorder,
    analyze_trace,
)
from repro.analysis.shims import PipelineProbe, RecordingCache, RecordingQueue


@pytest.fixture(scope="module")
def clean_result():
    return run_hazard_experiment(inject_fault=False, num_batches=12)


@pytest.fixture(scope="module")
def faulty_result():
    return run_hazard_experiment(inject_fault=True, num_batches=12)


class TestAnalyzer:
    """Unit-level checks on hand-built traces."""

    def _read(self, t, batch, row=5):
        return RowEvent(t, EventKind.GATHER, "server_gather", 0, row, batch)

    def _write(self, t, batch, row=5):
        return RowEvent(t, EventKind.APPLY, "server_apply", 0, row, batch)

    def _sync(self, t, batch, row=5):
        return RowEvent(t, EventKind.SYNC_HIT, "lc_cache", 0, row, batch)

    def test_in_order_trace_is_clean(self):
        events = [self._write(1, batch=0), self._read(2, batch=1)]
        assert analyze_trace(events).clean

    def test_raw_inversion_detected(self):
        # batch 1 gathered before batch 0's write landed.
        events = [self._read(1, batch=1), self._write(2, batch=0)]
        report = analyze_trace(events)
        assert len(report.raw_hazards) == 1
        hazard = report.raw_hazards[0]
        assert (hazard.writer_batch, hazard.reader_batch) == (0, 1)
        assert not hazard.repaired

    def test_raw_repaired_by_sync(self):
        events = [
            self._read(1, batch=1),
            self._write(2, batch=0),
            self._sync(3, batch=1),
        ]
        report = analyze_trace(events)
        assert report.clean
        assert len(report.repaired) == 1

    def test_sync_for_other_batch_does_not_repair(self):
        events = [
            self._read(1, batch=1),
            self._write(2, batch=0),
            self._sync(3, batch=2),  # repairs batch 2, not batch 1
        ]
        assert len(analyze_trace(events).raw_hazards) == 1

    def test_war_inversion_detected(self):
        # batch 2's write landed before batch 1's gather: the earlier
        # batch observed the future.
        events = [self._write(1, batch=2), self._read(2, batch=1)]
        report = analyze_trace(events)
        assert len(report.war_hazards) == 1

    def test_distinct_rows_do_not_interact(self):
        events = [
            self._read(1, batch=1, row=5),
            self._write(2, batch=0, row=6),
        ]
        assert analyze_trace(events).clean

    def test_hot_rows_ranked_by_count(self):
        events = []
        for reader in (2, 3, 4):
            events.append(self._read(reader, batch=reader, row=9))
        events.append(self._write(10, batch=0, row=9))
        events.append(self._read(11, batch=2, row=7))
        events.append(self._write(12, batch=0, row=7))
        report = analyze_trace(events)
        assert report.hot_rows()[0] == (0, 9, 3)


class TestPipelineRuns:
    def test_clean_pipeline_has_zero_hazards(self, clean_result):
        assert clean_result.report.clean
        assert clean_result.report.raw_hazards == []
        assert clean_result.report.war_hazards == []

    def test_clean_pipeline_repaired_conflicts_exist(self, clean_result):
        # The pipeline *does* gather stale rows — the cache heals them.
        assert len(clean_result.report.repaired) > 0
        assert clean_result.train_log.cache_hits > 0

    def test_injection_surfaces_raw_hazards(self, faulty_result):
        assert len(faulty_result.report.raw_hazards) >= 1
        assert faulty_result.train_log.stale_rows_consumed > 0

    def test_injection_hazard_is_on_a_hot_row(self, faulty_result):
        # The §V conflict is a *hot row* phenomenon: a row re-read
        # within the prefetch window.  The top offender must carry
        # multiple hazards.
        hot = faulty_result.report.hot_rows(top=1)
        assert hot and hot[0][2] >= 2

    def test_injection_hazards_name_real_batches(self, faulty_result):
        for hazard in faulty_result.report.raw_hazards:
            assert 0 <= hazard.writer_batch < hazard.reader_batch < 12
            assert hazard.read_time < hazard.write_time

    def test_detector_output_is_deterministic(self):
        a = run_hazard_experiment(inject_fault=True, num_batches=8)
        b = run_hazard_experiment(inject_fault=True, num_batches=8)
        assert a.report.raw_hazards == b.report.raw_hazards
        assert (
            [e for e in a.report.repaired]
            == [e for e in b.report.repaired]
        )
        assert a.report.events_analyzed == b.report.events_analyzed

    def test_clean_run_deterministic_trace(self):
        a = run_hazard_experiment(inject_fault=False, num_batches=6)
        b = run_hazard_experiment(inject_fault=False, num_batches=6)
        assert a.report.events_analyzed == b.report.events_analyzed
        assert len(a.report.repaired) == len(b.report.repaired)

    def test_instrumentation_is_passive(self):
        """Probe on vs. probe off: bit-identical training."""
        from repro.analysis.experiment import _build_pipeline
        from repro.system.pipeline import PipelinedPSTrainer

        losses = []
        tables = []
        for probe in (None, PipelineProbe()):
            model, server, host_map, log = _build_pipeline(seed=0, lr=0.05)
            trainer = PipelinedPSTrainer(
                model, server, host_map, lr=0.05,
                prefetch_depth=3, grad_queue_depth=2, probe=probe,
            )
            result = trainer.train(log, 10)
            losses.append(result.losses)
            tables.append([t.copy() for t in server.tables])
        np.testing.assert_array_equal(losses[0], losses[1])
        for bare, probed in zip(tables[0], tables[1]):
            np.testing.assert_array_equal(bare, probed)


class TestShims:
    def test_recording_queue_logs_traffic(self):
        recorder = TraceRecorder()
        queue = RecordingQueue(2, recorder, "prefetch")
        queue.put("a")
        queue.put("b")
        assert queue.get() == "a"
        kinds = [e.kind for e in recorder.events]
        assert kinds == [
            EventKind.QUEUE_PUT,
            EventKind.QUEUE_PUT,
            EventKind.QUEUE_GET,
        ]
        assert all(e.stage == "prefetch" for e in recorder.events)

    def test_recording_cache_sync_hits_and_misses(self):
        recorder = TraceRecorder()
        cache = RecordingCache(4, default_lifecycle=2, recorder=recorder, table=1)
        cache.set_batch(0)
        cache.put(np.array([3]), np.ones((1, 4)))
        cache.set_batch(1)
        fresh, hit = cache.synchronize(
            np.array([3, 9]), np.zeros((2, 4))
        )
        assert hit.tolist() == [True, False]
        np.testing.assert_array_equal(fresh[0], np.ones(4))
        hits = [e for e in recorder.events if e.kind is EventKind.SYNC_HIT]
        misses = [e for e in recorder.events if e.kind is EventKind.SYNC_MISS]
        assert [(e.table, e.row, e.batch) for e in hits] == [(1, 3, 1)]
        assert [(e.table, e.row, e.batch) for e in misses] == [(1, 9, 1)]

    def test_recording_cache_eviction_events(self):
        recorder = TraceRecorder()
        cache = RecordingCache(4, default_lifecycle=1, recorder=recorder, table=0)
        cache.put(np.array([7]), np.ones((1, 4)))
        cache.decrement(np.array([7]))
        evicts = [e for e in recorder.events if e.kind is EventKind.CACHE_EVICT]
        assert [(e.table, e.row) for e in evicts] == [(0, 7)]
        assert 7 not in cache

    def test_timestamps_monotonic(self):
        recorder = TraceRecorder()
        probe = PipelineProbe()
        probe.on_gather(0, 0, [1, 2])
        probe.on_apply(0, 0, [1, 2])
        times = [e.time for e in probe.recorder.events]
        assert times == sorted(times)
        # the two operations occupy distinct instants; rows within one
        # operation share an instant
        assert times[0] == times[1] < times[2] == times[3]

    def test_hazard_equality_and_describe(self):
        h = Hazard("RAW", 0, 5, 0, 1, 10, 2, False)
        assert h == Hazard("RAW", 0, 5, 0, 1, 10, 2, False)
        assert "RAW" in h.describe() and "row=5" in h.describe()
        assert "repaired" in Hazard("RAW", 0, 5, 0, 1, 10, 2, True).describe()
