"""Mutation corpus: every seeded-bad snippet must be caught.

Each ``mut_*.py`` file under ``tests/analysis/corpus/`` contains one
deliberately wrong kernel (docstring explains the mutation) and names
the rule expected to flag it. This test is the detector's regression
net: a checker change that stops flagging any corpus file fails here.
"""

from pathlib import Path

import pytest

from repro.analysis.shapecheck import shapecheck_paths

CORPUS = Path(__file__).resolve().parent / "corpus"

# file stem -> rule id expected to fire on it
EXPECTED = {
    "mut_einsum_arity": "SHP001",
    "mut_einsum_dropped_dim": "SHP002",
    "mut_einsum_transposed": "SHP003",
    "mut_matmul_inner": "SHP004",
    "mut_reshape_elements": "SHP005",
    "mut_float64_literal": "SHP006",
    "mut_gather_negative": "SHP007",
    "mut_gather_oob": "SHP007",
    "mut_broadcast": "SHP008",
    "mut_scatter_shape": "SHP008",
}


def test_manifest_matches_corpus_directory():
    stems = sorted(p.stem for p in CORPUS.glob("mut_*.py"))
    assert stems == sorted(EXPECTED), "corpus files and manifest diverged"
    assert len(stems) >= 8, "ISSUE requires at least 8 seeded mutations"


def test_every_rule_is_exercised_by_some_mutation():
    assert set(EXPECTED.values()) == {f"SHP{n:03d}" for n in range(1, 9)}


@pytest.mark.parametrize("stem", sorted(EXPECTED))
def test_mutation_is_flagged_with_expected_rule(stem):
    result = shapecheck_paths([CORPUS / f"{stem}.py"])
    ids = [f.rule_id for f in result.findings]
    assert EXPECTED[stem] in ids, (
        f"{stem}.py expected {EXPECTED[stem]}, got {ids or 'no findings'}"
    )


def test_whole_corpus_fails_the_gate():
    # Top-level files only: corpus/det/ belongs to the detcheck suite.
    result = shapecheck_paths(sorted(CORPUS.glob("*.py")))
    assert not result.ok
    assert result.files_scanned == len(EXPECTED)
    # Exactly one finding per file: mutations are minimal by design.
    per_file = {f.path for f in result.findings}
    assert len(per_file) == len(EXPECTED)
