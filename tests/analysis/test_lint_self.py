"""Self-lint: the shipped tree must stay reprolint-clean.

This is the pytest-collected arm of the linter (the other arm is
``python -m repro lint``): any PR that introduces an error-level
finding — an unseeded RNG, a wall-clock read in a SimClock zone, a
dtype-less kernel allocation — fails CI here.  Warn-level findings
(perf advisories) are allowed.
"""

from pathlib import Path

import repro
from repro.analysis import Severity, lint_paths

SRC = Path(repro.__file__).resolve().parent


def test_src_tree_has_no_error_findings():
    result = lint_paths([SRC])
    errors = [f.format() for f in result.errors]
    assert not errors, "reprolint errors in shipped tree:\n" + "\n".join(errors)


def test_src_tree_scan_is_substantial():
    # Guard against the scan silently looking at the wrong directory.
    result = lint_paths([SRC])
    assert result.files_scanned > 50


def test_self_lint_is_deterministic():
    a = lint_paths([SRC])
    b = lint_paths([SRC])
    assert [f.sort_key for f in a.findings] == [f.sort_key for f in b.findings]
    assert a.suppressed == b.suppressed
