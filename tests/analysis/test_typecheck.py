"""Strict-mode typecheck gate for the annotated modules.

Runs ``mypy`` over the modules pinned to strict mode in
``pyproject.toml`` (``system/queues.py``, ``embeddings/cache.py``,
``analysis/``, and the backend core: ``protocol.py``,
``plan_cache.py``, ``numpy_backend.py``).  Skipped when mypy is not
installed — the container
image for CI may not ship it; the annotations themselves are still
exercised at runtime by the rest of the suite.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

import repro

PKG = Path(repro.__file__).resolve().parent
REPO_ROOT = PKG.parents[1]

STRICT_TARGETS = [
    PKG / "system" / "queues.py",
    PKG / "embeddings" / "cache.py",
    PKG / "analysis",
    PKG / "backend" / "protocol.py",
    PKG / "backend" / "plan_cache.py",
    PKG / "backend" / "numpy_backend.py",
    PKG / "sharding",
    PKG / "serving",
    PKG / "resilience" / "checkpoint.py",
]


@pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None, reason="mypy not installed"
)
def test_strict_modules_typecheck():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", *map(str, STRICT_TARGETS)],
        capture_output=True,
        text=True,
        cwd=str(REPO_ROOT),
    )
    assert proc.returncode == 0, proc.stdout
