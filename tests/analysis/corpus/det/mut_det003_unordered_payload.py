"""DET003 mutant: payload entries keyed by raw dict iteration order."""

from typing import Dict

import numpy as np


def state_arrays(tables: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    payload = {}
    for name in tables:
        payload[name] = tables[name]  # DET003
    return payload
