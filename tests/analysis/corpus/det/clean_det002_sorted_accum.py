"""DET002 clean twin: sorted iteration pins the accumulation order."""

from typing import Dict


def total_seconds(components: Dict[str, float]) -> float:
    out = 0.0
    for name in sorted(components):
        out += components[name]
    return out
