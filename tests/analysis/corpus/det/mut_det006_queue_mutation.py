"""DET006 mutant: a dequeued batch is mutated in place."""

from queue import Queue

import numpy as np


def drain_one(grad_queue: Queue) -> np.ndarray:
    grads = grad_queue.get()
    grads *= 0.5  # DET006
    return grads
