"""DET006 clean twin: the consumer scales a private copy."""

from queue import Queue

import numpy as np


def drain_one(grad_queue: Queue) -> np.ndarray:
    grads = grad_queue.get().copy()
    grads *= 0.5
    return grads
