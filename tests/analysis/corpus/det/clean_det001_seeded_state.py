"""DET001 clean twin: the payload generator is explicitly seeded."""

from typing import Dict

import numpy as np


def state_arrays(dim: int) -> Dict[str, np.ndarray]:
    rng = np.random.default_rng(7)
    payload = {}
    payload["residual"] = rng.standard_normal(dim)
    return payload
