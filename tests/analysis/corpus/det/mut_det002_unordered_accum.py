"""DET002 mutant: float accumulation ordered by dict iteration."""

from typing import Dict


def total_seconds(components: Dict[str, float]) -> float:
    out = 0.0
    for name in components:
        out += components[name]  # DET002
    return out
