"""DET004 mutant: an entropy-seeded generator escapes into a zone."""

import numpy as np


def _fresh_rng():
    return np.random.default_rng()


def shuffle_batch(batch: np.ndarray) -> np.ndarray:
    rng = _fresh_rng()  # DET004
    return rng.permutation(batch)
