"""DET004 clean twin: the helper generator is deterministically seeded."""

import numpy as np


def _fresh_rng(seed: int):
    return np.random.default_rng(seed)


def shuffle_batch(batch: np.ndarray) -> np.ndarray:
    rng = _fresh_rng(7)
    return rng.permutation(batch)
