"""DET005 clean twin: the decision reads the simulated clock."""

_DEADLINE_S = 0.002


class SimClock:
    def __init__(self) -> None:
        self._now = 0.0

    def now(self) -> float:
        return self._now


def should_degrade(clock: SimClock, started_at: float) -> bool:
    if clock.now() - started_at > _DEADLINE_S:
        return True
    return False
