"""DET005 mutant: a serving decision branches on the wall clock."""

import time

_DEADLINE_S = 0.002


def should_degrade(started_at: float) -> bool:
    if time.monotonic() - started_at > _DEADLINE_S:  # DET005
        return True
    return False
