"""DET001 mutant: entropy-seeded values reach a checkpoint payload."""

from typing import Dict

import numpy as np


def state_arrays(dim: int) -> Dict[str, np.ndarray]:
    rng = np.random.default_rng()
    payload = {}
    payload["residual"] = rng.standard_normal(dim)  # DET001
    return payload
