"""DET003 clean twin: payload entries emitted in sorted key order."""

from typing import Dict

import numpy as np


def state_arrays(tables: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    payload = {}
    for name in sorted(tables):
        payload[name] = tables[name]
    return payload
