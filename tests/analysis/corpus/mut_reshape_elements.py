"""Seeded mutation: reshape target with the wrong element count.

The Eff-TT forward folds (batch, cols_so_far * rank) into
(batch, cols_so_far, rank); the mutation uses the *next* stage's rank
(4 instead of 3), so the target has 64*2*4 = 512 elements where the
source has 64*6 = 384.  Expected: SHP005 reshape-elements.
"""

import numpy as np

from repro.backend import ZONE_EFFTT_FORWARD, get_backend


def fold_partial():
    bk = get_backend()
    partial = bk.zeros((64, 6), dtype=np.float32)
    with bk.zone(ZONE_EFFTT_FORWARD):
        # MUTATION: rank axis of 4 (should be 3: 2 cols x 3 rank = 6)
        return partial.reshape(64, 2, 4)
