"""PERF004 mutant: dynamically built einsum subscripts defeat the cache."""

import numpy as np

from repro.backend import get_backend


def dynamic_contract(a: np.ndarray, b: np.ndarray, axis: str) -> np.ndarray:
    bk = get_backend()
    return bk.einsum(f"i{axis},j{axis}->ij", a, b)  # PERF004
