"""PERF001 mutant: a loop-invariant buffer is allocated every iteration."""

import numpy as np

from repro.backend import get_backend
from repro.backend.protocol import ZONE_TT_BACKWARD


def suffix_products(row_grads: np.ndarray) -> np.ndarray:
    bk = get_backend()
    with bk.zone(ZONE_TT_BACKWARD):
        right = None
        for k in range(4):
            seed = bk.ones((8, 1, 1), dtype=row_grads.dtype)  # PERF001
            right = bk.matmul(seed, seed.transpose(0, 2, 1))
        return right
