"""PERF007 mutant: an array is cast to the dtype it already has."""

import numpy as np

from repro.backend import get_backend
from repro.backend.protocol import ZONE_OPTIMIZER


def pointless_cast() -> np.ndarray:
    bk = get_backend()
    with bk.zone(ZONE_OPTIMIZER):
        acc = bk.zeros((4, 4), dtype="float32")
        return acc.astype("float32")  # PERF007
