"""PERF001 clean twin: the allocation depends on the loop variable."""

import numpy as np

from repro.backend import get_backend
from repro.backend.protocol import ZONE_TT_BACKWARD


def staircase(row_grads: np.ndarray) -> list:
    bk = get_backend()
    out = []
    with bk.zone(ZONE_TT_BACKWARD):
        seed = bk.ones((8, 1, 1), dtype=row_grads.dtype)  # hoisted: clean
        for k in range(4):
            step = bk.zeros((k + 1, 4), dtype=row_grads.dtype)  # loop-variant
            out.append(bk.matmul(step, step.transpose(1, 0)))
        out.append(seed)
    return out
