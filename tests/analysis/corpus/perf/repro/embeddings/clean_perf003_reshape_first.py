"""PERF003 clean twin: reshape-then-transpose leaves a cheap view."""

import numpy as np


def relayout(x: np.ndarray) -> np.ndarray:
    return x.reshape(4, 6).transpose(1, 0)  # view after contiguous reshape
