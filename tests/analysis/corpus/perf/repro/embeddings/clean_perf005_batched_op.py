"""PERF005 clean twin: the whole batch goes through one backend op."""

import numpy as np

from repro.backend import get_backend
from repro.backend.protocol import ZONE_MLP


def batch_scores(batch: np.ndarray, cores: list) -> np.ndarray:
    bk = get_backend()
    with bk.zone(ZONE_MLP):
        for k in range(len(cores)):  # loops a Python list, not an array
            batch = bk.matmul(batch, cores[k])
        return bk.exp(batch)
