"""PERF002 clean twin: the intermediate is live past the second matmul."""

import numpy as np

from repro.backend import get_backend
from repro.backend.protocol import ZONE_TT_FORWARD


def contract_and_keep(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> tuple:
    bk = get_backend()
    with bk.zone(ZONE_TT_FORWARD):
        tmp = bk.matmul(a, b)  # also returned below: not a dead intermediate
        out = bk.matmul(tmp, c)
        return out, tmp
