"""PERF002 mutant: a dead intermediate links two adjacent contractions."""

import numpy as np

from repro.backend import get_backend
from repro.backend.protocol import ZONE_TT_FORWARD


def double_contract(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    bk = get_backend()
    with bk.zone(ZONE_TT_FORWARD):
        tmp = bk.matmul(a, b)  # PERF002: consumed only by the next matmul
        return bk.matmul(tmp, c)
