"""PERF005 mutant: a Python loop walks the batch dimension row by row."""

import numpy as np

from repro.backend import get_backend
from repro.backend.protocol import ZONE_MLP


def row_scores(batch: np.ndarray) -> list:
    bk = get_backend()
    scores = []
    with bk.zone(ZONE_MLP):
        for row in batch:  # PERF005
            scores.append(bk.exp(row))
    return scores
