"""PERF003 mutant: transpose-then-reshape forces a copy of the view."""

import numpy as np


def churn(x: np.ndarray) -> np.ndarray:
    return x.transpose(0, 2, 1).reshape(4, 6)  # PERF003
