"""PERF006 clean twin: a scatter_add_rows writes the table between gathers."""

import numpy as np

from repro.backend import get_backend
from repro.backend.protocol import ZONE_EFFTT_FORWARD


def gather_update_gather(
    table: np.ndarray, idx: np.ndarray, grads: np.ndarray
) -> np.ndarray:
    bk = get_backend()
    with bk.zone(ZONE_EFFTT_FORWARD):
        before = bk.gather_rows(table, idx)
        bk.scatter_add_rows(table, idx, grads)
        after = bk.gather_rows(table, idx)  # rows changed: re-read is real
        return bk.matmul(before, after.transpose(1, 0))
