"""PERF006 mutant: the same rows are gathered twice with no write between."""

import numpy as np

from repro.backend import get_backend
from repro.backend.protocol import ZONE_EFFTT_FORWARD


def gather_twice(table: np.ndarray, idx: np.ndarray) -> np.ndarray:
    bk = get_backend()
    with bk.zone(ZONE_EFFTT_FORWARD):
        first = bk.gather_rows(table, idx)
        second = bk.gather_rows(table, idx)  # PERF006
        return bk.matmul(first, second.transpose(1, 0))
