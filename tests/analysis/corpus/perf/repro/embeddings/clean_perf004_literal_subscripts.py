"""PERF004 clean twin: literal subscripts hit the plan cache."""

import numpy as np

from repro.backend import get_backend


def cached_contract(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    bk = get_backend()
    return bk.einsum("ik,jk->ij", a, b)  # constant signature: cacheable
