"""PERF007 clean twin: the cast actually changes the dtype."""

import numpy as np

from repro.backend import get_backend
from repro.backend.protocol import ZONE_OPTIMIZER


def downcast() -> np.ndarray:
    bk = get_backend()
    with bk.zone(ZONE_OPTIMIZER):
        acc = bk.zeros((4, 4), dtype="float64")
        return acc.astype("float32")  # float64 -> float32: real conversion
