"""Seeded mutation: a negative row index reaching gather_rows.

Row ids are non-negative by construction; a ``-1`` sentinel (the
"missing feature" encoding of some loaders) reaching the gather wraps
silently to the last row and reads the wrong embedding.
Expected: SHP007 gather-index.
"""

import numpy as np

from repro.backend import ZONE_PS_GATHER, get_backend


def gather_batch():
    bk = get_backend()
    table = bk.zeros((1000, 16), dtype=np.float32)
    # MUTATION: -1 sentinel passed through unmapped
    indices = np.array([12, -1, 840])
    with bk.zone(ZONE_PS_GATHER):
        return bk.gather_rows(table, indices)
