"""Seeded mutation: a gather index beyond the table's row count.

The serving hot-row cache is sized to the table's first 256 rows, but
the mutated lookup uses a raw row id (612) instead of the cache slot.
Expected: SHP007 gather-index.
"""

import numpy as np

from repro.backend import ZONE_SERVING_LOOKUP, get_backend


def cached_lookup():
    bk = get_backend()
    hot_cache = bk.zeros((256, 16), dtype=np.float32)
    # MUTATION: raw row id used as a cache slot
    slots = np.array([3, 612, 17])
    with bk.zone(ZONE_SERVING_LOOKUP):
        return bk.gather_rows(hot_cache, slots)
