"""Seeded mutation: scatter_add_rows values that don't match the target rows.

The PS apply path must scatter (num_indices, dim) updates into the
(rows, dim) table; the mutated update matrix is transposed, so its
per-row shape (3) disagrees with the table's row width (16).
Expected: SHP008 broadcast-shape.
"""

import numpy as np

from repro.backend import ZONE_PS_APPLY, get_backend


def apply_sparse_update():
    bk = get_backend()
    table = bk.zeros((1000, 16), dtype=np.float32)
    indices = np.array([4, 9, 21])
    # MUTATION: update matrix transposed (dim, num_indices)
    updates = bk.zeros((16, 3), dtype=np.float32)
    with bk.zone(ZONE_PS_APPLY):
        bk.scatter_add_rows(table, indices, updates)
