"""Seeded mutation: elementwise add of mis-sized optimizer buffers.

The momentum buffer was allocated for a 17-wide embedding (an
off-by-one from a ``dim + 1`` bias-column experiment) while the
gradient is 16-wide; the shapes can never broadcast.
Expected: SHP008 broadcast-shape.
"""

import numpy as np

from repro.backend import ZONE_OPTIMIZER, get_backend


def momentum_update():
    bk = get_backend()
    grad = bk.zeros((128, 16), dtype=np.float32)
    # MUTATION: momentum sized dim+1
    momentum = bk.zeros((128, 17), dtype=np.float32)
    with bk.zone(ZONE_OPTIMIZER):
        return grad + momentum
