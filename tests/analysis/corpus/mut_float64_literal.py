"""Seeded mutation: a float64 allocation inside a float32 kernel zone.

The fused-update zone runs entirely in float32; the mutated velocity
buffer is allocated as float64 (numpy's default leaking back in), so
the update silently upcasts — the precision drift PR 4 scrubbed out.
Expected: SHP006 dtype-upcast.
"""

import numpy as np

from repro.backend import ZONE_FUSED_UPDATE, get_backend


def fused_update():
    bk = get_backend()
    with bk.zone(ZONE_FUSED_UPDATE):
        grad = bk.zeros((128, 16), dtype=np.float32)
        # MUTATION: np.float64 literal (zone policy is float32)
        velocity = bk.zeros((128, 16), dtype=np.float64)
        return grad + velocity
