"""Seeded mutation: einsum term dropped the rank dimension.

The left partial of the TT chain is rank-3 — (L, cols_so_far, R_k) —
but the mutated subscript names only ``"la"``, silently treating the
partial as if the rank axis had already been contracted away.
Expected: SHP002 einsum-rank.
"""

import numpy as np

from repro.backend import ZONE_TT_FORWARD, get_backend
from repro.embeddings.tt_core import TTCores, TTSpec


def chain_first_hop():
    spec = TTSpec((4, 5, 6), (2, 2, 1), (1, 3, 3, 1))
    tt = TTCores.random_init(spec, seed=0, dtype=np.float32)
    cores = tt.cores
    idx = np.array([0, 1, 2])
    bk = get_backend()
    with bk.zone(ZONE_TT_FORWARD):
        left = bk.gather_rows(cores[0], idx).reshape(3, 2, 3)
        core_slice = bk.gather_rows(cores[1], idx)
        # MUTATION: "lar" -> "la" (rank axis dropped from the term)
        return bk.einsum("la,lrbs->labs", left, core_slice)
