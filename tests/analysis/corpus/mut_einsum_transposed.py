"""Seeded mutation: transposed einsum subscripts in the TT chain.

The correct contraction is ``"lar,lrbs->labs"`` — the left partial
(L, a, R_in) contracts its rank axis against the *second* axis of the
gathered core slice (L, R_in, n, R_out).  The mutation swaps the core
term to ``"lsrb"``, contracting the rank against the column axis.
Expected: SHP003 einsum-dim.
"""

import numpy as np

from repro.backend import ZONE_TT_FORWARD, get_backend
from repro.embeddings.tt_core import TTCores, TTSpec


def chain_first_hop():
    spec = TTSpec((4, 5, 6), (2, 2, 1), (1, 3, 3, 1))
    tt = TTCores.random_init(spec, seed=0, dtype=np.float32)
    cores = tt.cores
    idx = np.array([0, 1, 2])
    bk = get_backend()
    with bk.zone(ZONE_TT_FORWARD):
        left = bk.gather_rows(cores[0], idx).reshape(3, 2, 3)
        core_slice = bk.gather_rows(cores[1], idx)
        # MUTATION: "lrbs" -> "lsrb" (rank contracted against columns)
        return bk.einsum("lar,lsrb->labs", left, core_slice)
