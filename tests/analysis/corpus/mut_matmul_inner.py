"""Seeded mutation: MLP matmul against an un-transposed weight matrix.

The layer stores its weight as (out_features, in_features) and the
forward must multiply by ``weight.T``; the mutation drops the
transpose, so the inner dimensions disagree (16 vs 32).
Expected: SHP004 matmul-shape.
"""

import numpy as np

from repro.backend import ZONE_MLP, get_backend


def forward():
    bk = get_backend()
    inputs = bk.zeros((64, 16), dtype=np.float32)
    weight = bk.zeros((32, 16), dtype=np.float32)
    with bk.zone(ZONE_MLP):
        # MUTATION: weight used untransposed
        return bk.matmul(inputs, weight)
