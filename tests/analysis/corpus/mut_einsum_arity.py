"""Seeded mutation: einsum signature names fewer terms than operands.

A two-term pairwise-interaction signature is called with three
operands — the kind of bug a refactor leaves behind when a fused
three-way contraction is split.  Expected: SHP001 einsum-subscripts.
"""

import numpy as np

from repro.backend import ZONE_INTERACTION, get_backend


def pairwise_scores():
    bk = get_backend()
    emb_a = bk.zeros((16, 4, 8), dtype=np.float32)
    emb_b = bk.zeros((16, 4, 8), dtype=np.float32)
    weights = bk.zeros((16, 4, 4), dtype=np.float32)
    with bk.zone(ZONE_INTERACTION):
        # MUTATION: the weights operand has no subscript term
        return bk.einsum("bfd,bgd->bfg", emb_a, emb_b, weights)
