"""Unit tests for the shapecheck abstract interpreter."""

import pytest

from repro.analysis.shapecheck import (
    SHAPE_RULES,
    check_einsum,
    parse_subscripts,
    shapecheck_source,
)
from repro.analysis.shapecheck.domain import (
    SymDim,
    TensorVal,
    broadcast_shapes,
    dims_conflict,
    dims_equal,
    promote_dtypes,
    resolve_dtype,
    DottedVal,
)


def _rules(result):
    return [f.rule for f in result.findings]


class TestDomain:
    def test_dims_equal_and_conflict(self):
        b = SymDim("B")
        assert dims_equal(4, 4) and dims_equal(b, SymDim("B"))
        assert not dims_equal(4, 5) and not dims_equal(b, None)
        assert dims_conflict(4, 5)
        assert not dims_conflict(4, b) and not dims_conflict(b, None)

    def test_broadcast_rules(self):
        b = SymDim("B")
        shape, conflict = broadcast_shapes((b, 1), (1, 8))
        assert shape == (b, 8) and not conflict
        _, conflict = broadcast_shapes((4, 8), (4, 9))
        assert conflict
        # Symbolic vs concrete never provably conflicts.
        _, conflict = broadcast_shapes((b, 8), (4, 8))
        assert not conflict

    def test_dtype_resolution_and_promotion(self):
        assert resolve_dtype(DottedVal("numpy.float32")) == "float32"
        assert resolve_dtype("float64") == "float64"
        assert resolve_dtype(DottedVal("numpy.void")) is None
        assert promote_dtypes("float32", "float64") == "float64"
        assert promote_dtypes(None, "float32") == "float32"
        assert promote_dtypes(None, None) is None


class TestEinsumResolution:
    def test_parse_rejects_malformed(self):
        for bad in ("ij->k->m", "i$j,jk->ik", "ij,jk->ii"):
            parsed, issues = parse_subscripts(bad)
            assert parsed is None
            assert issues and issues[0].code == "einsum-subscripts"

    def test_output_letter_must_appear_in_inputs(self):
        parsed, issues = parse_subscripts("ij,jk->iz")
        assert parsed is None
        assert "does not appear" in issues[0].message

    def test_arity_mismatch(self):
        _, issues = check_einsum("ij,jk->ik", [TensorVal((2, 3))])
        assert issues and issues[0].code == "einsum-subscripts"

    def test_rank_mismatch(self):
        _, issues = check_einsum(
            "ij,jk->ik", [TensorVal((2, 3, 4)), TensorVal((3, 5))]
        )
        assert issues and issues[0].code == "einsum-rank"

    def test_dim_conflict_and_result_shape(self):
        out, issues = check_einsum(
            "bfd,bgd->bfg", [TensorVal((16, 4, 8)), TensorVal((16, 5, 8))]
        )
        assert not issues
        assert out.shape == (16, 4, 5)
        _, issues = check_einsum(
            "bfd,bgd->bfg", [TensorVal((16, 4, 8)), TensorVal((16, 5, 9))]
        )
        assert issues and issues[0].code == "einsum-dim"

    def test_size_one_broadcasts_on_repeated_label(self):
        _, issues = check_einsum(
            "ij,jk->ik", [TensorVal((2, 1)), TensorVal((5, 3))]
        )
        assert not issues

    def test_symbolic_dims_never_conflict(self):
        b = SymDim("B")
        out, issues = check_einsum(
            "lar,lrbs->labs",
            [TensorVal((b, 2, 3)), TensorVal((b, 3, 2, 3))],
        )
        assert not issues
        assert out.shape == (b, 2, 2, 3)


class TestInterpreter:
    def test_symbolic_code_stays_clean(self):
        src = """
import numpy as np
from repro.backend import get_backend, ZONE_MLP

def forward(x, weight):
    bk = get_backend()
    with bk.zone(ZONE_MLP):
        out = bk.matmul(x, weight.T)
        return bk.maximum(out, 0.0)
"""
        assert shapecheck_source(src).findings == []

    def test_matmul_conflict_inside_zone(self):
        src = """
import numpy as np
from repro.backend import get_backend, ZONE_MLP
bk = get_backend()
a = bk.zeros((8, 16), dtype=np.float32)
w = bk.zeros((32, 4), dtype=np.float32)
with bk.zone(ZONE_MLP):
    out = bk.matmul(a, w)
"""
        assert _rules(shapecheck_source(src)) == ["matmul-shape"]

    def test_checks_fire_outside_zones_too(self):
        src = """
import numpy as np
a = np.zeros((4, 4), dtype=np.float32)
b = np.zeros((3, 3), dtype=np.float32)
c = a + b
"""
        assert _rules(shapecheck_source(src)) == ["broadcast-shape"]

    def test_tt_core_shapes_derive_from_spec(self):
        src = """
import numpy as np
from repro.backend import get_backend, ZONE_TT_FORWARD
from repro.embeddings.tt_core import TTCores, TTSpec

spec = TTSpec.create((4, 5, 6), (2, 2, 1), 3)
tt = TTCores.random_init(spec, seed=0, dtype=np.float32)
cores = tt.cores
idx = np.array([0, 1, 2])
bk = get_backend()
with bk.zone(ZONE_TT_FORWARD):
    left = bk.gather_rows(cores[0], idx).reshape(3, 2, 3)
    out = bk.einsum("lar,lrbs->labs", left, bk.gather_rows(cores[1], idx))
"""
        assert shapecheck_source(src).findings == []
        # One transposed term makes the same chain provably wrong.
        mutated = src.replace("lar,lrbs->labs", "lar,lsrb->labs")
        assert _rules(shapecheck_source(mutated)) == ["einsum-dim"]

    def test_reshape_minus_one_is_inferred(self):
        src = """
import numpy as np
x = np.zeros((8, 6), dtype=np.float32)
y = x.reshape(8, -1, 3)
z = y.reshape(8, 7)
"""
        result = shapecheck_source(src)
        assert _rules(result) == ["reshape-elements"]
        assert "48" in result.findings[0].message

    def test_dtype_policy_is_zone_scoped(self):
        mixed = """
import numpy as np
from repro.backend import get_backend, ZONE_OPTIMIZER
bk = get_backend()
with bk.zone(ZONE_OPTIMIZER):
    a = bk.zeros((4,), dtype=np.float32)
    b = bk.zeros((4,), dtype=np.float64)
"""
        assert _rules(shapecheck_source(mixed)) == ["dtype-upcast"]
        # The same allocations outside any zone are not policed.
        unzoned = """
import numpy as np
from repro.backend import get_backend
bk = get_backend()
a = bk.zeros((4,), dtype=np.float32)
b = bk.zeros((4,), dtype=np.float64)
"""
        assert shapecheck_source(unzoned).findings == []

    def test_loop_bodies_are_widened(self):
        # `left` is reassigned in the loop; checks inside must treat it
        # as unknown rather than the concrete first-iteration shape.
        src = """
import numpy as np
from repro.backend import get_backend, ZONE_TT_FORWARD
bk = get_backend()
left = bk.zeros((8, 2, 3), dtype=np.float32)
with bk.zone(ZONE_TT_FORWARD):
    for k in range(3):
        left = bk.einsum("lar,lrbs->labs", left, slices[k])
"""
        assert shapecheck_source(src).findings == []

    def test_branches_merge_to_unknown(self):
        src = """
import numpy as np
if flag:
    x = np.zeros((4, 4), dtype=np.float32)
else:
    x = np.zeros((5, 5), dtype=np.float32)
y = x + np.zeros((6, 6), dtype=np.float32)
"""
        assert shapecheck_source(src).findings == []

    def test_pragma_suppression(self):
        src = """
import numpy as np
a = np.zeros((4, 4), dtype=np.float32)
b = np.zeros((3, 3), dtype=np.float32)
c = a + b  # reprolint: disable=broadcast-shape
"""
        result = shapecheck_source(src)
        assert result.findings == []
        assert result.suppressed == 1

    def test_select_filters_rules(self):
        src = """
import numpy as np
a = np.zeros((4, 4), dtype=np.float32)
b = np.zeros((3, 3), dtype=np.float32)
c = a + b
d = a.reshape(2, 9)
"""
        result = shapecheck_source(src, select=["reshape-elements"])
        assert _rules(result) == ["reshape-elements"]
        with pytest.raises(KeyError):
            shapecheck_source(src, select=["nope"])

    def test_scatter_index_bounds(self):
        src = """
import numpy as np
from repro.backend import get_backend, ZONE_PS_APPLY
bk = get_backend()
table = bk.zeros((10, 4), dtype=np.float32)
vals = bk.zeros((2, 4), dtype=np.float32)
with bk.zone(ZONE_PS_APPLY):
    bk.scatter_add_rows(table, np.array([3, 12]), vals)
"""
        assert _rules(shapecheck_source(src)) == ["gather-index"]

    def test_rule_catalog_is_complete(self):
        assert {r.id for r in SHAPE_RULES.values()} == {
            "SHP001",
            "SHP002",
            "SHP003",
            "SHP004",
            "SHP005",
            "SHP006",
            "SHP007",
            "SHP008",
        }
