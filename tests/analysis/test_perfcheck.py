"""Unit tests for the perfcheck analyzer, cost model, and FusionPlan."""

import pytest

from repro.analysis.perfcheck import PERF_RULES, perfcheck_source
from repro.analysis.perfcheck.costmodel import (
    Cost,
    cost_add,
    cost_scale,
    matmul_cost,
    nbytes_cost,
    tt_chain_flops_per_row,
)
from repro.analysis.perfcheck.interp import interpret_module_perf
from repro.analysis.rules import build_context
from repro.analysis.shapecheck.domain import SymDim
from repro.backend.plan_cache import get_plan_cache

ZONE_REL = "repro/embeddings/fake_kernel.py"


def _findings(source, rel=ZONE_REL, select=None):
    return perfcheck_source(source, path=rel, rel=rel, select=select).findings


def _rules(source, **kwargs):
    return [f.rule_id for f in _findings(source, **kwargs)]


class TestCostModel:
    def test_cost_algebra(self):
        b = SymDim("batch")
        c = Cost.product(2, (b, 8, 4))
        assert c is not None and c.value is None
        assert c.expr == "64*batch"
        assert Cost.product(3, (5, 2)).value == 30
        total = cost_add(c, Cost.concrete(10))
        assert total.expr == "10 + 64*batch"
        assert cost_scale(Cost.concrete(7), 3).value == 21
        assert cost_add(c, None) is None
        assert Cost.product(1, (None, 8)) is None

    def test_nbytes_symbolic_itemsize(self):
        # Unknown dtype contributes a symbolic itemsize factor.
        sized = nbytes_cost((4, 4), "float32")
        assert sized.value == 64
        unsized = nbytes_cost((4, 4), None)
        assert unsized.value is None and "itemsize" in unsized.expr

    def test_matmul_cost_matches_instrumented_formula(self):
        # (3, 4, 5) @ (3, 5, 6): 2 * batch * m * k * n.
        cost = matmul_cost(
            (3, 4, 5), "float32", (3, 5, 6), "float32", (3, 4, 6), "float32"
        )
        assert cost.flops.value == 2 * 3 * 4 * 5 * 6
        assert cost.bytes.value == 4 * (3 * 4 * 5 + 3 * 5 * 6 + 3 * 4 * 6)

    def test_tt_chain_flops_match_plan_cache(self):
        core_shapes = ((4, 1, 5, 8), (4, 8, 5, 8), (4, 8, 5, 1))
        plan = get_plan_cache().chain_plan("unit", core_shapes)
        assert tt_chain_flops_per_row(core_shapes) == plan.flops_per_row


class TestRuleCatalog:
    def test_catalog_ids_are_unique_and_complete(self):
        ids = [rule.id for rule in PERF_RULES.values()]
        assert len(ids) == len(set(ids))
        assert {f"PERF{n:03d}" for n in range(8)} == set(ids)

    def test_unknown_select_raises(self):
        with pytest.raises(KeyError):
            perfcheck_source("x = 1", select=["no-such-rule"])


HOT_ALLOC = """
from repro.backend import get_backend
from repro.backend.protocol import ZONE_TT_BACKWARD

def f(g):
    bk = get_backend()
    with bk.zone(ZONE_TT_BACKWARD):
        for k in range(4):
            seed = bk.ones((8, 1, 1), dtype="float32")
    return seed
"""


class TestRules:
    def test_hot_loop_alloc_fires(self):
        assert "PERF001" in _rules(HOT_ALLOC)

    def test_hot_loop_alloc_needs_zone_and_loop(self):
        no_zone = HOT_ALLOC.replace(
            "with bk.zone(ZONE_TT_BACKWARD):", "if True:"
        )
        assert "PERF001" not in _rules(no_zone)

    def test_pragma_suppresses(self):
        suppressed = HOT_ALLOC.replace(
            'dtype="float32")',
            'dtype="float32")  # reprolint: disable=hot-loop-alloc',
        )
        result = perfcheck_source(suppressed, path=ZONE_REL, rel=ZONE_REL)
        assert result.findings == [] and result.suppressed == 1

    def test_select_filters_rules(self):
        assert _rules(HOT_ALLOC, select=["layout-churn"]) == []
        assert "PERF001" in _rules(HOT_ALLOC, select=["PERF001"])

    def test_unfused_contraction_is_warning(self):
        src = """
from repro.backend import get_backend
from repro.backend.protocol import ZONE_TT_FORWARD

def f(a, b, c):
    bk = get_backend()
    with bk.zone(ZONE_TT_FORWARD):
        tmp = bk.matmul(a, b)
        return bk.matmul(tmp, c)
"""
        result = perfcheck_source(src, path=ZONE_REL, rel=ZONE_REL)
        assert [f.rule_id for f in result.findings] == ["PERF002"]
        assert result.ok, "PERF002 is advisory and must not fail the gate"

    def test_layout_churn_only_in_kernel_paths(self):
        src = "def f(x):\n    return x.transpose(0, 2, 1).reshape(4, 6)\n"
        assert "PERF003" in _rules(src)
        assert _rules(src, rel="repro/bench/report.py") == []

    def test_zone_param_default_binds_declared_zone(self):
        # Chain kernels declare their zone as a default parameter; the
        # body must be analyzed under it (the tt_chain_backward pattern).
        src = """
from repro.backend import get_backend
from repro.backend.protocol import ZONE_TT_BACKWARD

def kernel(g, zone=ZONE_TT_BACKWARD):
    bk = get_backend()
    with bk.zone(zone):
        for k in range(4):
            seed = bk.ones((8, 1, 1), dtype="float32")
    return seed
"""
        assert "PERF001" in _rules(src)


class TestFusionGraph:
    def _result(self, source, rel=ZONE_REL):
        ctx = build_context(rel, rel, source)
        return interpret_module_perf(ctx)

    def test_chain_extracted_with_symbolic_shapes(self):
        src = """
from repro.backend import get_backend
from repro.backend.protocol import ZONE_EFFTT_FORWARD

def forward(table, idx, core, batch, r):
    bk = get_backend()
    with bk.zone(ZONE_EFFTT_FORWARD):
        rows = bk.gather_rows(table, idx)
        flat = rows.reshape(batch, r)
        return bk.matmul(flat, core)
"""
        result = self._result(src)
        chains = [c for c in result.chains if c.zone == "efftt_forward"]
        assert len(chains) == 1
        ops = [node.op for node in chains[0].nodes]
        assert ops == ["gather_rows", "reshape", "matmul"]
        reshape_node = chains[0].nodes[1]
        assert reshape_node.out_shape == (SymDim("batch"), SymDim("r"))

    def test_escaped_value_breaks_chain(self):
        src = """
from repro.backend import get_backend
from repro.backend.protocol import ZONE_EFFTT_FORWARD

state = {}

def forward(table, idx, core, batch, r):
    bk = get_backend()
    with bk.zone(ZONE_EFFTT_FORWARD):
        rows = bk.gather_rows(table, idx)
        state["rows"] = rows
        flat = rows.reshape(batch, r)
        return bk.matmul(flat, core)
"""
        result = self._result(src)
        for chain in result.chains:
            assert [n.op for n in chain.nodes] != [
                "gather_rows", "reshape", "matmul"
            ], "escaped gather result must not start a fusable chain"
