"""Unit tests for the reprolint rule catalog and pragma machinery."""

import pytest

from repro.analysis import Severity, lint_source
from repro.analysis.linter import iter_python_files, lint_paths
from repro.analysis.rules import RULE_REGISTRY


def _rules_of(result):
    return [f.rule for f in result.findings]


class TestUnseededRng:
    def test_unseeded_default_rng_flagged(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        result = lint_source(src, rel="repro/data/foo.py")
        assert _rules_of(result) == ["unseeded-rng"]
        assert result.findings[0].severity is Severity.ERROR
        assert result.findings[0].line == 2

    def test_seeded_default_rng_ok(self):
        src = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert not lint_source(src, rel="repro/data/foo.py").findings

    def test_legacy_global_sampler_flagged(self):
        src = "import numpy as np\nx = np.random.randint(0, 10)\n"
        result = lint_source(src, rel="repro/data/foo.py")
        assert _rules_of(result) == ["unseeded-rng"]

    def test_from_import_resolved(self):
        src = "from numpy.random import default_rng\nrng = default_rng()\n"
        result = lint_source(src, rel="repro/data/foo.py")
        assert _rules_of(result) == ["unseeded-rng"]

    def test_rng_module_exempt(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert not lint_source(src, rel="repro/utils/rng.py").findings

    def test_generator_annotation_not_flagged(self):
        src = (
            "import numpy as np\n"
            "def f(rng: np.random.Generator) -> None:\n"
            "    rng.random(3)\n"
        )
        assert not lint_source(src, rel="repro/data/foo.py").findings


class TestWallClock:
    def test_perf_counter_in_system_flagged(self):
        src = "import time\nt = time.perf_counter()\n"
        result = lint_source(src, rel="repro/system/foo.py")
        assert _rules_of(result) == ["wall-clock"]

    def test_from_import_alias_resolved(self):
        src = "from time import perf_counter as pc\nt = pc()\n"
        result = lint_source(src, rel="repro/serving/foo.py")
        assert _rules_of(result) == ["wall-clock"]

    def test_outside_zone_ok(self):
        src = "import time\nt = time.perf_counter()\n"
        assert not lint_source(src, rel="repro/utils/timer.py").findings

    def test_time_sleep_not_flagged(self):
        src = "import time\ntime.sleep(0.1)\n"
        assert not lint_source(src, rel="repro/system/foo.py").findings


class TestImplicitDtype:
    def test_zeros_without_dtype_flagged(self):
        src = "import numpy as np\nx = np.zeros((4, 4))\n"
        result = lint_source(src, rel="repro/embeddings/foo.py")
        assert _rules_of(result) == ["implicit-dtype"]

    def test_zeros_with_dtype_ok(self):
        src = "import numpy as np\nx = np.zeros((4, 4), dtype=np.float64)\n"
        assert not lint_source(src, rel="repro/embeddings/foo.py").findings

    def test_zeros_like_exempt(self):
        src = "import numpy as np\ndef f(y):\n    return np.zeros_like(y)\n"
        assert not lint_source(src, rel="repro/nn/foo.py").findings

    def test_outside_kernel_zone_ok(self):
        src = "import numpy as np\nx = np.zeros((4, 4))\n"
        assert not lint_source(src, rel="repro/data/foo.py").findings


class TestBatchLoop:
    def test_batch_range_loop_warned(self):
        src = (
            "def forward(batch_size):\n"
            "    for i in range(batch_size):\n"
            "        pass\n"
        )
        result = lint_source(src, rel="repro/nn/foo.py")
        assert _rules_of(result) == ["batch-loop"]
        assert result.findings[0].severity is Severity.WARNING

    def test_core_loop_not_warned(self):
        src = "def f(cores):\n    for core in cores:\n        pass\n"
        assert not lint_source(src, rel="repro/nn/foo.py").findings


class TestDirectNumpy:
    def test_matmul_in_kernel_zone_flagged(self):
        src = "import numpy as np\ndef f(a, b):\n    return np.matmul(a, b)\n"
        result = lint_source(src, rel="repro/embeddings/foo.py")
        assert _rules_of(result) == ["direct-numpy-in-kernel-zone"]
        assert result.findings[0].severity is Severity.ERROR

    def test_einsum_in_nn_zone_flagged(self):
        src = (
            "import numpy as np\n"
            "def f(a, b):\n"
            "    return np.einsum('bfd,bgd->bfg', a, b)\n"
        )
        result = lint_source(src, rel="repro/nn/foo.py")
        assert _rules_of(result) == ["direct-numpy-in-kernel-zone"]

    def test_dot_in_system_zone_flagged(self):
        src = "import numpy as np\ndef f(a, b):\n    return np.dot(a, b)\n"
        result = lint_source(src, rel="repro/system/foo.py")
        assert _rules_of(result) == ["direct-numpy-in-kernel-zone"]

    def test_backend_routed_call_ok(self):
        src = (
            "from repro.backend import get_backend\n"
            "def f(a, b):\n"
            "    return get_backend().matmul(a, b)\n"
        )
        assert not lint_source(src, rel="repro/embeddings/foo.py").findings

    def test_outside_routed_zone_ok(self):
        src = "import numpy as np\ndef f(a, b):\n    return np.matmul(a, b)\n"
        assert not lint_source(src, rel="repro/data/foo.py").findings

    def test_einsum_path_not_flagged(self):
        src = (
            "import numpy as np\n"
            "def f(a, b):\n"
            "    return np.einsum_path('ij,jk->ik', a, b)\n"
        )
        assert not lint_source(src, rel="repro/backend/foo.py").findings

    def test_file_pragma_covers_reference_backend(self):
        src = (
            "# reprolint: disable-file=direct-numpy-in-kernel-zone\n"
            "import numpy as np\n"
            "def f(a, b):\n"
            "    return np.matmul(a, b)\n"
        )
        result = lint_source(src, rel="repro/backend/foo.py")
        assert not result.findings
        assert result.suppressed == 1


class TestSilentExcept:
    def test_bare_except_flagged(self):
        src = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except:\n"
            "        raise\n"
        )
        result = lint_source(src, rel="repro/system/foo.py")
        assert _rules_of(result) == ["silent-except"]
        assert result.findings[0].severity is Severity.ERROR

    def test_pass_only_handler_flagged(self):
        src = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except ValueError:\n"
            "        pass\n"
        )
        result = lint_source(src, rel="repro/resilience/foo.py")
        assert _rules_of(result) == ["silent-except"]
        assert "ValueError" in result.findings[0].message

    def test_docstring_only_handler_flagged(self):
        src = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except KeyError:\n"
            "        'tolerated'\n"
        )
        result = lint_source(src, rel="repro/embeddings/foo.py")
        assert _rules_of(result) == ["silent-except"]

    def test_handler_that_acts_ok(self):
        src = (
            "def f(log):\n"
            "    try:\n"
            "        g()\n"
            "    except ValueError as exc:\n"
            "        log.append(exc)\n"
        )
        assert not lint_source(src, rel="repro/system/foo.py").findings

    def test_reraise_ok(self):
        src = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except ValueError:\n"
            "        raise RuntimeError('context')\n"
        )
        assert not lint_source(src, rel="repro/serving/foo.py").findings

    def test_outside_zone_ok(self):
        src = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except ValueError:\n"
            "        pass\n"
        )
        assert not lint_source(src, rel="repro/data/foo.py").findings


class TestPragmas:
    def test_line_pragma_suppresses(self):
        src = (
            "import numpy as np\n"
            "x = np.zeros((4, 4))  # reprolint: disable=implicit-dtype\n"
        )
        result = lint_source(src, rel="repro/nn/foo.py")
        assert not result.findings
        assert result.suppressed == 1

    def test_pragma_by_rule_id(self):
        src = (
            "import numpy as np\n"
            "x = np.zeros((4, 4))  # reprolint: disable=REP003\n"
        )
        assert not lint_source(src, rel="repro/nn/foo.py").findings

    def test_disable_all(self):
        src = (
            "import numpy as np\n"
            "x = np.zeros((4, 4))  # reprolint: disable=all\n"
        )
        assert not lint_source(src, rel="repro/nn/foo.py").findings

    def test_file_pragma_suppresses_whole_module(self):
        src = (
            "# reprolint: disable-file=wall-clock\n"
            "import time\n"
            "a = time.time()\n"
            "b = time.perf_counter()\n"
        )
        result = lint_source(src, rel="repro/system/foo.py")
        assert not result.findings
        assert result.suppressed == 2

    def test_pragma_only_covers_its_line(self):
        src = (
            "import numpy as np\n"
            "x = np.zeros((4, 4))  # reprolint: disable=implicit-dtype\n"
            "y = np.zeros((4, 4))\n"
        )
        result = lint_source(src, rel="repro/nn/foo.py")
        assert _rules_of(result) == ["implicit-dtype"]
        assert result.findings[0].line == 3


class TestRunner:
    def test_registry_has_expected_rules(self):
        assert set(RULE_REGISTRY) >= {
            "unseeded-rng",
            "wall-clock",
            "implicit-dtype",
            "batch-loop",
            "direct-numpy-in-kernel-zone",
            "silent-except",
        }

    def test_select_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            lint_source("x = 1\n", rel="repro/foo.py", select=["nope"])

    def test_select_filters(self):
        src = (
            "import numpy as np\nimport time\n"
            "x = np.zeros((4, 4))\n"
            "t = time.time()\n"
        )
        result = lint_source(
            src, rel="repro/embeddings/foo.py", select=["wall-clock"]
        )
        assert _rules_of(result) == ["wall-clock"]

    def test_iter_python_files_missing_path(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            list(iter_python_files([tmp_path / "does_not_exist"]))

    def test_lint_paths_reports_syntax_errors(self, tmp_path):
        bad = tmp_path / "repro" / "broken.py"
        bad.parent.mkdir()
        bad.write_text("def f(:\n")
        result = lint_paths([tmp_path])
        assert [f.rule for f in result.findings] == ["syntax-error"]
        assert not result.ok

    def test_json_output_round_trips(self):
        import json

        src = "import numpy as np\nx = np.zeros(3)\n"
        result = lint_source(src, rel="repro/nn/foo.py")
        payload = json.loads(result.to_json())
        assert payload["findings"][0]["rule"] == "implicit-dtype"
        assert payload["findings"][0]["severity"] == "error"
