"""Performance corpus: every PERF rule must catch its seeded mutant.

``tests/analysis/corpus/perf/`` pairs each ``mut_*`` file (one seeded
performance defect, docstring explains it) with a ``clean_*`` twin that
performs the same computation efficiently.  All files live under
``perf/repro/embeddings/`` so :func:`package_rel` resolves them into a
kernel zone — the path gate for the syntactic rules.  The manifest pins
the exact rule id *and* line of every expected hit: a perfcheck change
that moves, drops, or duplicates a finding fails here.
"""

from pathlib import Path

import pytest

from repro.analysis.perfcheck import perfcheck_paths

CORPUS = Path(__file__).resolve().parent / "corpus" / "perf"
ZONE_DIR = "repro/embeddings"

# relative path -> exact (rule_id, line) hits, in sort order
EXPECTED = {
    f"{ZONE_DIR}/mut_perf001_hot_loop_alloc.py": [("PERF001", 14)],
    f"{ZONE_DIR}/mut_perf002_unfused_contraction.py": [("PERF002", 12)],
    f"{ZONE_DIR}/mut_perf003_layout_churn.py": [("PERF003", 7)],
    f"{ZONE_DIR}/mut_perf004_plan_cache_bypass.py": [("PERF004", 10)],
    f"{ZONE_DIR}/mut_perf005_batch_python_loop.py": [("PERF005", 13)],
    f"{ZONE_DIR}/mut_perf006_redundant_gather.py": [("PERF006", 13)],
    f"{ZONE_DIR}/mut_perf007_dtype_churn.py": [("PERF007", 13)],
}

CLEAN_TWINS = [
    f"{ZONE_DIR}/clean_perf001_loop_variant_alloc.py",
    f"{ZONE_DIR}/clean_perf002_live_intermediate.py",
    f"{ZONE_DIR}/clean_perf003_reshape_first.py",
    f"{ZONE_DIR}/clean_perf004_literal_subscripts.py",
    f"{ZONE_DIR}/clean_perf005_batched_op.py",
    f"{ZONE_DIR}/clean_perf006_write_between.py",
    f"{ZONE_DIR}/clean_perf007_real_cast.py",
]


def test_manifest_matches_corpus_directory():
    mutants = sorted(
        str(p.relative_to(CORPUS)) for p in CORPUS.rglob("mut_*.py")
    )
    assert mutants == sorted(EXPECTED), "mutants and manifest diverged"
    twins = sorted(
        str(p.relative_to(CORPUS)) for p in CORPUS.rglob("clean_*.py")
    )
    assert twins == sorted(CLEAN_TWINS), "clean twins and manifest diverged"


def test_every_perf_rule_is_exercised():
    fired = {rule_id for hits in EXPECTED.values() for rule_id, _ in hits}
    assert fired == {f"PERF{n:03d}" for n in range(1, 8)}


@pytest.mark.parametrize("rel", sorted(EXPECTED))
def test_mutant_is_flagged_at_exact_line(rel):
    result = perfcheck_paths([CORPUS / rel])
    hits = [(f.rule_id, f.line) for f in result.findings]
    assert hits == EXPECTED[rel], (
        f"{rel}: expected {EXPECTED[rel]}, got {hits or 'no findings'}"
    )


@pytest.mark.parametrize("rel", sorted(CLEAN_TWINS))
def test_clean_twin_has_zero_findings(rel):
    result = perfcheck_paths([CORPUS / rel])
    formatted = "\n".join(f.format() for f in result.findings)
    assert result.findings == [], f"false positives on {rel}:\n{formatted}"


def test_whole_perf_corpus_fails_the_gate():
    # PERF002 is advisory (warning), so ok-ness is driven by the six
    # error-level mutants; the corpus as a whole must fail the gate.
    result = perfcheck_paths([CORPUS])
    assert not result.ok
    assert result.files_scanned == len(EXPECTED) + len(CLEAN_TWINS)
    flagged = {
        str(Path(f.path).resolve().relative_to(CORPUS))
        for f in result.findings
    }
    assert flagged == set(EXPECTED), "findings outside the manifest"
