"""Self-application of perfcheck plus the FusionPlan/calibration contract.

Three acceptance gates from the perfcheck design:

1. the shipped ``src/repro`` tree passes its own analyzer (warnings are
   advisory; error-level findings would fail CI here),
2. the emitted FusionPlan names the EL-Rec kernel zones with at least one
   multi-node fusable chain each — the contract a fused backend consumes,
3. the static cost model agrees with measured per-zone counters from an
   instrumented training run (the calibration gate).
"""

import json
from pathlib import Path

from repro.analysis.perfcheck import (
    build_fusion_plan,
    perfcheck_paths,
    run_calibration,
)
from repro.backend.protocol import ZONE_EFFTT_FORWARD, ZONE_TT_BACKWARD

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_shipped_tree_passes_perfcheck():
    result = perfcheck_paths([SRC])
    errors = [f.format() for f in result.findings if f.severity == "error"]
    assert result.ok, "perfcheck failed on shipped tree:\n" + "\n".join(errors)
    assert result.files_scanned > 100


def test_fusion_plan_covers_elrec_kernel_zones():
    plan = build_fusion_plan([SRC])
    assert plan["version"] == 1
    for zone in (ZONE_EFFTT_FORWARD, ZONE_TT_BACKWARD):
        assert zone in plan["zones"], f"no FusionPlan entry for {zone}"
        chains = plan["zones"][zone]["chains"]
        multi = [c for c in chains if len(c["ops"]) >= 2]
        assert multi, f"{zone} has no multi-node fusable chain"
        for chain in multi:
            assert chain["path"].endswith(".py")
            for op in chain["ops"]:
                assert set(op) >= {"op", "line", "out_shape", "flops", "bytes"}


def test_fusion_plan_json_round_trips():
    plan = build_fusion_plan([SRC])
    assert json.loads(json.dumps(plan)) == plan


def test_calibration_matches_instrumented_counters():
    report = run_calibration(steps=2)
    assert report.losses_match, "CalibrationBackend changed training results"
    assert report.zones, "instrumented run recorded no kernel zones"
    assert report.ok, (
        "static cost model out of tolerance: "
        + ", ".join(
            f"{z.zone}: flops {z.flops_rel_err:.2%}, bytes {z.bytes_rel_err:.2%}"
            for z in report.zones
        )
    )
    # The shared plan cache makes the estimate exact, not merely close.
    assert report.max_rel_err == 0.0
