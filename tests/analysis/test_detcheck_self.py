"""Self-check: the shipped tree passes its own determinism analyzer.

detcheck is one-sided (findings only on *provable* determinism
violations), so the repo must ship with zero findings — any hit here
is either a real reproducibility bug or an analyzer false positive,
and both block the tree.  The five true positives the first run found
(unsorted checkpoint/CRC iteration, naive float totals, unsorted
residual export) were fixed in the same change that added the checker;
``tests/sharding/test_order_invariance.py`` pins those fixes.
"""

from pathlib import Path

import repro
from repro.analysis.detcheck import detcheck_paths

PKG = Path(repro.__file__).resolve().parent


def test_shipped_tree_detchecks_clean():
    result = detcheck_paths([PKG])
    formatted = "\n".join(f.format() for f in result.findings)
    assert result.findings == [], f"detcheck findings:\n{formatted}"
    assert result.files_scanned > 80


def test_self_check_covers_the_state_plumbing():
    # The analyzer must actually visit the checkpoint/sharding state
    # paths the DET rules exist for, not skip them.
    targets = [
        PKG / "resilience" / "checkpoint.py",
        PKG / "models" / "serialization.py",
        PKG / "sharding" / "server.py",
        PKG / "sharding" / "placement.py",
        PKG / "frameworks" / "base.py",
    ]
    result = detcheck_paths(targets)
    assert result.files_scanned == len(targets)
    assert result.findings == []
