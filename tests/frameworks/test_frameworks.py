"""Tests for the framework strategy models.

These tests pin the paper's qualitative results: orderings, crossover
behaviour, and feasibility boundaries — not absolute times.
"""

import numpy as np
import pytest

from repro.frameworks import (
    ALL_FRAMEWORKS,
    DlrmPS,
    ELRec,
    FAE,
    HugeCTR,
    TorchRec,
    TTRec,
    WorkloadProfile,
)
from repro.system.devices import (
    HostProfile,
    KernelCostModel,
    TESLA_T4,
    TESLA_V100,
)


@pytest.fixture(scope="module")
def cost():
    # Fixed synthetic calibration: deterministic tests.
    return KernelCostModel(HostProfile(gemm_gflops=100.0, gather_gbps=10.0))


@pytest.fixture(scope="module")
def profile():
    """A Criteo-Kaggle-shaped workload with representative kernel times.

    Times reflect the measured substrate relationships: Eff-TT is
    faster than TT-Rec (reuse + aggregation), dense CPU-side work is
    substantial, MLP dominates GPU compute.
    """
    return WorkloadProfile(
        name="criteo-kaggle",
        batch_size=4096,
        embedding_dim=64,
        table_rows=(10_131_227, 8_351_593, 5_461_306, 2_202_608, 100_000) + (1000,) * 21,
        indices_per_batch=4096 * 26,
        host_mlp_time=0.080,
        host_dense_emb_time=0.060,
        host_tt_fwd_time=0.050,
        host_tt_bwd_time=0.500,
        host_efftt_fwd_time=0.020,
        host_efftt_bwd_time=0.120,
        hot_fraction=0.75,
        tt_param_bytes=int(40e6),
    )


class TestPaperFig11Ordering:
    """Single-GPU end-to-end: EL-Rec > FAE/TT-Rec > DLRM (Fig. 11)."""

    @pytest.mark.parametrize("device", [TESLA_V100, TESLA_T4])
    def test_el_rec_fastest(self, cost, profile, device):
        times = {
            F.name: F(cost).iteration_time(profile, device).total
            for F in (DlrmPS, FAE, TTRec, ELRec)
        }
        assert times["EL-Rec"] == min(times.values())
        assert times["DLRM"] == max(times.values())

    def test_speedup_magnitudes(self, cost, profile):
        dlrm = DlrmPS(cost).iteration_time(profile, TESLA_V100)
        el = ELRec(cost).iteration_time(profile, TESLA_V100)
        fae = FAE(cost).iteration_time(profile, TESLA_V100)
        ttr = TTRec(cost).iteration_time(profile, TESLA_V100)
        # paper: ~3x over DLRM, ~1.5x over FAE, ~1.4x over TT-Rec.  Our
        # CPU substrate exaggerates the DLRM baseline's CPU-side cost
        # (single host thread vs the paper's Xeon), so upper bounds are
        # loose; the *ordering* and >1 factors are the pinned claims.
        assert 1.5 < el.speedup_over(dlrm) < 120
        assert 1.1 < el.speedup_over(fae) < 60
        assert 1.05 < el.speedup_over(ttr) < 20

    def test_el_rec_beats_tt_rec_more_on_backward_heavy(self, cost, profile):
        el = ELRec(cost).iteration_time(profile, TESLA_V100)
        ttr = TTRec(cost).iteration_time(profile, TESLA_V100)
        assert (
            ttr.components["tt_backward_update"]
            > el.components["efftt_backward_fused_update"]
        )

    def test_throughput_helper(self, cost, profile):
        bd = ELRec(cost).iteration_time(profile, TESLA_V100)
        assert bd.throughput(4096) == pytest.approx(4096 / bd.total)


class TestPaperFig12MultiGpu:
    def test_el_rec_scales_with_gpus(self, cost, profile):
        el = ELRec(cost)
        t1 = el.iteration_time(profile, TESLA_V100, num_gpus=1).total
        t4 = el.iteration_time(profile, TESLA_V100, num_gpus=4).total
        assert t4 < t1  # more GPUs -> faster iterations

    def test_el_rec_4gpu_beats_dlrm_4gpu(self, cost, profile):
        el = ELRec(cost).iteration_time(profile, TESLA_V100, num_gpus=4)
        dl = DlrmPS(cost).iteration_time(profile, TESLA_V100, num_gpus=4)
        assert el.feasible and dl.feasible
        assert el.total < dl.total

    def test_dlrm_multi_gpu_infeasible_when_tables_too_big(self, cost):
        huge = WorkloadProfile(
            name="huge",
            batch_size=4096,
            embedding_dim=128,
            table_rows=(500_000_000,),
            indices_per_batch=4096,
            host_mlp_time=0.05,
            host_dense_emb_time=0.01,
            host_tt_fwd_time=0.01,
            host_tt_bwd_time=0.05,
            host_efftt_fwd_time=0.005,
            host_efftt_bwd_time=0.02,
            tt_param_bytes=int(10e6),
        )
        bd = DlrmPS(cost).iteration_time(huge, TESLA_V100, num_gpus=4)
        assert not bd.feasible
        assert bd.throughput(4096) == 0.0


class TestPaperFig13LargeTable:
    @pytest.fixture
    def large_table(self):
        """The paper's 40M x 128 table (~19 GB dense, exceeds 16 GB HBM)."""
        return WorkloadProfile(
            name="40M-table",
            batch_size=4096,
            embedding_dim=128,
            table_rows=(40_000_000,),
            indices_per_batch=4096,
            host_mlp_time=0.040,
            host_dense_emb_time=0.010,
            host_tt_fwd_time=0.008,
            host_tt_bwd_time=0.060,
            host_efftt_fwd_time=0.004,
            host_efftt_bwd_time=0.020,
            tt_param_bytes=int(25e6),
        )

    def test_dense_frameworks_infeasible_on_one_gpu(self, cost, large_table):
        for F in (HugeCTR, TorchRec):
            bd = F(cost).iteration_time(large_table, TESLA_V100, num_gpus=1)
            assert not bd.feasible

    def test_el_rec_feasible_on_one_gpu(self, cost, large_table):
        bd = ELRec(cost).iteration_time(large_table, TESLA_V100, num_gpus=1)
        assert bd.feasible
        assert ELRec(cost).fits_single_gpu(large_table, TESLA_V100)
        assert not HugeCTR(cost).fits_single_gpu(large_table, TESLA_V100)

    def test_el_rec_beats_sharded_baselines_at_4gpus(self, cost, large_table):
        el = ELRec(cost).iteration_time(large_table, TESLA_V100, num_gpus=4)
        hc = HugeCTR(cost).iteration_time(large_table, TESLA_V100, num_gpus=4)
        tr = TorchRec(cost).iteration_time(large_table, TESLA_V100, num_gpus=4)
        assert hc.feasible and tr.feasible
        assert el.total < hc.total
        assert el.total < tr.total


class TestPaperFig16Pipeline:
    def test_pipeline_beats_sequential(self, cost, profile):
        el = ELRec(cost)
        pipe = el.pipelined_iteration_time(
            profile, TESLA_V100, host_fraction=0.5, prefetch_depth=4
        )
        seq = el.pipelined_iteration_time(
            profile, TESLA_V100, host_fraction=0.5, pipelined=False
        )
        assert pipe.total < seq.total

    def test_zero_host_fraction_matches_pure_gpu_stage(self, cost, profile):
        el = ELRec(cost)
        pipe = el.pipelined_iteration_time(
            profile, TESLA_V100, host_fraction=0.0, prefetch_depth=4
        )
        assert pipe.total > 0

    def test_invalid_fraction(self, cost, profile):
        with pytest.raises(ValueError):
            ELRec(cost).pipelined_iteration_time(
                profile, TESLA_V100, host_fraction=1.5
            )


class TestTable1:
    def test_all_frameworks_report_rows(self, cost):
        for F in ALL_FRAMEWORKS:
            row = F(cost).table1_row()
            assert "framework" in row

    def test_paper_table1_contents(self, cost):
        el = ELRec(cost).table1_row()
        assert el["cpu_gpu_comm_latency"] == "low"
        assert el["compression_overhead"] == "low"
        tt = TTRec(cost).table1_row()
        assert tt["compression_overhead"] == "high"
        dl = DlrmPS(cost).table1_row()
        assert dl["embedding_compression"] == "no"
        assert dl["cpu_gpu_comm_latency"] == "high"


class TestWorkloadProfile:
    def test_shard_scales_times(self, profile):
        half = profile.shard(2)
        assert half.batch_size == profile.batch_size // 2
        assert half.host_mlp_time == pytest.approx(profile.host_mlp_time / 2)

    def test_transfer_bytes(self, profile):
        assert (
            profile.embedding_transfer_bytes
            == 4096 * 26 * 64 * 4
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile(
                name="x", batch_size=0, embedding_dim=1, table_rows=(1,),
                indices_per_batch=1, host_mlp_time=1, host_dense_emb_time=1,
                host_tt_fwd_time=1, host_tt_bwd_time=1,
                host_efftt_fwd_time=1, host_efftt_bwd_time=1,
            )
        with pytest.raises(ValueError):
            WorkloadProfile(
                name="x", batch_size=1, embedding_dim=1, table_rows=(1,),
                indices_per_batch=1, host_mlp_time=-1, host_dense_emb_time=1,
                host_tt_fwd_time=1, host_tt_bwd_time=1,
                host_efftt_fwd_time=1, host_efftt_bwd_time=1,
            )
