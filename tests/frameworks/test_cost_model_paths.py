"""Tests for the analytic TT-kernel projection and collective details."""

import pytest

from repro.frameworks import ELRec, TTRec, WorkloadProfile
from repro.system.devices import HostProfile, KernelCostModel, TESLA_V100
from repro.system.multi_gpu import all2all_time, allgather_time


@pytest.fixture(scope="module")
def cost():
    return KernelCostModel(
        HostProfile(gemm_gflops=100.0, gather_gbps=10.0, batched_gemm_gflops=8.0)
    )


def _profile(**overrides):
    base = dict(
        name="x",
        batch_size=1024,
        embedding_dim=32,
        table_rows=(1_000_000,),
        indices_per_batch=1024,
        host_mlp_time=0.01,
        host_dense_emb_time=0.01,
        host_tt_fwd_time=0.1,
        host_tt_bwd_time=0.4,
        host_efftt_fwd_time=0.05,
        host_efftt_bwd_time=0.2,
        tt_param_bytes=int(1e6),
    )
    base.update(overrides)
    return WorkloadProfile(**base)


class TestAnalyticProjection:
    def test_flops_path_used_when_available(self, cost):
        with_flops = _profile(
            efftt_gflops_fwd=1.0, efftt_gflops_bwd=2.0
        )
        without = _profile()
        el = ELRec(cost)
        bd_flops = el.iteration_time(with_flops, TESLA_V100)
        bd_scaled = el.iteration_time(without, TESLA_V100)
        expected = 1.0 / TESLA_V100.effective_batched_gflops
        assert bd_flops.components["efftt_lookup"] == pytest.approx(expected)
        # fallback path scales the host wall clock instead
        assert bd_scaled.components["efftt_lookup"] == pytest.approx(
            0.05 * 8.0 / TESLA_V100.effective_batched_gflops
        )

    def test_tt_rec_flops_path(self, cost):
        prof = _profile(tt_gflops_fwd=2.0, tt_gflops_bwd=4.0)
        bd = TTRec(cost).iteration_time(prof, TESLA_V100)
        assert bd.components["tt_lookup"] == pytest.approx(
            2.0 / TESLA_V100.effective_batched_gflops
        )

    def test_flops_shard_scaling(self, cost):
        prof = _profile(efftt_gflops_fwd=4.0, efftt_gflops_bwd=4.0)
        half = prof.shard(4)
        assert half.efftt_gflops_fwd == pytest.approx(1.0)

    def test_batched_kernel_time_validation(self, cost):
        with pytest.raises(ValueError):
            cost.batched_kernel_time(-1.0, TESLA_V100)
        assert cost.batched_kernel_time(0.0, TESLA_V100) == 0.0


class TestCollectiveMessages:
    def test_per_message_latency(self):
        fused = all2all_time(1e6, 4, TESLA_V100, latency_s=1e-4, num_messages=1)
        unfused = all2all_time(
            1e6, 4, TESLA_V100, latency_s=1e-4, num_messages=26
        )
        assert unfused - fused == pytest.approx(25 * 3 * 1e-4)

    def test_allgather_messages(self):
        fused = allgather_time(1e6, 4, TESLA_V100, latency_s=1e-4)
        per_shard = allgather_time(
            1e6, 4, TESLA_V100, latency_s=1e-4, num_messages=4
        )
        assert per_shard > fused

    def test_invalid_messages(self):
        with pytest.raises(ValueError):
            all2all_time(1e6, 4, TESLA_V100, num_messages=0)


class TestHostProfileDefaults:
    def test_batched_default_derived(self):
        profile = HostProfile(gemm_gflops=100.0, gather_gbps=10.0)
        assert profile.batched_gemm_gflops == pytest.approx(10.0)

    def test_explicit_batched_kept(self):
        profile = HostProfile(
            gemm_gflops=100.0, gather_gbps=10.0, batched_gemm_gflops=3.0
        )
        assert profile.batched_gemm_gflops == 3.0
