"""Tests for FAE's hot/cold batch profiling."""

import numpy as np
import pytest

from repro.data.dataloader import SyntheticClickLog
from repro.data.datasets import criteo_kaggle_like
from repro.frameworks.fae import profile_hot_fraction


class TestProfileHotFraction:
    def test_all_hot_when_everything_cached(self):
        batches = [[np.array([0, 1]), np.array([2, 3])]]
        assert profile_hot_fraction(batches, [4], hot_rows_fraction=1.0) == 1.0

    def test_cold_batch_detected(self):
        # table of 100 rows, hot set = top-1; batch 0 hits only the hot
        # row, batch 1 hits a cold row.
        stream = [np.array([7, 7, 7]), np.array([7, 55])]
        fraction = profile_hot_fraction([stream], [100], hot_rows_fraction=0.01)
        assert fraction == pytest.approx(0.5)

    def test_any_cold_table_makes_batch_cold(self):
        # two tables; batch 0 hot in both, batch 1 cold in table 2 only
        t1 = [np.array([3, 3]), np.array([3])]
        t2 = [np.array([9, 9]), np.array([42])]
        fraction = profile_hot_fraction(
            [t1, t2], [100, 100], hot_rows_fraction=0.01
        )
        assert fraction == pytest.approx(0.5)

    def test_skewed_stream_mostly_hot(self):
        """On power-law data a small cache covers most batches — the
        paper's ~75% hot profiling result."""
        spec = criteo_kaggle_like(scale=1e-4)
        log = SyntheticClickLog(spec, batch_size=64, seed=0)
        table_ids = [2, 11]  # the two largest tables
        streams = [
            [log.batch(b).sparse_indices[t] for b in range(12)]
            for t in table_ids
        ]
        rows = [spec.tables[t].num_rows for t in table_ids]
        small_cache = profile_hot_fraction(streams, rows, hot_rows_fraction=0.05)
        big_cache = profile_hot_fraction(streams, rows, hot_rows_fraction=0.5)
        assert 0.0 <= small_cache <= big_cache <= 1.0
        assert big_cache > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            profile_hot_fraction([[np.array([0])]], [4, 5])
        with pytest.raises(ValueError):
            profile_hot_fraction(
                [[np.array([0])], [np.array([0]), np.array([1])]], [4, 4]
            )
        with pytest.raises(ValueError):
            profile_hot_fraction([[]], [4])
        with pytest.raises(ValueError):
            profile_hot_fraction([[np.array([0])]], [4], hot_rows_fraction=1.5)
