"""Tests for optimizers."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adagrad, SparseSGD


def _param(value) -> Parameter:
    p = Parameter(np.asarray(value, dtype=np.float64))
    return p


class TestSGD:
    def test_basic_step(self):
        p = _param([1.0, 2.0])
        p.grad = np.array([0.5, -0.5])
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95, 2.05])

    def test_skips_none_grad(self):
        p = _param([1.0])
        SGD([p], lr=0.1).step()
        np.testing.assert_array_equal(p.data, [1.0])

    def test_momentum(self):
        p = _param([0.0])
        sgd = SGD([p], lr=1.0, momentum=0.5)
        p.grad = np.array([1.0])
        sgd.step()  # v=1, p=-1
        p.grad = np.array([1.0])
        sgd.step()  # v=1.5, p=-2.5
        np.testing.assert_allclose(p.data, [-2.5])

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.0)
        with pytest.raises(ValueError):
            SGD([], lr=0.1, momentum=1.0)

    def test_zero_grad(self):
        p = _param([1.0])
        p.grad = np.array([1.0])
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None


class TestSparseSGD:
    def test_row_update(self):
        table = np.ones((4, 2))
        SparseSGD(0.5).step_rows(
            table, np.array([1, 3]), np.array([[2.0, 2.0], [4.0, 4.0]])
        )
        np.testing.assert_allclose(table[1], [0.0, 0.0])
        np.testing.assert_allclose(table[3], [-1.0, -1.0])
        np.testing.assert_allclose(table[0], [1.0, 1.0])

    def test_duplicate_rows_accumulate(self):
        table = np.zeros((2, 1))
        SparseSGD(1.0).step_rows(
            table, np.array([0, 0]), np.array([[1.0], [2.0]])
        )
        np.testing.assert_allclose(table[0], [-3.0])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            SparseSGD(0.1).step_rows(
                np.zeros((2, 2)), np.array([0]), np.zeros((2, 2))
            )

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SparseSGD(0.0)


class TestAdagrad:
    def test_first_step_is_lr_sign(self):
        p = _param([0.0])
        p.grad = np.array([2.0])
        Adagrad([p], lr=0.1).step()
        # update = lr * g / (sqrt(g^2) + eps) ~ lr
        np.testing.assert_allclose(p.data, [-0.1], atol=1e-6)

    def test_accumulates_and_slows(self):
        p = _param([0.0])
        opt = Adagrad([p], lr=0.1)
        p.grad = np.array([1.0])
        opt.step()
        first = abs(p.data[0])
        prev = p.data[0]
        p.grad = np.array([1.0])
        opt.step()
        second = abs(p.data[0] - prev)
        assert second < first

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            Adagrad([], lr=0.1, eps=0.0)


class TestWeightDecay:
    def test_decay_pulls_toward_zero(self):
        p = _param([2.0])
        p.grad = np.array([0.0])
        SGD([p], lr=0.1, weight_decay=0.5).step()
        np.testing.assert_allclose(p.data, [2.0 - 0.1 * 0.5 * 2.0])

    def test_decay_adds_to_gradient(self):
        p = _param([1.0])
        p.grad = np.array([1.0])
        SGD([p], lr=0.1, weight_decay=1.0).step()
        # update = grad + wd*param = 2.0
        np.testing.assert_allclose(p.data, [1.0 - 0.2])

    def test_decay_feeds_momentum(self):
        p = _param([1.0])
        opt = SGD([p], lr=1.0, momentum=0.5, weight_decay=1.0)
        p.grad = np.array([0.0])
        opt.step()  # v = 1.0 (decay only), p = 0.0
        np.testing.assert_allclose(p.data, [0.0])
        p.grad = np.array([0.0])
        opt.step()  # v = 0.5*1.0 + 0.0 = 0.5, p = -0.5
        np.testing.assert_allclose(p.data, [-0.5])

    def test_negative_decay_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1, weight_decay=-0.1)
