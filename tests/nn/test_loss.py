"""Tests for BCE-with-logits loss."""

import numpy as np
import pytest

from repro.nn.loss import BCEWithLogitsLoss
from tests.conftest import assert_grad_close, numerical_gradient


class TestForward:
    def test_known_value(self):
        loss = BCEWithLogitsLoss()
        # logit 0 -> p=0.5 -> loss = ln 2 regardless of label
        value = loss.forward(np.zeros(4), np.array([0.0, 1.0, 0.0, 1.0]))
        assert value == pytest.approx(np.log(2.0))

    def test_perfect_prediction_low_loss(self):
        loss = BCEWithLogitsLoss()
        value = loss.forward(np.array([50.0, -50.0]), np.array([1.0, 0.0]))
        assert value < 1e-10

    def test_extreme_logits_finite(self):
        loss = BCEWithLogitsLoss()
        value = loss.forward(np.array([1e4, -1e4]), np.array([0.0, 1.0]))
        assert np.isfinite(value)

    def test_invalid_targets(self):
        with pytest.raises(ValueError):
            BCEWithLogitsLoss().forward(np.zeros(2), np.array([0.0, 2.0]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            BCEWithLogitsLoss().forward(np.zeros(2), np.zeros(3))

    def test_empty_batch(self):
        with pytest.raises(ValueError):
            BCEWithLogitsLoss().forward(np.zeros(0), np.zeros(0))


class TestBackward:
    def test_before_forward(self):
        with pytest.raises(RuntimeError):
            BCEWithLogitsLoss().backward()

    def test_numerical_gradient(self, rng):
        loss = BCEWithLogitsLoss()
        logits = rng.standard_normal(6)
        targets = (rng.random(6) > 0.5).astype(float)
        loss.forward(logits, targets)
        analytic = loss.backward()

        def scalar(z):
            fresh = BCEWithLogitsLoss()
            return fresh.forward(z, targets)

        numeric = numerical_gradient(scalar, logits.copy())
        assert_grad_close(analytic, numeric)

    def test_gradient_sign(self):
        loss = BCEWithLogitsLoss()
        loss.forward(np.array([0.0]), np.array([1.0]))
        grad = loss.backward()
        assert grad[0] < 0  # push the logit up toward the positive label


class TestPredictProba:
    def test_matches_sigmoid(self, rng):
        z = rng.standard_normal(10)
        np.testing.assert_allclose(
            BCEWithLogitsLoss.predict_proba(z), 1.0 / (1.0 + np.exp(-z))
        )
