"""Tests for activation layers."""

import numpy as np
import pytest

from repro.nn.activations import ReLU, Sigmoid
from tests.conftest import assert_grad_close, numerical_gradient


class TestReLU:
    def test_forward(self):
        layer = ReLU()
        out = layer.forward(np.array([[-1.0, 0.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 0.0, 2.0]])

    def test_backward_masks(self):
        layer = ReLU()
        layer.forward(np.array([[-1.0, 3.0]]))
        grad = layer.backward(np.array([[5.0, 7.0]]))
        np.testing.assert_array_equal(grad, [[0.0, 7.0]])

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.zeros((1, 1)))

    def test_numerical_gradient(self, rng):
        layer = ReLU()
        x = rng.standard_normal((3, 4)) + 0.1  # keep away from the kink
        g = rng.standard_normal((3, 4))
        layer.forward(x)
        analytic = layer.backward(g)
        numeric = numerical_gradient(
            lambda xi: float((np.maximum(xi, 0.0) * g).sum()), x.copy()
        )
        assert_grad_close(analytic, numeric)


class TestSigmoid:
    def test_range(self, rng):
        out = Sigmoid().forward(rng.standard_normal((10, 10)) * 10)
        assert out.min() > 0.0 and out.max() < 1.0

    def test_extreme_values_stable(self):
        out = Sigmoid().forward(np.array([[-1000.0, 1000.0]]))
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [[0.0, 1.0]], atol=1e-12)

    def test_half_at_zero(self):
        assert Sigmoid().forward(np.array([[0.0]]))[0, 0] == pytest.approx(0.5)

    def test_numerical_gradient(self, rng):
        layer = Sigmoid()
        x = rng.standard_normal((3, 4))
        g = rng.standard_normal((3, 4))
        layer.forward(x)
        analytic = layer.backward(g)

        def scalar(xi):
            return float((1.0 / (1.0 + np.exp(-xi)) * g).sum())

        numeric = numerical_gradient(scalar, x.copy())
        assert_grad_close(analytic, numeric)

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            Sigmoid().backward(np.zeros((1, 1)))
