"""Tests for the DLRM dot-product interaction layer."""

import numpy as np
import pytest

from repro.nn.interaction import DotInteraction
from tests.conftest import assert_grad_close, numerical_gradient


class TestForward:
    def test_output_dim(self):
        assert DotInteraction.output_dim(16, 26) == 16 + 27 * 26 // 2

    def test_shape(self, rng):
        layer = DotInteraction()
        dense = rng.standard_normal((4, 8))
        embs = [rng.standard_normal((4, 8)) for _ in range(3)]
        out = layer.forward(dense, embs)
        assert out.shape == (4, DotInteraction.output_dim(8, 3))

    def test_dense_passthrough(self, rng):
        layer = DotInteraction()
        dense = rng.standard_normal((2, 4))
        embs = [rng.standard_normal((2, 4))]
        out = layer.forward(dense, embs)
        np.testing.assert_array_equal(out[:, :4], dense)

    def test_pairwise_values(self, rng):
        layer = DotInteraction()
        dense = rng.standard_normal((1, 3))
        e1 = rng.standard_normal((1, 3))
        e2 = rng.standard_normal((1, 3))
        out = layer.forward(dense, [e1, e2])
        # lower triangle order: (e1,dense), (e2,dense), (e2,e1)
        assert out[0, 3] == pytest.approx(float((e1 * dense).sum()))
        assert out[0, 4] == pytest.approx(float((e2 * dense).sum()))
        assert out[0, 5] == pytest.approx(float((e2 * e1).sum()))

    def test_shape_mismatch(self, rng):
        layer = DotInteraction()
        with pytest.raises(ValueError):
            layer.forward(
                rng.standard_normal((2, 4)), [rng.standard_normal((2, 5))]
            )


class TestBackward:
    def test_before_forward(self):
        with pytest.raises(RuntimeError):
            DotInteraction().backward(np.zeros((1, 4)))

    def test_numerical_gradients(self, rng):
        layer = DotInteraction()
        dense = rng.standard_normal((2, 3))
        embs = [rng.standard_normal((2, 3)) for _ in range(2)]
        out_dim = DotInteraction.output_dim(3, 2)
        g = rng.standard_normal((2, out_dim))

        layer.forward(dense, embs)
        g_dense, g_embs = layer.backward(g)

        def scalar_dense(d):
            return float((layer.forward(d, embs) * g).sum())

        numeric_dense = numerical_gradient(scalar_dense, dense.copy())
        assert_grad_close(g_dense, numeric_dense, rtol=1e-4)

        for i in range(2):
            def scalar_emb(e, i=i):
                es = [e if j == i else embs[j] for j in range(2)]
                return float((layer.forward(dense, es) * g).sum())

            numeric = numerical_gradient(scalar_emb, embs[i].copy())
            assert_grad_close(g_embs[i], numeric, rtol=1e-4)

    def test_grad_shape_mismatch(self, rng):
        layer = DotInteraction()
        layer.forward(rng.standard_normal((2, 3)), [rng.standard_normal((2, 3))])
        with pytest.raises(ValueError):
            layer.backward(np.zeros((2, 99)))
