"""Tests for the MLP stack."""

import numpy as np
import pytest

from repro.nn.mlp import MLP
from tests.conftest import assert_grad_close, numerical_gradient


class TestConstruction:
    def test_layer_count(self):
        mlp = MLP([4, 8, 2], seed=0)
        # linear, relu, linear
        assert len(mlp._stack) == 3

    def test_sigmoid_output(self):
        mlp = MLP([4, 2], sigmoid_output=True, seed=0)
        out = mlp.forward(np.zeros((1, 4)))
        assert 0.0 < out[0, 0] < 1.0

    def test_too_few_sizes(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_properties(self):
        mlp = MLP([13, 64, 16], seed=0)
        assert mlp.in_features == 13
        assert mlp.out_features == 16

    def test_same_seed_same_weights(self, rng):
        a = MLP([4, 8, 2], seed=5)
        b = MLP([4, 8, 2], seed=5)
        x = rng.standard_normal((3, 4))
        np.testing.assert_array_equal(a.forward(x), b.forward(x))


class TestForwardBackward:
    def test_shape(self, rng):
        mlp = MLP([5, 7, 3], seed=0)
        assert mlp.forward(rng.standard_normal((4, 5))).shape == (4, 3)

    def test_input_gradient_numerical(self, rng):
        mlp = MLP([4, 6, 2], seed=3)
        x = rng.standard_normal((3, 4)) + 0.05
        g = rng.standard_normal((3, 2))
        mlp.forward(x)
        analytic = mlp.backward(g)
        mlp.zero_grad()

        def scalar(xi):
            out = float((mlp.forward(xi) * g).sum())
            return out

        numeric = numerical_gradient(scalar, x.copy())
        assert_grad_close(analytic, numeric, rtol=1e-4)

    def test_parameter_gradients_numerical(self, rng):
        mlp = MLP([3, 4, 2], seed=1)
        x = rng.standard_normal((2, 3))
        g = rng.standard_normal((2, 2))
        mlp.forward(x)
        mlp.backward(g)
        analytic = {name: p.grad.copy() for name, p in mlp.named_parameters()}
        mlp.zero_grad()

        for name, param in mlp.named_parameters():
            p0 = param.data.copy()

            def scalar(pv):
                param.data = pv
                return float((mlp.forward(x) * g).sum())

            numeric = numerical_gradient(scalar, p0.copy())
            param.data = p0
            assert_grad_close(analytic[name], numeric, rtol=1e-4)

    def test_training_reduces_loss(self, rng):
        # tiny regression sanity: MLP can fit a linear map
        mlp = MLP([2, 16, 1], seed=0)
        x = rng.standard_normal((64, 2))
        y = (x @ np.array([[1.0], [-2.0]]))
        from repro.nn.optim import SGD

        sgd = SGD(mlp.parameters(), lr=0.05)
        losses = []
        for _ in range(100):
            pred = mlp.forward(x)
            diff = pred - y
            losses.append(float((diff**2).mean()))
            mlp.backward(2 * diff / diff.size)
            sgd.step()
            mlp.zero_grad()
        assert losses[-1] < 0.2 * losses[0]
