"""Tests for the Linear layer, including numerical gradient checks."""

import numpy as np
import pytest

from repro.nn.linear import Linear
from tests.conftest import assert_grad_close, numerical_gradient


class TestForward:
    def test_shape(self, rng):
        layer = Linear(4, 3, seed=0)
        out = layer.forward(rng.standard_normal((5, 4)))
        assert out.shape == (5, 3)

    def test_matches_manual(self, rng):
        layer = Linear(4, 3, seed=0)
        x = rng.standard_normal((2, 4))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer.forward(x), expected)

    def test_no_bias(self, rng):
        layer = Linear(4, 3, bias=False, seed=0)
        assert layer.bias is None
        x = rng.standard_normal((2, 4))
        np.testing.assert_allclose(layer.forward(x), x @ layer.weight.data.T)

    def test_bad_shape(self, rng):
        layer = Linear(4, 3, seed=0)
        with pytest.raises(ValueError):
            layer.forward(rng.standard_normal((2, 5)))

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_init_bound(self):
        layer = Linear(100, 50, seed=0)
        bound = 1.0 / np.sqrt(100)
        assert np.abs(layer.weight.data).max() <= bound


class TestBackward:
    def test_requires_forward(self):
        layer = Linear(2, 2, seed=0)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))

    def test_input_gradient_numerical(self, rng):
        layer = Linear(4, 3, seed=1)
        x = rng.standard_normal((3, 4))
        g_out = rng.standard_normal((3, 3))

        def scalar(x_in):
            return float((layer.forward(x_in) * g_out).sum())

        analytic = None
        layer.forward(x)
        analytic = layer.backward(g_out)
        layer.zero_grad()
        numeric = numerical_gradient(scalar, x.copy())
        assert_grad_close(analytic, numeric)

    def test_weight_gradient_numerical(self, rng):
        layer = Linear(3, 2, seed=2)
        x = rng.standard_normal((4, 3))
        g_out = rng.standard_normal((4, 2))
        layer.forward(x)
        layer.backward(g_out)
        analytic_w = layer.weight.grad.copy()
        analytic_b = layer.bias.grad.copy()
        layer.zero_grad()

        w0 = layer.weight.data.copy()

        def scalar_w(w):
            layer.weight.data = w
            out = float((layer.forward(x) * g_out).sum())
            layer._cached_input = None
            return out

        numeric_w = numerical_gradient(scalar_w, w0.copy())
        layer.weight.data = w0
        assert_grad_close(analytic_w, numeric_w)

        b0 = layer.bias.data.copy()

        def scalar_b(b):
            layer.bias.data = b
            out = float((layer.forward(x) * g_out).sum())
            layer._cached_input = None
            return out

        numeric_b = numerical_gradient(scalar_b, b0.copy())
        layer.bias.data = b0
        assert_grad_close(analytic_b, numeric_b)

    def test_grad_accumulates(self, rng):
        layer = Linear(3, 2, seed=0)
        x = rng.standard_normal((2, 3))
        g = rng.standard_normal((2, 2))
        layer.forward(x)
        layer.backward(g)
        first = layer.weight.grad.copy()
        layer.forward(x)
        layer.backward(g)
        np.testing.assert_allclose(layer.weight.grad, 2 * first)

    def test_shape_mismatch(self, rng):
        layer = Linear(3, 2, seed=0)
        layer.forward(rng.standard_normal((2, 3)))
        with pytest.raises(ValueError):
            layer.backward(rng.standard_normal((2, 3)))
