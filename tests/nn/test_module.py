"""Tests for the Module/Parameter base classes."""

import numpy as np
import pytest

from repro.nn.linear import Linear
from repro.nn.mlp import MLP
from repro.nn.module import Module, Parameter


class TestParameter:
    def test_dtype_coercion(self):
        p = Parameter(np.array([1, 2], dtype=np.int32))
        assert p.data.dtype == np.float64

    def test_accumulate(self):
        p = Parameter(np.zeros(3))
        p.accumulate_grad(np.ones(3))
        p.accumulate_grad(np.ones(3))
        np.testing.assert_array_equal(p.grad, [2.0, 2.0, 2.0])

    def test_accumulate_shape_mismatch(self):
        p = Parameter(np.zeros(3), name="w")
        with pytest.raises(ValueError, match="w"):
            p.accumulate_grad(np.ones(4))

    def test_zero_grad(self):
        p = Parameter(np.zeros(2))
        p.accumulate_grad(np.ones(2))
        p.zero_grad()
        assert p.grad is None

    def test_size_shape(self):
        p = Parameter(np.zeros((2, 3)))
        assert p.size == 6
        assert p.shape == (2, 3)


class TestModuleTree:
    def test_parameter_traversal(self):
        mlp = MLP([3, 4, 2], seed=0)
        params = list(mlp.parameters())
        # two linear layers, each weight+bias
        assert len(params) == 4

    def test_named_parameters(self):
        mlp = MLP([3, 4, 2], seed=0)
        names = dict(mlp.named_parameters())
        assert "linear0.weight" in names
        assert "linear1.bias" in names

    def test_num_parameters(self):
        layer = Linear(3, 2, seed=0)
        assert layer.num_parameters() == 3 * 2 + 2

    def test_zero_grad_recursive(self):
        mlp = MLP([3, 4, 2], seed=0)
        for p in mlp.parameters():
            p.accumulate_grad(np.zeros(p.shape))
        mlp.zero_grad()
        assert all(p.grad is None for p in mlp.parameters())

    def test_train_eval_mode(self):
        mlp = MLP([3, 4, 2], seed=0)
        mlp.eval()
        assert not mlp.training
        assert all(not c.training for c in mlp.children())
        mlp.train()
        assert mlp.training

    def test_parameter_naming(self):
        layer = Linear(2, 2, seed=0)
        assert layer.weight.name == "Linear.weight"

    def test_base_forward_raises(self):
        with pytest.raises(NotImplementedError):
            Module().forward()
