"""End-to-end training→serving handoff (the full serving scenario).

Trains a tiny DLRM through the pipelined parameter-server executor,
snapshots it, hot-swaps the snapshot into a serving loop mid-traffic,
and checks the two contracts that make the handoff trustworthy:

* **bitwise correctness** — every online prediction (before and after
  the swap) is bit-identical to offline inference on the corresponding
  snapshot, replayed over the exact served batches;
* **observability** — the SLO report is fully populated, and the cache
  hit rate rises with hot-row coverage under Zipf traffic.
"""

import numpy as np
import pytest

from repro.data.dataloader import SyntheticClickLog
from repro.data.datasets import criteo_kaggle_like
from repro.models.config import DLRMConfig, EmbeddingBackend
from repro.models.dlrm import DLRM, build_embedding_bag
from repro.serving import (
    BatchingPolicy,
    InferenceServer,
    ModelSnapshot,
    RequestGenerator,
    ServingModel,
    replay_batches,
)
from repro.system.parameter_server import (
    HostBackedEmbeddingBag,
    HostParameterServer,
)
from repro.system.pipeline import PipelinedPSTrainer

LR = 0.05
SPEC = criteo_kaggle_like(scale=2e-5)
CFG = DLRMConfig.from_dataset(
    SPEC, embedding_dim=8, backend=EmbeddingBackend.EFF_TT, tt_rank=8,
    tt_threshold_rows=100, bottom_mlp=(16,), top_mlp=(16,),
)
NUM_REQUESTS = 150


def _trainer():
    rows = list(CFG.table_rows)
    host_positions = sorted(range(len(rows)), key=lambda t: -rows[t])[:2]
    host_map = {p: i for i, p in enumerate(host_positions)}
    bags = []
    for t, num_rows in enumerate(rows):
        if t in host_map:
            bags.append(HostBackedEmbeddingBag(num_rows, CFG.embedding_dim))
        else:
            bags.append(
                build_embedding_bag(
                    CFG.backend_for_table(t), num_rows, CFG.embedding_dim,
                    CFG.tt_rank, seed=(300 + t),
                )
            )
    model = DLRM(CFG, seed=9, embedding_bags=bags)
    server = HostParameterServer(
        [rows[p] for p in host_positions], CFG.embedding_dim, lr=LR, seed=3
    )
    return PipelinedPSTrainer(
        model, server, host_map, lr=LR, prefetch_depth=2, grad_queue_depth=1
    )


@pytest.fixture(scope="module")
def scenario():
    """Train, snapshot twice (v0 then v1), and serve with a mid-swap."""
    trainer = _trainer()
    log = SyntheticClickLog(SPEC, batch_size=32, seed=0)
    trainer.train(log, 4)
    snapshot_v0 = ModelSnapshot.from_trainer(trainer, version=0)
    trainer.train(log, 6, start=4)
    snapshot_v1 = ModelSnapshot.from_trainer(trainer, version=1)

    generator = RequestGenerator(SPEC, rate=2000.0, seed=2)
    requests = generator.generate(NUM_REQUESTS)
    hot_rows = {
        t: generator.hot_rows(t, 0.2) for t in range(SPEC.num_sparse)
    }
    server = InferenceServer(
        ServingModel(snapshot_v0.materialize(), hot_rows=hot_rows, version=0),
        policy=BatchingPolicy(max_batch_size=16, max_wait=2e-3),
        num_workers=2,
    )
    swap_time = requests[NUM_REQUESTS // 2].arrival_time
    server.schedule_swap(swap_time, snapshot_v1)
    outcome = server.run(requests)
    return snapshot_v0, snapshot_v1, generator, hot_rows, outcome


class TestHotSwapCorrectness:
    def test_swap_happened_mid_traffic(self, scenario):
        _, _, _, _, outcome = scenario
        versions = outcome.report.requests_per_version
        assert set(versions) == {0, 1}
        assert versions[0] > 0 and versions[1] > 0
        assert outcome.final_model_version == 1

    def test_predictions_bitwise_match_offline_inference(self, scenario):
        snapshot_v0, snapshot_v1, _, hot_rows, outcome = scenario
        online = outcome.predictions_by_request()
        for snapshot in (snapshot_v0, snapshot_v1):
            batches = [
                b for b in outcome.served_batches
                if b.model_version == snapshot.version
            ]
            assert batches, f"no batches served at v{snapshot.version}"
            offline = replay_batches(
                ServingModel(snapshot.materialize(), hot_rows=hot_rows),
                batches,
            )
            for request_id, prob in offline.items():
                assert online[request_id] == prob  # bit-identical

    def test_swap_changed_the_model(self, scenario):
        snapshot_v0, _, _, hot_rows, outcome = scenario
        # post-swap batches replayed on the *old* snapshot must differ:
        # the swap genuinely changed the served parameters
        post = [b for b in outcome.served_batches if b.model_version == 1]
        stale = replay_batches(
            ServingModel(snapshot_v0.materialize(), hot_rows=hot_rows), post
        )
        online = outcome.predictions_by_request()
        assert any(
            online[request_id] != prob for request_id, prob in stale.items()
        )

    def test_no_requests_lost_across_swap(self, scenario):
        _, _, _, _, outcome = scenario
        assert outcome.report.completed == NUM_REQUESTS
        assert outcome.report.rejected == 0
        assert [r.request_id for r in outcome.results] == list(
            range(NUM_REQUESTS)
        )


class TestSLOReport:
    def test_latency_and_hit_rate_populated(self, scenario):
        _, _, _, _, outcome = scenario
        report = outcome.report
        assert report.latency_p99 > 0.0
        assert report.latency_p50 <= report.latency_p95 <= report.latency_p99
        assert 0.0 < report.cache_hit_rate < 1.0
        assert report.num_hot_rows > 0
        assert report.max_queue_depth > 0
        assert report.throughput_rps > 0.0
        assert report.num_swaps == 1

    def test_hit_rate_increases_with_coverage(self, scenario):
        snapshot_v0, _, generator, _, _ = scenario
        requests = generator.generate(100)

        def hit_rate(coverage):
            hot = {
                t: generator.hot_rows(t, coverage)
                for t in range(SPEC.num_sparse)
            }
            outcome = InferenceServer(
                ServingModel(snapshot_v0.materialize(), hot_rows=hot),
                policy=BatchingPolicy(max_batch_size=16, max_wait=2e-3),
            ).run(requests)
            return outcome.report.cache_hit_rate

        rates = [hit_rate(c) for c in (0.02, 0.2, 0.8)]
        assert rates[0] < rates[1] < rates[2]
        # Zipf skew: covering 20% of rows serves well over 20% of lookups
        assert rates[1] > 0.2


class TestDeterminism:
    def test_rerun_is_bit_identical(self, scenario):
        snapshot_v0, snapshot_v1, generator, hot_rows, outcome = scenario
        requests = generator.generate(NUM_REQUESTS)
        server = InferenceServer(
            ServingModel(
                snapshot_v0.materialize(), hot_rows=hot_rows, version=0
            ),
            policy=BatchingPolicy(max_batch_size=16, max_wait=2e-3),
            num_workers=2,
        )
        server.schedule_swap(outcome.swap_times[0], snapshot_v1)
        again = server.run(requests)
        assert again.results == outcome.results
        np.testing.assert_array_equal(
            [b.finish_time for b in again.served_batches],
            [b.finish_time for b in outcome.served_batches],
        )
