"""Whole-system integration: every major subsystem in one scenario.

A miniature end-to-end EL-Rec deployment exercising, in one flow:
placement planning → collection construction → index reordering →
pipelined PS training with the embedding cache → checkpointing the
worker and the server → restoring both and continuing training
bit-identically.
"""

import io

import numpy as np
import pytest

from repro.data.dataloader import SyntheticClickLog
from repro.data.datasets import criteo_kaggle_like
from repro.embeddings.collection import EmbeddingCollection
from repro.models.config import DLRMConfig, EmbeddingBackend
from repro.models.dlrm import DLRM
from repro.reorder import build_bijection
from repro.system.devices import DeviceSpec
from repro.system.memory import plan_placement
from repro.system.parameter_server import HostParameterServer
from repro.system.pipeline import PipelinedPSTrainer, SequentialPSTrainer

TINY_GPU = DeviceSpec(
    name="tiny", peak_gflops=1000.0, mem_bw_gbps=100.0, hbm_bytes=10e3,
    h2d_gbps=10.0, p2p_gbps=10.0,
)
LR = 0.05


@pytest.fixture(scope="module")
def scenario():
    spec = criteo_kaggle_like(scale=2e-5)
    log = SyntheticClickLog(spec, batch_size=64, seed=0)
    rows = [t.num_rows for t in spec.tables]
    plan = plan_placement(rows, 8, TINY_GPU, tt_rank=8, tt_threshold_rows=100)
    cfg = DLRMConfig.from_dataset(
        spec, embedding_dim=8, backend=EmbeddingBackend.EFF_TT, tt_rank=8,
        bottom_mlp=(16,), top_mlp=(16,),
    )
    # offline reordering for the TT tables only
    from repro.system.memory import PlacementDecision

    bijections = []
    for placement in plan.placements:
        if placement.decision is PlacementDecision.GPU_TT:
            stream = log.table_index_stream(placement.table_idx, 6)
            bijections.append(
                build_bijection(stream, placement.num_rows, hot_ratio=0.05,
                                seed=0)
            )
        else:
            bijections.append(None)
    return spec, log, plan, cfg, bijections


def _build(scenario, seed=11):
    spec, log, plan, cfg, bijections = scenario
    collection = EmbeddingCollection.from_placement(
        plan, 8, tt_rank=8, seed=seed, bijections=bijections
    )
    model = DLRM(cfg, seed=seed, embedding_bags=collection.bags)
    server = HostParameterServer(
        collection.host_table_rows(), 8, lr=LR, seed=seed
    )
    return collection, model, server


class TestFullSystem:
    def test_pipelined_training_with_reordering(self, scenario):
        spec, log, plan, cfg, _ = scenario
        collection, model, server = _build(scenario)
        trainer = PipelinedPSTrainer(
            model, server, collection.host_table_map, lr=LR,
            prefetch_depth=3, grad_queue_depth=2, use_cache=True,
        )

        # remap batches through the collection's bijections by wrapping
        # the log (the trainers consume log.batch(i))
        class RemappedLog:
            def batch(self, i):
                return collection.remap(log.batch(i))

        result = trainer.train(RemappedLog(), 12)
        assert len(result.losses) == 12
        assert np.isfinite(result.losses).all()
        assert result.cache_hits + result.cache_misses > 0

    def test_pipeline_equals_sequential_in_full_scenario(self, scenario):
        spec, log, plan, cfg, _ = scenario
        col_a, model_a, server_a = _build(scenario)
        col_b, model_b, server_b = _build(scenario)

        class RemapA:
            def batch(self, i):
                return col_a.remap(log.batch(i))

        class RemapB:
            def batch(self, i):
                return col_b.remap(log.batch(i))

        seq = SequentialPSTrainer(
            model_a, server_a, col_a.host_table_map, lr=LR
        ).train(RemapA(), 10)
        pipe = PipelinedPSTrainer(
            model_b, server_b, col_b.host_table_map, lr=LR,
            prefetch_depth=4, grad_queue_depth=2, use_cache=True,
        ).train(RemapB(), 10)
        np.testing.assert_array_equal(seq.losses, pipe.losses)
        for a, b in zip(server_a.tables, server_b.tables):
            np.testing.assert_array_equal(a, b)

    def test_checkpoint_worker_and_server_resume(self, scenario, tmp_path):
        spec, log, plan, cfg, _ = scenario
        collection, model, server = _build(scenario)

        class Remapped:
            def batch(self, i):
                return collection.remap(log.batch(i))

        trainer = SequentialPSTrainer(
            model, server, collection.host_table_map, lr=LR
        )
        trainer.train(Remapped(), 5)

        # Checkpoint the server; the worker model contains
        # HostBackedEmbeddingBags, so worker checkpointing applies to
        # purely-local configurations (covered in test_serialization);
        # here we persist and restore the server half.
        server_path = tmp_path / "server.npz"
        server.save(str(server_path))
        restored_server = HostParameterServer.load(str(server_path))
        for a, b in zip(server.tables, restored_server.tables):
            np.testing.assert_array_equal(a, b)

        # Training continues cleanly after the snapshot, and the saved
        # copy is a true point-in-time snapshot: it keeps the
        # pre-continuation values while the live server moves on.
        cont = trainer.train(Remapped(), 2, start=5)
        assert np.isfinite(cont.losses).all()
        # the restored snapshot still matches the *pre-continuation*
        # state (the save is a true point-in-time copy)
        assert any(
            not np.array_equal(a, b)
            for a, b in zip(server.tables, restored_server.tables)
        )
