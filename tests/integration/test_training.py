"""Integration tests: full training runs across backends.

These exercise the whole stack — data generation, DLRM, embedding
backends, optimizers — and pin the paper's accuracy claims at small
scale: TT-based models match the dense baseline's quality (Table IV)
and converge on the same trajectory (Figure 15).
"""

import numpy as np
import pytest

from repro.data.dataloader import SyntheticClickLog
from repro.data.datasets import avazu_like, criteo_kaggle_like
from repro.models.config import DLRMConfig, EmbeddingBackend
from repro.models.dlrm import DLRM


@pytest.fixture(scope="module")
def trained_models():
    """Train all three backends on the same stream."""
    spec = criteo_kaggle_like(scale=5e-5)
    log = SyntheticClickLog(spec, batch_size=256, seed=0, teacher_strength=3.0)
    results = {}
    for backend in (
        EmbeddingBackend.DENSE,
        EmbeddingBackend.TT,
        EmbeddingBackend.EFF_TT,
    ):
        cfg = DLRMConfig.from_dataset(
            spec, embedding_dim=8, backend=backend, tt_rank=8,
            bottom_mlp=(32, 16), top_mlp=(32,),
        )
        model = DLRM(cfg, seed=3)
        losses = [model.train_step(log.batch(i), lr=0.2).loss for i in range(150)]
        eval_batches = [log.batch(10_000 + i) for i in range(8)]
        metrics = model.evaluate(eval_batches)
        results[backend] = (losses, metrics)
    return results


class TestConvergence:
    def test_all_backends_learn(self, trained_models):
        for backend, (losses, metrics) in trained_models.items():
            early = float(np.mean(losses[:10]))
            late = float(np.mean(losses[-10:]))
            assert late < early, f"{backend} did not learn"
            assert metrics["auc"] > 0.55, f"{backend} AUC too low"

    def test_tt_matches_dense_accuracy(self, trained_models):
        """Table IV: TT-compressed accuracy within a small gap of dense."""
        dense_auc = trained_models[EmbeddingBackend.DENSE][1]["auc"]
        for backend in (EmbeddingBackend.TT, EmbeddingBackend.EFF_TT):
            auc = trained_models[backend][1]["auc"]
            assert abs(auc - dense_auc) < 0.05

    def test_convergence_curves_overlap(self, trained_models):
        """Figure 15: the TT loss curve tracks the dense curve."""
        dense_losses = np.array(trained_models[EmbeddingBackend.DENSE][0])
        eff_losses = np.array(trained_models[EmbeddingBackend.EFF_TT][0])
        # trajectories correlate and end at comparable loss
        tail_gap = abs(dense_losses[-10:].mean() - eff_losses[-10:].mean())
        assert tail_gap < 0.05
        corr = np.corrcoef(dense_losses, eff_losses)[0, 1]
        assert corr > 0.8

    def test_tt_equals_eff_tt_exactly(self, trained_models):
        """Same math, different computation order: loss curves match."""
        np.testing.assert_allclose(
            trained_models[EmbeddingBackend.TT][0],
            trained_models[EmbeddingBackend.EFF_TT][0],
            rtol=1e-6,
        )


class TestAvazuShape:
    def test_avazu_trains(self):
        spec = avazu_like(scale=5e-5)
        log = SyntheticClickLog(spec, batch_size=128, seed=1)
        cfg = DLRMConfig.from_dataset(
            spec, embedding_dim=8, backend=EmbeddingBackend.EFF_TT, tt_rank=8,
            bottom_mlp=(16,), top_mlp=(16,),
        )
        model = DLRM(cfg, seed=0)
        losses = [model.train_step(log.batch(i), lr=0.1).loss for i in range(30)]
        assert losses[-1] < losses[0]
