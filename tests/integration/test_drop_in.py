"""Integration test: Eff-TT as a drop-in EmbeddingBag replacement.

The paper's API claim (§I, §VI-A): replacing ``nn.EmbeddingBag`` with
the Eff-TT table requires no other model change.  We verify the whole
bag API surface is interchangeable across backends.
"""

import numpy as np
import pytest

from repro.embeddings import (
    DenseEmbeddingBag,
    EffTTEmbeddingBag,
    TTEmbeddingBag,
)

BACKENDS = [
    lambda: DenseEmbeddingBag(200, 16, seed=0),
    lambda: TTEmbeddingBag(200, 16, tt_rank=8, seed=0),
    lambda: EffTTEmbeddingBag(200, 16, tt_rank=8, seed=0),
]


@pytest.mark.parametrize("factory", BACKENDS)
class TestUniformAPI:
    def test_forward_signature(self, factory, rng):
        bag = factory()
        idx = rng.integers(0, 200, size=32)
        off = np.arange(0, 32, 4)
        out = bag.forward(idx, off)
        assert out.shape == (8, 16)
        # __call__ alias
        np.testing.assert_array_equal(bag(idx, off), out)

    def test_default_offsets(self, factory, rng):
        bag = factory()
        idx = rng.integers(0, 200, size=5)
        assert bag.forward(idx).shape == (5, 16)

    def test_train_cycle(self, factory, rng):
        bag = factory()
        idx = rng.integers(0, 200, size=16)
        out = bag.forward(idx)
        bag.backward(rng.standard_normal(out.shape))
        bag.step(0.01)  # must not raise

    def test_footprint_api(self, factory):
        bag = factory()
        assert bag.nbytes > 0
        assert bag.nbytes_as(np.float32) < bag.nbytes

    def test_lookup_rows(self, factory):
        bag = factory()
        rows = bag.lookup_rows(np.array([0, 199]))
        assert rows.shape == (2, 16)

    def test_training_moves_output(self, factory, rng):
        bag = factory()
        idx = rng.integers(0, 200, size=16)
        before = bag.forward(idx).copy()
        bag.backward(np.ones((16, 16)))
        bag.step(0.1)
        after = bag.forward(idx)
        bag.backward(np.zeros((16, 16)))  # clear state
        bag.step(0.1)
        assert not np.allclose(before, after)
        # gradient of ones with positive lr must lower the outputs
        assert after.sum() < before.sum()


class TestCompressionAdvantage:
    def test_tt_backends_much_smaller(self):
        dense = DenseEmbeddingBag(1_000_000, 64, seed=0)
        eff = EffTTEmbeddingBag(1_000_000, 64, tt_rank=16, seed=0)
        assert eff.nbytes < dense.nbytes / 100
