"""Integration: multi-hot sparse features through the whole stack.

The CTR datasets are one-hot per feature, but DLRM's EmbeddingBag
semantics (and the paper's Figure 5 walk-through) support multi-hot
bags — several indices pooled per sample.  These tests run bag sizes
> 1 end to end on every backend.
"""

import numpy as np
import pytest

from repro.data.dataloader import SyntheticClickLog
from repro.data.datasets import DatasetSpec, TableSpec
from repro.models.config import DLRMConfig, EmbeddingBackend
from repro.models.dlrm import DLRM


@pytest.fixture(scope="module")
def multihot_spec():
    return DatasetSpec(
        name="multihot",
        num_dense=4,
        tables=(
            TableSpec("one_hot", 300, bag_size=1),
            TableSpec("three_hot", 500, bag_size=3),
            TableSpec("five_hot", 200, bag_size=5),
        ),
        num_samples=100_000,
        days=1,
    )


class TestMultiHotBatches:
    def test_batch_shapes(self, multihot_spec):
        log = SyntheticClickLog(multihot_spec, batch_size=32, seed=0)
        batch = log.batch(0)
        assert batch.sparse_indices[0].size == 32
        assert batch.sparse_indices[1].size == 96
        assert batch.sparse_indices[2].size == 160
        for idx, off in zip(batch.sparse_indices, batch.sparse_offsets):
            assert off[-1] == idx.size
            assert off.size == 33

    @pytest.mark.parametrize(
        "backend",
        [EmbeddingBackend.DENSE, EmbeddingBackend.TT, EmbeddingBackend.EFF_TT],
    )
    def test_training_works(self, multihot_spec, backend):
        log = SyntheticClickLog(multihot_spec, batch_size=64, seed=0)
        cfg = DLRMConfig.from_dataset(
            multihot_spec, embedding_dim=8, backend=backend, tt_rank=8,
            bottom_mlp=(16,), top_mlp=(16,),
        )
        model = DLRM(cfg, seed=0)
        losses = [model.train_step(log.batch(i), lr=0.1).loss for i in range(20)]
        assert losses[-1] < losses[0]

    def test_sample_level_reuse_in_multihot_bags(self, multihot_spec):
        """Figure 5's scenario: multi-hot bags create within-sample
        prefix sharing that the reuse plan captures."""
        from repro.embeddings.eff_tt_embedding import EffTTEmbeddingBag

        log = SyntheticClickLog(multihot_spec, batch_size=256, seed=0)
        batch = log.batch(0)
        bag = EffTTEmbeddingBag(500, 8, tt_rank=4, seed=0)
        bag.forward(batch.sparse_indices[1], batch.sparse_offsets[1])
        plan = bag.last_plan
        assert plan.num_occurrences == 768
        assert plan.num_unique_rows <= 500
        assert plan.num_unique_prefixes <= plan.num_unique_rows

    def test_multihot_matches_dense_math(self, multihot_spec):
        """Eff-TT pooling over multi-hot bags equals dense pooling on
        the materialized table."""
        from repro.embeddings.dense import DenseEmbeddingBag
        from repro.embeddings.eff_tt_embedding import EffTTEmbeddingBag

        log = SyntheticClickLog(multihot_spec, batch_size=64, seed=0)
        batch = log.batch(0)
        eff = EffTTEmbeddingBag(500, 8, tt_rank=8, seed=3)
        dense = DenseEmbeddingBag(500, 8, seed=0)
        dense.weight = eff.materialize()
        np.testing.assert_allclose(
            eff.forward(batch.sparse_indices[1], batch.sparse_offsets[1]),
            dense.forward(batch.sparse_indices[1], batch.sparse_offsets[1]),
            atol=1e-12,
        )
