"""Tests for SLO accounting and serving trace export."""

import json

import numpy as np
import pytest

from repro.data.dataloader import Batch
from repro.serving.metrics import (
    RequestResult,
    ServedBatch,
    ServingMetrics,
    export_serving_trace,
    serving_trace_events,
)


def _result(request_id, arrival, finish, version=0):
    return RequestResult(
        request_id=request_id,
        arrival_time=arrival,
        finish_time=finish,
        model_version=version,
        prediction=0.5,
    )


def _batch(batch_id, worker=0, start=0.0, finish=0.001, version=0, size=2):
    return ServedBatch(
        batch_id=batch_id,
        request_ids=tuple(range(size)),
        batch=Batch(
            dense=np.zeros((size, 1)),
            sparse_indices=[np.zeros(size, dtype=np.int64)],
            sparse_offsets=[np.arange(size + 1, dtype=np.int64)],
            labels=np.zeros(size),
            batch_id=batch_id,
        ),
        model_version=version,
        worker_id=worker,
        start_time=start,
        finish_time=finish,
        predictions=np.full(size, 0.5),
        hot_lookups=size - 1,
        cold_lookups=1,
    )


class TestServingMetrics:
    def test_report_aggregates(self):
        metrics = ServingMetrics()
        for i in range(10):
            metrics.record_result(_result(i, 0.0, 0.001 * (i + 1)))
        metrics.record_batch(_batch(0, size=4))
        metrics.record_batch(_batch(1, size=6))
        metrics.record_rejection()
        metrics.record_swap(0.5)
        report = metrics.build_report(
            duration=2.0, max_queue_depth=7, cache_hit_rate=0.8,
            num_hot_rows=100,
        )
        assert report.offered == 11
        assert report.completed == 10
        assert report.rejected == 1
        assert report.rejection_rate == pytest.approx(1 / 11)
        assert report.throughput_rps == pytest.approx(5.0)
        assert report.mean_batch_size == pytest.approx(5.0)
        assert report.num_swaps == 1
        assert report.max_queue_depth == 7
        assert report.latency_p50 == pytest.approx(
            np.percentile([0.001 * (i + 1) for i in range(10)], 50)
        )

    def test_latency_ordering(self):
        metrics = ServingMetrics()
        for i in range(100):
            metrics.record_result(_result(i, 0.0, 0.001 * (i + 1)))
        report = metrics.build_report(1.0, 0, 0.0, 0)
        assert report.latency_p50 <= report.latency_p95 <= report.latency_p99
        assert report.latency_p99 <= report.latency_max

    def test_versions_attributed(self):
        metrics = ServingMetrics()
        metrics.record_result(_result(0, 0.0, 0.1, version=0))
        metrics.record_result(_result(1, 0.0, 0.1, version=1))
        metrics.record_result(_result(2, 0.0, 0.1, version=1))
        report = metrics.build_report(1.0, 0, 0.0, 0)
        assert report.requests_per_version == {0: 1, 1: 2}

    def test_empty_run(self):
        report = ServingMetrics().build_report(0.0, 0, 0.0, 0)
        assert report.completed == 0
        assert report.throughput_rps == 0.0
        assert report.latency_p99 == 0.0

    def test_meets_slo(self):
        metrics = ServingMetrics()
        metrics.record_result(_result(0, 0.0, 0.002))
        report = metrics.build_report(1.0, 0, 0.0, 0)
        assert report.meets(0.005)
        assert not report.meets(0.001)
        with pytest.raises(ValueError):
            report.meets(0.0)

    def test_format_mentions_all_fields(self):
        metrics = ServingMetrics()
        metrics.record_result(_result(0, 0.0, 0.002))
        text = metrics.build_report(1.0, 3, 0.9, 50).format()
        for token in ("p99", "throughput", "hit_rate", "queue_depth"):
            assert token in text


class TestTraceExport:
    def test_event_shape_matches_trace_export_convention(self):
        events = serving_trace_events([_batch(0, worker=1)], swap_times=[0.5])
        complete = [e for e in events if e.get("ph") == "X"]
        assert len(complete) == 1
        event = complete[0]
        # same field conventions as repro.system.trace_export
        assert event["ts"] == pytest.approx(0.0)
        assert event["dur"] == pytest.approx(1000.0)  # 1 ms in us
        assert event["pid"] == 0
        assert event["tid"] == 2
        assert event["args"]["model_version"] == 0

    def test_swap_instant_event(self):
        events = serving_trace_events([], swap_times=[0.25])
        instants = [e for e in events if e.get("ph") == "i"]
        assert len(instants) == 1
        assert instants[0]["ts"] == pytest.approx(0.25e6)

    def test_thread_names_per_worker(self):
        events = serving_trace_events(
            [_batch(0, worker=0), _batch(1, worker=2)]
        )
        names = {
            e["args"]["name"] for e in events if e.get("ph") == "M"
        }
        assert names == {"WORKER 0", "WORKER 2"}

    def test_export_writes_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        count = export_serving_trace(
            str(path), [_batch(0)], swap_times=[0.1]
        )
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == count
