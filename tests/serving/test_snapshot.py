"""Tests for training→serving snapshots."""

import numpy as np
import pytest

from repro.data.dataloader import SyntheticClickLog
from repro.data.datasets import criteo_kaggle_like
from repro.embeddings.dense import DenseEmbeddingBag
from repro.models.config import DLRMConfig, EmbeddingBackend
from repro.models.dlrm import DLRM, build_embedding_bag
from repro.models.serialization import load_checkpoint
from repro.serving.snapshot import ModelSnapshot
from repro.system.parameter_server import (
    HostBackedEmbeddingBag,
    HostParameterServer,
)
from repro.system.pipeline import PipelinedPSTrainer

LR = 0.05
SPEC = criteo_kaggle_like(scale=2e-5)
CFG = DLRMConfig.from_dataset(
    SPEC, embedding_dim=8, backend=EmbeddingBackend.EFF_TT, tt_rank=8,
    tt_threshold_rows=100, bottom_mlp=(16,), top_mlp=(16,),
)


def _ps_setup():
    rows = list(CFG.table_rows)
    host_positions = sorted(range(len(rows)), key=lambda t: -rows[t])[:2]
    host_map = {p: i for i, p in enumerate(host_positions)}
    bags = []
    for t, num_rows in enumerate(rows):
        if t in host_map:
            bags.append(HostBackedEmbeddingBag(num_rows, CFG.embedding_dim))
        else:
            bags.append(
                build_embedding_bag(
                    CFG.backend_for_table(t), num_rows, CFG.embedding_dim,
                    CFG.tt_rank, seed=(200 + t),
                )
            )
    model = DLRM(CFG, seed=7, embedding_bags=bags)
    server = HostParameterServer(
        [rows[p] for p in host_positions], CFG.embedding_dim, lr=LR, seed=3
    )
    return model, server, host_map


class TestFromModel:
    def test_materialize_is_bit_identical(self):
        log = SyntheticClickLog(SPEC, batch_size=32, seed=0)
        model = DLRM(CFG, seed=0)
        snapshot = ModelSnapshot.from_model(model, version=4)
        restored = snapshot.materialize()
        batch = log.batch(0)
        np.testing.assert_array_equal(
            restored.predict_proba(batch), model.predict_proba(batch)
        )
        assert snapshot.version == 4

    def test_materialize_is_independent(self):
        log = SyntheticClickLog(SPEC, batch_size=32, seed=0)
        model = DLRM(CFG, seed=0)
        snapshot = ModelSnapshot.from_model(model)
        before = snapshot.materialize().predict_proba(log.batch(0))
        # training the source model must not affect later materializations
        model.train_step(log.batch(1), lr=0.5)
        after = snapshot.materialize().predict_proba(log.batch(0))
        np.testing.assert_array_equal(before, after)

    def test_empty_payload_rejected(self):
        with pytest.raises(ValueError):
            ModelSnapshot(b"")


class TestFromTrainer:
    def test_host_tables_materialized_dense(self):
        model, server, host_map = _ps_setup()
        log = SyntheticClickLog(SPEC, batch_size=32, seed=0)
        trainer = PipelinedPSTrainer(
            model, server, host_map, lr=LR, prefetch_depth=2,
            grad_queue_depth=1,
        )
        trainer.train(log, 4)
        snapshot = ModelSnapshot.from_trainer(trainer, version=1)
        restored = snapshot.materialize()
        for pos, server_idx in host_map.items():
            bag = restored.embedding_bags[pos]
            assert isinstance(bag, DenseEmbeddingBag)
            np.testing.assert_array_equal(
                bag.weight, server.tables[server_idx]
            )

    def test_snapshot_matches_trainer_predictions(self):
        model, server, host_map = _ps_setup()
        log = SyntheticClickLog(SPEC, batch_size=32, seed=0)
        trainer = PipelinedPSTrainer(model, server, host_map, lr=LR)
        trainer.train(log, 4)
        # score a batch with the PS model (host rows loaded synchronously)
        batch = log.batch(7)
        for pos, server_idx in host_map.items():
            prefetched = server.gather(server_idx, batch.sparse_indices[pos])
            model.embedding_bags[pos].load_rows(
                prefetched.unique_indices, prefetched.rows
            )
        expected = model.predict_proba(batch)
        restored = ModelSnapshot.from_trainer(trainer).materialize()
        np.testing.assert_array_equal(restored.predict_proba(batch), expected)

    def test_snapshot_frozen_while_training_continues(self):
        model, server, host_map = _ps_setup()
        log = SyntheticClickLog(SPEC, batch_size=32, seed=0)
        trainer = PipelinedPSTrainer(model, server, host_map, lr=LR)
        trainer.train(log, 2)
        snapshot = ModelSnapshot.from_trainer(trainer)
        first = snapshot.materialize()
        trainer.train(log, 4, start=2)  # keep training past the snapshot
        second = snapshot.materialize()
        batch = log.batch(9)
        np.testing.assert_array_equal(
            first.predict_proba(batch), second.predict_proba(batch)
        )


class TestPersistence:
    def test_file_round_trip_and_checkpoint_compat(self, tmp_path):
        model = DLRM(CFG, seed=0)
        snapshot = ModelSnapshot.from_model(model, version=2)
        path = tmp_path / "snap.npz"
        snapshot.save(str(path))
        loaded = ModelSnapshot.load(str(path), version=2)
        assert loaded.nbytes == snapshot.nbytes
        # the file doubles as a standard checkpoint
        log = SyntheticClickLog(SPEC, batch_size=16, seed=0)
        np.testing.assert_array_equal(
            load_checkpoint(str(path)).predict_proba(log.batch(0)),
            model.predict_proba(log.batch(0)),
        )
