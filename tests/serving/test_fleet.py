"""Tests for the replicated serving fleet (fault domains, routing, swap)."""

import pytest

from repro.data.datasets import criteo_kaggle_like
from repro.models.config import DLRMConfig, EmbeddingBackend
from repro.models.dlrm import DLRM
from repro.resilience.faults import (
    FaultKind,
    FaultPlan,
    FaultSite,
    FaultSpec,
)
from repro.serving.batcher import BatchingPolicy
from repro.serving.fleet import (
    AutoscalePolicy,
    BatchingQueue,
    FleetBatch,
    FleetConfig,
    ReplicaState,
    ServingFleet,
)
from repro.serving.requests import RequestGenerator
from repro.serving.router import AdmissionConfig
from repro.serving.snapshot import ModelSnapshot
from repro.resilience.degradation import DegradationPolicy

SPEC = criteo_kaggle_like(scale=2e-5)
CFG = DLRMConfig.from_dataset(
    SPEC, embedding_dim=8, backend=EmbeddingBackend.EFF_TT, tt_rank=8,
    bottom_mlp=(16,), top_mlp=(16,),
)


@pytest.fixture(scope="module")
def world():
    snap_v1 = ModelSnapshot.from_model(DLRM(CFG, seed=7), version=1)
    snap_v2 = ModelSnapshot.from_model(DLRM(CFG, seed=9), version=2)
    generator = RequestGenerator(SPEC, rate=2500.0, seed=5)
    requests = generator.generate(240)
    hot_rows = {
        t: generator.hot_rows(t, 0.3) for t in range(SPEC.num_sparse)
    }
    return snap_v1, snap_v2, hot_rows, requests


def _config(num_replicas=2, **kwargs):
    defaults = dict(
        num_replicas=num_replicas,
        batching=BatchingPolicy(
            max_batch_size=8, max_wait=1e-3, queue_capacity=512,
        ),
        degradation=DegradationPolicy(slo_target=0.05),
        queue_capacity=512,
    )
    defaults.update(kwargs)
    return FleetConfig(**defaults)


def _fleet(world, config, injector=None):
    snap_v1, _, hot_rows, _ = world
    return ServingFleet(
        snap_v1, hot_rows=hot_rows, config=config, injector=injector,
    )


def _crash_plan(replica, time):
    return FaultPlan(
        name=f"crash-r{replica}",
        specs=(FaultSpec(
            FaultKind.CRASH, FaultSite.REPLICA, replica=replica, time=time,
        ),),
    )


class TestValidation:
    def test_autoscale_policy_bounds(self):
        with pytest.raises(ValueError):
            AutoscalePolicy(min_replicas=0)
        with pytest.raises(ValueError):
            AutoscalePolicy(min_replicas=4, max_replicas=2)
        with pytest.raises(ValueError):
            AutoscalePolicy(low_watermark=0.9, high_watermark=0.8)

    def test_fleet_config_bounds(self):
        with pytest.raises(ValueError):
            FleetConfig(num_replicas=0)
        with pytest.raises(ValueError):
            FleetConfig(queue_capacity=0)


class TestBatchingQueue:
    def test_put_front_bypasses_capacity_and_orders_first(self):
        q = BatchingQueue(1)
        a, b = object(), object()
        q.put(a)
        assert q.full()
        q.put_front(b)  # redirects must never be refused by the bound
        assert len(q) == 2
        assert q.get() is b
        assert q.get() is a
        assert q.redirect_puts == 1

    def test_put_front_rejected_after_close(self):
        q = BatchingQueue(2)
        q.close()
        with pytest.raises(RuntimeError):
            q.put_front(object())


class TestDeterminism:
    def test_identical_runs_are_bitwise(self, world):
        *_, requests = world
        first = _fleet(world, _config()).run(requests)
        second = _fleet(world, _config()).run(requests)
        assert (
            first.predictions_by_request()
            == second.predictions_by_request()
        )
        assert first.batch_compositions() == second.batch_compositions()
        assert first.queue_max_depth == second.queue_max_depth

    def test_clean_run_accounts_for_every_request(self, world):
        *_, requests = world
        outcome = _fleet(world, _config()).run(requests)
        assert len(outcome.results) == len(requests)
        assert not outcome.rejected_ids and not outcome.shed_ids
        assert outcome.unaccounted == 0
        assert len(outcome.health_history) > 0


class TestCrashFaultDomain:
    def test_kill_one_replica_is_bitwise(self, world):
        *_, requests = world
        reference = _fleet(world, _config()).run(requests)
        mid = requests[len(requests) // 2].arrival_time
        injector = _crash_plan(0, mid).injector()
        outcome = _fleet(world, _config(), injector).run(requests)
        ref = reference.predictions_by_request()
        got = outcome.predictions_by_request()
        assert all(ref[rid] == got[rid] for rid in got)
        assert outcome.replicas[0].final_state is ReplicaState.DEAD
        assert outcome.replicas[0].crash_time == mid
        assert outcome.replicas[1].final_state is ReplicaState.LIVE
        assert outcome.unaccounted == 0

    def test_crashing_the_only_replica_sheds_cleanly(self, world):
        *_, requests = world
        mid = requests[len(requests) // 2].arrival_time
        injector = _crash_plan(0, mid).injector()
        outcome = _fleet(world, _config(num_replicas=1), injector).run(
            requests
        )
        assert outcome.shed_ids  # fleet-wide outage: backlog shed
        assert outcome.unaccounted == 0
        assert (
            len(outcome.results)
            + len(outcome.rejected_ids)
            + len(outcome.shed_ids)
            == len(requests)
        )

    def test_redirect_cap_sheds_orphans(self, world):
        *_, requests = world
        mid = requests[len(requests) // 2].arrival_time
        injector = _crash_plan(0, mid).injector()
        config = _config(
            admission=AdmissionConfig(max_in_flight=1, max_redirects=0),
        )
        outcome = _fleet(world, config, injector).run(requests)
        # every orphaned batch exceeds the 0-redirect budget
        assert outcome.redirects
        assert all(r.action == "shed" for r in outcome.redirects)
        assert outcome.unaccounted == 0


class TestRollingSwap:
    def test_swap_under_load_drops_nothing(self, world):
        snap_v1, snap_v2, hot_rows, requests = world
        fleet = ServingFleet(
            snap_v1, hot_rows=hot_rows, config=_config(num_replicas=4),
        )
        mid = requests[len(requests) // 2].arrival_time
        fleet.schedule_swap(mid, snap_v2)
        outcome = fleet.run(requests)
        assert len(outcome.swaps) == 1
        swap = outcome.swaps[0]
        assert swap.completed
        assert swap.dropped_in_flight == 0
        assert swap.min_live_floor == 2  # ceil(4/2)
        assert swap.min_live_observed >= swap.min_live_floor
        assert outcome.final_version == 2
        assert outcome.unaccounted == 0 and not outcome.shed_ids
        # versions served are monotone across the swap boundary
        for batch in outcome.served_batches:
            if batch.start_time > swap.completed_at:
                assert batch.model_version == 2

    def test_stale_swap_rejected_after_newer_acknowledged(self, world):
        snap_v1, snap_v2, hot_rows, requests = world
        fleet = ServingFleet(
            snap_v1, hot_rows=hot_rows, config=_config(),
        )
        t1 = requests[len(requests) // 3].arrival_time
        t2 = requests[2 * len(requests) // 3].arrival_time
        fleet.schedule_swap(t1, snap_v2)
        fleet.schedule_swap(t2, snap_v1)  # stale re-offer of v1
        outcome = fleet.run(requests)
        assert outcome.stale_swaps_rejected == 1
        assert outcome.final_version == 2
        assert len(outcome.swaps) == 1

    def test_single_replica_swap_completes(self, world):
        # Regression: with N=1 the nominal ceil(N/2) floor is
        # unsatisfiable while draining; the swap must still complete
        # (briefly zero live) instead of wedging the event loop.
        snap_v1, snap_v2, hot_rows, requests = world
        fleet = ServingFleet(
            snap_v1, hot_rows=hot_rows, config=_config(num_replicas=1),
        )
        fleet.schedule_swap(
            requests[len(requests) // 2].arrival_time, snap_v2
        )
        outcome = fleet.run(requests)
        assert outcome.swaps[0].completed
        assert outcome.final_version == 2
        assert len(outcome.results) == len(requests)
        assert outcome.unaccounted == 0


class TestAutoscale:
    def test_scales_up_under_slo_pressure(self, world):
        snap_v1, _, hot_rows, _ = world
        generator = RequestGenerator(SPEC, rate=30000.0, seed=5)
        requests = generator.generate(300)
        config = _config(
            num_replicas=1,
            degradation=DegradationPolicy(slo_target=2e-3),
            autoscale=AutoscalePolicy(min_replicas=1, max_replicas=4),
        )
        fleet = ServingFleet(snap_v1, hot_rows=hot_rows, config=config)
        outcome = fleet.run(requests)
        ups = [e for e in outcome.autoscale_events if e.action == "scale_up"]
        assert ups
        assert len(outcome.replicas) > 1
        assert all(e.live_after <= 4 for e in outcome.autoscale_events)

    def test_scales_down_when_idle_headroom(self, world):
        snap_v1, _, hot_rows, _ = world
        generator = RequestGenerator(SPEC, rate=500.0, seed=5)
        requests = generator.generate(200)
        config = _config(
            num_replicas=2,
            degradation=DegradationPolicy(slo_target=0.5),
            autoscale=AutoscalePolicy(
                min_replicas=1, max_replicas=2, cooldown_ticks=3,
            ),
        )
        fleet = ServingFleet(snap_v1, hot_rows=hot_rows, config=config)
        outcome = fleet.run(requests)
        downs = [
            e for e in outcome.autoscale_events if e.action == "scale_down"
        ]
        assert downs
        retired = [
            r for r in outcome.replicas
            if r.final_state is ReplicaState.RETIRED
        ]
        assert retired
        # a retiring replica never abandons work
        assert outcome.unaccounted == 0 and not outcome.shed_ids


class TestStuckAndSlow:
    def test_stuck_replica_declared_dead_and_redirected(self, world):
        *_, requests = world
        reference = _fleet(world, _config()).run(requests)
        plan = FaultPlan(
            name="stuck-r0",
            specs=(FaultSpec(
                FaultKind.STUCK, FaultSite.REPLICA, replica=0,
                time=requests[len(requests) // 2].arrival_time,
                duration=0.02,
            ),),
        )
        outcome = _fleet(world, _config(), plan.injector()).run(requests)
        assert outcome.replicas[0].stuck_declared
        assert outcome.replicas[0].final_state is ReplicaState.DEAD
        ref = reference.predictions_by_request()
        got = outcome.predictions_by_request()
        assert all(ref[rid] == got[rid] for rid in got)
        assert outcome.unaccounted == 0

    def test_slow_replica_does_not_trip_siblings(self, world):
        *_, requests = world
        plan = FaultPlan(
            name="slow-r0",
            specs=(FaultSpec(
                FaultKind.SLOWDOWN, FaultSite.REPLICA, replica=0,
                time=requests[len(requests) // 3].arrival_time,
                duration=0.05, factor=30.0,
            ),),
        )
        outcome = _fleet(world, _config(), plan.injector()).run(requests)
        sibling = outcome.replicas[1]
        assert all(
            tr.dst.value != "open" for tr in sibling.breaker_transitions
        )
        assert outcome.unaccounted == 0


class TestDegradationLadder:
    def test_open_breaker_falls_back_to_stale_model(self, world):
        snap_v1, snap_v2, hot_rows, requests = world
        config = _config(
            num_replicas=1,
            degradation=DegradationPolicy(slo_target=1e-6),  # all breach
        )
        fleet = ServingFleet(snap_v1, hot_rows=hot_rows, config=config)
        fleet.set_fallback(snap_v2, hot_rows, time=0.0)
        outcome = fleet.run(requests)
        assert outcome.replicas[0].fallback_batches > 0
        assert any(
            tr.dst.value == "open"
            for tr in outcome.replicas[0].breaker_transitions
        )
        assert outcome.unaccounted == 0
