"""Tests for the dynamic micro-batcher and its admission control."""

import numpy as np
import pytest

from repro.serving.batcher import BatchingPolicy, MicroBatcher
from repro.serving.requests import InferenceRequest


def _request(request_id: int, arrival: float) -> InferenceRequest:
    return InferenceRequest(
        request_id=request_id,
        arrival_time=arrival,
        dense=np.zeros(2),
        sparse_indices=(np.array([0]),),
    )


class TestBatchingPolicy:
    def test_defaults_valid(self):
        BatchingPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch_size": 0},
            {"max_wait": -1e-3},
            {"queue_capacity": 0},
            {"max_batch_size": 64, "queue_capacity": 32},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BatchingPolicy(**kwargs)


class TestMicroBatcher:
    def test_size_trigger(self):
        batcher = MicroBatcher(BatchingPolicy(max_batch_size=3, max_wait=1.0))
        for i in range(2):
            batcher.offer(_request(i, 0.0), now=0.0)
        assert not batcher.ready(0.0)
        batcher.offer(_request(2, 0.0), now=0.0)
        assert batcher.ready(0.0)
        batch = batcher.pop_batch(0.0)
        assert batch.size == 3
        assert [r.request_id for r in batch.requests] == [0, 1, 2]

    def test_time_trigger(self):
        batcher = MicroBatcher(
            BatchingPolicy(max_batch_size=100, max_wait=0.01)
        )
        batcher.offer(_request(0, 0.0), now=0.0)
        assert not batcher.ready(0.005)
        assert batcher.ready(0.01)
        assert batcher.pop_batch(0.01).size == 1

    def test_deadline_is_oldest_request(self):
        batcher = MicroBatcher(
            BatchingPolicy(max_batch_size=100, max_wait=0.01)
        )
        assert batcher.oldest_deadline() is None
        batcher.offer(_request(0, 0.0), now=0.0)
        batcher.offer(_request(1, 0.004), now=0.004)
        assert batcher.oldest_deadline() == pytest.approx(0.01)

    def test_zero_wait_dispatches_immediately(self):
        batcher = MicroBatcher(BatchingPolicy(max_batch_size=8, max_wait=0.0))
        batcher.offer(_request(0, 0.5), now=0.5)
        assert batcher.ready(0.5)

    def test_pop_respects_max_batch_size(self):
        batcher = MicroBatcher(
            BatchingPolicy(max_batch_size=2, max_wait=0.0, queue_capacity=8)
        )
        for i in range(5):
            batcher.offer(_request(i, 0.0), now=0.0)
        assert batcher.pop_batch(0.0).size == 2
        assert batcher.depth == 3

    def test_admission_control_rejects_when_full(self):
        batcher = MicroBatcher(
            BatchingPolicy(max_batch_size=2, max_wait=1.0, queue_capacity=2)
        )
        assert batcher.offer(_request(0, 0.0), now=0.0)
        assert batcher.offer(_request(1, 0.0), now=0.0)
        assert not batcher.offer(_request(2, 0.0), now=0.0)
        assert batcher.admitted == 2
        assert batcher.rejected == 1

    def test_offer_before_arrival_rejected(self):
        batcher = MicroBatcher(BatchingPolicy())
        with pytest.raises(ValueError):
            batcher.offer(_request(0, 1.0), now=0.5)

    def test_force_pop_drains_partial(self):
        batcher = MicroBatcher(
            BatchingPolicy(max_batch_size=100, max_wait=10.0)
        )
        batcher.offer(_request(0, 0.0), now=0.0)
        assert batcher.pop_batch(0.0) is None
        batch = batcher.force_pop(0.0)
        assert batch.size == 1
        assert batcher.force_pop(0.0) is None

    def test_counters_and_depth(self):
        batcher = MicroBatcher(
            BatchingPolicy(max_batch_size=2, max_wait=0.0, queue_capacity=4)
        )
        for i in range(4):
            batcher.offer(_request(i, 0.0), now=0.0)
        assert batcher.max_depth == 4
        batcher.pop_batch(0.0)
        batcher.pop_batch(0.0)
        assert batcher.batches_formed == 2
        assert batcher.empty()
