"""Tests for the deterministic traffic generator and coalescing."""

import numpy as np
import pytest

from repro.data.datasets import criteo_kaggle_like
from repro.serving.requests import (
    InferenceRequest,
    RequestGenerator,
    coalesce_requests,
    hot_rows_from_trace,
)

SPEC = criteo_kaggle_like(scale=3e-5)


class TestRequestGenerator:
    def test_deterministic_stream(self):
        a = RequestGenerator(SPEC, rate=100.0, seed=3).generate(20)
        b = RequestGenerator(SPEC, rate=100.0, seed=3).generate(20)
        for ra, rb in zip(a, b):
            assert ra.arrival_time == rb.arrival_time
            np.testing.assert_array_equal(ra.dense, rb.dense)
            for ia, ib in zip(ra.sparse_indices, rb.sparse_indices):
                np.testing.assert_array_equal(ia, ib)

    def test_seed_changes_stream(self):
        a = RequestGenerator(SPEC, rate=100.0, seed=0).generate(5)
        b = RequestGenerator(SPEC, rate=100.0, seed=1).generate(5)
        assert a[0].arrival_time != b[0].arrival_time

    def test_arrivals_strictly_increasing(self):
        requests = RequestGenerator(SPEC, rate=500.0, seed=0).generate(50)
        times = [r.arrival_time for r in requests]
        assert all(t1 > t0 for t0, t1 in zip(times, times[1:]))

    def test_mean_rate_approximate(self):
        rate = 1000.0
        requests = RequestGenerator(SPEC, rate=rate, seed=0).generate(2000)
        span = requests[-1].arrival_time - requests[0].arrival_time
        observed = (len(requests) - 1) / span
        assert observed == pytest.approx(rate, rel=0.15)

    def test_request_shapes(self):
        request = RequestGenerator(SPEC, rate=10.0, seed=0).generate(1)[0]
        assert request.dense.shape == (SPEC.num_dense,)
        assert request.num_tables == SPEC.num_sparse
        for table, bag in zip(SPEC.tables, request.sparse_indices):
            assert bag.shape == (table.bag_size,)
            assert (0 <= bag).all() and (bag < table.num_rows).all()

    def test_zipf_skew_present(self):
        gen = RequestGenerator(SPEC, rate=10.0, seed=0)
        requests = gen.generate(300)
        # the largest table should see heavy repetition of few rows
        t = max(range(SPEC.num_sparse), key=lambda i: SPEC.tables[i].num_rows)
        ids = np.concatenate([r.sparse_indices[t] for r in requests])
        _, counts = np.unique(ids, return_counts=True)
        assert counts.max() >= 10  # a hot row dominates

    def test_hot_rows_coverage(self):
        gen = RequestGenerator(SPEC, rate=10.0, seed=0)
        t = 0
        full = gen.hot_rows(t, 1.0)
        half = gen.hot_rows(t, 0.5)
        assert full.size == SPEC.tables[t].num_rows
        assert half.size == int(SPEC.tables[t].num_rows * 0.5)
        assert set(half).issubset(set(full))
        with pytest.raises(ValueError):
            gen.hot_rows(t, 1.5)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            RequestGenerator(SPEC, rate=0.0)

    def test_negative_count(self):
        with pytest.raises(ValueError):
            RequestGenerator(SPEC, rate=1.0).generate(-1)


class TestCoalesce:
    def test_round_trip_rows(self):
        requests = RequestGenerator(SPEC, rate=10.0, seed=0).generate(7)
        batch = coalesce_requests(requests)
        assert batch.batch_size == 7
        np.testing.assert_array_equal(batch.dense[3], requests[3].dense)
        for t in range(SPEC.num_sparse):
            start = batch.sparse_offsets[t][3]
            stop = batch.sparse_offsets[t][4]
            np.testing.assert_array_equal(
                batch.sparse_indices[t][start:stop],
                requests[3].sparse_indices[t],
            )

    def test_labels_zero(self):
        requests = RequestGenerator(SPEC, rate=10.0, seed=0).generate(2)
        assert (coalesce_requests(requests).labels == 0).all()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            coalesce_requests([])

    def test_table_count_mismatch_rejected(self):
        requests = RequestGenerator(SPEC, rate=10.0, seed=0).generate(2)
        bad = InferenceRequest(
            request_id=99,
            arrival_time=1.0,
            dense=requests[0].dense,
            sparse_indices=requests[0].sparse_indices[:-1],
        )
        with pytest.raises(ValueError):
            coalesce_requests([requests[0], bad])


class TestHotRowsFromTrace:
    def test_most_frequent_selected(self):
        trace = [np.array([3, 3, 3, 1, 1, 7])]
        np.testing.assert_array_equal(
            hot_rows_from_trace(trace, num_rows=10, count=2), [1, 3]
        )

    def test_tie_breaks_to_lower_id(self):
        trace = [np.array([5, 2])]
        np.testing.assert_array_equal(
            hot_rows_from_trace(trace, num_rows=10, count=1), [2]
        )

    def test_count_clamped(self):
        out = hot_rows_from_trace([np.array([0])], num_rows=3, count=10)
        assert out.size == 3

    def test_zero_count(self):
        assert hot_rows_from_trace([np.array([0])], 3, 0).size == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            hot_rows_from_trace([np.array([0])], 3, -1)
