"""Tests for the serving model view and the event-loop server."""

import numpy as np
import pytest

from repro.data.datasets import criteo_kaggle_like
from repro.embeddings.inference import StaleCacheError
from repro.models.config import DLRMConfig, EmbeddingBackend
from repro.models.dlrm import DLRM
from repro.serving.batcher import BatchingPolicy
from repro.serving.requests import RequestGenerator, coalesce_requests
from repro.serving.server import (
    InferenceServer,
    ServiceTimeModel,
    ServingModel,
    replay_batches,
)
from repro.serving.snapshot import ModelSnapshot

SPEC = criteo_kaggle_like(scale=3e-5)
CFG = DLRMConfig.from_dataset(
    SPEC, embedding_dim=8, backend=EmbeddingBackend.EFF_TT, tt_rank=8,
    bottom_mlp=(16,), top_mlp=(16,),
)


@pytest.fixture(scope="module")
def generator():
    return RequestGenerator(SPEC, rate=2000.0, seed=1)


@pytest.fixture(scope="module")
def requests(generator):
    return generator.generate(120)


def _hot(generator, coverage):
    return {
        t: generator.hot_rows(t, coverage) for t in range(SPEC.num_sparse)
    }


class TestServiceTimeModel:
    def test_duration_composition(self):
        model = ServiceTimeModel(
            base=1.0, per_sample=0.1, per_hot=0.01, per_cold=0.5
        )
        assert model.duration(4, hot=2, cold=3) == pytest.approx(
            1.0 + 0.4 + 0.02 + 1.5
        )

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ServiceTimeModel(base=-1.0)

    def test_cold_lookups_cost_more(self):
        model = ServiceTimeModel()
        assert model.duration(8, 0, 8) > model.duration(8, 8, 0)


class TestServingModel:
    def test_predictions_match_plain_model(self, generator, requests):
        model = DLRM(CFG, seed=0)
        serving = ServingModel(model, hot_rows=_hot(generator, 0.2))
        batch = coalesce_requests(requests[:16])
        np.testing.assert_allclose(
            serving.predict_proba(batch), model.predict_proba(batch),
            atol=1e-12,
        )

    def test_no_cache_is_bitwise_model(self, requests):
        model = DLRM(CFG, seed=0)
        serving = ServingModel(model)
        batch = coalesce_requests(requests[:8])
        np.testing.assert_array_equal(
            serving.predict_proba(batch), model.predict_proba(batch)
        )

    def test_cache_accounting(self, generator, requests):
        model = DLRM(CFG, seed=0)
        serving = ServingModel(model, hot_rows=_hot(generator, 0.3))
        assert serving.hot_lookups == 0
        serving.predict_proba(coalesce_requests(requests[:16]))
        assert serving.hot_lookups + serving.cold_lookups > 0
        assert 0.0 < serving.hit_rate <= 1.0
        assert serving.num_hot_rows > 0
        assert serving.cache_nbytes > 0

    def test_hot_rows_on_dense_table_ignored(self, generator, requests):
        # dense lookups are already gathers: a coverage map spanning a
        # mixed dense/TT model must not wrap (or count) dense tables
        dense_cfg = DLRMConfig.from_dataset(
            SPEC, embedding_dim=8, backend=EmbeddingBackend.DENSE,
            tt_rank=8, bottom_mlp=(16,), top_mlp=(16,),
        )
        model = DLRM(dense_cfg, seed=0)
        serving = ServingModel(model, hot_rows={0: np.array([0, 1])})
        assert serving.cached_views == []
        batch = coalesce_requests(requests[:4])
        np.testing.assert_array_equal(
            serving.predict_proba(batch), model.predict_proba(batch)
        )

    def test_training_under_live_view_raises(self, generator, requests):
        # The staleness satellite end to end: training the served model
        # without a refresh must fail loudly, not serve stale rows.
        from repro.data.dataloader import SyntheticClickLog

        model = DLRM(CFG, seed=0)
        serving = ServingModel(model, hot_rows=_hot(generator, 0.2))
        log = SyntheticClickLog(SPEC, batch_size=16, seed=0)
        model.train_step(log.batch(0), lr=0.1)
        with pytest.raises(StaleCacheError):
            serving.predict_proba(coalesce_requests(requests[:4]))
        serving.refresh()
        serving.predict_proba(coalesce_requests(requests[:4]))


class TestInferenceServer:
    def test_all_requests_served(self, generator, requests):
        server = InferenceServer(
            ServingModel(DLRM(CFG, seed=0), hot_rows=_hot(generator, 0.1)),
            policy=BatchingPolicy(max_batch_size=16, max_wait=2e-3),
            num_workers=2,
        )
        outcome = server.run(requests)
        assert outcome.report.completed == len(requests)
        assert outcome.report.rejected == 0
        served_ids = sorted(
            i for b in outcome.served_batches for i in b.request_ids
        )
        assert served_ids == [r.request_id for r in requests]

    def test_bit_reproducible(self, generator, requests):
        def run():
            server = InferenceServer(
                ServingModel(
                    DLRM(CFG, seed=0), hot_rows=_hot(generator, 0.1)
                ),
                policy=BatchingPolicy(max_batch_size=16, max_wait=2e-3),
                num_workers=2,
            )
            return server.run(requests)

        a, b = run(), run()
        assert len(a.served_batches) == len(b.served_batches)
        for ra, rb in zip(a.results, b.results):
            assert ra == rb

    def test_latencies_positive_and_consistent(self, generator, requests):
        outcome = InferenceServer(
            ServingModel(DLRM(CFG, seed=0), hot_rows=_hot(generator, 0.1)),
            policy=BatchingPolicy(max_batch_size=8, max_wait=1e-3),
        ).run(requests)
        for result in outcome.results:
            assert result.latency > 0.0
        report = outcome.report
        assert 0.0 < report.latency_p50 <= report.latency_p99
        assert report.latency_p99 <= report.latency_max

    def test_single_request_batches_when_batching_disabled(
        self, generator, requests
    ):
        outcome = InferenceServer(
            ServingModel(DLRM(CFG, seed=0)),
            policy=BatchingPolicy(max_batch_size=1, max_wait=0.0),
            num_workers=4,
        ).run(requests[:30])
        assert all(b.size == 1 for b in outcome.served_batches)

    def test_overload_sheds_requests(self, generator, requests):
        # one slow worker + tiny queue: admission control must kick in
        outcome = InferenceServer(
            ServingModel(DLRM(CFG, seed=0)),
            policy=BatchingPolicy(
                max_batch_size=2, max_wait=0.0, queue_capacity=2
            ),
            num_workers=1,
            service_time=ServiceTimeModel(base=0.5),
        ).run(requests[:40])
        assert outcome.report.rejected > 0
        assert outcome.report.completed + outcome.report.rejected == 40
        assert set(outcome.rejected_ids).isdisjoint(
            i for b in outcome.served_batches for i in b.request_ids
        )

    def test_hit_rate_grows_with_coverage(self, generator, requests):
        def hit_rate(coverage):
            outcome = InferenceServer(
                ServingModel(
                    DLRM(CFG, seed=0), hot_rows=_hot(generator, coverage)
                ),
                policy=BatchingPolicy(max_batch_size=16, max_wait=2e-3),
            ).run(requests)
            return outcome.report.cache_hit_rate

        r0, r1, r2 = hit_rate(0.01), hit_rate(0.1), hit_rate(0.5)
        assert r0 < r1 < r2

    def test_swap_attributes_versions(self, generator, requests):
        model = DLRM(CFG, seed=0)
        snapshot = ModelSnapshot.from_model(model, version=5)
        server = InferenceServer(
            ServingModel(model, hot_rows=_hot(generator, 0.1), version=0),
            policy=BatchingPolicy(max_batch_size=16, max_wait=2e-3),
        )
        midpoint = requests[len(requests) // 2].arrival_time
        server.schedule_swap(midpoint, snapshot)
        outcome = server.run(requests)
        versions = outcome.report.requests_per_version
        assert set(versions) == {0, 5}
        assert versions[0] > 0 and versions[5] > 0
        assert outcome.final_model_version == 5
        assert outcome.swap_times == (midpoint,)

    def test_replay_is_bitwise_identical(self, generator, requests):
        model = DLRM(CFG, seed=0)
        snapshot = ModelSnapshot.from_model(model, version=0)
        hot = _hot(generator, 0.1)
        outcome = InferenceServer(
            ServingModel(snapshot.materialize(), hot_rows=hot),
            policy=BatchingPolicy(max_batch_size=16, max_wait=2e-3),
            num_workers=2,
        ).run(requests)
        offline = replay_batches(
            ServingModel(snapshot.materialize(), hot_rows=hot),
            outcome.served_batches,
        )
        online = outcome.predictions_by_request()
        assert online == offline

    def test_invalid_worker_count(self, generator):
        with pytest.raises(ValueError):
            InferenceServer(ServingModel(DLRM(CFG, seed=0)), num_workers=0)

    def test_negative_swap_time_rejected(self):
        model = DLRM(CFG, seed=0)
        server = InferenceServer(ServingModel(model))
        with pytest.raises(ValueError):
            server.schedule_swap(-1.0, ModelSnapshot.from_model(model))

    def test_empty_stream(self):
        outcome = InferenceServer(ServingModel(DLRM(CFG, seed=0))).run([])
        assert outcome.report.completed == 0


class TestSwapVersionMonotonicity:
    """Interleaved swap schedules must never roll the served version back.

    Once a snapshot version is acknowledged (served), any older-or-equal
    snapshot arriving later is stale and must be rejected, not
    installed — otherwise a recycled version number would stamp stale
    predictions as fresh.
    """

    def _server(self, generator):
        return InferenceServer(
            ServingModel(
                DLRM(CFG, seed=0), hot_rows=_hot(generator, 0.1), version=0,
            ),
            policy=BatchingPolicy(max_batch_size=16, max_wait=2e-3),
        )

    def test_stale_snapshot_rejected_after_newer_acknowledged(
        self, generator, requests
    ):
        server = self._server(generator)
        snap_v3 = ModelSnapshot.from_model(DLRM(CFG, seed=3), version=3)
        snap_v1 = ModelSnapshot.from_model(DLRM(CFG, seed=1), version=1)
        t1 = requests[len(requests) // 3].arrival_time
        t2 = requests[2 * len(requests) // 3].arrival_time
        server.schedule_swap(t1, snap_v3)
        server.schedule_swap(t2, snap_v1)  # stale: v1 after v3 acknowledged
        outcome = server.run(requests)
        assert outcome.final_model_version == 3
        assert outcome.stale_swaps_rejected == 1
        assert len(outcome.swap_times) == 1
        # no request is ever stamped with the stale version
        assert all(r.model_version in (0, 3) for r in outcome.results)

    def test_equal_version_reoffer_is_stale(self, generator, requests):
        server = self._server(generator)
        snap_a = ModelSnapshot.from_model(DLRM(CFG, seed=4), version=2)
        snap_b = ModelSnapshot.from_model(DLRM(CFG, seed=5), version=2)
        t1 = requests[len(requests) // 3].arrival_time
        t2 = requests[2 * len(requests) // 3].arrival_time
        server.schedule_swap(t1, snap_a)
        server.schedule_swap(t2, snap_b)  # same counter: must not install
        outcome = server.run(requests)
        assert outcome.final_model_version == 2
        assert outcome.stale_swaps_rejected == 1
        assert len(outcome.swap_times) == 1

    def test_versions_monotone_along_request_timeline(
        self, generator, requests
    ):
        server = self._server(generator)
        times = [
            requests[len(requests) // 4].arrival_time,
            requests[len(requests) // 2].arrival_time,
            requests[3 * len(requests) // 4].arrival_time,
        ]
        # out-of-order schedule calls; the run applies them by time
        server.schedule_swap(times[2], ModelSnapshot.from_model(
            DLRM(CFG, seed=8), version=9))
        server.schedule_swap(times[0], ModelSnapshot.from_model(
            DLRM(CFG, seed=6), version=4))
        server.schedule_swap(times[1], ModelSnapshot.from_model(
            DLRM(CFG, seed=7), version=7))
        outcome = server.run(requests)
        assert outcome.final_model_version == 9
        ordered = sorted(outcome.served_batches, key=lambda b: b.start_time)
        versions = [b.model_version for b in ordered]
        assert versions == sorted(versions)  # never rolls back
        assert outcome.stale_swaps_rejected == 0
