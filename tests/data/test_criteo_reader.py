"""Tests for the Criteo TSV reader."""

import gzip
import io

import numpy as np
import pytest

from repro.data.criteo_reader import CriteoTSVReader, parse_criteo_lines


def _make_lines(num_lines: int, seed: int = 0, num_dense=13, num_sparse=26):
    """Synthesize Criteo-format TSV lines."""
    rng = np.random.default_rng(seed)
    lines = []
    for _ in range(num_lines):
        label = str(rng.integers(0, 2))
        dense = [
            str(rng.integers(0, 1000)) if rng.random() > 0.1 else ""
            for _ in range(num_dense)
        ]
        sparse = [
            f"{rng.integers(0, 50):08x}" if rng.random() > 0.05 else ""
            for _ in range(num_sparse)
        ]
        lines.append("\t".join([label, *dense, *sparse]) + "\n")
    return lines


class TestParseCriteoLines:
    def test_basic_parse(self):
        line = "1\t" + "\t".join(["5"] * 13) + "\t" + "\t".join(["0000000a"] * 26)
        labels, dense, sparse = parse_criteo_lines([line])
        assert labels[0] == 1.0
        assert dense.shape == (1, 13)
        np.testing.assert_array_equal(dense[0], 5.0)
        assert len(sparse) == 26
        assert sparse[0][0] == 10  # hex a

    def test_missing_fields(self):
        line = "0\t" + "\t".join([""] * 13) + "\t" + "\t".join([""] * 26)
        labels, dense, sparse = parse_criteo_lines([line])
        np.testing.assert_array_equal(dense[0], 0.0)
        assert all(col[0] == 0 for col in sparse)

    def test_wrong_field_count(self):
        with pytest.raises(ValueError, match="fields"):
            parse_criteo_lines(["1\t2\t3"])

    def test_custom_schema(self):
        line = "0\t7\t" + "\t".join(["ff"] * 3)
        labels, dense, sparse = parse_criteo_lines(
            [line], num_dense=1, num_sparse=3
        )
        assert dense[0, 0] == 7.0
        assert sparse[2][0] == 255


class TestCriteoTSVReader:
    def test_fit_and_encode(self):
        lines = _make_lines(200, seed=1)
        reader = CriteoTSVReader(min_frequency=2).fit(io.StringIO("".join(lines)))
        assert len(reader.cardinalities) == 26
        assert all(c >= 1 for c in reader.cardinalities)
        batch = reader.encode_lines(lines[:32])
        assert batch.batch_size == 32
        assert batch.num_tables == 26
        for idx, card in zip(batch.sparse_indices, reader.cardinalities):
            assert idx.min() >= 0
            assert idx.max() < card

    def test_batches_stream(self):
        lines = _make_lines(100, seed=2)
        reader = CriteoTSVReader().fit(io.StringIO("".join(lines)))
        batches = list(
            reader.batches(io.StringIO("".join(lines)), batch_size=32)
        )
        assert len(batches) == 3  # drop_last drops the remainder of 4
        assert all(b.batch_size == 32 for b in batches)
        assert [b.batch_id for b in batches] == [0, 1, 2]

    def test_keep_last_partial(self):
        lines = _make_lines(40, seed=3)
        reader = CriteoTSVReader().fit(io.StringIO("".join(lines)))
        batches = list(
            reader.batches(
                io.StringIO("".join(lines)), batch_size=32, drop_last=False
            )
        )
        assert len(batches) == 2
        assert batches[-1].batch_size == 8

    def test_fit_max_lines(self):
        lines = _make_lines(100, seed=4)
        reader = CriteoTSVReader().fit(
            io.StringIO("".join(lines)), max_lines=50
        )
        assert reader._fitted

    def test_gzip_file(self, tmp_path):
        lines = _make_lines(64, seed=5)
        path = tmp_path / "day_0.gz"
        with gzip.open(path, "wt") as handle:
            handle.writelines(lines)
        reader = CriteoTSVReader().fit(str(path))
        batches = list(reader.batches(str(path), batch_size=64))
        assert len(batches) == 1

    def test_unfitted_rejected(self):
        reader = CriteoTSVReader()
        with pytest.raises(RuntimeError):
            reader.encode_lines(_make_lines(1))
        with pytest.raises(RuntimeError):
            _ = reader.cardinalities

    def test_trains_dlrm_end_to_end(self):
        """Real-format ingest drives the full model."""
        from repro.models.config import DLRMConfig, EmbeddingBackend
        from repro.models.dlrm import DLRM

        lines = _make_lines(256, seed=6)
        reader = CriteoTSVReader(min_frequency=1).fit(
            io.StringIO("".join(lines))
        )
        cfg = DLRMConfig(
            num_dense=13,
            table_rows=tuple(reader.cardinalities),
            embedding_dim=8,
            bottom_mlp=(16,),
            top_mlp=(16,),
            backend=EmbeddingBackend.EFF_TT,
            tt_rank=4,
        )
        model = DLRM(cfg, seed=0)
        losses = []
        for _ in range(3):
            for batch in reader.batches(
                io.StringIO("".join(lines)), batch_size=64
            ):
                losses.append(model.train_step(batch, lr=0.1).loss)
        assert np.isfinite(losses).all()
        assert np.mean(losses[-4:]) < np.mean(losses[:4])
