"""Tests for power-law index samplers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.synthetic import (
    ClusteredZipfSampler,
    ZipfSampler,
    zipf_probabilities,
)


class TestZipfProbabilities:
    def test_normalized(self):
        p = zipf_probabilities(1000, 1.05)
        assert p.sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        p = zipf_probabilities(100, 1.2)
        assert np.all(np.diff(p) <= 0)

    def test_uniform_at_zero_alpha(self):
        p = zipf_probabilities(10, 0.0)
        np.testing.assert_allclose(p, 0.1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            zipf_probabilities(0, 1.0)
        with pytest.raises(ValueError):
            zipf_probabilities(10, -1.0)


class TestZipfSampler:
    def test_range(self, rng):
        sampler = ZipfSampler(100, alpha=1.05, seed=0)
        idx = sampler.sample(10_000, rng)
        assert idx.min() >= 0 and idx.max() < 100

    def test_skew(self, rng):
        sampler = ZipfSampler(10_000, alpha=1.05, scatter=False, seed=0)
        ranks = sampler.sample_ranks(100_000, rng)
        # top 10% of ranks should account for the large majority
        top_fraction = (ranks < 1000).mean()
        assert top_fraction > 0.6

    def test_scatter_is_permutation(self, rng):
        sampler = ZipfSampler(50, alpha=1.0, scatter=True, seed=1)
        assert sorted(sampler._rank_to_row.tolist()) == list(range(50))

    def test_no_scatter_rank_equals_row(self, rng):
        sampler = ZipfSampler(50, alpha=1.0, scatter=False, seed=1)
        idx = sampler.sample(1000, rng)
        # most popular row must be 0 under no scatter
        counts = np.bincount(idx, minlength=50)
        assert counts.argmax() == 0

    def test_rows_covering(self):
        sampler = ZipfSampler(10_000, alpha=1.05, seed=0)
        k50 = sampler.rows_covering(0.5)
        k90 = sampler.rows_covering(0.9)
        assert 0 < k50 < k90 <= 10_000

    def test_large_table_analytic_path(self, rng):
        sampler = ZipfSampler(40_000_000, alpha=1.05, scatter=False, seed=0)
        assert not sampler._exact
        ranks = sampler.sample_ranks(10_000, rng)
        assert ranks.min() >= 0 and ranks.max() < 40_000_000
        assert (ranks < 4_000_000).mean() > 0.5  # skew survives

    def test_rows_covering_requires_exact(self):
        sampler = ZipfSampler(40_000_000, alpha=1.05, seed=0)
        with pytest.raises(ValueError):
            sampler.rows_covering(0.5)

    def test_deterministic_given_rng(self):
        sampler = ZipfSampler(100, seed=0)
        a = sampler.sample(10, np.random.default_rng(5))
        b = sampler.sample(10, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_zero_size(self, rng):
        assert ZipfSampler(10, seed=0).sample(0, rng).size == 0

    def test_negative_size(self, rng):
        with pytest.raises(ValueError):
            ZipfSampler(10, seed=0).sample(-1, rng)


class TestClusteredZipfSampler:
    def test_locality_increases_duplication(self):
        base_unique = []
        local_unique = []
        for seed in range(5):
            rng = np.random.default_rng(seed)
            flat = ClusteredZipfSampler(
                100_000, locality=0.0, cluster_size=64, seed=0
            )
            clustered = ClusteredZipfSampler(
                100_000, locality=0.8, cluster_size=64, seed=0
            )
            base_unique.append(
                np.unique(flat.sample_batch(512, np.random.default_rng(seed))).size
            )
            local_unique.append(
                np.unique(
                    clustered.sample_batch(512, np.random.default_rng(seed))
                ).size
            )
        assert np.mean(local_unique) < np.mean(base_unique)

    def test_zero_locality_matches_base(self):
        sampler = ClusteredZipfSampler(1000, locality=0.0, seed=3)
        base = ZipfSampler(1000, seed=3)
        a = sampler.sample_batch(100, np.random.default_rng(1))
        b = base.sample(100, np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)

    def test_range(self):
        sampler = ClusteredZipfSampler(500, locality=0.9, cluster_size=1000, seed=0)
        idx = sampler.sample_batch(2000, np.random.default_rng(0))
        assert idx.min() >= 0 and idx.max() < 500

    def test_invalid_locality(self):
        with pytest.raises(ValueError):
            ClusteredZipfSampler(100, locality=1.5)


@given(
    st.integers(min_value=1, max_value=10_000),
    st.floats(min_value=0.0, max_value=2.0),
    st.integers(min_value=0, max_value=100),
)
@settings(max_examples=50, deadline=None)
def test_property_samples_in_range(num_rows, alpha, seed):
    sampler = ZipfSampler(num_rows, alpha=alpha, seed=seed)
    idx = sampler.sample(100, np.random.default_rng(seed))
    assert idx.min() >= 0
    assert idx.max() < num_rows
