"""Tests for the synthetic click-log stream."""

import numpy as np
import pytest

from repro.data.dataloader import (
    SyntheticClickLog,
    cumulative_access_curve,
    unique_index_stats,
)
from repro.data.datasets import criteo_kaggle_like
from repro.reorder.bijection import IndexBijection


@pytest.fixture(scope="module")
def log():
    spec = criteo_kaggle_like(scale=1e-4)
    return SyntheticClickLog(spec, batch_size=256, seed=0)


class TestBatchGeneration:
    def test_shapes(self, log):
        b = log.batch(0)
        assert b.dense.shape == (256, 13)
        assert b.labels.shape == (256,)
        assert b.num_tables == 26
        for idx, off in zip(b.sparse_indices, b.sparse_offsets):
            assert idx.size == 256  # bag_size 1
            assert off.size == 257
            assert off[0] == 0 and off[-1] == idx.size

    def test_deterministic_random_access(self, log):
        a = log.batch(7)
        b = log.batch(7)
        np.testing.assert_array_equal(a.dense, b.dense)
        np.testing.assert_array_equal(a.labels, b.labels)
        for x, y in zip(a.sparse_indices, b.sparse_indices):
            np.testing.assert_array_equal(x, y)

    def test_different_batches_differ(self, log):
        assert not np.array_equal(log.batch(0).dense, log.batch(1).dense)

    def test_indices_in_range(self, log):
        b = log.batch(3)
        for idx, table in zip(b.sparse_indices, log.spec.tables):
            assert idx.min() >= 0
            assert idx.max() < table.num_rows

    def test_labels_binary_with_signal(self, log):
        labels = np.concatenate([log.batch(i).labels for i in range(10)])
        assert set(np.unique(labels)).issubset({0.0, 1.0})
        assert 0.05 < labels.mean() < 0.8

    def test_batches_iterator(self, log):
        ids = [b.batch_id for b in log.batches(3, start=5)]
        assert ids == [5, 6, 7]

    def test_num_batches(self):
        spec = criteo_kaggle_like(scale=1e-4)
        log = SyntheticClickLog(spec, batch_size=100, seed=0)
        assert log.num_batches == spec.num_samples // 100

    def test_invalid_batch_id(self, log):
        with pytest.raises(ValueError):
            log.batch(-1)


class TestRemap:
    def test_bijection_applied(self, log):
        b = log.batch(0)
        bijections = [
            IndexBijection.identity(t.num_rows) for t in log.spec.tables
        ]
        # reverse table 0's ids
        n0 = log.spec.tables[0].num_rows
        bijections[0] = IndexBijection.from_forward(
            np.arange(n0)[::-1].copy()
        )
        remapped = b.remap(bijections)
        np.testing.assert_array_equal(
            remapped.sparse_indices[0], n0 - 1 - b.sparse_indices[0]
        )
        np.testing.assert_array_equal(
            remapped.sparse_indices[1], b.sparse_indices[1]
        )

    def test_none_entries_passthrough(self, log):
        b = log.batch(0)
        remapped = b.remap([None] * b.num_tables)
        np.testing.assert_array_equal(
            remapped.sparse_indices[5], b.sparse_indices[5]
        )

    def test_wrong_count(self, log):
        with pytest.raises(ValueError):
            log.batch(0).remap([None])


class TestTableIndexStream:
    def test_stream(self, log):
        stream = log.table_index_stream(2, 4)
        assert len(stream) == 4
        np.testing.assert_array_equal(stream[0], log.batch(0).sparse_indices[2])

    def test_invalid_table(self, log):
        with pytest.raises(ValueError):
            log.table_index_stream(99, 2)


class TestStatistics:
    def test_unique_index_stats_gap(self, log):
        """Figure 4b: unique indices per batch << batch size."""
        stream = log.table_index_stream(2, 8)
        stats = unique_index_stats(stream)
        assert stats["mean_indices_per_batch"] == 256.0
        assert stats["mean_unique_per_batch"] < 256.0
        assert stats["duplication_factor"] > 1.0

    def test_unique_index_stats_empty(self):
        with pytest.raises(ValueError):
            unique_index_stats([])

    def test_cumulative_access_curve_skew(self, log):
        """Figure 4a: top 10% of rows take the majority of accesses."""
        stream = log.table_index_stream(2, 16)
        rows, acc = cumulative_access_curve(
            stream, log.spec.tables[2].num_rows, points=10
        )
        assert acc[-1] == pytest.approx(1.0)
        assert np.all(np.diff(acc) >= -1e-12)
        assert acc[0] > 0.5  # strong skew at 10% of rows

    def test_cumulative_curve_validation(self):
        with pytest.raises(ValueError):
            cumulative_access_curve([np.array([0])], 0)
        with pytest.raises(ValueError):
            cumulative_access_curve([np.array([], dtype=np.int64)], 5)

    def test_teacher_strength_zero_noise(self):
        spec = criteo_kaggle_like(scale=1e-4)
        log = SyntheticClickLog(spec, batch_size=512, seed=0, teacher_strength=0.0)
        labels = log.batch(0).labels
        assert 0.1 < labels.mean() < 0.5
