"""Tests for the NVTabular-style preprocessing transforms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.preprocess import CategoryEncoder, DenseNormalizer, hash_encode


class TestHashEncode:
    def test_range(self):
        out = hash_encode(np.arange(1000), num_buckets=64)
        assert out.min() >= 0 and out.max() < 64

    def test_deterministic(self):
        a = hash_encode(np.arange(100), 32, seed=7)
        b = hash_encode(np.arange(100), 32, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_mapping(self):
        a = hash_encode(np.arange(100), 1024, seed=1)
        b = hash_encode(np.arange(100), 1024, seed=2)
        assert not np.array_equal(a, b)

    def test_roughly_uniform(self):
        out = hash_encode(np.arange(100_000), num_buckets=16)
        counts = np.bincount(out, minlength=16)
        assert counts.min() > 100_000 / 16 * 0.8

    def test_invalid_buckets(self):
        with pytest.raises(ValueError):
            hash_encode(np.arange(4), 0)


class TestCategoryEncoder:
    def test_basic_vocabulary(self):
        enc = CategoryEncoder(min_frequency=1)
        enc.fit([np.array([5, 5, 5, 9, 9, 3])])
        # frequency order: 5 (3x) -> id 1, 9 (2x) -> id 2, 3 -> id 3
        np.testing.assert_array_equal(
            enc.transform(np.array([5, 9, 3])), [1, 2, 3]
        )
        assert enc.cardinality == 4

    def test_frequency_threshold_folds_to_oov(self):
        enc = CategoryEncoder(min_frequency=2)
        enc.fit([np.array([5, 5, 9])])
        out = enc.transform(np.array([5, 9]))
        assert out[0] == 1
        assert out[1] == 0  # below threshold -> OOV

    def test_unseen_is_oov(self):
        enc = CategoryEncoder().fit([np.array([1, 2])])
        assert enc.transform(np.array([999]))[0] == 0

    def test_max_cardinality_keeps_most_frequent(self):
        enc = CategoryEncoder(max_cardinality=2)
        enc.fit([np.array([7, 7, 7, 8, 8, 9])])
        out = enc.transform(np.array([7, 8, 9]))
        assert out[0] == 1       # most frequent kept
        assert out[1] == 0       # capped out
        assert out[2] == 0
        assert enc.cardinality == 2

    def test_partial_fit_accumulates(self):
        enc = CategoryEncoder(min_frequency=2)
        enc.partial_fit(np.array([4]))
        enc.partial_fit(np.array([4]))
        enc.finalize()
        assert enc.transform(np.array([4]))[0] == 1

    def test_fit_after_finalize_rejected(self):
        enc = CategoryEncoder().fit([np.array([1])])
        with pytest.raises(RuntimeError):
            enc.partial_fit(np.array([2]))

    def test_transform_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            CategoryEncoder().transform(np.array([1]))
        with pytest.raises(RuntimeError):
            _ = CategoryEncoder().cardinality

    def test_oov_rate(self):
        enc = CategoryEncoder(min_frequency=1).fit([np.array([1, 2])])
        assert enc.oov_rate(np.array([1, 2, 3, 4])) == pytest.approx(0.5)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            CategoryEncoder(min_frequency=0)
        with pytest.raises(ValueError):
            CategoryEncoder(max_cardinality=0)

    @given(
        st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=200),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_ids_contiguous(self, raw, threshold):
        enc = CategoryEncoder(min_frequency=threshold)
        enc.fit([np.array(raw)])
        encoded = enc.transform(np.array(raw))
        assert encoded.min() >= 0
        assert encoded.max() < enc.cardinality
        # every id below cardinality except possibly 0 is reachable
        used = set(encoded.tolist())
        non_oov = used - {0}
        if non_oov:
            assert max(non_oov) == len(non_oov)  # contiguous 1..k


class TestDenseNormalizer:
    def test_standardizes(self, rng):
        data = rng.lognormal(0, 1, size=(5000, 3))
        norm = DenseNormalizer().fit([data])
        out = norm.transform(data)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-6)

    def test_log_clamps_negatives(self):
        norm = DenseNormalizer().fit([np.array([[0.0], [10.0]])])
        out = norm.transform(np.array([[-5.0]]))
        assert np.isfinite(out).all()

    def test_chunked_fit_matches_single(self, rng):
        data = rng.random((1000, 2)) * 10
        single = DenseNormalizer().fit([data])
        chunked = DenseNormalizer().fit([data[:300], data[300:]])
        np.testing.assert_allclose(
            single.transform(data), chunked.transform(data), atol=1e-9
        )

    def test_constant_feature_passthrough(self):
        data = np.full((100, 1), 3.0)
        norm = DenseNormalizer().fit([data])
        out = norm.transform(data)
        assert np.isfinite(out).all()

    def test_no_log_mode(self, rng):
        data = rng.normal(0, 1, size=(500, 2))
        norm = DenseNormalizer(log_transform=False).fit([data])
        out = norm.transform(data)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-9)

    def test_errors(self):
        with pytest.raises(RuntimeError):
            DenseNormalizer().transform(np.zeros((1, 2)))
        with pytest.raises(RuntimeError):
            DenseNormalizer().finalize()
        norm = DenseNormalizer().fit([np.zeros((10, 2))])
        with pytest.raises(ValueError):
            norm.transform(np.zeros((1, 3)))
        with pytest.raises(ValueError):
            norm.transform(np.zeros(3))
