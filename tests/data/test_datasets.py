"""Tests for dataset specifications (paper Table II)."""

import pytest

from repro.data.datasets import (
    DATASET_FACTORIES,
    TableSpec,
    avazu_like,
    criteo_kaggle_like,
    criteo_tb_like,
)


class TestSchemas:
    def test_criteo_kaggle_schema(self):
        spec = criteo_kaggle_like()
        assert spec.num_dense == 13
        assert spec.num_sparse == 26
        assert spec.days == 7
        assert spec.num_samples == 45_840_617
        # published largest table
        assert max(t.num_rows for t in spec.tables) == 10_131_227

    def test_avazu_schema(self):
        spec = avazu_like()
        assert spec.num_dense == 1
        assert spec.num_sparse == 20
        assert spec.days == 11

    def test_criteo_tb_schema_footprint(self):
        spec = criteo_tb_like()
        assert spec.num_dense == 13
        assert spec.num_sparse == 26
        assert spec.days == 24
        # Table II: ~59.2 GB dense embedding footprint at dim 64 fp32
        gb = spec.embedding_footprint_bytes(64) / 1e9
        assert gb == pytest.approx(59.2, rel=0.01)

    def test_scaling(self):
        full = criteo_kaggle_like()
        small = criteo_kaggle_like(scale=1e-3)
        assert small.total_rows < full.total_rows * 2e-3
        assert small.num_samples < full.num_samples * 2e-3
        assert small.num_sparse == full.num_sparse
        assert small.scale == 1e-3

    def test_invalid_scale(self):
        for factory in DATASET_FACTORIES.values():
            with pytest.raises(ValueError):
                factory(scale=0.0)
            with pytest.raises(ValueError):
                factory(scale=1.5)


class TestLargeTables:
    def test_full_scale_threshold(self):
        spec = criteo_kaggle_like()
        large = spec.large_tables()
        # published cardinalities: 5 tables above 1M rows
        assert len(large) == 5
        assert all(t.num_rows > 1_000_000 for t in large)

    def test_scaled_selection_matches_full(self):
        full = {t.name for t in criteo_kaggle_like().large_tables()}
        scaled = {
            t.name for t in criteo_kaggle_like(scale=1e-3).large_tables()
        }
        assert scaled == full


class TestTableSpec:
    def test_footprint(self):
        t = TableSpec("C1", 1000)
        assert t.footprint_bytes(64) == 1000 * 64 * 4

    def test_validation(self):
        with pytest.raises(ValueError):
            TableSpec("C1", 0)
        with pytest.raises(ValueError):
            TableSpec("C1", 10, bag_size=0)
        with pytest.raises(ValueError):
            TableSpec("C1", 10, alpha=-0.5)


class TestDescribe:
    def test_describe_keys(self):
        row = avazu_like(scale=0.01).describe()
        assert row["dataset"] == "avazu"
        assert row["sparse_features"] == 20
        assert row["scale"] == 0.01
