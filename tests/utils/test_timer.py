"""Tests for wall-clock measurement helpers."""

import time

import pytest

from repro.utils.timer import Timer, measure_median


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.002)
        with t:
            time.sleep(0.002)
        assert t.elapsed >= 0.004
        assert len(t.laps) == 2

    def test_mean_and_median(self):
        t = Timer()
        t.laps = [0.1, 0.2, 0.9]
        t.elapsed = sum(t.laps)
        assert t.mean == pytest.approx(0.4)
        assert t.median == pytest.approx(0.2)

    def test_median_even_count(self):
        t = Timer()
        t.laps = [0.1, 0.2, 0.3, 0.4]
        assert t.median == pytest.approx(0.25)

    def test_empty(self):
        t = Timer()
        assert t.mean == 0.0
        assert t.median == 0.0

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0
        assert t.laps == []


class TestMeasureMedian:
    def test_positive(self):
        result = measure_median(lambda: sum(range(100)), repeats=3, warmup=1)
        assert result > 0

    def test_counts_calls(self):
        calls = []
        measure_median(lambda: calls.append(1), repeats=3, warmup=2)
        assert len(calls) == 5

    def test_invalid(self):
        with pytest.raises(ValueError):
            measure_median(lambda: None, repeats=0)
        with pytest.raises(ValueError):
            measure_median(lambda: None, warmup=-1)
