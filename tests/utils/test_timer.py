"""Tests for wall-clock measurement helpers."""

import time

import numpy as np
import pytest

from repro.utils.timer import (
    LatencyHistogram,
    Timer,
    measure_median,
    percentiles,
)


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.002)
        with t:
            time.sleep(0.002)
        assert t.elapsed >= 0.004
        assert len(t.laps) == 2

    def test_mean_and_median(self):
        t = Timer()
        t.laps = [0.1, 0.2, 0.9]
        t.elapsed = sum(t.laps)
        assert t.mean == pytest.approx(0.4)
        assert t.median == pytest.approx(0.2)

    def test_median_even_count(self):
        t = Timer()
        t.laps = [0.1, 0.2, 0.3, 0.4]
        assert t.median == pytest.approx(0.25)

    def test_empty(self):
        t = Timer()
        assert t.mean == 0.0
        assert t.median == 0.0

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0
        assert t.laps == []


class TestMeasureMedian:
    def test_positive(self):
        result = measure_median(lambda: sum(range(100)), repeats=3, warmup=1)
        assert result > 0

    def test_counts_calls(self):
        calls = []
        measure_median(lambda: calls.append(1), repeats=3, warmup=2)
        assert len(calls) == 5

    def test_invalid(self):
        with pytest.raises(ValueError):
            measure_median(lambda: None, repeats=0)
        with pytest.raises(ValueError):
            measure_median(lambda: None, warmup=-1)


class TestPercentiles:
    def test_matches_numpy_default_interpolation(self):
        rng = np.random.default_rng(0)
        samples = rng.exponential(1.0, size=257).tolist()
        out = percentiles(samples)
        for q in (50.0, 95.0, 99.0):
            assert out[q] == pytest.approx(np.percentile(samples, q))

    def test_single_sample(self):
        assert percentiles([3.0]) == {50.0: 3.0, 95.0: 3.0, 99.0: 3.0}

    def test_unsorted_input(self):
        assert percentiles([4.0, 1.0, 3.0, 2.0], qs=(50.0,))[50.0] == 2.5

    def test_custom_quantiles(self):
        out = percentiles([1.0, 2.0, 3.0], qs=(0.0, 100.0))
        assert out == {0.0: 1.0, 100.0: 3.0}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentiles([])

    def test_invalid_quantile_rejected(self):
        with pytest.raises(ValueError):
            percentiles([1.0], qs=(101.0,))


class TestLatencyHistogram:
    def test_summary_fields(self):
        hist = LatencyHistogram()
        for value in (0.001, 0.002, 0.003, 0.010):
            hist.record(value)
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(0.004)
        assert summary["max"] == pytest.approx(0.010)
        assert summary["p50"] <= summary["p95"] <= summary["p99"]
        assert len(hist) == 4

    def test_percentile_query(self):
        hist = LatencyHistogram()
        for i in range(100):
            hist.record(float(i))
        assert hist.percentile(50.0) == pytest.approx(
            np.percentile(np.arange(100.0), 50.0)
        )

    def test_empty_summary_is_zeros(self):
        summary = LatencyHistogram().summary()
        assert summary == {
            "count": 0, "mean": 0.0, "max": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }

    def test_buckets_partition_samples(self):
        hist = LatencyHistogram()
        for value in (0.0, 0.25, 0.5, 0.75, 1.0):
            hist.record(value)
        buckets = hist.buckets(2)
        assert len(buckets) == 2
        assert sum(count for _, _, count in buckets) == 5
        assert buckets[0][0] == pytest.approx(0.0)
        assert buckets[-1][1] == pytest.approx(1.0)

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().record(-1.0)
