"""Tests for RNG plumbing."""

import numpy as np
import pytest

from repro.utils.rng import ENTROPY, ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_rejected(self):
        # Silent nondeterminism is opt-in only (reprolint REP001).
        with pytest.raises(TypeError, match="entropy"):
            ensure_rng(None)

    def test_entropy_opt_in_gives_generator(self):
        assert isinstance(ensure_rng(ENTROPY), np.random.Generator)
        assert isinstance(ensure_rng("entropy"), np.random.Generator)

    def test_entropy_generators_independent(self):
        a = ensure_rng(ENTROPY).random(8)
        b = ensure_rng(ENTROPY).random(8)
        assert not np.array_equal(a, b)

    def test_int_deterministic(self):
        a = ensure_rng(7).random(5)
        b = ensure_rng(7).random(5)
        np.testing.assert_array_equal(a, b)

    def test_sequence_seed(self):
        a = ensure_rng((1, 2, 3)).random(5)
        b = ensure_rng((1, 2, 3)).random(5)
        c = ensure_rng((1, 2, 4)).random(5)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_numpy_integer(self):
        a = ensure_rng(np.int64(9)).random(3)
        b = ensure_rng(9).random(3)
        np.testing.assert_array_equal(a, b)

    def test_invalid_type(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")  # only "entropy" is a legal string
        with pytest.raises(TypeError):
            ensure_rng(3.14)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5
        assert spawn_rngs(0, 0) == []

    def test_children_independent(self):
        children = spawn_rngs(0, 3)
        draws = [c.random(4) for c in children]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_deterministic(self):
        a = [c.random(3) for c in spawn_rngs(42, 2)]
        b = [c.random(3) for c in spawn_rngs(42, 2)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
