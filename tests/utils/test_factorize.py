"""Tests for balanced integer factorization (TT shape selection)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.factorize import (
    balanced_factorization,
    ceil_balanced_factors,
    factorize_pair,
    prime_factors,
    suggest_tt_shapes,
)


class TestPrimeFactors:
    def test_small_values(self):
        assert prime_factors(1) == []
        assert prime_factors(2) == [2]
        assert prime_factors(12) == [2, 2, 3]
        assert prime_factors(360) == [2, 2, 2, 3, 3, 5]

    def test_prime(self):
        assert prime_factors(97) == [97]

    def test_large_prime_power(self):
        assert prime_factors(2**20) == [2] * 20

    def test_invalid(self):
        with pytest.raises(ValueError):
            prime_factors(0)
        with pytest.raises(ValueError):
            prime_factors(-5)

    @given(st.integers(min_value=1, max_value=100_000))
    @settings(max_examples=200, deadline=None)
    def test_product_roundtrip(self, value):
        assert math.prod(prime_factors(value)) == value

    @given(st.integers(min_value=2, max_value=100_000))
    @settings(max_examples=100, deadline=None)
    def test_factors_are_prime(self, value):
        for p in prime_factors(value):
            assert p >= 2
            assert all(p % q != 0 for q in range(2, int(p**0.5) + 1))


class TestBalancedFactorization:
    def test_perfect_cube(self):
        assert balanced_factorization(1000, 3) == [10, 10, 10]

    def test_power_of_two(self):
        factors = balanced_factorization(64, 3)
        assert math.prod(factors) == 64
        assert factors == [4, 4, 4]

    def test_single_factor(self):
        assert balanced_factorization(42, 1) == [42]

    def test_more_factors_than_primes(self):
        factors = balanced_factorization(6, 4)
        assert math.prod(factors) == 6
        assert len(factors) == 4
        assert factors.count(1) == 2

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            balanced_factorization(10, 0)
        with pytest.raises(ValueError):
            balanced_factorization(0, 2)

    @given(
        st.integers(min_value=1, max_value=10_000_000),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=200, deadline=None)
    def test_product_invariant(self, value, k):
        factors = balanced_factorization(value, k)
        assert math.prod(factors) == value
        assert len(factors) == k
        assert factors == sorted(factors, reverse=True)


class TestFactorizePair:
    def test_shapes(self):
        rows, cols = factorize_pair(1_000_000, 64, 3)
        assert math.prod(rows) == 1_000_000
        assert math.prod(cols) == 64

    def test_two_cores(self):
        rows, cols = factorize_pair(144, 16, 2)
        assert len(rows) == len(cols) == 2


class TestSuggestTTShapes:
    def test_exact_cube_no_padding(self):
        rows, cols, padded = suggest_tt_shapes(1000, 8)
        assert padded == 1000
        assert rows == [10, 10, 10]
        assert math.prod(cols) == 8

    def test_prime_rows_padded(self):
        # A large prime forces padding for a balanced factorization.
        rows, cols, padded = suggest_tt_shapes(1_000_003, 64)
        assert padded >= 1_000_003
        assert math.prod(rows) == padded
        # padding bounded
        assert padded <= 1_000_003 * 1.2 + 1
        # balance: max factor within 2x of cube root
        assert max(rows) <= 2 * round(padded ** (1 / 3) + 1)

    def test_criteo_sized_tables(self):
        for cardinality in (10_131_227, 8_351_593, 5_461_306, 2_202_608):
            rows, cols, padded = suggest_tt_shapes(cardinality, 64)
            assert padded >= cardinality
            assert (padded - cardinality) / cardinality < 0.2
            assert math.prod(rows) == padded

    def test_invalid(self):
        with pytest.raises(ValueError):
            suggest_tt_shapes(0, 16)
        with pytest.raises(ValueError):
            suggest_tt_shapes(100, 0)
        with pytest.raises(ValueError):
            suggest_tt_shapes(100, 16, num_cores=0)

    @given(st.integers(min_value=10, max_value=2_000_000))
    @settings(max_examples=50, deadline=None)
    def test_padding_invariants(self, num_rows):
        rows, cols, padded = suggest_tt_shapes(num_rows, 32)
        assert padded >= num_rows
        assert math.prod(rows) == padded
        assert math.prod(cols) == 32


class TestCeilBalancedFactors:
    """Properties of the shared hash/PQ/TT ceil-cube sizing rule."""

    def test_exact_cube(self):
        assert ceil_balanced_factors(1000, 3) == [10, 10, 10]

    def test_known_values(self):
        assert ceil_balanced_factors(1, 3) == [1, 1, 1]
        assert ceil_balanced_factors(7, 1) == [7]
        assert ceil_balanced_factors(10_131_227, 3) == [217, 217, 216]

    def test_invalid(self):
        with pytest.raises(ValueError):
            ceil_balanced_factors(0, 3)
        with pytest.raises(ValueError):
            ceil_balanced_factors(10, 0)

    @given(
        st.integers(min_value=1, max_value=5_000_000),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=300, deadline=None)
    def test_capacity_and_balance(self, value, num_factors):
        factors = ceil_balanced_factors(value, num_factors)
        # capacity: the factor grid always covers the cardinality
        assert math.prod(factors) >= value
        # near-balanced: no factor more than one above the smallest
        assert max(factors) - min(factors) <= 1
        # canonical descending order, fixed length
        assert factors == sorted(factors, reverse=True)
        assert len(factors) == num_factors
        # deterministic
        assert ceil_balanced_factors(value, num_factors) == factors

    @given(st.integers(min_value=10, max_value=2_000_000))
    @settings(max_examples=50, deadline=None)
    def test_tt_fast_path_agrees(self, num_rows):
        # suggest_tt_shapes' generous-padding fast path must be exactly
        # the shared helper (the extraction is behavior-preserving).
        rows, _cols, padded = suggest_tt_shapes(
            num_rows, 32, max_padding_ratio=10.0
        )
        direct = ceil_balanced_factors(num_rows, 3)
        if math.prod(direct) == padded:
            assert rows == direct
