"""Tests for the fast duplicate-safe scatter-add."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.scatter import scatter_add_rows


class TestScatterAddRows:
    def test_basic(self):
        target = np.zeros((4, 2))
        scatter_add_rows(
            target, np.array([1, 3]), np.array([[1.0, 2.0], [3.0, 4.0]])
        )
        np.testing.assert_array_equal(target[1], [1.0, 2.0])
        np.testing.assert_array_equal(target[3], [3.0, 4.0])
        np.testing.assert_array_equal(target[0], [0.0, 0.0])

    def test_duplicates_accumulate(self):
        target = np.zeros((2, 1))
        scatter_add_rows(
            target, np.array([0, 0, 1]), np.array([[1.0], [2.0], [5.0]])
        )
        np.testing.assert_array_equal(target[:, 0], [3.0, 5.0])

    def test_scale_fused(self):
        target = np.ones((3, 2))
        scatter_add_rows(
            target, np.array([0, 0]), np.ones((2, 2)), scale=-0.5
        )
        np.testing.assert_array_equal(target[0], [0.0, 0.0])
        np.testing.assert_array_equal(target[1], [1.0, 1.0])

    def test_scale_without_duplicates(self):
        target = np.zeros((3, 2))
        scatter_add_rows(
            target, np.array([0, 2]), np.ones((2, 2)), scale=2.0
        )
        np.testing.assert_array_equal(target[0], [2.0, 2.0])
        np.testing.assert_array_equal(target[2], [2.0, 2.0])

    def test_empty_noop(self):
        target = np.ones((2, 2))
        scatter_add_rows(target, np.array([], dtype=np.int64), np.zeros((0, 2)))
        np.testing.assert_array_equal(target, np.ones((2, 2)))

    def test_multidimensional_rows(self):
        target = np.zeros((3, 2, 2))
        values = np.ones((2, 2, 2))
        scatter_add_rows(target, np.array([1, 1]), values)
        np.testing.assert_array_equal(target[1], 2 * np.ones((2, 2)))

    @given(
        st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=50),
        st.floats(min_value=-3.0, max_value=3.0),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_equivalent_to_add_at(self, indices, scale, seed):
        rng = np.random.default_rng(seed)
        idx = np.array(indices, dtype=np.int64)
        values = rng.standard_normal((idx.size, 3))
        a = rng.standard_normal((10, 3))
        b = a.copy()
        scatter_add_rows(a, idx, values, scale=scale)
        np.add.at(b, idx, scale * values)
        np.testing.assert_allclose(a, b, atol=1e-12)
