"""Tests for argument-validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_1d_int_array,
    check_positive,
    check_probability,
)


class TestCheck1dIntArray:
    def test_passthrough(self):
        arr = check_1d_int_array(np.array([1, 2, 3]), "x")
        assert arr.dtype == np.int64
        np.testing.assert_array_equal(arr, [1, 2, 3])

    def test_converts_int32(self):
        arr = check_1d_int_array(np.array([1], dtype=np.int32), "x")
        assert arr.dtype == np.int64

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_1d_int_array(np.array([1.0]), "x")

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            check_1d_int_array(np.array([[1]]), "x")

    def test_bounds(self):
        check_1d_int_array(np.array([0, 5]), "x", min_value=0, max_value=5)
        with pytest.raises(ValueError, match="below minimum"):
            check_1d_int_array(np.array([-1]), "x", min_value=0)
        with pytest.raises(ValueError, match="above maximum"):
            check_1d_int_array(np.array([6]), "x", max_value=5)

    def test_empty_ok(self):
        arr = check_1d_int_array(np.array([], dtype=np.int64), "x", min_value=0)
        assert arr.size == 0

    def test_error_names_argument(self):
        with pytest.raises(ValueError, match="myarg"):
            check_1d_int_array(np.array([[1]]), "myarg")


class TestScalarChecks:
    def test_positive_strict(self):
        assert check_positive(1.5, "x") == 1.5
        with pytest.raises(ValueError):
            check_positive(0.0, "x")

    def test_positive_nonstrict(self):
        assert check_positive(0.0, "x", strict=False) == 0.0
        with pytest.raises(ValueError):
            check_positive(-1.0, "x", strict=False)

    def test_probability(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ValueError):
            check_probability(1.01, "p")
        with pytest.raises(ValueError):
            check_probability(-0.01, "p")
