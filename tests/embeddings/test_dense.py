"""Tests for the dense embedding bag."""

import numpy as np
import pytest

from repro.embeddings.dense import DenseEmbeddingBag


class TestForward:
    def test_single_index_bags(self, rng):
        bag = DenseEmbeddingBag(10, 4, seed=0)
        idx = np.array([3, 7])
        out = bag.forward(idx)  # offsets default: one index per bag
        np.testing.assert_array_equal(out, bag.weight[idx])

    def test_pooling(self):
        bag = DenseEmbeddingBag(10, 4, seed=0)
        idx = np.array([1, 2, 3])
        out = bag.forward(idx, np.array([0, 2]))
        np.testing.assert_allclose(out[0], bag.weight[1] + bag.weight[2])
        np.testing.assert_allclose(out[1], bag.weight[3])

    def test_out_of_range(self):
        bag = DenseEmbeddingBag(10, 4, seed=0)
        with pytest.raises(ValueError):
            bag.forward(np.array([10]))
        with pytest.raises(ValueError):
            bag.forward(np.array([-1]))

    def test_lookup_rows(self):
        bag = DenseEmbeddingBag(10, 4, seed=0)
        rows = bag.lookup_rows(np.array([0, 9]))
        np.testing.assert_array_equal(rows, bag.weight[[0, 9]])

    def test_init_scale(self):
        bag = DenseEmbeddingBag(10_000, 8, seed=0)
        assert np.abs(bag.weight).max() <= 1.0 / np.sqrt(10_000)


class TestBackwardStep:
    def test_sgd_update(self):
        bag = DenseEmbeddingBag(5, 2, seed=0)
        before = bag.weight.copy()
        idx = np.array([1, 1, 3])
        off = np.array([0, 2])
        bag.forward(idx, off)
        g = np.array([[1.0, 0.0], [0.0, 1.0]])
        bag.backward(g)
        bag.step(lr=0.5)
        # row 1 appears twice in bag 0 -> grad 2*g0
        np.testing.assert_allclose(bag.weight[1], before[1] - 0.5 * 2 * g[0])
        np.testing.assert_allclose(bag.weight[3], before[3] - 0.5 * g[1])
        np.testing.assert_allclose(bag.weight[0], before[0])

    def test_backward_before_forward(self):
        bag = DenseEmbeddingBag(5, 2, seed=0)
        with pytest.raises(RuntimeError):
            bag.backward(np.zeros((1, 2)))

    def test_step_before_backward(self):
        bag = DenseEmbeddingBag(5, 2, seed=0)
        with pytest.raises(RuntimeError):
            bag.step(0.1)

    def test_grad_shape_validation(self):
        bag = DenseEmbeddingBag(5, 2, seed=0)
        bag.forward(np.array([0]), np.array([0]))
        with pytest.raises(ValueError):
            bag.backward(np.zeros((2, 2)))

    def test_pop_row_gradients(self):
        bag = DenseEmbeddingBag(5, 2, seed=0)
        bag.forward(np.array([2, 4]), np.array([0, 1]))
        g = np.ones((2, 2))
        bag.backward(g)
        rows, grads = bag.pop_row_gradients()
        np.testing.assert_array_equal(rows, [2, 4])
        np.testing.assert_array_equal(grads, g)
        with pytest.raises(RuntimeError):
            bag.pop_row_gradients()


class TestFootprint:
    def test_nbytes(self):
        bag = DenseEmbeddingBag(100, 8, seed=0)
        assert bag.nbytes == 100 * 8 * 8  # float64

    def test_nbytes_as_fp32(self):
        bag = DenseEmbeddingBag(100, 8, seed=0)
        assert bag.nbytes_as(np.float32) == 100 * 8 * 4
