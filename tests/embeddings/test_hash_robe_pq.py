"""Behavioral tests for the hash / ROBE / PQ compression strategies."""

import numpy as np
import pytest

from repro.embeddings.hash_embedding import (
    HashEmbeddingBag,
    default_hash_buckets,
)
from repro.embeddings.pq_embedding import (
    PQEmbeddingBag,
    default_pq_codes,
    default_pq_subspaces,
)
from repro.embeddings.robe_embedding import (
    RobeEmbeddingBag,
    default_robe_size,
)

ROWS, DIM = 500, 8

FACTORIES = {
    "hash": lambda seed=0: HashEmbeddingBag(ROWS, DIM, seed=seed),
    "robe": lambda seed=0: RobeEmbeddingBag(ROWS, DIM, seed=seed),
    # The default PQ codebook for 500 rows is deliberately tiny (its
    # capacity rule targets row coverage, not regression fidelity);
    # give the fit tests enough codewords to actually converge.
    "pq": lambda seed=0: PQEmbeddingBag(ROWS, DIM, num_codes=64, seed=seed),
}


def sgd_fit(bag, steps=120, lr=0.3, seed=0):
    """Regress pooled lookups onto fixed targets; returns loss curve."""
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, ROWS, size=64).astype(np.int64)
    off = np.arange(0, 65, 4, dtype=np.int64)
    target = rng.normal(size=(16, DIM))
    losses = []
    for _ in range(steps):
        out = bag.forward(idx, off)
        err = out - target
        losses.append(float((err**2).mean()))
        bag.backward(2.0 * err / err.size)
        bag.step(lr)
    return losses


class TestTraining:
    @pytest.mark.parametrize("name", sorted(FACTORIES))
    def test_converges(self, name):
        losses = sgd_fit(FACTORIES[name]())
        assert losses[-1] < 0.15 * losses[0]

    @pytest.mark.parametrize("name", sorted(FACTORIES))
    def test_run_to_run_deterministic(self, name):
        assert sgd_fit(FACTORIES[name]()) == sgd_fit(FACTORIES[name]())

    @pytest.mark.parametrize("name", sorted(FACTORIES))
    def test_seed_changes_init(self, name):
        a = FACTORIES[name](seed=0).reconstruct_rows(np.arange(10))
        b = FACTORIES[name](seed=1).reconstruct_rows(np.arange(10))
        assert not np.array_equal(a, b)


class TestHash:
    def test_aliasing_shares_rows(self):
        bag = HashEmbeddingBag(ROWS, DIM, num_buckets=7, seed=0)
        idx = np.array([3, 3 + 7, 3 + 14], dtype=np.int64)
        rows = bag.reconstruct_rows(idx)
        np.testing.assert_array_equal(rows[0], rows[1])
        np.testing.assert_array_equal(rows[1], rows[2])

    def test_default_buckets_clamped(self):
        assert 1 <= default_hash_buckets(ROWS, 0.25) <= ROWS
        assert default_hash_buckets(4, 1.0) == 4

    def test_memory_shrinks(self):
        bag = HashEmbeddingBag(ROWS, DIM, compress_rate=0.25, seed=0)
        assert bag.memory_bytes() < ROWS * DIM * 8

    def test_out_of_range_rejected(self):
        bag = HashEmbeddingBag(ROWS, DIM, seed=0)
        with pytest.raises((ValueError, IndexError)):
            bag.reconstruct_rows(np.array([ROWS]))


class TestRobe:
    def test_hash_params_reproduce_addressing(self):
        # A bag rebuilt with the spec's hash constants (any seed) must
        # address the shared array identically — the checkpoint
        # restore contract.
        a = RobeEmbeddingBag(ROWS, DIM, seed=11)
        params = dict(a.compression_spec().param_dict())
        b = RobeEmbeddingBag(
            ROWS,
            DIM,
            array_size=params["array_size"],
            chunk_size=params["chunk_size"],
            hash_params=params["hash_params"],
            seed=99,
        )
        b.load_state_arrays(
            {k: v.copy() for k, v in a.state_arrays().items()}
        )
        idx = np.arange(ROWS, dtype=np.int64)
        np.testing.assert_array_equal(
            a.reconstruct_rows(idx), b.reconstruct_rows(idx)
        )

    def test_memory_is_array_size(self):
        size = default_robe_size(ROWS, DIM, 0.1)
        bag = RobeEmbeddingBag(ROWS, DIM, array_size=size, seed=0)
        assert bag.memory_bytes() == size * 8
        assert bag.memory_bytes() < ROWS * DIM * 8


class TestPQ:
    def test_codes_frozen_by_training(self):
        bag = PQEmbeddingBag(ROWS, DIM, seed=0)
        codes = bag.codes.copy()
        sgd_fit(bag, steps=5)
        np.testing.assert_array_equal(bag.codes, codes)

    def test_subspaces_divide_dim(self):
        for dim in (4, 6, 8, 16, 17):
            m = default_pq_subspaces(dim)
            assert dim % m == 0 and m <= 4

    def test_default_codes_capacity(self):
        m = default_pq_subspaces(DIM)
        k = default_pq_codes(ROWS, m)
        assert 2 <= k <= 256
        assert k ** m >= min(ROWS, 2 ** m) or k == 256

    def test_shared_codes_share_rows(self):
        bag = PQEmbeddingBag(ROWS, DIM, num_codes=2, seed=0)
        same = np.flatnonzero(
            (bag.codes == bag.codes[0]).all(axis=1)
        )
        if same.size > 1:
            rows = bag.reconstruct_rows(same[:2])
            np.testing.assert_array_equal(rows[0], rows[1])
