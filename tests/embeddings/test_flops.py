"""Tests for analytic TT-kernel FLOP accounting."""

import numpy as np
import pytest

from repro.embeddings.flops import (
    efftt_backward_flops,
    efftt_forward_flops,
    plan_backward_flops,
    plan_forward_flops,
    tt_backward_flops,
    tt_forward_flops,
)
from repro.embeddings.reuse_buffer import build_reuse_plan
from repro.embeddings.tt_core import TTSpec


@pytest.fixture
def spec():
    return TTSpec.create([10, 10, 10], [4, 4, 4], 16)


class TestForwardFlops:
    def test_linear_in_items(self, spec):
        assert tt_forward_flops(spec, 200) == 2 * tt_forward_flops(spec, 100)

    def test_zero_items(self, spec):
        assert tt_forward_flops(spec, 0) == 0
        assert efftt_forward_flops(spec, 0, 0) == 0

    def test_hand_computed_chain(self):
        # d=2: single stage (a=n1, r=R1) x (R1, n2*1)
        spec2 = TTSpec.create([4, 4], [2, 2], 3)
        expected = 2 * 2 * 3 * 2 * 1  # 2*a*R1*n2*R2
        assert tt_forward_flops(spec2, 1) == expected

    def test_reuse_never_more_expensive(self, spec):
        naive = tt_forward_flops(spec, 100)
        # worst case: all prefixes and rows unique
        eff = efftt_forward_flops(spec, 100, 100)
        assert eff <= naive

    def test_reuse_saves_with_sharing(self, spec):
        full = efftt_forward_flops(spec, 100, 100)
        shared = efftt_forward_flops(spec, 10, 100)
        assert shared < full

    def test_negative_rejected(self, spec):
        with pytest.raises(ValueError):
            tt_forward_flops(spec, -1)
        with pytest.raises(ValueError):
            efftt_forward_flops(spec, -1, 0)


class TestBackwardFlops:
    def test_backward_more_expensive_than_forward(self, spec):
        """The paper's observation: TT backward costs ~d x the lookup."""
        assert tt_backward_flops(spec, 100) > tt_forward_flops(spec, 100)

    def test_aggregation_scales_with_unique(self, spec):
        naive = tt_backward_flops(spec, 1000)
        aggregated = efftt_backward_flops(spec, 250)
        assert aggregated == naive // 4

    def test_zero(self, spec):
        assert efftt_backward_flops(spec, 0) == 0

    def test_negative_rejected(self, spec):
        with pytest.raises(ValueError):
            tt_backward_flops(spec, -2)
        with pytest.raises(ValueError):
            efftt_backward_flops(spec, -2)


class TestPlanFlops:
    def test_plan_driven_counts(self, spec):
        idx = np.array([0, 0, 1, 1, 55, 999])
        plan = build_reuse_plan(idx, spec.row_shape)
        naive_fwd = plan_forward_flops(spec, plan, reuse=False)
        eff_fwd = plan_forward_flops(spec, plan, reuse=True)
        assert naive_fwd == tt_forward_flops(spec, 6)
        assert eff_fwd == efftt_forward_flops(
            spec, plan.num_unique_prefixes, plan.num_unique_rows
        )
        assert eff_fwd < naive_fwd

    def test_backward_plan_counts(self, spec):
        idx = np.repeat(np.array([3, 7, 500]), 10)
        plan = build_reuse_plan(idx, spec.row_shape)
        assert plan_backward_flops(spec, plan, aggregate=True) == (
            efftt_backward_flops(spec, 3)
        )
        assert plan_backward_flops(spec, plan, aggregate=False) == (
            tt_backward_flops(spec, 30)
        )

    def test_flops_ratio_matches_measured_speedup_direction(self):
        """Analytic ratios and wall-clock ratios agree in direction."""
        from repro.data.synthetic import ZipfSampler
        from repro.embeddings.eff_tt_embedding import EffTTEmbeddingBag
        from repro.embeddings.tt_embedding import TTEmbeddingBag
        from repro.utils.timer import measure_median

        num_rows, dim, rank, batch = 100_000, 16, 16, 2048
        sampler = ZipfSampler(num_rows, alpha=1.1, seed=0)
        idx = sampler.sample(batch, np.random.default_rng(0))
        eff = EffTTEmbeddingBag(num_rows, dim, tt_rank=rank, seed=0)
        tt = TTEmbeddingBag(num_rows, dim, tt_rank=rank, seed=0)
        plan = build_reuse_plan(idx, eff.spec.row_shape)

        flops_ratio = plan_forward_flops(eff.spec, plan, reuse=False) / max(
            1, plan_forward_flops(eff.spec, plan, reuse=True)
        )
        t_tt = measure_median(lambda: tt.forward(idx), repeats=3)
        t_eff = measure_median(lambda: eff.forward(idx), repeats=3)
        measured_ratio = t_tt / t_eff
        assert flops_ratio > 1.0
        assert measured_ratio > 1.0
