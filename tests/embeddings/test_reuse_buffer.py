"""Tests for the reuse-plan construction (Algorithm 1 analog)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embeddings.reuse_buffer import build_reuse_plan
from repro.embeddings.tt_indices import row_index_to_tt


class TestBasicPlan:
    def test_deduplicates_rows(self):
        plan = build_reuse_plan(np.array([5, 1, 5, 5, 1]), [4, 3, 2])
        np.testing.assert_array_equal(plan.unique_rows, [1, 5])
        np.testing.assert_array_equal(
            plan.unique_rows[plan.row_inverse], [5, 1, 5, 5, 1]
        )
        assert plan.num_occurrences == 5
        assert plan.num_unique_rows == 2

    def test_prefix_sharing(self):
        # rows 0 and 1 share prefix (0,0); rows 6,7 share (1,0).
        plan = build_reuse_plan(np.array([0, 1, 6, 7]), [4, 3, 2])
        assert plan.num_unique_prefixes == 2
        assert plan.prefix_reuse_ratio == pytest.approx(2.0)

    def test_no_sharing(self):
        plan = build_reuse_plan(np.array([0, 6, 12, 18]), [4, 3, 2])
        assert plan.num_unique_prefixes == 4
        assert plan.prefix_reuse_ratio == pytest.approx(1.0)

    def test_gemm_counts(self):
        plan = build_reuse_plan(np.array([0, 0, 1, 1]), [4, 3, 2])
        assert plan.naive_gemm_count() == 4
        assert plan.gemm_count() == 1

    def test_prefix_tt_indices_decode(self):
        idx = np.array([0, 1, 6, 7, 23])
        plan = build_reuse_plan(idx, [4, 3, 2])
        tt = row_index_to_tt(plan.unique_rows, [4, 3, 2])
        # prefix_tt_indices gathered via prefix_ids must match each
        # unique row's own first-two tt indices.
        np.testing.assert_array_equal(
            plan.prefix_tt_indices[0][plan.prefix_ids], tt[0]
        )
        np.testing.assert_array_equal(
            plan.prefix_tt_indices[1][plan.prefix_ids], tt[1]
        )

    def test_custom_depth(self):
        plan = build_reuse_plan(np.array([0, 1, 2, 3]), [2, 2, 2, 2], prefix_depth=2)
        assert len(plan.prefix_tt_indices) == 2

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            build_reuse_plan(np.array([0]), [4, 3, 2], prefix_depth=3)
        with pytest.raises(ValueError):
            build_reuse_plan(np.array([0]), [4, 3, 2], prefix_depth=0)

    def test_empty_batch(self):
        plan = build_reuse_plan(np.array([], dtype=np.int64), [4, 3, 2])
        assert plan.num_occurrences == 0
        assert plan.num_unique_rows == 0
        assert plan.num_unique_prefixes == 0
        assert plan.full_row_reuse_ratio == 1.0


@given(
    st.lists(st.integers(min_value=0, max_value=119), min_size=1, max_size=300),
)
@settings(max_examples=100, deadline=None)
def test_plan_invariants(indices):
    shape = [5, 4, 6]
    idx = np.array(indices, dtype=np.int64)
    plan = build_reuse_plan(idx, shape)
    # inverse reconstructs the batch
    np.testing.assert_array_equal(plan.unique_rows[plan.row_inverse], idx)
    # unique rows sorted strictly increasing
    assert np.all(np.diff(plan.unique_rows) > 0)
    # prefix count bounded by unique rows and by prefix space
    assert 1 <= plan.num_unique_prefixes <= plan.num_unique_rows
    assert plan.num_unique_prefixes <= 5 * 4
    # tt indices in range
    for k, m in enumerate(shape):
        assert plan.tt_indices[k].min() >= 0
        assert plan.tt_indices[k].max() < m
    # prefix ids cover 0..P-1
    assert set(plan.prefix_ids.tolist()) == set(range(plan.num_unique_prefixes))
