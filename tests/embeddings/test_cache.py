"""Tests for the LC-managed embedding cache (paper §V-B)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embeddings.cache import EmbeddingCache


@pytest.fixture
def cache():
    return EmbeddingCache(embedding_dim=4, default_lifecycle=3)


class TestPutAndGet:
    def test_put_then_get(self, cache):
        cache.put(np.array([5]), np.ones((1, 4)))
        np.testing.assert_array_equal(cache.get(5), np.ones(4))
        assert 5 in cache
        assert len(cache) == 1

    def test_get_missing(self, cache):
        assert cache.get(99) is None
        assert 99 not in cache

    def test_put_overwrites_and_resets_lc(self, cache):
        cache.put(np.array([1]), np.ones((1, 4)))
        cache.decrement(np.array([1]))
        assert cache.lifecycle_of(1) == 2
        cache.put(np.array([1]), 2 * np.ones((1, 4)))
        assert cache.lifecycle_of(1) == 3
        np.testing.assert_array_equal(cache.get(1), 2 * np.ones(4))

    def test_duplicate_indices_last_wins(self, cache):
        cache.put(np.array([7, 7]), np.array([[1.0] * 4, [2.0] * 4]))
        np.testing.assert_array_equal(cache.get(7), 2 * np.ones(4))
        assert len(cache) == 1

    def test_shape_validation(self, cache):
        with pytest.raises(ValueError):
            cache.put(np.array([1]), np.ones((2, 4)))
        with pytest.raises(ValueError):
            cache.put(np.array([1]), np.ones((1, 3)))


class TestSynchronize:
    def test_hits_replace_values(self, cache):
        cache.put(np.array([2]), np.full((1, 4), 9.0))
        stale = np.zeros((2, 4))
        fresh, mask = cache.synchronize(np.array([1, 2]), stale)
        np.testing.assert_array_equal(fresh[0], np.zeros(4))
        np.testing.assert_array_equal(fresh[1], np.full(4, 9.0))
        np.testing.assert_array_equal(mask, [False, True])

    def test_does_not_mutate_input(self, cache):
        cache.put(np.array([0]), np.ones((1, 4)))
        stale = np.zeros((1, 4))
        cache.synchronize(np.array([0]), stale)
        np.testing.assert_array_equal(stale, np.zeros((1, 4)))

    def test_hit_counters(self, cache):
        cache.put(np.array([0]), np.ones((1, 4)))
        cache.synchronize(np.array([0, 1, 2]), np.zeros((3, 4)))
        assert cache.hits == 1
        assert cache.misses == 2
        assert cache.hit_rate == pytest.approx(1 / 3)


class TestLifecycle:
    def test_eviction_after_lc_decrements(self, cache):
        cache.put(np.array([3]), np.ones((1, 4)))
        assert cache.decrement(np.array([3])) == 0
        assert cache.decrement(np.array([3])) == 0
        assert cache.decrement(np.array([3])) == 1  # third hit evicts
        assert 3 not in cache
        assert cache.evictions == 1

    def test_decrement_duplicates_once(self, cache):
        cache.put(np.array([4]), np.ones((1, 4)))
        cache.decrement(np.array([4, 4, 4]))
        assert cache.lifecycle_of(4) == 2

    def test_decrement_missing_noop(self, cache):
        assert cache.decrement(np.array([42])) == 0

    def test_slot_reuse_after_eviction(self):
        cache = EmbeddingCache(embedding_dim=2, default_lifecycle=1)
        cache.put(np.array([1]), np.ones((1, 2)))
        cache.decrement(np.array([1]))
        assert len(cache) == 0
        cache.put(np.array([2]), 2 * np.ones((1, 2)))
        np.testing.assert_array_equal(cache.get(2), [2.0, 2.0])
        assert cache.get(1) is None


class TestCapacity:
    def test_growth_beyond_initial_capacity(self):
        cache = EmbeddingCache(embedding_dim=2, default_lifecycle=5)
        n = 300  # > initial capacity of 64
        cache.put(np.arange(n), np.arange(2 * n, dtype=float).reshape(n, 2))
        assert len(cache) == n
        np.testing.assert_array_equal(cache.get(299), [598.0, 599.0])

    def test_nbytes_grows(self):
        cache = EmbeddingCache(embedding_dim=2, default_lifecycle=5)
        before = cache.nbytes
        cache.put(np.arange(200), np.zeros((200, 2)))
        assert cache.nbytes > before

    def test_clear(self, cache):
        cache.put(np.array([1, 2]), np.ones((2, 4)))
        cache.clear()
        assert len(cache) == 0
        assert cache.get(1) is None
        cache.put(np.array([9]), np.ones((1, 4)))  # still usable
        assert 9 in cache

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            EmbeddingCache(0, 3)
        with pytest.raises(ValueError):
            EmbeddingCache(4, 0)


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["put", "sync", "dec"]),
            st.lists(
                st.integers(min_value=0, max_value=20), min_size=1, max_size=8
            ),
        ),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=60, deadline=None)
def test_property_cache_holds_latest_put(ops):
    """The cache always returns the most recently put value for an index
    while that index remains cached, under any op interleaving."""
    cache = EmbeddingCache(embedding_dim=2, default_lifecycle=4)
    latest = {}
    counter = 0.0
    for op, idx_list in ops:
        idx = np.array(sorted(set(idx_list)), dtype=np.int64)
        if op == "put":
            counter += 1.0
            values = np.full((idx.size, 2), counter)
            cache.put(idx, values)
            for i in idx.tolist():
                latest[i] = counter
        elif op == "sync":
            fresh, mask = cache.synchronize(idx, np.zeros((idx.size, 2)))
            for pos, i in enumerate(idx.tolist()):
                if mask[pos]:
                    assert fresh[pos, 0] == latest[i]
        else:
            cache.decrement(idx)
    # every cached entry matches the latest put
    for i, value in latest.items():
        cached = cache.get(i)
        if cached is not None:
            assert cached[0] == value
