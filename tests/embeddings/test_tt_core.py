"""Tests for TT cores, TT-SVD, and reconstruction."""

import numpy as np
import pytest

from repro.embeddings.tt_core import TTCores, TTSpec, clamp_ranks, tt_svd


class TestClampRanks:
    def test_scalar_rank(self):
        assert clamp_ranks([4, 4, 4], [2, 2, 2], 8) == [1, 8, 8, 1]

    def test_clamps_to_unfolding(self):
        ranks = clamp_ranks([4, 4, 4], [2, 2, 2], 1000)
        assert ranks[1] == 8  # min(1000, m1*n1=8, (m2 n2)(m3 n3)=64)
        assert ranks[2] == 8  # min(1000, 64, m3*n3=8)

    def test_explicit_list(self):
        assert clamp_ranks([4, 4], [2, 2], [5]) == [1, 5, 1]

    def test_boundary_list_accepted(self):
        assert clamp_ranks([4, 4], [2, 2], [1, 5, 1]) == [1, 5, 1]

    def test_invalid(self):
        with pytest.raises(ValueError):
            clamp_ranks([4], [2], 8)  # d < 2
        with pytest.raises(ValueError):
            clamp_ranks([4, 4], [2, 2], [0])
        with pytest.raises(ValueError):
            clamp_ranks([4, 4], [2], 4)


class TestTTSpec:
    def test_basic_properties(self):
        spec = TTSpec.create([10, 10, 10], [4, 4, 4], 16)
        assert spec.padded_rows == 1000
        assert spec.embedding_dim == 64
        assert spec.num_cores == 3
        assert spec.core_shape(0) == (10, 1, 4, 16)
        assert spec.core_shape(1) == (10, 16, 4, 16)
        assert spec.core_shape(2) == (10, 16, 4, 1)

    def test_num_params(self):
        spec = TTSpec.create([10, 10, 10], [4, 4, 4], 16)
        assert spec.num_params == 10 * 4 * 16 + 10 * 16 * 4 * 16 + 10 * 16 * 4

    def test_compression_ratio_large(self):
        spec = TTSpec.create([200, 200, 200], [4, 4, 4], 32)
        assert spec.compression_ratio() > 100

    def test_invalid_ranks(self):
        with pytest.raises(ValueError):
            TTSpec((4, 4), (2, 2), (1, 5))  # wrong length
        with pytest.raises(ValueError):
            TTSpec((4, 4), (2, 2), (2, 5, 1))  # R_0 != 1


class TestRandomInit:
    def test_target_std(self):
        spec = TTSpec.create([16, 16, 16], [4, 4, 4], 8)
        cores = TTCores.random_init(spec, target_std=0.02, seed=0)
        table = cores.reconstruct()
        assert table.std() == pytest.approx(0.02, rel=0.15)

    def test_deterministic(self):
        spec = TTSpec.create([4, 4], [2, 2], 4)
        a = TTCores.random_init(spec, seed=3)
        b = TTCores.random_init(spec, seed=3)
        for ca, cb in zip(a.cores, b.cores):
            np.testing.assert_array_equal(ca, cb)

    def test_invalid_std(self):
        spec = TTSpec.create([4, 4], [2, 2], 4)
        with pytest.raises(ValueError):
            TTCores.random_init(spec, target_std=0.0)


class TestTTSVD:
    def test_full_rank_exact(self, rng):
        table = rng.standard_normal((24, 8))
        cores = TTCores.from_dense(table, [4, 3, 2], [2, 2, 2], rank=64)
        np.testing.assert_allclose(cores.reconstruct(), table, atol=1e-10)

    def test_two_cores(self, rng):
        table = rng.standard_normal((12, 4))
        cores = TTCores.from_dense(table, [4, 3], [2, 2], rank=64)
        np.testing.assert_allclose(cores.reconstruct(), table, atol=1e-10)

    def test_truncation_monotone(self, rng):
        table = rng.standard_normal((64, 16))
        errors = []
        for rank in (1, 2, 4, 8, 32):
            cores = TTCores.from_dense(table, [4, 4, 4], [4, 2, 2], rank)
            err = np.linalg.norm(cores.reconstruct() - table)
            errors.append(err)
        assert all(a >= b - 1e-9 for a, b in zip(errors, errors[1:]))

    def test_low_rank_table_recovered(self, rng):
        # A rank-1 table in the TT sense: outer product structure.
        u = rng.standard_normal(8)
        v = rng.standard_normal(8)
        w = rng.standard_normal(8)
        tensor = np.einsum("a,b,c->abc", u, v, w).reshape(8 * 8, 8)
        # interpret as (m1 m2 m3)=(4,4,4)? Use 2-core split instead.
        cores = TTCores.from_dense(tensor, [8, 8], [4, 2], rank=4)
        rec = cores.reconstruct()
        # achieved rank should be small and reconstruction near exact
        np.testing.assert_allclose(rec, tensor, atol=1e-8)

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            tt_svd(rng.standard_normal((10, 4)), [4, 3], [2, 2], 4)

    def test_achieved_ranks_recorded(self, rng):
        table = rng.standard_normal((24, 8))
        cores, spec = tt_svd(table, [4, 3, 2], [2, 2, 2], 1000)
        assert spec.ranks[1] <= 8
        assert spec.ranks[2] <= 4
        for k, core in enumerate(cores):
            assert core.shape == spec.core_shape(k)


class TestReconstructRows:
    def test_matches_full_reconstruct(self, rng):
        spec = TTSpec.create([4, 3, 2], [2, 2, 2], 4)
        cores = TTCores.random_init(spec, seed=1)
        full = cores.reconstruct()
        idx = np.array([0, 5, 11, 23, 5])
        np.testing.assert_allclose(cores.reconstruct_rows(idx), full[idx])

    def test_copy_independent(self):
        spec = TTSpec.create([4, 3], [2, 2], 2)
        a = TTCores.random_init(spec, seed=0)
        b = a.copy()
        b.cores[0][:] = 0
        assert not np.allclose(a.cores[0], 0)

    def test_flat_core_layout(self):
        spec = TTSpec.create([4, 3, 2], [2, 2, 2], 4)
        cores = TTCores.random_init(spec, seed=0)
        flat = cores.flat_core(1)
        assert flat.shape == (4, 3 * 2, spec.ranks[2])
        # element correspondence: flat[r, i*n + j, s] == core[i, r, j, s]
        assert flat[1, 2 * 2 + 1, 3] == cores.cores[1][2, 1, 1, 3]

    def test_constructor_validates_shapes(self):
        spec = TTSpec.create([4, 3], [2, 2], 2)
        with pytest.raises(ValueError):
            TTCores(spec, [np.zeros((4, 1, 2, 2))])
        with pytest.raises(ValueError):
            TTCores(spec, [np.zeros((4, 1, 2, 2)), np.zeros((3, 2, 2, 2))])
