"""Tests for non-default TT core counts (d = 2 and d = 4).

The paper uses d = 3; the implementation is generic in d.  These tests
pin the generic chain/reuse/backward paths: equality with the dense
math, Eff-TT ≡ TT-Rec, and reuse-plan behaviour at prefix depths 1 and
3.
"""

import itertools

import numpy as np
import pytest

from repro.embeddings.dense import DenseEmbeddingBag
from repro.embeddings.eff_tt_embedding import EffTTEmbeddingBag
from repro.embeddings.reuse_buffer import build_reuse_plan
from repro.embeddings.tt_embedding import TTEmbeddingBag

CONFIGS = {
    2: dict(row_shape=[6, 4], col_shape=[4, 2]),
    4: dict(row_shape=[3, 2, 2, 2], col_shape=[2, 2, 2, 2]),
}


@pytest.mark.parametrize("d", [2, 4])
class TestGenericCoreCount:
    def _pair(self, d, seed=0, **flags):
        shapes = CONFIGS[d]
        rows = int(np.prod(shapes["row_shape"]))
        dim = int(np.prod(shapes["col_shape"]))
        tt = TTEmbeddingBag(
            rows, dim, tt_rank=4, num_cores=d, seed=seed, **shapes
        )
        eff = EffTTEmbeddingBag(
            rows, dim, tt_rank=4, num_cores=d, seed=seed, **shapes, **flags
        )
        return rows, dim, tt, eff

    def test_forward_matches_materialized(self, d, rng):
        rows, dim, tt, eff = self._pair(d)
        idx = rng.integers(0, rows, size=40)
        off = np.arange(0, 40, 4)
        dense = DenseEmbeddingBag(rows, dim, seed=0)
        dense.weight = eff.materialize()
        np.testing.assert_allclose(
            eff.forward(idx, off), dense.forward(idx, off), atol=1e-12
        )

    def test_eff_equals_tt_after_training(self, d, rng):
        rows, dim, tt, eff = self._pair(d, seed=2)
        for _ in range(3):
            idx = rng.integers(0, rows, size=30)
            g = rng.standard_normal((30, dim))
            for bag in (tt, eff):
                bag.forward(idx)
                bag.backward(g)
                bag.step(0.05)
        for a, b in zip(tt.tt.cores, eff.tt.cores):
            np.testing.assert_allclose(a, b, atol=1e-10)

    def test_flag_combinations(self, d, rng):
        rows, dim, tt, _ = self._pair(d, seed=3)
        idx = rng.integers(0, rows, size=25)
        g = rng.standard_normal((25, dim))
        tt.forward(idx)
        tt.backward(g)
        tt.step(0.1)
        for reuse, agg in itertools.product([True, False], repeat=2):
            _, _, _, eff = self._pair(
                d, seed=3, enable_reuse=reuse, enable_grad_aggregation=agg
            )
            eff.forward(idx)
            eff.backward(g)
            eff.step(0.1)
            for a, b in zip(tt.tt.cores, eff.tt.cores):
                np.testing.assert_allclose(a, b, atol=1e-10)

    def test_reuse_plan_prefix_depth(self, d, rng):
        shapes = CONFIGS[d]
        rows = int(np.prod(shapes["row_shape"]))
        idx = rng.integers(0, rows, size=100)
        plan = build_reuse_plan(idx, shapes["row_shape"])
        assert len(plan.prefix_tt_indices) == d - 1
        assert plan.num_unique_prefixes <= plan.num_unique_rows

    def test_gradient_check_numerical(self, d, rng):
        from tests.conftest import assert_grad_close, numerical_gradient

        shapes = CONFIGS[d]
        rows = int(np.prod(shapes["row_shape"]))
        dim = int(np.prod(shapes["col_shape"]))
        bag = TTEmbeddingBag(
            rows, dim, tt_rank=2, num_cores=d, seed=5, **shapes
        )
        idx = rng.integers(0, rows, size=8)
        g = rng.standard_normal((8, dim))
        bag.forward(idx)
        bag.backward(g)
        analytic = [c.copy() for c in bag._core_grads]
        for k in range(d):
            core0 = bag.tt.cores[k].copy()

            def scalar(core_val, k=k):
                bag.tt.cores[k] = core_val
                out = bag.forward(idx)
                bag._saved = None
                return float((out * g).sum())

            numeric = numerical_gradient(scalar, core0.copy())
            bag.tt.cores[k] = core0
            assert_grad_close(analytic[k], numeric, rtol=1e-4, atol=1e-8)
