"""Tests for the serving-time hot-row cache and TT warm start."""

import numpy as np
import pytest

from repro.embeddings.dense import DenseEmbeddingBag
from repro.embeddings.eff_tt_embedding import EffTTEmbeddingBag
from repro.embeddings.inference import HotRowCachedLookup, StaleCacheError
from repro.embeddings.tt_embedding import TTEmbeddingBag


@pytest.fixture
def bag():
    return EffTTEmbeddingBag(500, 8, tt_rank=8, seed=0)


class TestHotRowCachedLookup:
    def test_matches_uncached_lookup(self, bag, rng):
        view = HotRowCachedLookup(bag, hot_rows=np.arange(50))
        idx = rng.integers(0, 500, size=64)
        np.testing.assert_allclose(
            view.lookup_rows(idx), bag.tt.reconstruct_rows(idx), atol=1e-12
        )

    def test_pooling_matches_bag(self, bag, rng):
        view = HotRowCachedLookup(bag, hot_rows=np.arange(100))
        idx = rng.integers(0, 500, size=30)
        off = np.arange(0, 30, 3)
        np.testing.assert_allclose(
            view.forward(idx, off), bag.forward(idx, off), atol=1e-12
        )

    def test_hit_miss_accounting(self, bag):
        view = HotRowCachedLookup(bag, hot_rows=np.array([1, 2, 3]))
        view.lookup_rows(np.array([1, 2, 400]))
        assert view.hits == 2
        assert view.misses == 1
        assert view.hit_rate == pytest.approx(2 / 3)

    def test_empty_cache_all_misses(self, bag):
        view = HotRowCachedLookup(bag, hot_rows=np.array([], dtype=np.int64))
        out = view.lookup_rows(np.array([0, 499]))
        assert out.shape == (2, 8)
        assert view.hits == 0 and view.misses == 2

    def test_all_hot(self, bag):
        view = HotRowCachedLookup(bag, hot_rows=np.arange(500))
        view.lookup_rows(np.array([7, 8]))
        assert view.misses == 0

    def test_stale_lookup_raises_by_default(self, bag, rng):
        view = HotRowCachedLookup(bag, hot_rows=np.arange(500))
        assert not view.is_stale
        bag.forward(np.array([5, 5, 9]))
        bag.backward_and_step(rng.standard_normal((3, 8)), lr=0.5)
        assert view.is_stale
        with pytest.raises(StaleCacheError, match="refresh"):
            view.lookup_rows(np.array([5]))
        fresh = bag.tt.reconstruct_rows(np.array([5]))
        view.refresh()
        assert not view.is_stale
        np.testing.assert_allclose(
            view.lookup_rows(np.array([5])), fresh, atol=1e-12
        )

    def test_stale_auto_refresh_policy(self, bag, rng):
        view = HotRowCachedLookup(
            bag, hot_rows=np.arange(500), on_stale="refresh"
        )
        bag.forward(np.array([5, 5, 9]))
        bag.backward_and_step(rng.standard_normal((3, 8)), lr=0.5)
        fresh = bag.tt.reconstruct_rows(np.array([5]))
        refreshes_before = view.refreshes
        np.testing.assert_allclose(
            view.lookup_rows(np.array([5])), fresh, atol=1e-12
        )
        assert view.refreshes == refreshes_before + 1
        assert not view.is_stale

    def test_stale_ignore_policy_serves_old_rows(self, bag, rng):
        view = HotRowCachedLookup(
            bag, hot_rows=np.arange(500), on_stale="ignore"
        )
        before = view.lookup_rows(np.array([5]))
        bag.forward(np.array([5, 5, 9]))
        bag.backward_and_step(rng.standard_normal((3, 8)), lr=0.5)
        stale = view.lookup_rows(np.array([5]))
        np.testing.assert_array_equal(stale, before)
        assert not np.allclose(
            stale, bag.tt.reconstruct_rows(np.array([5]))
        )

    def test_version_counts_every_update(self, bag, rng):
        assert bag.version == 0
        for expected in (1, 2):
            bag.forward(np.array([1, 2]))
            bag.backward_and_step(rng.standard_normal((2, 8)), lr=0.1)
            assert bag.version == expected

    def test_invalid_stale_policy_rejected(self, bag):
        with pytest.raises(ValueError, match="on_stale"):
            HotRowCachedLookup(bag, hot_rows=np.arange(5), on_stale="panic")

    def test_works_with_ttrec_bag(self, rng):
        tt = TTEmbeddingBag(200, 8, tt_rank=4, seed=1)
        view = HotRowCachedLookup(tt, hot_rows=np.arange(20))
        idx = rng.integers(0, 200, size=16)
        np.testing.assert_allclose(
            view.lookup_rows(idx), tt.tt.reconstruct_rows(idx), atol=1e-12
        )

    def test_rejects_dense_bag(self):
        dense = DenseEmbeddingBag(10, 4, seed=0)
        with pytest.raises(TypeError):
            HotRowCachedLookup(dense, hot_rows=np.array([0]))

    def test_out_of_range_hot_rows(self, bag):
        with pytest.raises(ValueError):
            HotRowCachedLookup(bag, hot_rows=np.array([500]))

    def test_cache_footprint(self, bag):
        view = HotRowCachedLookup(bag, hot_rows=np.arange(100))
        assert view.num_hot_rows == 100
        assert view.cache_nbytes == 100 * 8 * 8


class TestFromDenseTable:
    def test_full_rank_recovers_table(self, rng):
        table = rng.standard_normal((24, 8))
        bag = EffTTEmbeddingBag.from_dense_table(
            table, tt_rank=64, row_shape=[4, 3, 2], col_shape=[2, 2, 2]
        )
        np.testing.assert_allclose(bag.materialize(), table, atol=1e-10)

    def test_padding_handled(self, rng):
        # 23 rows won't factor into [4, 3, 2]; automatic shapes pad.
        table = rng.standard_normal((23, 8))
        bag = EffTTEmbeddingBag.from_dense_table(table, tt_rank=64)
        assert bag.num_embeddings == 23
        recon = bag.materialize()
        assert recon.shape == (23, 8)

    def test_truncation_is_approximation(self, rng):
        table = rng.standard_normal((64, 16))
        low = EffTTEmbeddingBag.from_dense_table(
            table, tt_rank=2, row_shape=[4, 4, 4], col_shape=[4, 2, 2]
        )
        high = EffTTEmbeddingBag.from_dense_table(
            table, tt_rank=32, row_shape=[4, 4, 4], col_shape=[4, 2, 2]
        )
        err_low = np.linalg.norm(low.materialize() - table)
        err_high = np.linalg.norm(high.materialize() - table)
        assert err_high <= err_low + 1e-9

    def test_trainable_after_warm_start(self, rng):
        table = rng.standard_normal((24, 8)) * 0.01
        bag = EffTTEmbeddingBag.from_dense_table(
            table, tt_rank=8, row_shape=[4, 3, 2], col_shape=[2, 2, 2]
        )
        idx = np.array([0, 5, 5])
        out = bag.forward(idx)
        bag.backward_and_step(np.ones_like(out), lr=0.1)
        after = bag.forward(idx)
        assert not np.allclose(out, after)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            EffTTEmbeddingBag.from_dense_table(np.zeros(5))


def _compressed_factories():
    from repro.embeddings.hash_embedding import HashEmbeddingBag
    from repro.embeddings.pq_embedding import PQEmbeddingBag
    from repro.embeddings.robe_embedding import RobeEmbeddingBag

    return {
        "hash": lambda: HashEmbeddingBag(500, 8, seed=0),
        "robe": lambda: RobeEmbeddingBag(500, 8, seed=0),
        "pq": lambda: PQEmbeddingBag(500, 8, seed=0),
    }


@pytest.mark.parametrize("name", sorted(_compressed_factories()))
class TestCacheOverCompressedStrategies:
    """HotRowCachedLookup is generic over CompressedEmbedding."""

    def test_matches_uncached_lookup(self, name, rng):
        bag = _compressed_factories()[name]()
        view = HotRowCachedLookup(bag, hot_rows=np.arange(50))
        idx = rng.integers(0, 500, size=64)
        np.testing.assert_allclose(
            view.lookup_rows(idx), bag.reconstruct_rows(idx), atol=1e-12
        )

    def test_hit_miss_accounting(self, name):
        bag = _compressed_factories()[name]()
        view = HotRowCachedLookup(bag, hot_rows=np.array([1, 2, 3]))
        view.lookup_rows(np.array([1, 2, 400]))
        assert view.hits == 2
        assert view.misses == 1

    def test_stale_detection_and_refresh(self, name, rng):
        bag = _compressed_factories()[name]()
        view = HotRowCachedLookup(bag, hot_rows=np.arange(500))
        assert not view.is_stale
        out = bag.forward(np.array([5, 5, 9]))
        bag.backward(np.ones_like(out))
        bag.step(lr=0.5)
        assert view.is_stale
        with pytest.raises(StaleCacheError):
            view.lookup_rows(np.array([5]))
        view.refresh()
        np.testing.assert_allclose(
            view.lookup_rows(np.array([5])),
            bag.reconstruct_rows(np.array([5])),
            atol=1e-12,
        )
