"""Tests for the Eff-TT embedding bag — the paper's core artifact.

The crucial property: every combination of the three optimization flags
computes *the same mathematics* as the naive TT-Rec baseline; the flags
only change how much work is done.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embeddings.eff_tt_embedding import EffTTEmbeddingBag
from repro.embeddings.tt_embedding import TTEmbeddingBag


def _make_pair(seed=0, **flags):
    kwargs = dict(
        num_embeddings=24,
        embedding_dim=8,
        tt_rank=4,
        row_shape=[4, 3, 2],
        col_shape=[2, 2, 2],
        seed=seed,
    )
    baseline = TTEmbeddingBag(**kwargs)
    eff = EffTTEmbeddingBag(**kwargs, **flags)
    return baseline, eff


class TestForwardEquivalence:
    def test_same_seed_same_tables(self):
        baseline, eff = _make_pair(seed=3)
        for a, b in zip(baseline.tt.cores, eff.tt.cores):
            np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("enable_reuse", [True, False])
    def test_forward_matches_baseline(self, enable_reuse, rng):
        baseline, eff = _make_pair(seed=1, enable_reuse=enable_reuse)
        idx = rng.integers(0, 24, size=40)
        off = np.arange(0, 40, 4)
        np.testing.assert_allclose(
            eff.forward(idx, off), baseline.forward(idx, off), atol=1e-12
        )

    def test_forward_with_heavy_duplication(self, rng):
        baseline, eff = _make_pair(seed=2)
        idx = rng.integers(0, 4, size=100)  # tiny range -> huge reuse
        np.testing.assert_allclose(
            eff.forward(idx), baseline.forward(idx), atol=1e-12
        )

    def test_plan_recorded(self, rng):
        _, eff = _make_pair()
        idx = np.array([0, 0, 1, 6])
        eff.forward(idx)
        assert eff.last_plan is not None
        assert eff.last_plan.num_occurrences == 4
        assert eff.last_plan.num_unique_rows == 3

    def test_empty_bags(self):
        _, eff = _make_pair()
        out = eff.forward(np.array([1, 2], dtype=np.int64), np.array([0, 0, 2]))
        assert out.shape == (2, 8)
        np.testing.assert_array_equal(out[0], np.zeros(8))


class TestBackwardEquivalence:
    @pytest.mark.parametrize(
        "reuse,agg,fused",
        list(itertools.product([True, False], repeat=3)),
    )
    def test_all_flag_combinations_match_baseline(self, reuse, agg, fused, rng):
        baseline, eff = _make_pair(
            seed=5,
            enable_reuse=reuse,
            enable_grad_aggregation=agg,
            enable_fused_update=fused,
        )
        idx = rng.integers(0, 24, size=60)
        off = np.arange(0, 60, 5)
        g = rng.standard_normal((12, 8))

        out_b = baseline.forward(idx, off)
        out_e = eff.forward(idx, off)
        np.testing.assert_allclose(out_e, out_b, atol=1e-12)

        baseline.backward(g)
        baseline.step(0.05)
        eff.backward(g)
        eff.step(0.05)
        for k, (a, b) in enumerate(zip(baseline.tt.cores, eff.tt.cores)):
            np.testing.assert_allclose(a, b, atol=1e-10, err_msg=f"core {k}")

    def test_backward_and_step_fused_call(self, rng):
        baseline, eff = _make_pair(seed=6)
        idx = rng.integers(0, 24, size=20)
        g = rng.standard_normal((20, 8))
        baseline.forward(idx)
        baseline.backward(g)
        baseline.step(0.1)
        eff.forward(idx)
        eff.backward_and_step(g, 0.1)
        for a, b in zip(baseline.tt.cores, eff.tt.cores):
            np.testing.assert_allclose(a, b, atol=1e-10)

    def test_multiple_steps_stay_consistent(self, rng):
        baseline, eff = _make_pair(seed=7)
        for step in range(5):
            idx = rng.integers(0, 24, size=30)
            g = rng.standard_normal((30, 8))
            for bag in (baseline, eff):
                bag.forward(idx)
                bag.backward(g)
                bag.step(0.02)
        for a, b in zip(baseline.tt.cores, eff.tt.cores):
            np.testing.assert_allclose(a, b, atol=1e-9)

    def test_pop_pending_update(self, rng):
        _, eff = _make_pair(seed=8)
        idx = rng.integers(0, 24, size=10)
        eff.forward(idx)
        eff.backward(rng.standard_normal((10, 8)))
        pending = eff.pop_pending_update()
        assert pending["mode"] == "fused"
        with pytest.raises(RuntimeError):
            eff.pop_pending_update()
        # applying with scale 0 is a no-op
        before = [c.copy() for c in eff.tt.cores]
        eff.apply_pending_update(pending, lr=0.1, scale=0.0)
        for a, b in zip(before, eff.tt.cores):
            np.testing.assert_array_equal(a, b)

    def test_errors(self):
        _, eff = _make_pair()
        with pytest.raises(RuntimeError):
            eff.backward(np.zeros((1, 8)))
        with pytest.raises(RuntimeError):
            eff.step(0.1)
        eff.forward(np.array([0]))
        with pytest.raises(ValueError):
            eff.backward(np.zeros((9, 8)))


class TestComputationSavings:
    def test_reuse_reduces_partial_gemms(self, rng):
        _, eff = _make_pair()
        idx = np.repeat(rng.integers(0, 24, size=5), 20)
        eff.forward(idx)
        plan = eff.last_plan
        assert plan.gemm_count() <= 5
        assert plan.naive_gemm_count() == 100

    def test_compression_ratio_and_bytes(self):
        eff = EffTTEmbeddingBag(100_000, 32, tt_rank=8, seed=0)
        assert eff.compression_ratio() > 10
        assert eff.nbytes == eff.spec.num_params * 8
        assert eff.nbytes_as(np.float32) == eff.spec.num_params * 4


@given(
    st.lists(st.integers(min_value=0, max_value=23), min_size=1, max_size=64),
    st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=50, deadline=None)
def test_property_eff_tt_equals_baseline(indices, seed):
    """Property: Eff-TT ≡ TT-Rec on arbitrary batches and gradients."""
    baseline, eff = _make_pair(seed=9)
    idx = np.array(indices, dtype=np.int64)
    g_rng = np.random.default_rng(seed)
    g = g_rng.standard_normal((idx.size, 8))
    out_b = baseline.forward(idx)
    out_e = eff.forward(idx)
    np.testing.assert_allclose(out_e, out_b, atol=1e-12)
    baseline.backward(g)
    baseline.step(0.1)
    eff.backward(g)
    eff.step(0.1)
    for a, b in zip(baseline.tt.cores, eff.tt.cores):
        np.testing.assert_allclose(a, b, atol=1e-10)
