"""The CompressedEmbedding protocol surface across all six bag types."""

import numpy as np
import pytest

from repro.embeddings.dense import DenseEmbeddingBag
from repro.embeddings.eff_tt_embedding import EffTTEmbeddingBag
from repro.embeddings.hash_embedding import HashEmbeddingBag
from repro.embeddings.pq_embedding import PQEmbeddingBag
from repro.embeddings.protocol import CompressedEmbedding, CompressionSpec
from repro.embeddings.robe_embedding import RobeEmbeddingBag
from repro.embeddings.tt_embedding import TTEmbeddingBag

ROWS, DIM = 300, 8


def make_bags():
    return [
        DenseEmbeddingBag(ROWS, DIM, seed=0),
        TTEmbeddingBag(ROWS, DIM, tt_rank=4, seed=1),
        EffTTEmbeddingBag(ROWS, DIM, tt_rank=4, seed=2),
        HashEmbeddingBag(ROWS, DIM, seed=3),
        RobeEmbeddingBag(ROWS, DIM, seed=4),
        PQEmbeddingBag(ROWS, DIM, seed=5),
    ]


def train_once(bag, seed=0):
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, ROWS, size=32).astype(np.int64)
    off = np.arange(0, 33, 4, dtype=np.int64)
    out = bag.forward(idx, off)
    bag.backward(np.ones_like(out))
    bag.step(lr=0.05)
    return out


class TestProtocolConformance:
    @pytest.mark.parametrize("bag", make_bags(), ids=lambda b: type(b).__name__)
    def test_isinstance(self, bag):
        # Structural (runtime_checkable Protocol): no bag class
        # inherits from CompressedEmbedding, yet all satisfy it.
        assert isinstance(bag, CompressedEmbedding)

    def test_non_bag_rejected(self):
        assert not isinstance(object(), CompressedEmbedding)

    @pytest.mark.parametrize("bag", make_bags(), ids=lambda b: type(b).__name__)
    def test_version_counts_updates(self, bag):
        assert bag.version == 0
        train_once(bag)
        assert bag.version == 1
        train_once(bag)
        assert bag.version == 2

    @pytest.mark.parametrize("bag", make_bags(), ids=lambda b: type(b).__name__)
    def test_memory_bytes_matches_state(self, bag):
        state = bag.state_arrays()
        assert bag.memory_bytes() >= sum(a.nbytes for a in state.values())
        assert bag.memory_bytes() > 0

    @pytest.mark.parametrize("bag", make_bags(), ids=lambda b: type(b).__name__)
    def test_state_arrays_are_live(self, bag):
        # The contract: state_arrays() returns the trainable arrays
        # themselves, so training changes what a caller sees.
        before = {k: v.copy() for k, v in bag.state_arrays().items()}
        train_once(bag)
        after = bag.state_arrays()
        assert before.keys() == after.keys()
        assert any(
            not np.array_equal(before[k], after[k]) for k in before
        )

    @pytest.mark.parametrize("bag", make_bags(), ids=lambda b: type(b).__name__)
    def test_state_roundtrip_bitwise(self, bag):
        train_once(bag)
        saved = {k: v.copy() for k, v in bag.state_arrays().items()}
        train_once(bag, seed=9)  # diverge
        bag.load_state_arrays(saved)
        for name, value in bag.state_arrays().items():
            np.testing.assert_array_equal(value, saved[name])

    @pytest.mark.parametrize("bag", make_bags(), ids=lambda b: type(b).__name__)
    def test_load_bumps_version(self, bag):
        saved = {k: v.copy() for k, v in bag.state_arrays().items()}
        v0 = bag.version
        bag.load_state_arrays(saved)
        assert bag.version > v0

    @pytest.mark.parametrize("bag", make_bags(), ids=lambda b: type(b).__name__)
    def test_reconstruct_rows_pure(self, bag):
        idx = np.array([0, 5, ROWS - 1], dtype=np.int64)
        first = bag.reconstruct_rows(idx)
        assert first.shape == (3, DIM)
        np.testing.assert_array_equal(first, bag.reconstruct_rows(idx))
        assert bag.version == 0  # reading reconstructs, never updates

    @pytest.mark.parametrize("bag", make_bags(), ids=lambda b: type(b).__name__)
    def test_forward_pools_reconstructed_rows(self, bag):
        idx = np.array([1, 7, 2, 2], dtype=np.int64)
        off = np.array([0, 2], dtype=np.int64)
        pooled = bag.forward(idx, off)
        rows = bag.reconstruct_rows(idx)
        np.testing.assert_allclose(pooled[0], rows[0] + rows[1], atol=1e-12)
        np.testing.assert_allclose(pooled[1], rows[2] + rows[3], atol=1e-12)


class TestCompressionSpec:
    def test_kinds(self):
        kinds = {
            type(b).__name__: b.compression_spec().kind for b in make_bags()
        }
        assert kinds == {
            "DenseEmbeddingBag": "dense",
            "TTEmbeddingBag": "tt",
            "EffTTEmbeddingBag": "eff_tt",
            "HashEmbeddingBag": "hash",
            "RobeEmbeddingBag": "robe",
            "PQEmbeddingBag": "pq",
        }

    @pytest.mark.parametrize("bag", make_bags(), ids=lambda b: type(b).__name__)
    def test_spec_shape_metadata(self, bag):
        spec = bag.compression_spec()
        assert spec.num_embeddings == ROWS
        assert spec.embedding_dim == DIM

    @pytest.mark.parametrize("bag", make_bags(), ids=lambda b: type(b).__name__)
    def test_json_roundtrip(self, bag):
        spec = bag.compression_spec()
        assert CompressionSpec.from_json(spec.to_json()) == spec

    def test_params_canonical_order(self):
        a = CompressionSpec.create("hash", 10, 4, {"b": 1, "a": 2})
        b = CompressionSpec.create("hash", 10, 4, {"a": 2, "b": 1})
        assert a == b
        assert a.to_json() == b.to_json()
