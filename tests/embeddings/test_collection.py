"""Tests for the placement-aware embedding collection."""

import numpy as np
import pytest

from repro.data.dataloader import SyntheticClickLog
from repro.data.datasets import criteo_kaggle_like
from repro.embeddings.collection import EmbeddingCollection
from repro.embeddings.dense import DenseEmbeddingBag
from repro.embeddings.eff_tt_embedding import EffTTEmbeddingBag
from repro.models.config import DLRMConfig, EmbeddingBackend
from repro.models.dlrm import DLRM
from repro.reorder.bijection import IndexBijection
from repro.system.devices import DeviceSpec
from repro.system.memory import PlacementDecision, plan_placement
from repro.system.parameter_server import (
    HostBackedEmbeddingBag,
    HostParameterServer,
)

# Sized so the scale-2e-5 Criteo tables split across all three
# placements: one TT table, most small tables dense, a few on the host.
TINY_GPU = DeviceSpec(
    name="tiny", peak_gflops=1000.0, mem_bw_gbps=100.0, hbm_bytes=10e3,
    h2d_gbps=10.0, p2p_gbps=10.0,
)


@pytest.fixture(scope="module")
def spec():
    return criteo_kaggle_like(scale=2e-5)


class TestFromPlacement:
    def test_mixed_placement(self, spec):
        rows = [t.num_rows for t in spec.tables]
        plan = plan_placement(
            rows, 8, TINY_GPU, tt_rank=8,
            tt_threshold_rows=100, dtype_bytes=4,
        )
        collection = EmbeddingCollection.from_placement(plan, 8, tt_rank=8)
        summary = collection.summary()
        assert summary["tt_tables"] + summary["dense_tables"] + summary[
            "host_tables"
        ] == len(rows)
        assert summary["tt_tables"] > 0
        # host map points at HostBackedEmbeddingBag instances in server order
        for pos, sidx in collection.host_table_map.items():
            assert isinstance(
                collection.bags[pos], HostBackedEmbeddingBag
            )
        server_rows = collection.host_table_rows()
        assert len(server_rows) == summary["host_tables"]

    def test_decisions_match_bag_types(self, spec):
        rows = [t.num_rows for t in spec.tables]
        plan = plan_placement(
            rows, 8, TINY_GPU, tt_rank=8, tt_threshold_rows=100,
        )
        collection = EmbeddingCollection.from_placement(plan, 8, tt_rank=8)
        for placement, bag in zip(plan.placements, collection.bags):
            if placement.decision is PlacementDecision.GPU_TT:
                assert isinstance(bag, EffTTEmbeddingBag)
            elif placement.decision is PlacementDecision.GPU_DENSE:
                assert isinstance(bag, DenseEmbeddingBag)
            else:
                assert isinstance(bag, HostBackedEmbeddingBag)

    def test_drives_dlrm_and_ps_training(self, spec):
        rows = [t.num_rows for t in spec.tables]
        plan = plan_placement(
            rows, 8, TINY_GPU, tt_rank=8, tt_threshold_rows=100,
        )
        collection = EmbeddingCollection.from_placement(plan, 8, tt_rank=8)
        cfg = DLRMConfig.from_dataset(
            spec, embedding_dim=8, backend=EmbeddingBackend.EFF_TT, tt_rank=8,
            bottom_mlp=(16,), top_mlp=(16,),
        )
        model = DLRM(cfg, seed=0, embedding_bags=collection.bags)
        server = HostParameterServer(
            collection.host_table_rows(), 8, lr=0.1, seed=1
        )
        from repro.system.pipeline import SequentialPSTrainer

        trainer = SequentialPSTrainer(
            model, server, collection.host_table_map, lr=0.1
        )
        log = SyntheticClickLog(spec, batch_size=32, seed=0)
        result = trainer.train(log, 5)
        assert len(result.losses) == 5


class TestValidation:
    def test_host_map_type_checked(self):
        bags = [DenseEmbeddingBag(10, 4, seed=0)]
        with pytest.raises(TypeError):
            EmbeddingCollection(bags, host_table_map={0: 0})
        with pytest.raises(ValueError):
            EmbeddingCollection(bags, host_table_map={5: 0})

    def test_bijection_count_checked(self):
        bags = [DenseEmbeddingBag(10, 4, seed=0)]
        with pytest.raises(ValueError):
            EmbeddingCollection(bags, bijections=[None, None])

    def test_remap(self, spec):
        log = SyntheticClickLog(spec, batch_size=16, seed=0)
        batch = log.batch(0)
        bags = [
            DenseEmbeddingBag(t.num_rows, 8, seed=i)
            for i, t in enumerate(spec.tables)
        ]
        bijections = [None] * len(bags)
        n0 = spec.tables[0].num_rows
        bijections[0] = IndexBijection.from_forward(
            np.arange(n0)[::-1].copy()
        )
        collection = EmbeddingCollection(bags, bijections=bijections)
        remapped = collection.remap(batch)
        np.testing.assert_array_equal(
            remapped.sparse_indices[0], n0 - 1 - batch.sparse_indices[0]
        )
        # identity path returns the batch unchanged
        plain = EmbeddingCollection(bags)
        assert plain.remap(batch) is batch

    def test_nbytes_local_excludes_host(self):
        bags = [
            DenseEmbeddingBag(10, 4, seed=0),
            HostBackedEmbeddingBag(100, 4),
        ]
        collection = EmbeddingCollection(bags, host_table_map={1: 0})
        assert collection.nbytes_local() == bags[0].nbytes
