"""The memory-budget compression planner (embeddings/autotune.py)."""

import numpy as np
import pytest

from repro.embeddings.autotune import (
    COMPRESS_STRATEGIES,
    binary_search_max,
    build_bag_from_plan,
    build_bag_from_spec,
    plan_compression,
)
from repro.embeddings.protocol import CompressedEmbedding
from repro.reorder.stats import TableStats

DIM = 8


def make_stats(rows=(1000, 50000, 300, 120000), alpha=1.05):
    return [
        TableStats.from_spec(t, r, alpha) for t, r in enumerate(rows)
    ]


def dense_bytes(stats):
    return sum(st.num_rows for st in stats) * DIM * 8


class TestBinarySearchMax:
    def test_finds_largest_passing(self):
        assert binary_search_max(1, 100, lambda x: x <= 37) == 37
        assert binary_search_max(1, 100, lambda x: True) == 100

    def test_none_when_nothing_fits(self):
        assert binary_search_max(1, 100, lambda x: False) is None


class TestBudgetCompliance:
    @pytest.mark.parametrize("strategy", COMPRESS_STRATEGIES + ("auto",))
    @pytest.mark.parametrize("fraction", [0.5, 0.1, 0.02])
    def test_total_within_budget(self, strategy, fraction):
        stats = make_stats()
        budget = int(dense_bytes(stats) * fraction)
        plan = plan_compression(stats, DIM, budget, strategy=strategy)
        if not plan.feasible:
            # Only honest infeasibility is allowed: dense cannot shrink
            # at all, and PQ's int32 code table (rows x M x 4 bytes at
            # M=1) is an irreducible floor.  The emitted plan must be
            # the strategy's minimal configuration.
            assert strategy in ("dense", "pq")
            floor = plan_compression(stats, DIM, 1, strategy=strategy)
            assert plan.total_bytes == floor.total_bytes
            assert plan.total_bytes > budget
            return
        assert plan.total_bytes <= budget

    @pytest.mark.parametrize("strategy", ("auto", "hash", "robe", "pq", "tt"))
    def test_realized_equals_planned(self, strategy):
        stats = make_stats()
        budget = int(dense_bytes(stats) * 0.1)
        plan = plan_compression(stats, DIM, budget, strategy=strategy)
        for entry in plan.tables:
            bag = build_bag_from_plan(entry, DIM, seed=3)
            assert isinstance(bag, CompressedEmbedding)
            assert bag.memory_bytes() == entry.memory_bytes
            assert bag.num_embeddings == entry.num_rows

    def test_infeasible_budget_flagged(self):
        stats = make_stats()
        plan = plan_compression(stats, DIM, 16, strategy="auto")
        assert not plan.feasible
        # minimal plan still materializes
        for entry in plan.tables:
            build_bag_from_plan(entry, DIM, seed=0)


class TestDeterminism:
    def test_permutation_invariant(self):
        stats = make_stats()
        budget = int(dense_bytes(stats) * 0.2)
        forward = plan_compression(stats, DIM, budget, strategy="auto")
        reverse = plan_compression(
            list(reversed(stats)), DIM, budget, strategy="auto"
        )
        assert forward == reverse

    def test_repeat_identical(self):
        stats = make_stats()
        budget = int(dense_bytes(stats) * 0.2)
        a = plan_compression(stats, DIM, budget)
        b = plan_compression(stats, DIM, budget)
        assert a == b

    def test_duplicate_table_idx_rejected(self):
        stats = make_stats()
        stats.append(stats[0])
        with pytest.raises(ValueError):
            plan_compression(stats, DIM, 10_000)


class TestAutoStrategy:
    def test_generous_budget_stays_dense(self):
        stats = make_stats()
        plan = plan_compression(
            stats, DIM, dense_bytes(stats) * 2, strategy="auto"
        )
        assert all(t.strategy == "dense" for t in plan.tables)
        assert plan.total_bytes == dense_bytes(stats)

    def test_tight_budget_compresses_large_tables(self):
        stats = make_stats()
        budget = int(dense_bytes(stats) * 0.05)
        plan = plan_compression(stats, DIM, budget, strategy="auto")
        strategies = {t.num_rows: t.strategy for t in plan.tables}
        # the big tables cannot stay dense at 5% of dense bytes
        assert strategies[120000] != "dense"
        assert strategies[50000] != "dense"

    def test_format_table_renders(self):
        stats = make_stats()
        plan = plan_compression(
            stats, DIM, int(dense_bytes(stats) * 0.2)
        )
        text = plan.format_table()
        assert "budget" in text
        assert str(len(stats)) not in ("",)  # smoke: non-empty
        assert len(text.splitlines()) >= len(stats) + 2


class TestBuildFromSpec:
    @pytest.mark.parametrize("strategy", ("hash", "robe", "pq", "tt"))
    def test_spec_rebuild_matches_shape(self, strategy):
        stats = make_stats()
        plan = plan_compression(
            stats, DIM, int(dense_bytes(stats) * 0.1), strategy=strategy
        )
        bag = build_bag_from_plan(plan.tables[-1], DIM, seed=5)
        clone = build_bag_from_spec(bag.compression_spec(), seed=5)
        assert type(clone) is type(bag)
        state, cstate = bag.state_arrays(), clone.state_arrays()
        assert state.keys() == cstate.keys()
        for name in state:
            assert state[name].shape == cstate[name].shape
