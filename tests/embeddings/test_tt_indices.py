"""Tests for TT-index conversion (paper Equation 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embeddings.tt_indices import (
    prefix_keys,
    row_index_to_tt,
    row_strides,
    tt_to_row_index,
)

shapes = st.lists(st.integers(min_value=1, max_value=12), min_size=1, max_size=4)


class TestRowStrides:
    def test_basic(self):
        np.testing.assert_array_equal(row_strides([4, 3, 2]), [6, 2, 1])

    def test_single(self):
        np.testing.assert_array_equal(row_strides([7]), [1])

    def test_invalid(self):
        with pytest.raises(ValueError):
            row_strides([])
        with pytest.raises(ValueError):
            row_strides([4, 0])


class TestConversion:
    def test_paper_example(self):
        # Figure 5(b): M = 2x2x2, index 1 -> (0, 0, 1), index 0 -> (0, 0, 0)
        tt = row_index_to_tt(np.array([1, 0]), [2, 2, 2])
        assert [a.tolist() for a in tt] == [[0, 0], [0, 0], [1, 0]]

    def test_all_indices_distinct(self):
        shape = [4, 3, 2]
        tt = row_index_to_tt(np.arange(24), shape)
        packed = tt[0] * 6 + tt[1] * 2 + tt[2]
        np.testing.assert_array_equal(packed, np.arange(24))

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            row_index_to_tt(np.array([24]), [4, 3, 2])
        with pytest.raises(ValueError):
            row_index_to_tt(np.array([-1]), [4, 3, 2])

    def test_inverse_validates(self):
        with pytest.raises(ValueError):
            tt_to_row_index([np.array([4])], [4])
        with pytest.raises(ValueError):
            tt_to_row_index([np.array([0])], [4, 3])

    @given(shapes, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=200, deadline=None)
    def test_roundtrip(self, shape, seed):
        total = int(np.prod(shape))
        rng = np.random.default_rng(seed)
        idx = rng.integers(0, total, size=20)
        tt = row_index_to_tt(idx, shape)
        back = tt_to_row_index(tt, shape)
        np.testing.assert_array_equal(back, idx)
        for k, part in enumerate(tt):
            assert part.min() >= 0 and part.max() < shape[k]


class TestPrefixKeys:
    def test_depth_two(self):
        tt = row_index_to_tt(np.array([0, 1, 6, 7, 12]), [4, 3, 2])
        keys = prefix_keys(tt, [4, 3, 2], depth=2)
        # indices 0,1 share (i1,i2)=(0,0); 6,7 share (1,0); 12 -> (2,0)
        assert keys[0] == keys[1]
        assert keys[2] == keys[3]
        assert len(np.unique(keys)) == 3

    def test_depth_bounds(self):
        tt = row_index_to_tt(np.array([0]), [4, 3, 2])
        with pytest.raises(ValueError):
            prefix_keys(tt, [4, 3, 2], depth=0)
        with pytest.raises(ValueError):
            prefix_keys(tt, [4, 3, 2], depth=4)

    @given(shapes.filter(lambda s: len(s) >= 2))
    @settings(max_examples=100, deadline=None)
    def test_keys_injective_on_prefixes(self, shape):
        total = int(np.prod(shape))
        idx = np.arange(min(total, 200))
        tt = row_index_to_tt(idx, shape)
        depth = len(shape) - 1
        keys = prefix_keys(tt, shape, depth)
        tuples = list(zip(*(tt[k].tolist() for k in range(depth))))
        # same key <=> same prefix tuple
        mapping = {}
        for key, tup in zip(keys.tolist(), tuples):
            assert mapping.setdefault(key, tup) == tup
        assert len(set(keys.tolist())) == len(set(tuples))
