"""Tests for the TT-Rec-style baseline embedding bag."""

import numpy as np
import pytest

from repro.embeddings.dense import DenseEmbeddingBag
from repro.embeddings.tt_embedding import TTEmbeddingBag
from repro.nn.optim import SparseSGD
from tests.conftest import assert_grad_close, numerical_gradient


@pytest.fixture
def small_bag():
    return TTEmbeddingBag(
        24, 8, tt_rank=64, row_shape=[4, 3, 2], col_shape=[2, 2, 2], seed=0
    )


class TestConstruction:
    def test_auto_shapes(self):
        bag = TTEmbeddingBag(1000, 16, tt_rank=8, seed=0)
        assert bag.spec.padded_rows >= 1000
        assert bag.spec.embedding_dim == 16

    def test_explicit_shapes_validated(self):
        with pytest.raises(ValueError):
            TTEmbeddingBag(100, 8, row_shape=[4, 4], col_shape=[2, 4])
        with pytest.raises(ValueError):
            TTEmbeddingBag(100, 8, row_shape=[10, 10], col_shape=[2, 2])

    def test_compression(self):
        bag = TTEmbeddingBag(1_000_000, 64, tt_rank=16, seed=0)
        assert bag.compression_ratio() > 50
        assert bag.nbytes < 1_000_000 * 64 * 8 / 50


class TestForward:
    def test_matches_materialized_table(self, small_bag, rng):
        table = small_bag.materialize()
        idx = rng.integers(0, 24, size=30)
        off = np.arange(0, 30, 3)
        out = small_bag.forward(idx, off)
        dense = DenseEmbeddingBag(24, 8, seed=0)
        dense.weight = table
        np.testing.assert_allclose(out, dense.forward(idx, off), atol=1e-12)

    def test_single_index_rows(self, small_bag):
        idx = np.array([0, 7, 23])
        out = small_bag.forward(idx)
        np.testing.assert_allclose(
            out, small_bag.materialize()[idx], atol=1e-12
        )

    def test_out_of_range(self, small_bag):
        with pytest.raises(ValueError):
            small_bag.forward(np.array([24]))


class TestBackward:
    def test_core_gradients_numerical(self, rng):
        bag = TTEmbeddingBag(
            12, 4, tt_rank=3, row_shape=[3, 2, 2], col_shape=[2, 2, 1], seed=1
        )
        idx = np.array([0, 3, 3, 11])
        off = np.array([0, 2])
        g = rng.standard_normal((2, 4))

        bag.forward(idx, off)
        bag.backward(g)
        analytic = [c.copy() for c in bag._core_grads]

        for k in range(3):
            core0 = bag.tt.cores[k].copy()

            def scalar(core_val, k=k):
                bag.tt.cores[k] = core_val
                out = bag.forward(idx, off)
                bag._saved = None
                return float((out * g).sum())

            numeric = numerical_gradient(scalar, core0.copy())
            bag.tt.cores[k] = core0
            assert_grad_close(analytic[k], numeric, rtol=1e-4, atol=1e-8)

    def test_update_is_descent_direction(self, rng):
        # Gradient descent on TT cores moves the materialized table
        # along a descent direction of the dense objective:
        # <delta_table, dL/dtable> = -lr * ||J^T g||^2 < 0.
        bag = TTEmbeddingBag(
            24, 8, tt_rank=64, row_shape=[4, 3, 2], col_shape=[2, 2, 2], seed=2
        )
        idx = np.array([1, 5, 5])
        off = np.array([0, 1])
        g = rng.standard_normal((2, 8))
        before = bag.materialize()
        bag.forward(idx, off)
        bag.backward(g)
        bag.step(lr=1e-6)
        delta = bag.materialize() - before
        dense_grad = np.zeros_like(before)
        dense_grad[1] += g[0]
        dense_grad[5] += 2 * g[1]
        assert float((delta * dense_grad).sum()) < 0

    def test_step_before_backward(self, small_bag):
        with pytest.raises(RuntimeError):
            small_bag.step(0.1)

    def test_backward_before_forward(self, small_bag):
        with pytest.raises(RuntimeError):
            small_bag.backward(np.zeros((1, 8)))

    def test_grad_shape_validated(self, small_bag):
        small_bag.forward(np.array([0]), np.array([0]))
        with pytest.raises(ValueError):
            small_bag.backward(np.zeros((2, 8)))
