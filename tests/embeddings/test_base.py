"""Tests for offset normalization and segment pooling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embeddings.base import (
    expand_bag_ids,
    normalize_offsets,
    segment_sum,
)


class TestNormalizeOffsets:
    def test_pytorch_form(self):
        out = normalize_offsets(np.array([0, 2, 5]), 7)
        np.testing.assert_array_equal(out, [0, 2, 5, 7])

    def test_boundary_form_passthrough(self):
        out = normalize_offsets(np.array([0, 2, 5]), 5)
        np.testing.assert_array_equal(out, [0, 2, 5])

    def test_empty_bags_allowed(self):
        out = normalize_offsets(np.array([0, 2, 2, 4]), 4)
        np.testing.assert_array_equal(out, [0, 2, 2, 4])

    def test_must_start_at_zero(self):
        with pytest.raises(ValueError, match="start at 0"):
            normalize_offsets(np.array([1, 3]), 5)

    def test_must_be_monotone(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            normalize_offsets(np.array([0, 3, 2]), 5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            normalize_offsets(np.array([], dtype=np.int64), 3)


class TestSegmentSum:
    def test_basic(self):
        values = np.arange(8.0).reshape(4, 2)
        out = segment_sum(values, np.array([0, 2, 4]))
        np.testing.assert_array_equal(out, [[2.0, 4.0], [10.0, 12.0]])

    def test_empty_segment_is_zero(self):
        values = np.ones((3, 2))
        out = segment_sum(values, np.array([0, 0, 3]))
        np.testing.assert_array_equal(out[0], [0.0, 0.0])
        np.testing.assert_array_equal(out[1], [3.0, 3.0])

    def test_all_empty(self):
        out = segment_sum(np.zeros((0, 4)), np.array([0, 0, 0]))
        assert out.shape == (2, 4)
        assert np.all(out == 0)

    def test_single_element_bags(self):
        values = np.arange(6.0).reshape(3, 2)
        out = segment_sum(values, np.array([0, 1, 2, 3]))
        np.testing.assert_array_equal(out, values)

    @given(
        st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=10)
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_loop(self, bag_sizes):
        boundaries = np.concatenate([[0], np.cumsum(bag_sizes)]).astype(np.int64)
        total = int(boundaries[-1])
        rng = np.random.default_rng(0)
        values = rng.standard_normal((total, 3))
        fast = segment_sum(values, boundaries)
        slow = np.stack(
            [
                values[boundaries[b] : boundaries[b + 1]].sum(axis=0)
                for b in range(len(bag_sizes))
            ]
        )
        np.testing.assert_allclose(fast, slow)


class TestExpandBagIds:
    def test_basic(self):
        out = expand_bag_ids(np.array([0, 2, 2, 5]))
        np.testing.assert_array_equal(out, [0, 0, 2, 2, 2])

    def test_empty(self):
        out = expand_bag_ids(np.array([0, 0]))
        assert out.size == 0
