"""Tests for fused row-wise Adagrad on the Eff-TT table."""

import numpy as np
import pytest

from repro.embeddings.eff_tt_embedding import EffTTEmbeddingBag
from repro.utils.scatter import coalesce_rows


def _bag(**flags):
    return EffTTEmbeddingBag(
        24, 8, tt_rank=4, row_shape=[4, 3, 2], col_shape=[2, 2, 2],
        optimizer="adagrad", seed=0, **flags,
    )


class TestCoalesceRows:
    def test_sums_duplicates(self):
        uniq, summed = coalesce_rows(
            np.array([2, 0, 2]), np.array([[1.0], [5.0], [3.0]])
        )
        np.testing.assert_array_equal(uniq, [0, 2])
        np.testing.assert_array_equal(summed[:, 0], [5.0, 4.0])

    def test_no_duplicates_sorted(self):
        uniq, summed = coalesce_rows(
            np.array([3, 1]), np.array([[1.0], [2.0]])
        )
        np.testing.assert_array_equal(uniq, [1, 3])
        np.testing.assert_array_equal(summed[:, 0], [2.0, 1.0])

    def test_empty(self):
        uniq, summed = coalesce_rows(
            np.array([], dtype=np.int64), np.zeros((0, 2))
        )
        assert uniq.size == 0 and summed.shape == (0, 2)

    def test_multidim_values_flattened(self):
        uniq, summed = coalesce_rows(
            np.array([0, 0]), np.ones((2, 2, 3))
        )
        assert summed.shape == (1, 6)
        np.testing.assert_array_equal(summed, 2 * np.ones((1, 6)))


class TestFusedAdagrad:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            EffTTEmbeddingBag(24, 8, tt_rank=4, optimizer="adam")
        with pytest.raises(ValueError):
            EffTTEmbeddingBag(24, 8, tt_rank=4, optimizer="adagrad",
                              adagrad_eps=0.0)

    def test_first_step_magnitude(self, rng):
        """First Adagrad step moves each touched element by ~lr."""
        bag = _bag()
        idx = np.array([3])
        before = [c.copy() for c in bag.tt.cores]
        bag.forward(idx)
        bag.backward(rng.standard_normal((1, 8)))
        bag.step(lr=0.1)
        moved = max(
            np.abs(a - b).max() for a, b in zip(before, bag.tt.cores)
        )
        assert moved == pytest.approx(0.1, rel=0.01)

    def test_accumulator_slows_updates(self, rng):
        bag = _bag()
        idx = np.array([3])
        g = np.ones((1, 8))
        deltas = []
        for _ in range(3):
            before = bag.tt.cores[0].copy()
            bag.forward(idx)
            bag.backward(g)
            bag.step(lr=0.1)
            deltas.append(np.abs(bag.tt.cores[0] - before).max())
        assert deltas[0] > deltas[1] > deltas[2]

    def test_fused_matches_dense_mode(self, rng):
        """Fused Adagrad scatter equals the materialized-gradient path."""
        fused = _bag(enable_fused_update=True)
        dense = _bag(enable_fused_update=False)
        for _ in range(4):
            idx = rng.integers(0, 24, size=20)
            g = rng.standard_normal((20, 8))
            for bag in (fused, dense):
                bag.forward(idx)
                bag.backward(g)
                bag.step(0.1)
        for a, b in zip(fused.tt.cores, dense.tt.cores):
            np.testing.assert_allclose(a, b, atol=1e-10)

    def test_duplicate_indices_coalesced_not_double_counted(self, rng):
        """Duplicates coalesce (sum-then-square) as in sparse Adagrad."""
        a = _bag()
        b = _bag()
        g = rng.standard_normal((1, 8))
        # bag a: one bag containing the same row twice (grads sum)
        a.forward(np.array([5, 5]), np.array([0, 2]))
        a.backward(g)
        a.step(0.1)
        # bag b: one bag with the row once but twice the gradient
        b.forward(np.array([5]), np.array([0, 1]))
        b.backward(2 * g)
        b.step(0.1)
        for ca, cb in zip(a.tt.cores, b.tt.cores):
            np.testing.assert_allclose(ca, cb, atol=1e-12)

    def test_data_parallel_rescale_rejected(self, rng):
        bag = _bag()
        bag.forward(np.array([1]))
        bag.backward(rng.standard_normal((1, 8)))
        pending = bag.pop_pending_update()
        with pytest.raises(ValueError, match="sgd"):
            bag.apply_pending_update(pending, lr=0.1, scale=0.5)

    def test_training_converges(self, rng):
        """Adagrad-trained Eff-TT fits a small regression target."""
        bag = _bag()
        idx = np.arange(24)
        target = rng.standard_normal((24, 8)) * 0.1
        losses = []
        for _ in range(150):
            out = bag.forward(idx)
            diff = out - target
            losses.append(float((diff**2).mean()))
            bag.backward(2 * diff / diff.size)
            bag.step(lr=0.5)
        assert losses[-1] < 0.2 * losses[0]

    def test_sgd_default_unchanged(self):
        bag = EffTTEmbeddingBag(24, 8, tt_rank=4, seed=0)
        assert bag.optimizer == "sgd"
        assert bag._adagrad_acc is None
