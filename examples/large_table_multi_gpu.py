#!/usr/bin/env python
"""The Figure-13 scenario: one huge table, one (or a few) GPUs.

Shows (1) the placement arithmetic — a 40M x 128 dense table does not
fit a 16 GB GPU, its Eff-TT form does; (2) functional data-parallel
training with gradient AllReduce keeping replicas bit-synchronized;
(3) the modeled throughput of EL-Rec vs HugeCTR/TorchRec sharding.

Run:  python examples/large_table_multi_gpu.py
"""

import numpy as np

from repro.data.datasets import DatasetSpec, TableSpec
from repro.data.dataloader import SyntheticClickLog
from repro.embeddings import EffTTEmbeddingBag
from repro.models import DLRMConfig, EmbeddingBackend
from repro.system import TESLA_V100, plan_placement
from repro.system.multi_gpu import DataParallelTrainer

ROWS_FULL = 40_000_000
DIM = 128
TT_RANK = 64


def main() -> None:
    # --- placement arithmetic (full-scale) ---------------------------
    dense_gb = ROWS_FULL * DIM * 4 / 1e9
    bag_spec = EffTTEmbeddingBag(ROWS_FULL, DIM, tt_rank=TT_RANK, seed=0).spec
    tt_gb = bag_spec.num_params * 4 / 1e9
    print("== the paper's 40M x 128 table ==")
    print(f"dense footprint : {dense_gb:6.1f} GB  "
          f"(> {TESLA_V100.hbm_bytes / 1e9:.0f} GB HBM -> cannot fit 1 GPU)")
    print(f"Eff-TT footprint: {tt_gb:6.3f} GB  (rank {TT_RANK}, "
          f"{bag_spec.compression_ratio():.0f}x smaller -> fits easily)")

    plan = plan_placement([ROWS_FULL], DIM, TESLA_V100, tt_rank=TT_RANK,
                          tt_threshold_rows=1_000_000)
    print(f"placement plan  : {plan.summary()}")

    # --- functional data-parallel training (scaled) ------------------
    print("\n== functional 4-replica data-parallel training (scaled) ==")
    spec = DatasetSpec(
        name="large-table",
        num_dense=4,
        tables=(TableSpec("big", 100_000, alpha=1.05),),
        num_samples=1_000_000,
        days=1,
        scale=100_000 / ROWS_FULL,
    )
    log = SyntheticClickLog(spec, batch_size=128, seed=0)
    cfg = DLRMConfig.from_dataset(
        spec, embedding_dim=16, backend=EmbeddingBackend.EFF_TT, tt_rank=16,
        bottom_mlp=(32,), top_mlp=(32,),
    )
    trainer = DataParallelTrainer(cfg, num_replicas=4, seed=0)
    for i in range(10):
        loss = trainer.train_step(log.batch(i), lr=0.05)
        if i % 3 == 0:
            print(f"  step {i:2d}  global loss {loss:.4f}  "
                  f"replicas synchronized: {trainer.replicas_synchronized()}")

    # --- modeled throughput vs sharded baselines ----------------------
    print("\n== modeled throughput (see benchmarks/bench_fig13) ==")
    print("run: python benchmarks/bench_fig13_large_table.py")


if __name__ == "__main__":
    main()
