#!/usr/bin/env python
"""Quickstart: the Eff-TT table as a drop-in EmbeddingBag replacement.

The paper's central API claim (§I): replace
``torch.nn.EmbeddingBag(num_rows, dim, mode="sum")`` with
``EffTTEmbeddingBag(num_rows, dim, tt_rank=...)`` and nothing else in
the model changes — at a fraction of the memory.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import DenseEmbeddingBag, EffTTEmbeddingBag


def main() -> None:
    num_rows, dim = 1_000_000, 64

    dense = DenseEmbeddingBag(num_rows, dim, seed=0)
    eff_tt = EffTTEmbeddingBag(num_rows, dim, tt_rank=32, seed=0)

    print("== footprint ==")
    print(f"dense table : {dense.nbytes_as(np.float32) / 1e6:8.1f} MB (fp32)")
    print(f"Eff-TT table: {eff_tt.nbytes_as(np.float32) / 1e6:8.1f} MB (fp32)")
    print(f"compression : {eff_tt.compression_ratio():8.1f}x")

    # --- lookup: identical API --------------------------------------
    # 3 bags: {12, 7}, {7}, {42, 42, 99}   (note duplicate indices)
    indices = np.array([12, 7, 7, 42, 42, 99])
    offsets = np.array([0, 2, 3])

    pooled_dense = dense(indices, offsets)
    pooled_tt = eff_tt(indices, offsets)
    print("\n== lookup ==")
    print(f"pooled output shape: {pooled_tt.shape} (same as dense: "
          f"{pooled_dense.shape})")

    # The reuse plan shows how much work the batch-level reuse saved.
    plan = eff_tt.last_plan
    print(f"index occurrences   : {plan.num_occurrences}")
    print(f"unique rows computed: {plan.num_unique_rows}")
    print(f"partial GEMMs issued: {plan.gemm_count()} "
          f"(naive TT would issue {plan.naive_gemm_count()})")

    # --- training: backward + fused update ---------------------------
    print("\n== training step ==")
    grad = np.random.default_rng(0).standard_normal(pooled_tt.shape)
    before = eff_tt.lookup_rows(np.array([12]))
    eff_tt.forward(indices, offsets)
    eff_tt.backward_and_step(grad, lr=0.05)  # fused backward + SGD
    after = eff_tt.lookup_rows(np.array([12]))
    print(f"row 12 moved by {np.abs(after - before).max():.2e} after one "
          "fused update")
    print("done.")


if __name__ == "__main__":
    main()
