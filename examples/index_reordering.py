#!/usr/bin/env python
"""Locality-based index reordering end to end (paper §IV).

Builds the index graph from batched training data (Algorithm 2), runs
the from-scratch Louvain community detection, produces the index
bijection, and measures what it buys the Eff-TT table: fewer unique TT
prefixes per batch means fewer partial GEMMs in the reuse buffer.

Run:  python examples/index_reordering.py
"""

import numpy as np

from repro.data.synthetic import ClusteredZipfSampler
from repro.embeddings import EffTTEmbeddingBag
from repro.reorder import build_bijection
from repro.reorder.stats import batch_locality_stats, reuse_improvement
from repro.utils.timer import measure_median

NUM_ROWS = 200_000
DIM = 32
BATCH = 4096
TT_RANK = 32


def main() -> None:
    # Training batches with temporal locality (users viewing related
    # content within a time window, §IV-A) but scattered row ids.
    sampler = ClusteredZipfSampler(
        NUM_ROWS, alpha=1.05, locality=0.6, cluster_size=1024, seed=0
    )
    batches = [
        sampler.sample_batch(BATCH, np.random.default_rng(i)) for i in range(8)
    ]

    print("building index bijection (graph + Louvain, offline)...")
    bijection = build_bijection(batches, NUM_ROWS, hot_ratio=0.001, seed=0)

    bag = EffTTEmbeddingBag(NUM_ROWS, DIM, tt_rank=TT_RANK, seed=0)
    row_shape = bag.spec.row_shape

    print("\n== locality statistics (first batch) ==")
    before = batch_locality_stats(batches[0], row_shape)
    after = batch_locality_stats(batches[0], row_shape, bijection)
    print(f"occurrences            : {before.num_occurrences}")
    print(f"unique rows            : {before.num_unique_rows}")
    print(f"unique prefixes before : {before.num_unique_prefixes}")
    print(f"unique prefixes after  : {after.num_unique_prefixes}")

    stats = reuse_improvement(batches, row_shape, bijection)
    print(
        f"partial-GEMM reduction over {len(batches)} batches: "
        f"{stats['partial_gemm_reduction']:.2f}x"
    )

    print("\n== measured lookup latency ==")
    reordered = [bijection.apply(b) for b in batches]

    def lookup(data):
        state = {"i": 0}

        def fn():
            bag.forward(data[state["i"] % len(data)])
            state["i"] += 1

        return measure_median(fn, repeats=5, warmup=1)

    t_before = lookup(batches)
    t_after = lookup(reordered)
    print(f"original ids : {t_before * 1e3:7.2f} ms / batch")
    print(f"reordered ids: {t_after * 1e3:7.2f} ms / batch "
          f"({t_before / t_after:.2f}x)")


if __name__ == "__main__":
    main()
