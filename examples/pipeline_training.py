#!/usr/bin/env python
"""Pipelined parameter-server training with the embedding cache (§V).

Demonstrates the read-after-write conflict of naive prefetching and its
resolution: the largest tables live in host memory behind a parameter
server; batches are prefetched several steps ahead; the LC-managed
embedding cache keeps pipelined training *numerically identical* to
sequential training, while naive prefetching silently trains on stale
rows.

Run:  python examples/pipeline_training.py
"""

import numpy as np

from repro import SyntheticClickLog, criteo_kaggle_like
from repro.models import DLRM, DLRMConfig, EmbeddingBackend
from repro.models.dlrm import build_embedding_bag
from repro.system import (
    HostBackedEmbeddingBag,
    HostParameterServer,
    PipelinedPSTrainer,
    SequentialPSTrainer,
)

LR = 0.05
NUM_BATCHES = 40
PREFETCH_DEPTH = 4
GRAD_QUEUE_DEPTH = 2


def build(cfg, host_map, seed=7):
    """DLRM whose two largest tables are host-resident."""
    bags = []
    for t, rows in enumerate(cfg.table_rows):
        if t in host_map:
            bags.append(HostBackedEmbeddingBag(rows, cfg.embedding_dim))
        else:
            bags.append(
                build_embedding_bag(
                    cfg.backend_for_table(t), rows, cfg.embedding_dim,
                    cfg.tt_rank, seed=(100 + t),
                )
            )
    return DLRM(cfg, seed=seed, embedding_bags=bags)


def main() -> None:
    spec = criteo_kaggle_like(scale=5e-5)
    log = SyntheticClickLog(spec, batch_size=128, seed=0)
    cfg = DLRMConfig.from_dataset(
        spec, embedding_dim=8, backend=EmbeddingBackend.EFF_TT, tt_rank=8,
        tt_threshold_rows=500, bottom_mlp=(32,), top_mlp=(32,),
    )
    rows = list(cfg.table_rows)
    host_positions = sorted(range(len(rows)), key=lambda t: -rows[t])[:2]
    host_map = {p: i for i, p in enumerate(host_positions)}
    server_rows = [rows[p] for p in host_positions]
    print(f"host-resident tables: {host_positions} "
          f"({[f'{r:,} rows' for r in server_rows]})")

    runs = {}
    for label, pipelined, use_cache in (
        ("sequential", False, True),
        ("pipeline + embedding cache", True, True),
        ("pipeline, naive prefetch (no cache)", True, False),
    ):
        model = build(cfg, host_map)
        server = HostParameterServer(
            server_rows, cfg.embedding_dim, lr=LR, seed=3
        )
        if pipelined:
            trainer = PipelinedPSTrainer(
                model, server, host_map, lr=LR,
                prefetch_depth=PREFETCH_DEPTH,
                grad_queue_depth=GRAD_QUEUE_DEPTH,
                use_cache=use_cache,
            )
        else:
            trainer = SequentialPSTrainer(model, server, host_map, lr=LR)
        result = trainer.train(log, NUM_BATCHES)
        runs[label] = (server, result)
        extra = ""
        if pipelined and use_cache:
            extra = f"  (cache hits: {result.cache_hits})"
        if pipelined and not use_cache:
            extra = f"  (stale rows consumed: {result.stale_rows_consumed})"
        print(f"{label:38s} final loss {result.final_loss:.6f}{extra}")

    seq_server = runs["sequential"][0]
    cached_server = runs["pipeline + embedding cache"][0]
    stale_server = runs["pipeline, naive prefetch (no cache)"][0]

    cached_ok = all(
        np.array_equal(a, b)
        for a, b in zip(seq_server.tables, cached_server.tables)
    )
    stale_gap = max(
        np.abs(a - b).max()
        for a, b in zip(seq_server.tables, stale_server.tables)
    )
    print(f"\npipeline+cache == sequential (bitwise): {cached_ok}")
    print(f"naive prefetch parameter drift        : {stale_gap:.3e}")


if __name__ == "__main__":
    main()
