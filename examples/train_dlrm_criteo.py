#!/usr/bin/env python
"""Train a full DLRM on a Criteo-Kaggle-shaped synthetic stream.

Compares the dense baseline against EL-Rec's Eff-TT configuration on an
identical stream: same loss trajectory (paper Figure 15, Table IV) with
a >10x smaller embedding footprint.

Run:  python examples/train_dlrm_criteo.py [--steps 200]
"""

import argparse

import numpy as np

from repro import SyntheticClickLog, criteo_kaggle_like
from repro.models import DLRM, DLRMConfig, EmbeddingBackend


def train(backend: EmbeddingBackend, log, spec, steps: int, lr: float):
    # The paper's policy (§VI-A): decompose only the large tables,
    # keep small tables dense.  The threshold scales with the demo's
    # dataset scale so the same tables are selected as at full size.
    threshold = max(1, int(1_000_000 * spec.scale))
    config = DLRMConfig.from_dataset(
        spec,
        embedding_dim=16,
        backend=backend,
        tt_rank=16,
        tt_threshold_rows=threshold,
        bottom_mlp=(64, 32),
        top_mlp=(64,),
    )
    model = DLRM(config, seed=42)
    losses = []
    for i in range(steps):
        result = model.train_step(log.batch(i), lr=lr)
        losses.append(result.loss)
        if (i + 1) % max(1, steps // 10) == 0:
            window = np.mean(losses[-10:])
            print(f"  step {i + 1:4d}  loss {window:.4f}")
    metrics = model.evaluate([log.batch(100_000 + i) for i in range(8)])
    return model, losses, metrics


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=200)
    parser.add_argument("--batch-size", type=int, default=256)
    parser.add_argument("--lr", type=float, default=0.2)
    parser.add_argument("--scale", type=float, default=2e-4,
                        help="dataset cardinality scale (1.0 = paper size)")
    args = parser.parse_args()

    spec = criteo_kaggle_like(scale=args.scale)
    log = SyntheticClickLog(
        spec, batch_size=args.batch_size, seed=0, teacher_strength=3.0
    )
    print(f"dataset: {spec.describe()}")

    results = {}
    for backend in (EmbeddingBackend.DENSE, EmbeddingBackend.EFF_TT):
        print(f"\n=== training with {backend.value} embeddings ===")
        model, losses, metrics = train(
            backend, log, spec, args.steps, args.lr
        )
        results[backend] = (model, metrics)
        print(
            f"  eval: loss={metrics['loss']:.4f} "
            f"accuracy={metrics['accuracy'] * 100:.2f}% "
            f"auc={metrics['auc']:.3f}"
        )
        print(f"  embedding footprint: {model.embedding_nbytes() / 1e6:.2f} MB")

    dense_acc = results[EmbeddingBackend.DENSE][1]["accuracy"]
    tt_acc = results[EmbeddingBackend.EFF_TT][1]["accuracy"]
    dense_mb = results[EmbeddingBackend.DENSE][0].embedding_nbytes() / 1e6
    tt_mb = results[EmbeddingBackend.EFF_TT][0].embedding_nbytes() / 1e6
    print(
        f"\nsummary: accuracy gap {abs(dense_acc - tt_acc) * 100:.2f}pt, "
        f"memory saving {dense_mb / tt_mb:.1f}x"
    )


if __name__ == "__main__":
    main()
