#!/usr/bin/env python
"""End-to-end "production" walk-through: raw log → model in serving.

Covers the full lifecycle the paper's system sits in:

1. **Preprocess** a raw click log the NVTabular way (§VI-A): build
   frequency-threshold vocabularies per categorical feature, normalize
   dense features.
2. **Profile + reorder**: generate the locality bijection offline
   (§IV-C) from a training sample.
3. **Train** a DLRM with Eff-TT tables on the encoded, reordered
   stream.
4. **Checkpoint** to a single .npz, reload, and verify serving parity.

Run:  python examples/production_pipeline.py
"""

import io

import numpy as np

from repro.data.dataloader import Batch
from repro.data.preprocess import CategoryEncoder, DenseNormalizer
from repro.models import (
    DLRM,
    DLRMConfig,
    EmbeddingBackend,
    load_checkpoint,
    save_checkpoint,
)
from repro.reorder import build_bijection

RAW_VOCAB = 5000       # raw categorical value space (pre-encoding)
NUM_DENSE = 4
NUM_SPARSE = 3
BATCH = 128
STEPS = 40


def synthesize_raw_log(num_batches: int, seed: int = 0):
    """A 'raw' log: unnormalized counts + high-cardinality raw ids."""
    rng = np.random.default_rng(seed)
    for _ in range(num_batches):
        dense = rng.lognormal(0.0, 1.5, size=(BATCH, NUM_DENSE))
        sparse = [
            # heavy-tailed raw ids with many singleton values
            (rng.zipf(1.3, size=BATCH) * 37) % RAW_VOCAB
            for _ in range(NUM_SPARSE)
        ]
        labels = (rng.random(BATCH) < 0.25).astype(np.float64)
        yield dense, sparse, labels


def main() -> None:
    # ------------------------------------------------------------------
    # 1. preprocessing (fit on a sample, NVTabular-style)
    # ------------------------------------------------------------------
    print("== fitting preprocessing ==")
    encoders = [CategoryEncoder(min_frequency=2) for _ in range(NUM_SPARSE)]
    normalizer = DenseNormalizer()
    for dense, sparse, _ in synthesize_raw_log(20, seed=1):
        normalizer.partial_fit(dense)
        for enc, raw in zip(encoders, sparse):
            enc.partial_fit(raw)
    normalizer.finalize()
    for enc in encoders:
        enc.finalize()
    cardinalities = [enc.cardinality for enc in encoders]
    print(f"encoded cardinalities: {cardinalities} (raw space {RAW_VOCAB})")
    sample = next(iter(synthesize_raw_log(1, seed=2)))
    print(f"OOV rate (feature 0): {encoders[0].oov_rate(sample[1][0]):.1%}")

    def encode(dense, sparse, labels, batch_id=0) -> Batch:
        indices = [enc.transform(raw) for enc, raw in zip(encoders, sparse)]
        offsets = [np.arange(BATCH + 1, dtype=np.int64)] * NUM_SPARSE
        return Batch(
            dense=normalizer.transform(dense),
            sparse_indices=indices,
            sparse_offsets=offsets,
            labels=labels,
            batch_id=batch_id,
        )

    # ------------------------------------------------------------------
    # 2. offline index reordering from a profiling sample
    # ------------------------------------------------------------------
    print("\n== building index bijections (offline) ==")
    profiling = [
        encode(*raw) for raw in synthesize_raw_log(10, seed=3)
    ]
    bijections = [
        build_bijection(
            [b.sparse_indices[t] for b in profiling],
            cardinalities[t],
            hot_ratio=0.01,
            seed=0,
        )
        for t in range(NUM_SPARSE)
    ]

    # ------------------------------------------------------------------
    # 3. training with Eff-TT tables
    # ------------------------------------------------------------------
    print("\n== training ==")
    cfg = DLRMConfig(
        num_dense=NUM_DENSE,
        table_rows=tuple(cardinalities),
        embedding_dim=8,
        bottom_mlp=(16,),
        top_mlp=(16,),
        backend=EmbeddingBackend.EFF_TT,
        tt_rank=8,
    )
    model = DLRM(cfg, seed=0)
    raw_stream = list(synthesize_raw_log(STEPS, seed=4))
    for i, raw in enumerate(raw_stream):
        batch = encode(*raw, batch_id=i).remap(bijections)
        result = model.train_step(batch, lr=0.1)
        if (i + 1) % 10 == 0:
            print(f"  step {i + 1:3d}  loss {result.loss:.4f}")

    # ------------------------------------------------------------------
    # 4. checkpoint round trip + serving parity
    # ------------------------------------------------------------------
    print("\n== checkpoint round trip ==")
    buffer = io.BytesIO()
    save_checkpoint(model, buffer)
    print(f"checkpoint size: {len(buffer.getvalue()) / 1e3:.1f} KB")
    buffer.seek(0)
    served = load_checkpoint(buffer)

    eval_batch = encode(*synthesize_raw_log(1, seed=9).__next__()).remap(
        bijections
    )
    p_train = model.predict_proba(eval_batch)
    p_serve = served.predict_proba(eval_batch)
    print(
        "serving parity:",
        "exact" if np.array_equal(p_train, p_serve) else "MISMATCH",
    )


if __name__ == "__main__":
    main()
