"""Base classes for the manual-backward module system."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

import numpy as np

__all__ = ["Parameter", "Module"]


class Parameter:
    """A trainable dense tensor with an accumulated gradient.

    Attributes
    ----------
    data:
        The parameter value (float64 ndarray unless ``dtype`` says
        otherwise).  Updated in place by optimizers so views held by
        modules stay valid.
    grad:
        Accumulated gradient of the same shape and dtype, or ``None``
        when no backward pass has run since the last ``zero_grad``.
    name:
        Optional diagnostic label.
    """

    __slots__ = ("data", "grad", "name")

    def __init__(
        self, data: np.ndarray, name: str = "", dtype: np.dtype = np.float64
    ) -> None:
        self.data = np.asarray(data, dtype=dtype)
        self.grad: Optional[np.ndarray] = None
        self.name = name

    @property
    def shape(self):
        return self.data.shape

    @property
    def size(self) -> int:
        return self.data.size

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into the stored gradient, allocating on first use."""
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match parameter "
                f"shape {self.data.shape} for {self.name or 'parameter'}"
            )
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"


class Module:
    """Base class for layers with manual forward/backward passes.

    Subclasses register parameters via :meth:`register_parameter` and
    child modules via :meth:`register_module`; ``parameters()`` then
    walks the tree.  There is no implicit graph — callers invoke
    ``backward`` in reverse order of ``forward`` themselves (the DLRM
    model class does this for its fixed architecture).
    """

    def __init__(self) -> None:
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    # -- registration ------------------------------------------------
    def register_parameter(self, name: str, param: Parameter) -> Parameter:
        if not param.name:
            param.name = f"{type(self).__name__}.{name}"
        self._parameters[name] = param
        return param

    def register_module(self, name: str, module: "Module") -> "Module":
        self._modules[name] = module
        return module

    # -- traversal ---------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters of this module and its children."""
        yield from self._parameters.values()
        for child in self._modules.values():
            yield from child.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def children(self) -> List["Module"]:
        return list(self._modules.values())

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total scalar parameter count (dense parameters only)."""
        return sum(p.size for p in self.parameters())

    # -- mode switches -----------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- interface ---------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def backward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
