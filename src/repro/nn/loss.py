"""Binary cross-entropy loss for click-through-rate prediction."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.module import Module

__all__ = ["BCEWithLogitsLoss"]


class BCEWithLogitsLoss(Module):
    """Numerically stable sigmoid + binary cross-entropy.

    Combines the final sigmoid with the loss the way
    ``torch.nn.BCEWithLogitsLoss`` does:

    ``loss = mean( max(z, 0) - z * y + log(1 + exp(-|z|)) )``

    which never overflows.  ``forward`` returns the scalar loss;
    ``backward`` returns the gradient w.r.t. the logits, already
    divided by the batch size (mean reduction).
    """

    def __init__(self) -> None:
        super().__init__()
        self._cached: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        logits = np.asarray(logits, dtype=np.float64).reshape(-1)
        targets = np.asarray(targets, dtype=np.float64).reshape(-1)
        if logits.shape != targets.shape:
            raise ValueError(
                f"logits shape {logits.shape} != targets shape {targets.shape}"
            )
        if logits.size == 0:
            raise ValueError("empty batch")
        if targets.size and (targets.min() < 0 or targets.max() > 1):
            raise ValueError("targets must lie in [0, 1]")
        self._cached = (logits, targets)
        loss = (
            np.maximum(logits, 0.0)
            - logits * targets
            + np.log1p(np.exp(-np.abs(logits)))
        )
        return float(loss.mean())

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss w.r.t. the logits: ``(sigmoid(z) - y)/B``."""
        if self._cached is None:
            raise RuntimeError("backward called before forward")
        logits, targets = self._cached
        probs = _stable_sigmoid(logits)
        grad = (probs - targets) / logits.size
        self._cached = None
        return grad

    @staticmethod
    def predict_proba(logits: np.ndarray) -> np.ndarray:
        """Convenience: convert logits to click probabilities."""
        return _stable_sigmoid(np.asarray(logits, dtype=np.float64).reshape(-1))


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out
