"""DLRM dot-product feature-interaction layer (paper §II-A, Figure 2).

The interaction layer takes the bottom-MLP output plus one pooled
embedding per sparse feature (all with the same dimension ``d``),
computes dot products of all feature pairs, and concatenates the
strictly-lower-triangular results with the original dense feature.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.backend import ZONE_INTERACTION, get_backend, get_plan_cache
from repro.nn.module import Module

__all__ = ["DotInteraction"]


class DotInteraction(Module):
    """Pairwise dot-product interaction with self-interaction excluded.

    Given dense feature ``x`` of shape ``(B, d)`` and ``k`` embeddings
    each of shape ``(B, d)``, stacks them into ``T`` of shape
    ``(B, k+1, d)``, forms ``Z = T @ T^T`` and emits
    ``concat([x, Z[lower_triangle]])`` with output width
    ``d + (k+1) * k / 2``.
    """

    def __init__(self) -> None:
        super().__init__()
        self._cached: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    @staticmethod
    def output_dim(dense_dim: int, num_embeddings: int) -> int:
        """Width of the interaction output for given inputs."""
        num_features = num_embeddings + 1
        return dense_dim + (num_features * (num_features - 1)) // 2

    def forward(
        self, dense: np.ndarray, embeddings: Sequence[np.ndarray]
    ) -> np.ndarray:
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError(f"dense must be 2-D, got shape {dense.shape}")
        batch, dim = dense.shape
        for i, emb in enumerate(embeddings):
            if emb.shape != (batch, dim):
                raise ValueError(
                    f"embedding {i} has shape {emb.shape}, expected {(batch, dim)}"
                )
        bk = get_backend()
        stacked = np.stack([dense, *embeddings], axis=1)  # (B, F, d)
        num_features = stacked.shape[1]
        with bk.zone(ZONE_INTERACTION):
            plan = get_plan_cache().einsum_plan("bfd,bgd->bfg", stacked, stacked)
            z = bk.einsum("bfd,bgd->bfg", stacked, stacked, plan=plan)
        rows, cols = np.tril_indices(num_features, k=-1)
        interactions = z[:, rows, cols]  # (B, F*(F-1)/2)
        self._cached = (stacked, rows, cols)
        return np.concatenate([dense, interactions], axis=1)

    def backward(self, grad_output: np.ndarray) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Return ``(grad_dense, [grad_emb_1, ..., grad_emb_k])``."""
        if self._cached is None:
            raise RuntimeError("backward called before forward")
        stacked, rows, cols = self._cached
        batch, num_features, dim = stacked.shape
        grad_output = np.asarray(grad_output, dtype=np.float64)
        expected = dim + rows.size
        if grad_output.shape != (batch, expected):
            raise ValueError(
                f"expected grad_output of shape {(batch, expected)}, "
                f"got {grad_output.shape}"
            )
        bk = get_backend()
        grad_dense_direct = grad_output[:, :dim]
        grad_inter = grad_output[:, dim:]
        with bk.zone(ZONE_INTERACTION):
            grad_z = bk.zeros(
                (batch, num_features, num_features), dtype=grad_output.dtype
            )
            grad_z[:, rows, cols] = grad_inter
            # Z is symmetric in its two T factors: dT = (dZ + dZ^T) @ T.
            sym = grad_z + grad_z.transpose(0, 2, 1)
            plan = get_plan_cache().einsum_plan("bfg,bgd->bfd", sym, stacked)
            grad_stacked = bk.einsum("bfg,bgd->bfd", sym, stacked, plan=plan)
        grad_dense = grad_stacked[:, 0, :] + grad_dense_direct
        grad_embeddings = [grad_stacked[:, i, :] for i in range(1, num_features)]
        self._cached = None
        return grad_dense, grad_embeddings
