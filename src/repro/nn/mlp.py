"""Multi-layer perceptron stack (DLRM bottom and top MLPs)."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.nn.activations import ReLU, Sigmoid
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.utils.rng import RngLike, spawn_rngs

__all__ = ["MLP"]


class MLP(Module):
    """A stack of ``Linear`` layers with ReLU between them.

    Mirrors the reference DLRM construction: every hidden layer is
    followed by ReLU; the output layer is followed by Sigmoid if
    ``sigmoid_output=True`` (DLRM's top MLP ends in a sigmoid when the
    loss is plain BCE — with :class:`BCEWithLogitsLoss` leave it off).

    Parameters
    ----------
    layer_sizes:
        Widths including input and output, e.g. ``[13, 512, 256, 64]``
        builds three linear layers.
    sigmoid_output:
        Append a sigmoid after the last linear layer.
    seed:
        RNG (split across layers) for initialization.
    dtype:
        Floating dtype shared by all layers (default ``np.float64``).
    """

    def __init__(
        self,
        layer_sizes: Sequence[int],
        sigmoid_output: bool = False,
        seed: RngLike = 0,
        dtype: np.dtype = np.float64,
    ) -> None:
        super().__init__()
        sizes = list(layer_sizes)
        if len(sizes) < 2:
            raise ValueError(
                f"layer_sizes needs at least input and output widths, got {sizes}"
            )
        self.layer_sizes = sizes
        self.dtype = np.dtype(dtype)
        rngs = spawn_rngs(seed, len(sizes) - 1)
        self._stack: List[Module] = []
        for i, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            layer = Linear(fan_in, fan_out, seed=rngs[i], dtype=self.dtype)
            self.register_module(f"linear{i}", layer)
            self._stack.append(layer)
            is_last = i == len(sizes) - 2
            if not is_last:
                act: Module = ReLU()
            elif sigmoid_output:
                act = Sigmoid()
            else:
                continue
            self.register_module(f"act{i}", act)
            self._stack.append(act)

    @property
    def in_features(self) -> int:
        return self.layer_sizes[0]

    @property
    def out_features(self) -> int:
        return self.layer_sizes[-1]

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        out = np.asarray(inputs, dtype=self.dtype)
        for layer in self._stack:
            out = layer.forward(out)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = np.asarray(grad_output, dtype=self.dtype)
        for layer in reversed(self._stack):
            grad = layer.backward(grad)
        return grad
