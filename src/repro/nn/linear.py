"""Dense linear (fully connected) layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backend import ZONE_MLP, get_backend
from repro.nn.module import Module, Parameter
from repro.utils.rng import RngLike, ensure_rng

__all__ = ["Linear"]


class Linear(Module):
    """Affine transform ``y = x @ W^T + b``.

    Weights use the same Kaiming-uniform fan-in initialization as
    ``torch.nn.Linear`` so MLP behaviour matches the reference DLRM
    implementation's defaults.

    Parameters
    ----------
    in_features, out_features:
        Input/output widths.
    bias:
        Include the additive bias term (DLRM always does).
    seed:
        RNG for initialization.
    dtype:
        Parameter / activation floating dtype (default ``np.float64``).
        Forward and backward coerce to this dtype, so a float32 layer
        never silently upcasts.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        seed: RngLike = 0,
        dtype: np.dtype = np.float64,
    ) -> None:
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ValueError(
                f"in_features and out_features must be >= 1, got "
                f"({in_features}, {out_features})"
            )
        self.in_features = in_features
        self.out_features = out_features
        self.dtype = np.dtype(dtype)
        rng = ensure_rng(seed)
        bound = 1.0 / np.sqrt(in_features)
        self.weight = self.register_parameter(
            "weight",
            Parameter(
                rng.uniform(-bound, bound, size=(out_features, in_features)),
                dtype=self.dtype,
            ),
        )
        self.bias: Optional[Parameter] = None
        if bias:
            self.bias = self.register_parameter(
                "bias",
                Parameter(
                    rng.uniform(-bound, bound, size=(out_features,)),
                    dtype=self.dtype,
                ),
            )
        self._cached_input: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Compute ``inputs @ W^T + b`` for a ``(batch, in_features)`` array."""
        bk = get_backend()
        inputs = bk.asarray(inputs, dtype=self.dtype)
        if inputs.ndim != 2 or inputs.shape[1] != self.in_features:
            raise ValueError(
                f"expected input of shape (batch, {self.in_features}), "
                f"got {inputs.shape}"
            )
        self._cached_input = inputs
        with bk.zone(ZONE_MLP):
            out = bk.matmul(inputs, self.weight.data.T)
            if self.bias is not None:
                out += self.bias.data
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Accumulate parameter grads; return gradient w.r.t. the input."""
        if self._cached_input is None:
            raise RuntimeError("backward called before forward")
        bk = get_backend()
        grad_output = bk.asarray(grad_output, dtype=self.dtype)
        inputs = self._cached_input
        if grad_output.shape != (inputs.shape[0], self.out_features):
            raise ValueError(
                f"expected grad_output of shape "
                f"({inputs.shape[0]}, {self.out_features}), got {grad_output.shape}"
            )
        with bk.zone(ZONE_MLP):
            self.weight.accumulate_grad(bk.matmul(grad_output.T, inputs))
            if self.bias is not None:
                self.bias.accumulate_grad(grad_output.sum(axis=0))
            grad_input = bk.matmul(grad_output, self.weight.data)
        self._cached_input = None
        return grad_input
