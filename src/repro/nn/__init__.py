"""Minimal manual-backward neural-network substrate.

The paper builds on PyTorch; this reproduction re-implements the small
slice of it that DLRM needs — dense linear layers, ReLU/Sigmoid, the
dot-product feature-interaction layer, binary cross-entropy, and
SGD/Adagrad optimizers with sparse row-wise variants — as NumPy modules
with hand-written backward passes.

Every module follows the same contract:

* ``forward(inputs) -> outputs`` caches whatever the backward pass
  needs;
* ``backward(grad_outputs) -> grad_inputs`` accumulates parameter
  gradients into ``Parameter.grad`` and returns the gradient w.r.t.
  the forward inputs;
* ``parameters()`` yields :class:`Parameter` objects for optimizers.

Gradients are validated against central finite differences in the test
suite.
"""

from repro.nn.module import Module, Parameter
from repro.nn.linear import Linear
from repro.nn.activations import ReLU, Sigmoid
from repro.nn.mlp import MLP
from repro.nn.interaction import DotInteraction
from repro.nn.loss import BCEWithLogitsLoss
from repro.nn.optim import SGD, Adagrad, Optimizer, SparseSGD

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "ReLU",
    "Sigmoid",
    "MLP",
    "DotInteraction",
    "BCEWithLogitsLoss",
    "Optimizer",
    "SGD",
    "SparseSGD",
    "Adagrad",
]
