"""Optimizers: dense SGD/Adagrad plus sparse row-wise variants.

DLRM training conventionally uses SGD for the MLPs and sparse
(row-wise) updates for embedding tables — only the rows touched by a
batch are updated.  The Eff-TT table performs its own *fused* update
(paper §III-B) and therefore bypasses these classes; they are used by
the dense baselines and the MLP stacks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.backend import ZONE_OPTIMIZER, get_backend
from repro.nn.module import Parameter

__all__ = ["Optimizer", "SGD", "SparseSGD", "Adagrad"]


class Optimizer:
    """Base optimizer over a fixed list of :class:`Parameter` objects."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        self.parameters: List[Parameter] = list(parameters)
        self.lr = lr

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and L2 decay.

    ``weight_decay`` adds ``wd * param`` to the gradient before the
    momentum/velocity update (the coupled-L2 convention of
    ``torch.optim.SGD``).
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        bk = get_backend()
        with bk.zone(ZONE_OPTIMIZER):
            for param in self.parameters:
                if param.grad is None:
                    continue
                update = param.grad
                if self.weight_decay > 0.0:
                    update = update + self.weight_decay * param.data
                if self.momentum > 0.0:
                    vel = self._velocity.get(id(param))
                    if vel is None:
                        vel = bk.zeros(param.data.shape, dtype=param.data.dtype)
                        self._velocity[id(param)] = vel
                    vel *= self.momentum
                    vel += update
                    update = vel
                bk.axpy(param.data, update, -self.lr)


class SparseSGD:
    """Row-wise SGD update for embedding-style parameters.

    Instead of reading ``Parameter.grad`` (which would be a dense array
    the size of the table), callers pass the touched row ids and the
    per-row gradients directly — mirroring how sparse embedding
    gradients flow in the reference DLRM.

    Duplicate row ids are handled with scatter-add semantics
    (``np.add.at``), matching the accumulate behaviour of
    ``torch.nn.EmbeddingBag`` sparse gradients.
    """

    def __init__(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        self.lr = lr

    def step_rows(
        self,
        table: np.ndarray,
        rows: np.ndarray,
        row_grads: np.ndarray,
        zone: str = ZONE_OPTIMIZER,
    ) -> None:
        """Apply ``table[rows] -= lr * row_grads`` with duplicate handling.

        ``zone`` re-tags the kernel zone (the parameter server passes
        its own apply zone).
        """
        bk = get_backend()
        rows = np.asarray(rows)
        # Gradients land at the table's own dtype — a float32 table is
        # updated in float32, never silently widened.
        row_grads = bk.asarray(row_grads, dtype=table.dtype)
        if rows.ndim != 1:
            raise ValueError(f"rows must be 1-D, got shape {rows.shape}")
        if row_grads.shape != (rows.size, table.shape[1]):
            raise ValueError(
                f"row_grads shape {row_grads.shape} does not match "
                f"({rows.size}, {table.shape[1]})"
            )
        with bk.zone(zone):
            bk.scatter_add_rows(table, rows, row_grads, scale=-self.lr)


class Adagrad(Optimizer):
    """Adagrad with per-element accumulators.

    The reference DLRM offers Adagrad for embedding tables; we provide
    it for parity experiments (Table IV sensitivity runs).
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float,
        eps: float = 1e-10,
    ) -> None:
        super().__init__(parameters, lr)
        if eps <= 0:
            raise ValueError(f"eps must be > 0, got {eps}")
        self.eps = eps
        self._accumulators: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        bk = get_backend()
        with bk.zone(ZONE_OPTIMIZER):
            for param in self.parameters:
                if param.grad is None:
                    continue
                acc = self._accumulators.get(id(param))
                if acc is None:
                    acc = bk.zeros(param.data.shape, dtype=param.data.dtype)
                    self._accumulators[id(param)] = acc
                acc += param.grad * param.grad
                param.data -= self.lr * param.grad / (np.sqrt(acc) + self.eps)
