"""Elementwise activation layers used by DLRM MLP stacks."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backend import ZONE_MLP, get_backend
from repro.nn.module import Module

__all__ = ["ReLU", "Sigmoid"]


def _as_float(a: np.ndarray) -> np.ndarray:
    """Coerce to a floating array, *preserving* an existing float dtype.

    Activations are dtype-transparent: a float32 MLP stays float32
    through them; integer/bool inputs still promote to float64.
    """
    a = np.asarray(a)
    if not np.issubdtype(a.dtype, np.floating):
        a = a.astype(np.float64)
    return a


class ReLU(Module):
    """Rectified linear unit, ``max(x, 0)``."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = _as_float(inputs)
        bk = get_backend()
        self._mask = inputs > 0
        with bk.zone(ZONE_MLP):
            return bk.where(self._mask, inputs, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        bk = get_backend()
        with bk.zone(ZONE_MLP):
            grad = bk.where(self._mask, _as_float(grad_output), 0.0)
        self._mask = None
        return grad


class Sigmoid(Module):
    """Logistic sigmoid, ``1 / (1 + exp(-x))``.

    The forward output is cached so the backward pass reuses
    ``s * (1 - s)`` without recomputing the exponential.
    """

    def __init__(self) -> None:
        super().__init__()
        self._output: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = _as_float(inputs)
        bk = get_backend()
        with bk.zone(ZONE_MLP):
            # Numerically stable piecewise evaluation avoids overflow for
            # large negative inputs.
            out = bk.empty(inputs.shape, dtype=inputs.dtype)
            positive = inputs >= 0
            out[positive] = 1.0 / (1.0 + bk.exp(-inputs[positive]))
            exp_x = bk.exp(inputs[~positive])
            out[~positive] = exp_x / (1.0 + exp_x)
        self._output = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        s = self._output
        grad = _as_float(grad_output) * s * (1.0 - s)
        self._output = None
        return grad
