"""Elementwise activation layers used by DLRM MLP stacks."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module

__all__ = ["ReLU", "Sigmoid"]


class ReLU(Module):
    """Rectified linear unit, ``max(x, 0)``."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        self._mask = inputs > 0
        return np.where(self._mask, inputs, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        grad = np.where(self._mask, np.asarray(grad_output, dtype=np.float64), 0.0)
        self._mask = None
        return grad


class Sigmoid(Module):
    """Logistic sigmoid, ``1 / (1 + exp(-x))``.

    The forward output is cached so the backward pass reuses
    ``s * (1 - s)`` without recomputing the exponential.
    """

    def __init__(self) -> None:
        super().__init__()
        self._output: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        # Numerically stable piecewise evaluation avoids overflow for
        # large negative inputs.
        out = np.empty_like(inputs)
        positive = inputs >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-inputs[positive]))
        exp_x = np.exp(inputs[~positive])
        out[~positive] = exp_x / (1.0 + exp_x)
        self._output = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        s = self._output
        grad = np.asarray(grad_output, dtype=np.float64) * s * (1.0 - s)
        self._output = None
        return grad
