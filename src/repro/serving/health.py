"""Health probing for the replicated serving fleet.

The :class:`HealthMonitor` is the fleet's observability plane: on
every probe tick (driven by the deterministic Simulator, never wall
clock) it snapshots each replica's state — executor lifecycle, breaker
state, in-flight depth, EWMA completion latency — into an append-only
:class:`ReplicaHealth` history, and runs the *stuck watchdog*: a
replica whose oldest in-flight batch has aged past ``stuck_timeout``
is declared dead so the router can redirect its work.  The watchdog is
what turns a silent fault (a replica that accepts batches but never
completes them) into an explicit crash the fleet already knows how to
survive.

Health rows feed two consumers: the :class:`~repro.serving.router.
FleetRouter` ranks replicas by the same load signals the monitor
records, and the autoscaler reads the recent completion latencies to
measure SLO headroom.  Everything here is passive bookkeeping — the
fleet event loop supplies every timestamp — so two runs of the same
scenario produce byte-identical health histories.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.resilience.circuit import BreakerState
from repro.utils.validation import check_positive

__all__ = [
    "HealthStatus",
    "ProbeConfig",
    "ReplicaHealth",
    "HealthMonitor",
]


class HealthStatus(str, enum.Enum):
    """Coarse per-replica verdict derived from one probe observation."""

    HEALTHY = "healthy"       #: live, breaker closed, latency nominal
    DEGRADED = "degraded"     #: live but breaker half-open or latency high
    UNHEALTHY = "unhealthy"   #: live but breaker open (no primary traffic)
    DEAD = "dead"             #: crashed, stuck-declared, or retired


@dataclass(frozen=True)
class ProbeConfig:
    """Health-probe cadence and watchdog thresholds (seconds)."""

    #: Interval between probe ticks on the simulated clock.
    interval: float = 2e-3
    #: Oldest-in-flight age beyond which a replica is declared stuck
    #: and treated as crashed (its batches are redirected).
    stuck_timeout: float = 0.05
    #: EWMA smoothing factor for per-replica completion latency.
    ewma_alpha: float = 0.3
    #: EWMA latency above which a live replica reports DEGRADED.
    degraded_latency: float = 0.02

    def __post_init__(self) -> None:
        check_positive(self.interval, "interval")
        check_positive(self.stuck_timeout, "stuck_timeout")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        check_positive(self.degraded_latency, "degraded_latency")


@dataclass(frozen=True)
class ReplicaHealth:
    """One probe-tick observation of one replica."""

    time: float
    replica_id: int
    status: HealthStatus
    breaker_state: BreakerState
    in_flight: int
    ewma_latency: float
    completed_batches: int


class HealthMonitor:
    """Append-only health historian plus stuck watchdog.

    The fleet event loop calls :meth:`record_completion` on every batch
    completion and :meth:`observe` on every probe tick; the monitor
    never schedules events itself.
    """

    def __init__(self, config: ProbeConfig | None = None) -> None:
        self.config = config or ProbeConfig()
        self.history: List[ReplicaHealth] = []
        self._ewma: Dict[int, float] = {}
        self._completed: Dict[int, int] = {}

    # -- completion feed -----------------------------------------------
    def record_completion(self, replica_id: int, latency: float) -> None:
        """Fold one batch's worst request latency into the EWMA."""
        alpha = self.config.ewma_alpha
        previous = self._ewma.get(replica_id)
        if previous is None:
            self._ewma[replica_id] = latency
        else:
            self._ewma[replica_id] = (
                alpha * latency + (1.0 - alpha) * previous
            )
        self._completed[replica_id] = self._completed.get(replica_id, 0) + 1

    def ewma_latency(self, replica_id: int) -> float:
        return self._ewma.get(replica_id, 0.0)

    # -- probe tick ----------------------------------------------------
    def classify(
        self,
        alive: bool,
        breaker_state: BreakerState,
        ewma_latency: float,
    ) -> HealthStatus:
        """The status verdict for one observation (pure function)."""
        if not alive:
            return HealthStatus.DEAD
        if breaker_state is BreakerState.OPEN:
            return HealthStatus.UNHEALTHY
        if (
            breaker_state is BreakerState.HALF_OPEN
            or ewma_latency > self.config.degraded_latency
        ):
            return HealthStatus.DEGRADED
        return HealthStatus.HEALTHY

    def observe(
        self,
        now: float,
        replica_id: int,
        alive: bool,
        breaker_state: BreakerState,
        in_flight: int,
    ) -> ReplicaHealth:
        """Record and return one probe observation."""
        ewma = self._ewma.get(replica_id, 0.0)
        row = ReplicaHealth(
            time=now,
            replica_id=replica_id,
            status=self.classify(alive, breaker_state, ewma),
            breaker_state=breaker_state,
            in_flight=in_flight,
            ewma_latency=ewma,
            completed_batches=self._completed.get(replica_id, 0),
        )
        self.history.append(row)
        return row

    def is_stuck(self, oldest_start: float, now: float) -> bool:
        """Watchdog: has an in-flight batch aged past the timeout?"""
        return now - oldest_start > self.config.stuck_timeout

    # -- reporting ------------------------------------------------------
    def status_counts(self) -> Tuple[Tuple[str, int], ...]:
        """(status, observations) pairs over the whole history, sorted."""
        counts: Dict[str, int] = {}
        for row in self.history:
            counts[row.status.value] = counts.get(row.status.value, 0) + 1
        return tuple(sorted(counts.items()))
