"""SLO accounting for the serving loop.

Collects the per-request and per-batch records the serving event loop
emits and condenses them into an :class:`SLOReport` — the p50/p95/p99
latency, throughput, rejection, and cache-effectiveness summary an
operator would alert on.  Percentiles come from the shared
:mod:`repro.utils.timer` implementation so serving reports and kernel
benches can never disagree on definition.

Also exports the served-batch timeline in the same Chrome Trace Event
JSON that :mod:`repro.system.trace_export` writes for the training
pipeline, so a serving run and a training run can be inspected with
the same ``chrome://tracing`` / Perfetto workflow.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataloader import Batch
from repro.utils.timer import LatencyHistogram, percentiles

__all__ = [
    "RequestResult",
    "ServedBatch",
    "SLOReport",
    "ServingMetrics",
    "serving_trace_events",
    "export_serving_trace",
]


@dataclass(frozen=True)
class RequestResult:
    """Outcome of one completed request."""

    request_id: int
    arrival_time: float
    finish_time: float
    model_version: int
    prediction: float

    @property
    def latency(self) -> float:
        return self.finish_time - self.arrival_time


@dataclass(frozen=True)
class ServedBatch:
    """One micro-batch's service record (replayable).

    Holds the exact coalesced :class:`Batch` that went through the
    model, so offline verification can re-run the identical input and
    compare predictions bit for bit.
    """

    batch_id: int
    request_ids: Tuple[int, ...]
    batch: Batch
    model_version: int
    worker_id: int
    start_time: float
    finish_time: float
    predictions: np.ndarray
    hot_lookups: int
    cold_lookups: int

    @property
    def size(self) -> int:
        return len(self.request_ids)

    @property
    def service_time(self) -> float:
        return self.finish_time - self.start_time


@dataclass(frozen=True)
class SLOReport:
    """Operator-facing summary of one serving run.

    All latencies are seconds of *simulated* time (arrival to
    completion, queueing included).
    """

    offered: int
    completed: int
    rejected: int
    duration: float
    throughput_rps: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    latency_mean: float
    latency_max: float
    num_batches: int
    mean_batch_size: float
    max_queue_depth: int
    cache_hit_rate: float
    num_hot_rows: int
    num_swaps: int
    requests_per_version: Dict[int, int] = field(default_factory=dict)

    def meets(self, p99_target: float) -> bool:
        """Whether the run's p99 latency met a target (seconds)."""
        if p99_target <= 0:
            raise ValueError(f"p99_target must be > 0, got {p99_target}")
        return self.latency_p99 <= p99_target

    @property
    def rejection_rate(self) -> float:
        return self.rejected / self.offered if self.offered else 0.0

    def to_dict(self) -> Dict[str, float]:
        out = {
            "offered": self.offered,
            "completed": self.completed,
            "rejected": self.rejected,
            "duration_s": self.duration,
            "throughput_rps": self.throughput_rps,
            "latency_p50_ms": self.latency_p50 * 1e3,
            "latency_p95_ms": self.latency_p95 * 1e3,
            "latency_p99_ms": self.latency_p99 * 1e3,
            "latency_mean_ms": self.latency_mean * 1e3,
            "latency_max_ms": self.latency_max * 1e3,
            "num_batches": self.num_batches,
            "mean_batch_size": self.mean_batch_size,
            "max_queue_depth": self.max_queue_depth,
            "cache_hit_rate": self.cache_hit_rate,
            "num_hot_rows": self.num_hot_rows,
            "num_swaps": self.num_swaps,
        }
        return out

    def format(self) -> str:
        """Two-column text table of every report field."""
        from repro.bench.harness import format_table

        rows = []
        for key, value in self.to_dict().items():
            if isinstance(value, float):
                rows.append([key, f"{value:.4g}"])
            else:
                rows.append([key, str(value)])
        for version, count in sorted(self.requests_per_version.items()):
            rows.append([f"requests @ model v{version}", str(count)])
        return format_table(
            ["metric", "value"], rows, title="Serving SLO report"
        )


class ServingMetrics:
    """Accumulator the serving event loop feeds record by record."""

    def __init__(self) -> None:
        self.latencies = LatencyHistogram()
        self.results: List[RequestResult] = []
        self.served_batches: List[ServedBatch] = []
        self.swap_times: List[float] = []
        self.rejected = 0

    def record_batch(self, served: ServedBatch) -> None:
        self.served_batches.append(served)

    def record_result(self, result: RequestResult) -> None:
        self.results.append(result)
        self.latencies.record(result.latency)

    def record_rejection(self) -> None:
        self.rejected += 1

    def record_swap(self, time: float) -> None:
        self.swap_times.append(time)

    # ------------------------------------------------------------------
    def build_report(
        self,
        duration: float,
        max_queue_depth: int,
        cache_hit_rate: float,
        num_hot_rows: int,
    ) -> SLOReport:
        summary = self.latencies.summary()
        completed = len(self.results)
        sizes = [b.size for b in self.served_batches]
        per_version: Dict[int, int] = {}
        for result in self.results:
            per_version[result.model_version] = (
                per_version.get(result.model_version, 0) + 1
            )
        return SLOReport(
            offered=completed + self.rejected,
            completed=completed,
            rejected=self.rejected,
            duration=duration,
            throughput_rps=completed / duration if duration > 0 else 0.0,
            latency_p50=summary["p50"],
            latency_p95=summary["p95"],
            latency_p99=summary["p99"],
            latency_mean=summary["mean"],
            latency_max=summary["max"],
            num_batches=len(self.served_batches),
            mean_batch_size=float(np.mean(sizes)) if sizes else 0.0,
            max_queue_depth=max_queue_depth,
            cache_hit_rate=cache_hit_rate,
            num_hot_rows=num_hot_rows,
            num_swaps=len(self.swap_times),
            requests_per_version=per_version,
        )


def serving_trace_events(
    served_batches: Sequence[ServedBatch],
    swap_times: Sequence[float] = (),
) -> List[Dict]:
    """Chrome Trace Event list for a serving run.

    One ``"X"`` (complete) event per served batch on its worker's
    timeline row, one global instant event per hot swap, plus
    thread-name metadata — the same conventions as
    :func:`repro.system.trace_export.pipeline_trace_events`.
    """
    events: List[Dict] = []
    workers = set()
    for served in served_batches:
        workers.add(served.worker_id)
        events.append(
            {
                "name": f"batch {served.batch_id} (n={served.size})",
                "cat": "serve",
                "ph": "X",
                "ts": served.start_time * 1e6,
                "dur": served.service_time * 1e6,
                "pid": 0,
                "tid": served.worker_id + 1,
                "args": {
                    "batch": served.batch_id,
                    "size": served.size,
                    "model_version": served.model_version,
                    "hot_lookups": served.hot_lookups,
                    "cold_lookups": served.cold_lookups,
                },
            }
        )
    for t in swap_times:
        events.append(
            {
                "name": "hot swap",
                "cat": "swap",
                "ph": "i",
                "ts": t * 1e6,
                "pid": 0,
                "tid": 0,
                "s": "g",
            }
        )
    for worker_id in sorted(workers):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": worker_id + 1,
                "args": {"name": f"WORKER {worker_id}"},
            }
        )
    return events


def export_serving_trace(
    path: str,
    served_batches: Sequence[ServedBatch],
    swap_times: Sequence[float] = (),
) -> int:
    """Write a serving run's Chrome trace JSON; returns event count."""
    events = serving_trace_events(served_batches, swap_times)
    with open(path, "w") as handle:
        json.dump({"traceEvents": events}, handle)
    return len(events)
