"""Dynamic micro-batching with admission control (serving front door.)

GPU inference amortizes fixed per-launch cost over batch size, but a
request that waits too long for peers blows its latency budget — the
classic micro-batching trade-off.  :class:`MicroBatcher` implements
the standard policy pair:

* **size trigger** — dispatch as soon as ``max_batch_size`` requests
  are pending;
* **time trigger** — dispatch a partial batch once the *oldest*
  pending request has waited ``max_wait`` seconds.

Pending requests live in a :class:`~repro.system.queues.BoundedQueue`;
a full queue means the workers are saturated past the batcher's buffer
and new arrivals are **rejected** (admission control — shedding load
early is how serving systems keep p99 bounded instead of letting the
queue grow without limit).  Like the training pipeline, the batcher is
a passive deterministic data structure: the serving event loop drives
it with explicit timestamps, so runs are bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.serving.requests import InferenceRequest
from repro.system.queues import BoundedQueue
from repro.utils.validation import check_positive

__all__ = ["BatchingPolicy", "MicroBatch", "MicroBatcher"]


@dataclass(frozen=True)
class BatchingPolicy:
    """Coalescing policy knobs.

    Attributes
    ----------
    max_batch_size:
        Dispatch when this many requests are pending (1 disables
        coalescing — every request is its own batch).
    max_wait:
        Dispatch a partial batch once the oldest pending request has
        waited this long, in seconds (0 = never hold a request back).
    queue_capacity:
        Pending-queue bound; arrivals beyond it are rejected.
    """

    max_batch_size: int = 32
    max_wait: float = 2e-3
    queue_capacity: int = 512

    def __post_init__(self) -> None:
        check_positive(self.max_batch_size, "max_batch_size")
        check_positive(self.queue_capacity, "queue_capacity")
        if self.max_wait < 0:
            raise ValueError(
                f"max_wait must be >= 0, got {self.max_wait}"
            )
        if self.queue_capacity < self.max_batch_size:
            raise ValueError(
                "queue_capacity must be >= max_batch_size "
                f"({self.queue_capacity} < {self.max_batch_size})"
            )


@dataclass(frozen=True)
class MicroBatch:
    """One coalesced dispatch unit."""

    requests: Tuple[InferenceRequest, ...]
    formed_time: float

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def oldest_arrival(self) -> float:
        return self.requests[0].arrival_time


class MicroBatcher:
    """Deterministic request coalescer over a bounded pending queue."""

    def __init__(self, policy: BatchingPolicy) -> None:
        self.policy = policy
        self._pending: BoundedQueue[InferenceRequest] = BoundedQueue(
            policy.queue_capacity
        )
        self.admitted = 0
        self.rejected = 0
        self.batches_formed = 0
        self.max_depth = 0

    # -- intake --------------------------------------------------------
    def offer(self, request: InferenceRequest, now: float) -> bool:
        """Admit a request, or reject it when the queue is full."""
        if request.arrival_time > now + 1e-12:
            raise ValueError(
                f"request {request.request_id} offered before its arrival "
                f"({request.arrival_time} > {now})"
            )
        if self._pending.full():
            self.rejected += 1
            return False
        self._pending.put(request)
        self.admitted += 1
        self.max_depth = max(self.max_depth, len(self._pending))
        return True

    # -- inspection ----------------------------------------------------
    @property
    def depth(self) -> int:
        return len(self._pending)

    def empty(self) -> bool:
        return self._pending.empty()

    def oldest_deadline(self) -> Optional[float]:
        """Absolute time at which the oldest pending request expires."""
        if self._pending.empty():
            return None
        return self._pending.peek().arrival_time + self.policy.max_wait

    def ready(self, now: float) -> bool:
        """Whether a batch should dispatch at time ``now``."""
        if self._pending.empty():
            return False
        if len(self._pending) >= self.policy.max_batch_size:
            return True
        deadline = self.oldest_deadline()
        assert deadline is not None  # queue is non-empty here
        return now + 1e-12 >= deadline

    # -- dispatch ------------------------------------------------------
    def pop_batch(self, now: float) -> Optional[MicroBatch]:
        """Pop up to ``max_batch_size`` requests if the policy fires."""
        if not self.ready(now):
            return None
        return self._pop(now)

    def force_pop(self, now: float) -> Optional[MicroBatch]:
        """Pop pending requests regardless of policy (stream drain)."""
        if self._pending.empty():
            return None
        return self._pop(now)

    def _pop(self, now: float) -> MicroBatch:
        take = min(len(self._pending), self.policy.max_batch_size)
        requests = tuple(self._pending.get() for _ in range(take))
        self.batches_formed += 1
        return MicroBatch(requests=requests, formed_time=now)
