"""Deterministic online-traffic generator for the serving subsystem.

Production recommendation traffic has two defining statistics the
paper leans on: *arrival* times follow a Poisson process (independent
users) and *content* follows the power-law access skew of Figure 4a.
:class:`RequestGenerator` reproduces both deterministically — the same
seed always yields the same timestamped request stream — so serving
experiments are bit-reproducible end to end, like the training
pipeline.

Each :class:`InferenceRequest` is one user's scoring call: a dense
feature vector plus one multi-hot index bag per sparse feature, i.e.
exactly one row of a training :class:`~repro.data.dataloader.Batch`
minus the label.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataloader import Batch
from repro.data.datasets import DatasetSpec
from repro.data.synthetic import ZipfSampler
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive

__all__ = [
    "InferenceRequest",
    "RequestGenerator",
    "coalesce_requests",
    "hot_rows_from_trace",
]


@dataclass(frozen=True)
class InferenceRequest:
    """One timestamped scoring request.

    Attributes
    ----------
    request_id:
        Position in the arrival stream (unique, increasing).
    arrival_time:
        Simulated arrival timestamp in seconds.
    dense:
        ``(num_dense,)`` numerical features.
    sparse_indices:
        One index bag per sparse feature (each a small 1-D array).
    """

    request_id: int
    arrival_time: float
    dense: np.ndarray
    sparse_indices: Tuple[np.ndarray, ...]

    @property
    def num_tables(self) -> int:
        return len(self.sparse_indices)


def coalesce_requests(requests: Sequence[InferenceRequest]) -> Batch:
    """Concatenate requests into one inference :class:`Batch`.

    Requests keep their order (FIFO within a micro-batch); labels are
    zeros since serving has none.  All requests must agree on table
    count — they come from one generator.
    """
    if not requests:
        raise ValueError("cannot coalesce zero requests")
    num_tables = requests[0].num_tables
    if any(r.num_tables != num_tables for r in requests):
        raise ValueError("requests disagree on sparse-feature count")
    dense = np.stack([r.dense for r in requests])
    sparse_indices: List[np.ndarray] = []
    sparse_offsets: List[np.ndarray] = []
    for t in range(num_tables):
        bags = [r.sparse_indices[t] for r in requests]
        lengths = np.array([b.size for b in bags], dtype=np.int64)
        sparse_indices.append(np.concatenate(bags))
        offsets = np.zeros(len(bags) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        sparse_offsets.append(offsets)
    return Batch(
        dense=dense,
        sparse_indices=sparse_indices,
        sparse_offsets=sparse_offsets,
        labels=np.zeros(len(requests)),
        batch_id=requests[0].request_id,
    )


def hot_rows_from_trace(
    index_arrays: Sequence[np.ndarray], num_rows: int, count: int
) -> np.ndarray:
    """The ``count`` most frequently accessed rows of an observed trace.

    The profiling-pass alternative to :meth:`ZipfSampler.top_rows` for
    real traffic where the popularity permutation is unknown.  Ties
    break toward lower row ids (deterministic).
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    counts = np.zeros(num_rows, dtype=np.int64)
    for arr in index_arrays:
        np.add.at(counts, np.asarray(arr, dtype=np.int64), 1)
    count = min(count, num_rows)
    if count == 0:
        return np.array([], dtype=np.int64)
    # stable sort on (-count, row_id): most frequent first, ties by id
    order = np.argsort(-counts, kind="stable")
    return np.sort(order[:count].astype(np.int64))


class RequestGenerator:
    """Poisson-arrival, Zipf-content request stream for a dataset schema.

    Parameters
    ----------
    spec:
        Dataset schema (tables provide cardinalities, bag sizes, and
        per-table skew exponents).
    rate:
        Mean arrival rate in requests/second (Poisson process:
        exponential inter-arrival times).
    seed:
        Master seed; the stream is a pure function of (spec, rate, seed).

    Examples
    --------
    >>> from repro.data.datasets import criteo_kaggle_like
    >>> gen = RequestGenerator(criteo_kaggle_like(scale=3e-5), rate=100.0)
    >>> reqs = gen.generate(5)
    >>> [r.request_id for r in reqs]
    [0, 1, 2, 3, 4]
    >>> reqs[0].arrival_time < reqs[-1].arrival_time
    True
    """

    def __init__(
        self,
        spec: DatasetSpec,
        rate: float,
        seed: int = 0,
    ) -> None:
        check_positive(rate, "rate")
        self.spec = spec
        self.rate = float(rate)
        self.seed = int(seed)
        self.samplers = [
            ZipfSampler(
                table.num_rows, alpha=table.alpha, scatter=True,
                seed=(seed, t),
            )
            for t, table in enumerate(spec.tables)
        ]

    @property
    def num_tables(self) -> int:
        return len(self.samplers)

    def generate(
        self, num_requests: int, start_time: float = 0.0
    ) -> List[InferenceRequest]:
        """Materialize the first ``num_requests`` requests of the stream."""
        if num_requests < 0:
            raise ValueError(
                f"num_requests must be >= 0, got {num_requests}"
            )
        rng = ensure_rng((self.seed, 0xA881))
        gaps = rng.exponential(1.0 / self.rate, size=num_requests)
        arrivals = start_time + np.cumsum(gaps)
        requests: List[InferenceRequest] = []
        for i in range(num_requests):
            dense = rng.normal(0.0, 1.0, size=self.spec.num_dense)
            bags = tuple(
                sampler.sample(table.bag_size, rng)
                for table, sampler in zip(self.spec.tables, self.samplers)
            )
            requests.append(
                InferenceRequest(
                    request_id=i,
                    arrival_time=float(arrivals[i]),
                    dense=dense,
                    sparse_indices=bags,
                )
            )
        return requests

    def hot_rows(
        self, table_idx: int, coverage: float
    ) -> Optional[np.ndarray]:
        """Top rows covering a fraction of the table (cache fill oracle).

        ``coverage`` is the fraction of *rows* materialized (the knob
        the serving bench sweeps); thanks to the Zipf skew a small row
        fraction covers a much larger access fraction.
        """
        if not 0.0 <= coverage <= 1.0:
            raise ValueError(
                f"coverage must be in [0, 1], got {coverage}"
            )
        sampler = self.samplers[table_idx]
        return sampler.top_rows(int(sampler.num_rows * coverage))
