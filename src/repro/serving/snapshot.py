"""Training→serving model handoff (snapshot + hot swap).

A :class:`ModelSnapshot` is an immutable byte string holding a full
format-v2 checkpoint (:mod:`repro.models.serialization`): config, MLP
parameters, and every embedding bag's state with its concrete kind.
Freezing the snapshot as *bytes* rather than live arrays makes the
handoff protocol trivially safe: the trainer can keep mutating its
model the instant the snapshot is taken, and every ``materialize()``
call yields an independent model that nobody else can touch.  npz
round-trips float64 losslessly, so a materialized model's predictions
are bit-identical to the snapshotted one's.

:meth:`ModelSnapshot.from_trainer` bridges the parameter-server
topology to the serving one: host-resident tables (which own no local
weights) are materialized from the server's current state into plain
dense bags, so the snapshot is self-contained — a serving process
needs no parameter server.
"""

from __future__ import annotations

import io
from typing import Any, List

import numpy as np

from repro.embeddings.base import EmbeddingBagBase
from repro.embeddings.dense import DenseEmbeddingBag
from repro.models.dlrm import DLRM
from repro.models.serialization import load_checkpoint, save_checkpoint

__all__ = ["ModelSnapshot"]


class ModelSnapshot:
    """Immutable, self-contained model state for serving handoff.

    Parameters
    ----------
    payload:
        Raw npz checkpoint bytes (as written by ``save_checkpoint``).
    version:
        Monotonic handoff version; the serving side stamps it onto
        every prediction made by this model.
    """

    def __init__(self, payload: bytes, version: int = 0) -> None:
        if not payload:
            raise ValueError("snapshot payload must be non-empty")
        self._payload = bytes(payload)
        self.version = int(version)

    # -- capture -------------------------------------------------------
    @classmethod
    def from_model(cls, model: DLRM, version: int = 0) -> "ModelSnapshot":
        """Snapshot a standalone model (no parameter server)."""
        buffer = io.BytesIO()
        save_checkpoint(model, buffer)
        return cls(buffer.getvalue(), version=version)

    @classmethod
    def from_trainer(cls, trainer: Any, version: int = 0) -> "ModelSnapshot":
        """Snapshot a PS trainer's current model for serving.

        Host-resident tables are materialized from the parameter
        server's current weights into dense bags; local (TT / dense)
        bags are captured as-is.  Take the snapshot *between* ``train``
        calls — the trainers drain their gradient queues on return, so
        the host state is consistent there.
        """
        model = trainer.model
        bags: List[EmbeddingBagBase] = []
        for t, bag in enumerate(model.embedding_bags):
            server_idx = trainer.host_table_map.get(t)
            if server_idx is None:
                bags.append(bag)
                continue
            dense = DenseEmbeddingBag(
                bag.num_embeddings, bag.embedding_dim, seed=0
            )
            dense.weight = np.array(
                trainer.server.tables[server_idx], dtype=np.float64
            )
            bags.append(dense)
        # Assemble a standalone model sharing the trainer's arrays;
        # save_checkpoint only reads them, and the npz copy freezes the
        # state, so the trainer may resume immediately afterwards.
        standalone = DLRM(model.config, seed=0, embedding_bags=bags)
        for (_, src), (_, dst) in zip(
            model.named_parameters(), standalone.named_parameters()
        ):
            dst.data = src.data
        return cls.from_model(standalone, version=version)

    # -- restore -------------------------------------------------------
    def materialize(self) -> DLRM:
        """Rebuild an independent model from the frozen bytes."""
        return load_checkpoint(io.BytesIO(self._payload))

    # -- persistence ---------------------------------------------------
    def save(self, path: str) -> None:
        """Write the snapshot; the file is a standard .npz checkpoint."""
        with open(path, "wb") as handle:
            handle.write(self._payload)

    @classmethod
    def load(cls, path: str, version: int = 0) -> "ModelSnapshot":
        with open(path, "rb") as handle:
            return cls(handle.read(), version=version)

    @property
    def nbytes(self) -> int:
        return len(self._payload)

    def __repr__(self) -> str:
        return (
            f"ModelSnapshot(version={self.version}, "
            f"nbytes={self.nbytes})"
        )
