"""Health-aware dispatch and redirect policy for the serving fleet.

The :class:`FleetRouter` decides, for each micro-batch popped off the
shared :class:`~repro.serving.fleet.BatchingQueue`, which
:class:`~repro.serving.fleet.ReplicaExecutor` serves it:

* **admission control** — a replica is a candidate only while it is
  admitting (LIVE, not draining for a swap or retirement) and has
  fewer than ``max_in_flight`` batches outstanding;
* **load-aware ranking** — candidates are ordered by breaker state
  (CLOSED before HALF_OPEN; OPEN replicas are only eligible once their
  cooldown elapses), then current in-flight depth, then replica id for
  a deterministic tie-break;
* **breaker gate** — the first ranked candidate whose own
  :class:`~repro.resilience.circuit.CircuitBreaker` ``allow``\\ s the
  batch wins.  In HALF_OPEN, ``allow`` *claims* the single probe slot,
  so :meth:`FleetRouter.select` must only be called when the caller is
  committed to dispatching a batch to the returned replica.

When a replica crashes (or is stuck-declared), its in-flight batches
come back to the router: :meth:`plan_redirect` either requeues the
batch — after the capped, seeded-jitter backoff of the shared
:class:`~repro.resilience.supervisor.RetryPolicy` — or sheds it once
its redirect budget is spent.  Every decision is appended to
:attr:`FleetRouter.redirects`, making the failure story replayable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, Tuple

from repro.resilience.circuit import BreakerState, CircuitBreaker
from repro.resilience.supervisor import RetryPolicy
from repro.utils.validation import check_positive

__all__ = [
    "AdmissionConfig",
    "RedirectDecision",
    "RedirectRecord",
    "FleetRouter",
]


class RoutableReplica(Protocol):
    """The slice of a replica executor the router routes on."""

    replica_id: int
    breaker: CircuitBreaker

    @property
    def in_flight_count(self) -> int: ...

    def admits(self) -> bool: ...


@dataclass(frozen=True)
class AdmissionConfig:
    """Per-replica admission and redirect budgets."""

    #: Batches a single replica may have outstanding (its worker depth).
    max_in_flight: int = 1
    #: Redirect attempts per batch before its requests are shed.
    max_redirects: int = 3

    def __post_init__(self) -> None:
        check_positive(self.max_in_flight, "max_in_flight")
        if self.max_redirects < 0:
            raise ValueError(
                f"max_redirects must be >= 0, got {self.max_redirects}"
            )


@dataclass(frozen=True)
class RedirectDecision:
    """What to do with a batch orphaned by a replica failure."""

    #: "requeue" (retry after ``delay``) or "shed" (budget exhausted).
    action: str
    #: Seeded-jitter backoff before the batch re-enters the queue.
    delay: float = 0.0


@dataclass(frozen=True)
class RedirectRecord:
    """One redirect (or shed) decision, for the outcome report."""

    time: float
    batch_id: int
    from_replica: int
    attempt: int
    action: str
    delay: float


#: Deterministic ranking: CLOSED replicas first, then HALF_OPEN, then
#: OPEN (which allow() will usually still refuse), then by load.
_BREAKER_RANK = {
    BreakerState.CLOSED: 0,
    BreakerState.HALF_OPEN: 1,
    BreakerState.OPEN: 2,
}


class FleetRouter:
    """Deterministic per-batch dispatch and redirect policy."""

    def __init__(
        self,
        admission: AdmissionConfig | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.admission = admission or AdmissionConfig()
        self.retry = retry or RetryPolicy(
            max_restarts=self.admission.max_redirects,
            base_delay=1e-3,
            max_delay=1e-2,
        )
        self.redirects: List[RedirectRecord] = []
        self.dispatched: int = 0

    # -- dispatch ------------------------------------------------------
    def candidates(
        self, replicas: Sequence[RoutableReplica]
    ) -> List[RoutableReplica]:
        """Admitting, under-capacity replicas in dispatch-preference order."""
        eligible = [
            r for r in replicas
            if r.admits()
            and r.in_flight_count < self.admission.max_in_flight
        ]
        eligible.sort(
            key=lambda r: (
                _BREAKER_RANK[r.breaker.state],
                r.in_flight_count,
                r.replica_id,
            )
        )
        return eligible

    def select(
        self, replicas: Sequence[RoutableReplica], now: float
    ) -> Optional[RoutableReplica]:
        """The replica that should serve the next batch, or ``None``.

        Walks the ranked candidates and returns the first whose breaker
        admits traffic at ``now``.  A ``True`` from a HALF_OPEN breaker
        claims its probe slot, so call this only with a batch in hand —
        the caller must dispatch to the returned replica.
        """
        for replica in self.candidates(replicas):
            if replica.breaker.allow(now):
                self.dispatched += 1
                return replica
        return None

    # -- redirect ------------------------------------------------------
    def plan_redirect(
        self, batch_id: int, from_replica: int, attempt: int, now: float
    ) -> RedirectDecision:
        """Redirect-or-shed for one orphaned batch (``attempt`` is 1-based).

        The delay reuses the supervisor's :class:`RetryPolicy` backoff:
        capped exponential in the attempt number with seeded jitter, so
        a redirect storm spreads deterministically instead of
        thundering back into the queue at one instant.
        """
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        if attempt > self.admission.max_redirects:
            decision = RedirectDecision(action="shed", delay=0.0)
        else:
            decision = RedirectDecision(
                action="requeue", delay=self.retry.backoff(attempt)
            )
        self.redirects.append(
            RedirectRecord(
                time=now,
                batch_id=batch_id,
                from_replica=from_replica,
                attempt=attempt,
                action=decision.action,
                delay=decision.delay,
            )
        )
        return decision

    # -- reporting ------------------------------------------------------
    @property
    def shed_batches(self) -> Tuple[RedirectRecord, ...]:
        return tuple(r for r in self.redirects if r.action == "shed")
