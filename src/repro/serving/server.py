"""Deterministic online-inference server (event-loop worker pool).

The serving counterpart of :mod:`repro.system.pipeline`: where the
trainer overlaps CPU gather / PCIe transfer / GPU compute for
*throughput*, the server coalesces Poisson arrivals into micro-batches
under a *latency* budget.  Everything runs on the discrete-event
:class:`~repro.system.simclock.Simulator` — no threads, no wall clock —
so a serving run is a pure function of (requests, policy, model, cost
model) and therefore bit-reproducible, exactly like the pipelined
trainer it mirrors.

Latency is *simulated*: a :class:`ServiceTimeModel` charges each batch
a fixed launch cost plus per-sample and per-row terms, with cold
(TT-contraction) lookups costing more than hot (cached-gather) ones.
The numerics, by contrast, are *real*: every batch runs through an
actual :class:`~repro.models.dlrm.DLRM` whose compressed arms (TT,
hash, ROBE, PQ, ...) are served by
:class:`~repro.embeddings.inference.HotRowCachedLookup` views, and the
predictions returned to clients are the model's true outputs.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.backend import ZONE_SERVING_LOOKUP, get_backend
from repro.data.dataloader import Batch
from repro.embeddings.dense import DenseEmbeddingBag
from repro.embeddings.inference import HotRowCachedLookup
from repro.embeddings.protocol import CompressedEmbedding
from repro.models.dlrm import DLRM
from repro.nn.loss import BCEWithLogitsLoss
from repro.serving.batcher import BatchingPolicy, MicroBatch, MicroBatcher
from repro.serving.metrics import (
    RequestResult,
    ServedBatch,
    ServingMetrics,
    SLOReport,
)
from repro.serving.requests import InferenceRequest, coalesce_requests
from repro.serving.snapshot import ModelSnapshot
from repro.system.simclock import Simulator
from repro.utils.validation import check_positive

__all__ = [
    "ServiceTimeModel",
    "ServingModel",
    "InferenceServer",
    "ServingOutcome",
    "replay_batches",
]

HotRowMap = Dict[int, np.ndarray]


class _LookupView(Protocol):
    """Anything servable as a pooled embedding lookup (bag or cache)."""

    def forward(
        self, indices: np.ndarray, offsets: Optional[np.ndarray] = None
    ) -> np.ndarray: ...


@dataclass(frozen=True)
class ServiceTimeModel:
    """Deterministic cost model for one micro-batch's service time.

    ``duration = base + per_sample * B + per_hot * hits + per_cold *
    misses`` — a fixed kernel-launch cost amortized over the batch,
    with TT-contraction (cold) lookups an order of magnitude more
    expensive than cached-gather (hot) ones.  Defaults are loosely
    calibrated to the paper's inference measurements but the absolute
    scale only matters relative to the arrival rate.
    """

    base: float = 1e-4
    per_sample: float = 2e-6
    per_hot: float = 5e-8
    per_cold: float = 2e-6

    def __post_init__(self) -> None:
        for name in ("base", "per_sample", "per_hot", "per_cold"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    def duration(self, batch_size: int, hot: int, cold: int) -> float:
        """Service time in seconds for one coalesced batch."""
        return (
            self.base
            + self.per_sample * batch_size
            + self.per_hot * hot
            + self.per_cold * cold
        )


class ServingModel:
    """Read-only inference view of a DLRM with hot-row-cached arms.

    Wraps a model so each compressed embedding bag (TT, hash, ROBE,
    PQ, ...) with configured hot rows is served through a
    :class:`~repro.embeddings.inference.HotRowCachedLookup`; dense bags
    and uncached compressed bags are used directly.  The wrapped model
    is treated as frozen — the view never trains it.

    Parameters
    ----------
    model:
        The (snapshot-restored) DLRM to serve.
    hot_rows:
        Mapping from table index to hot-row ids for that table.  Tables
        absent from the map get no cache and are served by the bag
        directly; tables mapped to an *empty* array get an empty cache
        (every lookup counts as a miss), keeping hit-rate denominators
        comparable across coverage sweeps.  Entries for dense tables
        are ignored — a dense lookup is already a plain gather, so the
        whole table is effectively hot (this lets one coverage map
        span mixed dense/TT models, e.g. PS-trainer snapshots whose
        host tables materialize dense).
    version:
        Monotonic model version stamped onto every prediction, so
        results can be attributed across hot swaps.
    on_stale:
        Staleness policy for the underlying caches (serving snapshots
        are frozen, so the default ``"raise"`` should never fire; it
        turns accidental in-place training into a loud error).
    """

    def __init__(
        self,
        model: DLRM,
        hot_rows: Optional[HotRowMap] = None,
        version: int = 0,
        on_stale: str = "raise",
    ) -> None:
        self.model = model
        self.version = int(version)
        self.hot_rows = dict(hot_rows or {})
        self._views: List[_LookupView] = []
        self.cached_views: List[HotRowCachedLookup] = []
        for t, bag in enumerate(model.embedding_bags):
            rows = self.hot_rows.get(t)
            if rows is None:
                self._views.append(bag)
                continue
            if isinstance(bag, DenseEmbeddingBag) or not isinstance(
                bag, CompressedEmbedding
            ):
                self._views.append(bag)
                continue
            view = HotRowCachedLookup(bag, rows, on_stale=on_stale)
            self._views.append(view)
            self.cached_views.append(view)

    def predict_proba(self, batch: Batch) -> np.ndarray:
        """Click probabilities, sparse arms routed through the caches.

        Mirrors :meth:`DLRM.forward` exactly, substituting each cached
        view for its bag; with no caches configured the output is the
        model's own ``predict_proba`` bit for bit.
        """
        model = self.model
        if batch.num_tables != model.config.num_tables:
            raise ValueError(
                f"batch has {batch.num_tables} sparse features, model "
                f"expects {model.config.num_tables}"
            )
        # The serving zone is the outer attribution: MLP / interaction /
        # TT kernels re-tag themselves inside it (innermost zone wins),
        # so only otherwise-unzoned serving work lands here.
        with get_backend().zone(ZONE_SERVING_LOOKUP):
            dense_out = model.bottom_mlp.forward(batch.dense)
            pooled = [
                view.forward(idx, off)
                for view, idx, off in zip(
                    self._views, batch.sparse_indices, batch.sparse_offsets
                )
            ]
            interacted = model.interaction.forward(dense_out, pooled)
            logits = model.top_mlp.forward(interacted).reshape(-1)
            return BCEWithLogitsLoss.predict_proba(logits)

    def refresh(self) -> None:
        """Re-materialize every cache from the current cores."""
        for view in self.cached_views:
            view.refresh()

    # -- cache accounting ----------------------------------------------
    @property
    def hot_lookups(self) -> int:
        return sum(v.hits for v in self.cached_views)

    @property
    def cold_lookups(self) -> int:
        return sum(v.misses for v in self.cached_views)

    @property
    def hit_rate(self) -> float:
        total = self.hot_lookups + self.cold_lookups
        return self.hot_lookups / total if total else 0.0

    @property
    def num_hot_rows(self) -> int:
        return sum(v.num_hot_rows for v in self.cached_views)

    @property
    def cache_nbytes(self) -> int:
        return sum(v.cache_nbytes for v in self.cached_views)


@dataclass(frozen=True)
class ServingOutcome:
    """Everything a serving run produced."""

    report: SLOReport
    results: Tuple[RequestResult, ...]
    served_batches: Tuple[ServedBatch, ...]
    rejected_ids: Tuple[int, ...]
    swap_times: Tuple[float, ...]
    final_model_version: int
    #: Swaps refused because their snapshot version was not newer than
    #: the model already serving (version-counter monotonicity).
    stale_swaps_rejected: int = 0

    def predictions_by_request(self) -> Dict[int, float]:
        return {r.request_id: r.prediction for r in self.results}


class InferenceServer:
    """Micro-batching worker pool driven by a deterministic event loop.

    Four event kinds run the loop: request *arrival* (admit to the
    batcher or shed), per-request *deadline flush* (time trigger),
    batch *completion* (free the worker, record latencies), and *hot
    swap* (atomically replace the serving model between batches).
    Dispatch happens whenever a worker is free and the batching policy
    fires; in-flight batches always complete on the model they started
    with.

    Parameters
    ----------
    serving_model:
        The initial model view to serve.
    policy:
        Micro-batching knobs (size / wait / queue bound).
    num_workers:
        Parallel inference workers (each serves one batch at a time).
    service_time:
        Deterministic per-batch latency model.
    """

    def __init__(
        self,
        serving_model: ServingModel,
        policy: Optional[BatchingPolicy] = None,
        num_workers: int = 1,
        service_time: Optional[ServiceTimeModel] = None,
    ) -> None:
        check_positive(num_workers, "num_workers")
        self.serving_model = serving_model
        self.policy = policy or BatchingPolicy()
        self.num_workers = int(num_workers)
        self.service_time = service_time or ServiceTimeModel()
        self._swaps: List[Tuple[float, ModelSnapshot, Optional[HotRowMap]]] = []

    def schedule_swap(
        self,
        time: float,
        snapshot: ModelSnapshot,
        hot_rows: Optional[HotRowMap] = None,
    ) -> None:
        """Hot-swap to ``snapshot`` at simulated ``time``.

        The new model inherits the current hot-row configuration unless
        ``hot_rows`` overrides it; its caches are materialized from the
        snapshot's cores at swap time (the cache-refresh half of the
        handoff protocol).
        """
        if time < 0:
            raise ValueError(f"swap time must be >= 0, got {time}")
        self._swaps.append((float(time), snapshot, hot_rows))

    # ------------------------------------------------------------------
    def run(self, requests: Sequence[InferenceRequest]) -> ServingOutcome:
        """Serve a request stream to completion; returns the outcome."""
        sim = Simulator()
        batcher = MicroBatcher(self.policy)
        metrics = ServingMetrics()
        free_workers = list(range(self.num_workers))
        rejected_ids: List[int] = []
        batch_counter = {"next": 0}
        stale_swaps = {"count": 0}
        first_arrival = requests[0].arrival_time if requests else 0.0

        def try_dispatch() -> None:
            while free_workers and batcher.ready(sim.now):
                micro = batcher.pop_batch(sim.now)
                assert micro is not None  # ready() just fired
                dispatch(micro)

        def dispatch(micro: MicroBatch) -> None:
            worker_id = free_workers.pop(0)
            model = self.serving_model
            coalesced = coalesce_requests(micro.requests)
            hot0, cold0 = model.hot_lookups, model.cold_lookups
            predictions = model.predict_proba(coalesced)
            hot = model.hot_lookups - hot0
            cold = model.cold_lookups - cold0
            duration = self.service_time.duration(micro.size, hot, cold)
            start = sim.now
            batch_id = batch_counter["next"]
            batch_counter["next"] += 1

            def complete() -> None:
                served = ServedBatch(
                    batch_id=batch_id,
                    request_ids=tuple(
                        r.request_id for r in micro.requests
                    ),
                    batch=coalesced,
                    model_version=model.version,
                    worker_id=worker_id,
                    start_time=start,
                    finish_time=sim.now,
                    predictions=predictions,
                    hot_lookups=hot,
                    cold_lookups=cold,
                )
                metrics.record_batch(served)
                for request, prob in zip(micro.requests, predictions):
                    metrics.record_result(
                        RequestResult(
                            request_id=request.request_id,
                            arrival_time=request.arrival_time,
                            finish_time=sim.now,
                            model_version=model.version,
                            prediction=float(prob),
                        )
                    )
                bisect.insort(free_workers, worker_id)
                try_dispatch()

            sim.schedule(duration, complete)

        def arrive(request: InferenceRequest) -> None:
            if not batcher.offer(request, sim.now):
                rejected_ids.append(request.request_id)
                metrics.record_rejection()
                return
            sim.schedule(self.policy.max_wait, try_dispatch)
            try_dispatch()

        def swap(snapshot: ModelSnapshot, hot_rows: Optional[HotRowMap]
                 ) -> None:
            # Version guard: once a snapshot is acknowledged (served),
            # an older or equal-version snapshot must never displace
            # it — interleaved swap schedules would otherwise serve
            # stale predictions stamped with a recycled version.
            if snapshot.version <= self.serving_model.version:
                stale_swaps["count"] += 1
                return
            effective = (
                hot_rows if hot_rows is not None
                else self.serving_model.hot_rows
            )
            self.serving_model = ServingModel(
                snapshot.materialize(),
                hot_rows=effective,
                version=snapshot.version,
            )
            metrics.record_swap(sim.now)

        for request in requests:
            sim.schedule(
                request.arrival_time, lambda r=request: arrive(r)
            )
        for time, snapshot, hot_rows in sorted(
            self._swaps, key=lambda s: s[0]
        ):
            sim.schedule(
                time, lambda s=snapshot, h=hot_rows: swap(s, h)
            )
        end_time = sim.run()

        hot = sum(b.hot_lookups for b in metrics.served_batches)
        cold = sum(b.cold_lookups for b in metrics.served_batches)
        report = metrics.build_report(
            duration=max(end_time - first_arrival, 0.0),
            max_queue_depth=batcher.max_depth,
            cache_hit_rate=hot / (hot + cold) if hot + cold else 0.0,
            num_hot_rows=self.serving_model.num_hot_rows,
        )
        return ServingOutcome(
            report=report,
            results=tuple(
                sorted(metrics.results, key=lambda r: r.request_id)
            ),
            served_batches=tuple(metrics.served_batches),
            rejected_ids=tuple(rejected_ids),
            swap_times=tuple(metrics.swap_times),
            final_model_version=self.serving_model.version,
            stale_swaps_rejected=stale_swaps["count"],
        )


def replay_batches(
    serving_model: ServingModel, served_batches: Sequence[ServedBatch]
) -> Dict[int, float]:
    """Offline re-inference of served batches for verification.

    Runs each recorded coalesced batch through ``serving_model`` and
    returns per-request predictions.  Built from the same snapshot with
    the same hot rows, the replay reproduces the online predictions
    bit for bit — the hot-swap correctness check in the test suite.
    """
    predictions: Dict[int, float] = {}
    for served in served_batches:
        probs = serving_model.predict_proba(served.batch)
        for request_id, prob in zip(served.request_ids, probs):
            predictions[request_id] = float(prob)
    return predictions
