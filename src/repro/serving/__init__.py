"""Deterministic online-inference subsystem (serving side of EL-Rec).

Request generation (:mod:`~repro.serving.requests`), dynamic
micro-batching (:mod:`~repro.serving.batcher`), the event-loop worker
pool (:mod:`~repro.serving.server`), SLO metrics and trace export
(:mod:`~repro.serving.metrics`), training→serving snapshots with
hot swap (:mod:`~repro.serving.snapshot`), and the replicated fleet
tier — per-replica fault domains, health-aware routing, rolling
hot-swap — in :mod:`~repro.serving.fleet`,
:mod:`~repro.serving.router`, and :mod:`~repro.serving.health`.
"""

import importlib
from typing import Any

from repro.serving.batcher import BatchingPolicy, MicroBatch, MicroBatcher
from repro.serving.health import (
    HealthMonitor,
    HealthStatus,
    ProbeConfig,
    ReplicaHealth,
)
from repro.serving.metrics import (
    RequestResult,
    ServedBatch,
    ServingMetrics,
    SLOReport,
    export_serving_trace,
    serving_trace_events,
)
from repro.serving.requests import (
    InferenceRequest,
    RequestGenerator,
    coalesce_requests,
    hot_rows_from_trace,
)
from repro.serving.server import (
    InferenceServer,
    ServiceTimeModel,
    ServingModel,
    ServingOutcome,
    replay_batches,
)
from repro.serving.snapshot import ModelSnapshot

#: Fleet and router symbols resolve lazily (PEP 562):
#: :mod:`repro.serving.fleet` pulls in the resilience layer (breakers,
#: fault injection, retry policies) whose own modules import serving
#: primitives — importing it eagerly here would close an import cycle.
_LAZY_EXPORTS = {
    "AutoscaleEvent": "repro.serving.fleet",
    "AutoscalePolicy": "repro.serving.fleet",
    "BatchingQueue": "repro.serving.fleet",
    "FleetBatch": "repro.serving.fleet",
    "FleetConfig": "repro.serving.fleet",
    "FleetOutcome": "repro.serving.fleet",
    "ReplicaExecutor": "repro.serving.fleet",
    "ReplicaReport": "repro.serving.fleet",
    "ReplicaState": "repro.serving.fleet",
    "ServingFleet": "repro.serving.fleet",
    "SwapReport": "repro.serving.fleet",
    "AdmissionConfig": "repro.serving.router",
    "FleetRouter": "repro.serving.router",
    "RedirectDecision": "repro.serving.router",
    "RedirectRecord": "repro.serving.router",
}


def __getattr__(name: str) -> Any:
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value

__all__ = [
    "BatchingPolicy",
    "MicroBatch",
    "MicroBatcher",
    "AutoscaleEvent",
    "AutoscalePolicy",
    "BatchingQueue",
    "FleetBatch",
    "FleetConfig",
    "FleetOutcome",
    "ReplicaExecutor",
    "ReplicaReport",
    "ReplicaState",
    "ServingFleet",
    "SwapReport",
    "HealthMonitor",
    "HealthStatus",
    "ProbeConfig",
    "ReplicaHealth",
    "AdmissionConfig",
    "FleetRouter",
    "RedirectDecision",
    "RedirectRecord",
    "RequestResult",
    "ServedBatch",
    "ServingMetrics",
    "SLOReport",
    "export_serving_trace",
    "serving_trace_events",
    "InferenceRequest",
    "RequestGenerator",
    "coalesce_requests",
    "hot_rows_from_trace",
    "InferenceServer",
    "ServiceTimeModel",
    "ServingModel",
    "ServingOutcome",
    "replay_batches",
    "ModelSnapshot",
]
