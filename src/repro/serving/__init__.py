"""Deterministic online-inference subsystem (serving side of EL-Rec).

Request generation (:mod:`~repro.serving.requests`), dynamic
micro-batching (:mod:`~repro.serving.batcher`), the event-loop worker
pool (:mod:`~repro.serving.server`), SLO metrics and trace export
(:mod:`~repro.serving.metrics`), and training→serving snapshots with
hot swap (:mod:`~repro.serving.snapshot`).
"""

from repro.serving.batcher import BatchingPolicy, MicroBatch, MicroBatcher
from repro.serving.metrics import (
    RequestResult,
    ServedBatch,
    ServingMetrics,
    SLOReport,
    export_serving_trace,
    serving_trace_events,
)
from repro.serving.requests import (
    InferenceRequest,
    RequestGenerator,
    coalesce_requests,
    hot_rows_from_trace,
)
from repro.serving.server import (
    InferenceServer,
    ServiceTimeModel,
    ServingModel,
    ServingOutcome,
    replay_batches,
)
from repro.serving.snapshot import ModelSnapshot

__all__ = [
    "BatchingPolicy",
    "MicroBatch",
    "MicroBatcher",
    "RequestResult",
    "ServedBatch",
    "ServingMetrics",
    "SLOReport",
    "export_serving_trace",
    "serving_trace_events",
    "InferenceRequest",
    "RequestGenerator",
    "coalesce_requests",
    "hot_rows_from_trace",
    "InferenceServer",
    "ServiceTimeModel",
    "ServingModel",
    "ServingOutcome",
    "replay_batches",
    "ModelSnapshot",
]
