"""Replicated serving fleet: N executors, one queue, zero shared fate.

The production-shaped tier above :mod:`repro.serving.server`: instead
of one worker pool over one snapshot (a single fault domain), a
:class:`ServingFleet` runs N :class:`ReplicaExecutor`\\ s — each with
its **own** materialized model, its own
:class:`~repro.resilience.circuit.CircuitBreaker`, and its own
degradation ladder — pulling micro-batches from a shared MPMC
:class:`BatchingQueue`, with dispatch decided by the health-aware
:class:`~repro.serving.router.FleetRouter`.  One replica crashing,
sticking, or tripping its breaker redirects *its* work; it never
trips the fleet.

Determinism is load-bearing, not cosmetic.  Everything runs on the
discrete-event :class:`~repro.system.simclock.Simulator`, and batch
*formation* is deliberately decoupled from replica capacity: ready
micro-batches move into the shared queue on arrival/deadline events
alone, so the (batch id → request ids) composition of a run depends
only on the request stream and the batching policy — not on which
replicas are up.  A redirected batch is re-dispatched *intact*, and
every replica materializes byte-identical model state from the same
:class:`~repro.serving.snapshot.ModelSnapshot`, so killing any single
replica mid-traffic yields bitwise-identical predictions for every
delivered request versus the uninterrupted run.  That is the fleet's
chaos invariant, and ``repro chaos --plan fleet-replica-sweep``
checks it at every injection point.

Rolling hot-swap propagates a new snapshot one replica at a time:
each target drains its in-flight batches, installs the new version
(guarded — a stale snapshot never displaces a newer acknowledged
one), and rejoins before the next target drains; the fleet never has
fewer than ⌈N/2⌉ replicas admitting.  SLO-headroom autoscaling rides
the same health-probe ticks: sustained latency above the high
watermark adds a replica from the current snapshot, sustained
headroom below the low watermark drains and retires one.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataloader import Batch
from repro.resilience.circuit import (
    BreakerConfig,
    BreakerState,
    BreakerTransition,
    CircuitBreaker,
)
from repro.resilience.degradation import DegradationPolicy
from repro.resilience.faults import FaultInjector, FaultSpec
from repro.resilience.supervisor import RetryPolicy
from repro.serving.batcher import BatchingPolicy, MicroBatch, MicroBatcher
from repro.serving.health import HealthMonitor, ProbeConfig, ReplicaHealth
from repro.serving.metrics import (
    RequestResult,
    ServedBatch,
    ServingMetrics,
    SLOReport,
)
from repro.serving.requests import InferenceRequest, coalesce_requests
from repro.serving.router import (
    AdmissionConfig,
    FleetRouter,
    RedirectRecord,
)
from repro.serving.server import HotRowMap, ServiceTimeModel, ServingModel
from repro.serving.snapshot import ModelSnapshot
from repro.system.queues import BoundedQueue
from repro.system.simclock import Simulator
from repro.utils.validation import check_positive

__all__ = [
    "ReplicaState",
    "BatchingQueue",
    "FleetBatch",
    "ReplicaExecutor",
    "AutoscalePolicy",
    "AutoscaleEvent",
    "FleetConfig",
    "ReplicaReport",
    "SwapReport",
    "FleetOutcome",
    "ServingFleet",
]


class ReplicaState(str, enum.Enum):
    """Replica lifecycle states."""

    LIVE = "live"          #: admitting new batches
    DRAINING = "draining"  #: finishing in-flight work before swap/retire
    DEAD = "dead"          #: crashed or stuck-declared; never revived
    RETIRED = "retired"    #: scaled down cleanly after draining


@dataclass
class FleetBatch:
    """One formed micro-batch travelling through the fleet.

    Identity (``batch_id``) is assigned at formation time, which is
    independent of replica availability — so the id→composition map is
    a pure function of the request stream and batching policy.
    """

    batch_id: int
    micro: MicroBatch
    #: Redirect attempts consumed (0 = never orphaned).
    attempts: int = 0

    @property
    def size(self) -> int:
        return self.micro.size


class BatchingQueue(BoundedQueue[FleetBatch]):
    """Shared MPMC queue between the batcher and the replica executors.

    A :class:`~repro.system.queues.BoundedQueue` plus one fleet-specific
    affordance: :meth:`put_front` re-inserts a redirected batch at the
    head, bypassing the capacity bound — a batch that was already
    admitted must never be dropped by its own retry, and orphaned work
    should not queue behind fresh arrivals.
    """

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self.max_depth = 0
        self.redirect_puts = 0

    def put(self, item: FleetBatch) -> None:
        super().put(item)
        self.max_depth = max(self.max_depth, len(self))

    def put_front(self, item: FleetBatch) -> None:
        """Head insert for redirects (exempt from the capacity bound)."""
        if self.closed:
            raise RuntimeError("put_front on closed queue")
        self._items.appendleft(item)
        self.total_puts += 1
        self.redirect_puts += 1
        self.max_depth = max(self.max_depth, len(self))


@dataclass
class _InFlight:
    """One batch being served by one replica (predictions precomputed)."""

    token: int
    fleet_batch: FleetBatch
    coalesced: Batch
    predictions: np.ndarray
    hot_lookups: int
    cold_lookups: int
    start: float
    duration: float
    model_version: int
    is_primary: bool
    #: False when a stuck window swallowed the completion event.
    completion_scheduled: bool


class ReplicaExecutor:
    """One fault domain: a model copy, a breaker, a degradation ladder.

    The executor is passive — the fleet event loop drives it with
    explicit timestamps.  ``begin`` runs the real DLRM forward and
    registers the in-flight record; ``complete`` retires it by token
    (a token dispatched before a crash simply finds nothing to retire,
    which is how already-scheduled completion events for a dead
    replica become harmless no-ops).
    """

    def __init__(
        self,
        replica_id: int,
        snapshot: ModelSnapshot,
        hot_rows: Optional[HotRowMap],
        breaker_config: BreakerConfig,
        service_time: ServiceTimeModel,
    ) -> None:
        self.replica_id = replica_id
        self.serving_model = ServingModel(
            snapshot.materialize(),
            hot_rows=hot_rows or {},
            version=snapshot.version,
        )
        self.breaker = CircuitBreaker(breaker_config)
        self.service_time = service_time
        self.state = ReplicaState.LIVE
        #: Why the replica is draining: "swap" or "retire".
        self.pending_action: Optional[str] = None
        self.stuck_declared = False
        self.crash_time: Optional[float] = None
        self.batches_served = 0
        self.requests_served = 0
        self.fallback_batches = 0
        self.swap_times: List[Tuple[int, float]] = []
        self._in_flight: Dict[int, _InFlight] = {}
        self._next_token = 0
        self._fallback: Optional[ServingModel] = None
        self._fallback_time = 0.0

    # -- routing surface (RoutableReplica protocol) --------------------
    @property
    def in_flight_count(self) -> int:
        return len(self._in_flight)

    def admits(self) -> bool:
        return self.state == ReplicaState.LIVE

    @property
    def alive(self) -> bool:
        return self.state in (ReplicaState.LIVE, ReplicaState.DRAINING)

    @property
    def version(self) -> int:
        return self.serving_model.version

    # -- degradation ladder --------------------------------------------
    def set_fallback(
        self,
        snapshot: ModelSnapshot,
        hot_rows: Optional[HotRowMap],
        time: float,
    ) -> None:
        """Register this replica's bounded-staleness fallback model."""
        self._fallback = ServingModel(
            snapshot.materialize(),
            hot_rows=hot_rows or {},
            version=snapshot.version,
        )
        self._fallback_time = float(time)

    def fallback_age(self, now: float) -> Optional[float]:
        if self._fallback is None:
            return None
        return now - self._fallback_time

    # -- serve ---------------------------------------------------------
    def begin(
        self,
        fleet_batch: FleetBatch,
        now: float,
        use_fallback: bool,
        injector: Optional[FaultInjector],
    ) -> _InFlight:
        """Run the forward pass and open an in-flight record."""
        if not self.alive:
            raise RuntimeError(
                f"dispatch to non-alive replica {self.replica_id}"
            )
        model = self._fallback if use_fallback else self.serving_model
        assert model is not None
        coalesced = coalesce_requests(fleet_batch.micro.requests)
        hot0, cold0 = model.hot_lookups, model.cold_lookups
        predictions = model.predict_proba(coalesced)
        hot = model.hot_lookups - hot0
        cold = model.cold_lookups - cold0
        duration = self.service_time.duration(fleet_batch.size, hot, cold)
        stuck = False
        if injector is not None and not use_fallback:
            duration *= injector.slowdown_factor(now)
            duration *= injector.replica_slowdown_factor(
                self.replica_id, now
            )
            stuck = injector.replica_stuck(self.replica_id, now)
        token = self._next_token
        self._next_token += 1
        record = _InFlight(
            token=token,
            fleet_batch=fleet_batch,
            coalesced=coalesced,
            predictions=predictions,
            hot_lookups=hot,
            cold_lookups=cold,
            start=now,
            duration=duration,
            model_version=model.version,
            is_primary=not use_fallback,
            completion_scheduled=not stuck,
        )
        self._in_flight[token] = record
        if use_fallback:
            self.fallback_batches += 1
        return record

    def complete(self, token: int) -> Optional[_InFlight]:
        """Retire an in-flight record; ``None`` if the replica lost it."""
        record = self._in_flight.pop(token, None)
        if record is None:
            return None
        self.batches_served += 1
        self.requests_served += record.fleet_batch.size
        return record

    def oldest_start(self) -> Optional[float]:
        """Start time of the oldest in-flight batch (watchdog input)."""
        if not self._in_flight:
            return None
        return min(
            self._in_flight[token].start
            for token in sorted(self._in_flight)
        )

    # -- lifecycle -----------------------------------------------------
    def kill(self, now: float) -> List[FleetBatch]:
        """Crash: return orphaned batches (token order) for redirect."""
        self.state = ReplicaState.DEAD
        self.pending_action = None
        self.crash_time = now
        orphans = [
            self._in_flight[token].fleet_batch
            for token in sorted(self._in_flight)
        ]
        self._in_flight.clear()
        return orphans

    def begin_drain(self, action: str) -> None:
        """Stop admitting; finish in-flight work, then swap or retire."""
        if self.state != ReplicaState.LIVE:
            raise RuntimeError(
                f"cannot drain replica {self.replica_id} in state "
                f"{self.state}"
            )
        self.state = ReplicaState.DRAINING
        self.pending_action = action

    def install(
        self,
        snapshot: ModelSnapshot,
        hot_rows: Optional[HotRowMap],
        now: float,
    ) -> None:
        """Swap in a drained replica's new model (version-guarded)."""
        if self._in_flight:
            raise RuntimeError(
                f"install on replica {self.replica_id} with "
                f"{len(self._in_flight)} batches in flight"
            )
        if snapshot.version <= self.serving_model.version:
            raise RuntimeError(
                f"stale install on replica {self.replica_id}: "
                f"v{snapshot.version} <= v{self.serving_model.version}"
            )
        effective = (
            hot_rows if hot_rows is not None
            else self.serving_model.hot_rows
        )
        self.serving_model = ServingModel(
            snapshot.materialize(),
            hot_rows=effective,
            version=snapshot.version,
        )
        self.swap_times.append((snapshot.version, now))
        self.state = ReplicaState.LIVE
        self.pending_action = None

    def retire(self) -> None:
        """Leave the fleet cleanly after draining (autoscale down)."""
        if self._in_flight:
            raise RuntimeError(
                f"retire on replica {self.replica_id} with work in flight"
            )
        self.state = ReplicaState.RETIRED
        self.pending_action = None


@dataclass(frozen=True)
class AutoscalePolicy:
    """SLO-headroom autoscaling knobs (evaluated on probe ticks)."""

    min_replicas: int = 1
    max_replicas: int = 8
    #: Scale up when the tick's worst completion latency exceeds
    #: ``high_watermark * slo_target``.
    high_watermark: float = 0.8
    #: Scale down after ``cooldown_ticks`` consecutive ticks below
    #: ``low_watermark * slo_target``.
    low_watermark: float = 0.25
    cooldown_ticks: int = 3

    def __post_init__(self) -> None:
        check_positive(self.min_replicas, "min_replicas")
        if self.max_replicas < self.min_replicas:
            raise ValueError(
                f"max_replicas ({self.max_replicas}) must be >= "
                f"min_replicas ({self.min_replicas})"
            )
        if not 0.0 < self.low_watermark < self.high_watermark:
            raise ValueError(
                "need 0 < low_watermark < high_watermark, got "
                f"{self.low_watermark} / {self.high_watermark}"
            )
        check_positive(self.cooldown_ticks, "cooldown_ticks")


@dataclass(frozen=True)
class AutoscaleEvent:
    """One autoscaling decision."""

    time: float
    action: str  #: "scale_up" or "scale_down"
    replica_id: int
    #: Worst completion latency in the tick window that triggered it.
    signal: float
    live_after: int


@dataclass(frozen=True)
class FleetConfig:
    """Everything that shapes a fleet run besides the model itself."""

    num_replicas: int = 2
    batching: BatchingPolicy = field(default_factory=BatchingPolicy)
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    probe: ProbeConfig = field(default_factory=ProbeConfig)
    degradation: DegradationPolicy = field(
        default_factory=DegradationPolicy
    )
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_restarts=3, base_delay=1e-3, max_delay=1e-2,
        )
    )
    #: Shared-queue bound, in batches.
    queue_capacity: int = 256
    autoscale: Optional[AutoscalePolicy] = None

    def __post_init__(self) -> None:
        check_positive(self.num_replicas, "num_replicas")
        check_positive(self.queue_capacity, "queue_capacity")


@dataclass(frozen=True)
class ReplicaReport:
    """One replica's story across a fleet run."""

    replica_id: int
    final_state: str
    final_version: int
    batches_served: int
    requests_served: int
    fallback_batches: int
    crash_time: Optional[float]
    stuck_declared: bool
    swap_times: Tuple[Tuple[int, float], ...]
    breaker_transitions: Tuple[BreakerTransition, ...]
    final_breaker_state: BreakerState


@dataclass(frozen=True)
class SwapReport:
    """One rolling hot-swap's trajectory."""

    version: int
    started_at: float
    completed_at: Optional[float]
    #: (replica_id, install time) in propagation order.
    replica_times: Tuple[Tuple[int, float], ...]
    #: ⌈N/2⌉ floor the swap was required to respect.
    min_live_floor: int
    #: Fewest replicas admitting at any point during the swap.
    min_live_observed: int
    #: In-flight batches lost to the swap — must always be 0 (drains
    #: complete before install by construction; this field proves it).
    dropped_in_flight: int

    @property
    def completed(self) -> bool:
        return self.completed_at is not None


@dataclass(frozen=True)
class FleetOutcome:
    """Everything a fleet run produced."""

    report: SLOReport
    results: Tuple[RequestResult, ...]
    served_batches: Tuple[ServedBatch, ...]
    #: Rejected at the front door (bounded pending queue full).
    rejected_ids: Tuple[int, ...]
    #: Shed after exhausting redirects, or in a fleet-wide outage.
    shed_ids: Tuple[int, ...]
    redirects: Tuple[RedirectRecord, ...]
    replicas: Tuple[ReplicaReport, ...]
    swaps: Tuple[SwapReport, ...]
    stale_swaps_rejected: int
    autoscale_events: Tuple[AutoscaleEvent, ...]
    health_history: Tuple[ReplicaHealth, ...]
    final_version: int
    queue_max_depth: int
    #: Admitted requests neither completed nor shed — 0 unless the
    #: accounting is broken (the chaos harness asserts on it).
    unaccounted: int

    def predictions_by_request(self) -> Dict[int, float]:
        return {r.request_id: r.prediction for r in self.results}

    def batch_compositions(self) -> Dict[int, Tuple[int, ...]]:
        """batch id → request ids, for cross-run composition checks."""
        return {
            b.batch_id: b.request_ids for b in self.served_batches
        }


@dataclass
class _ActiveSwap:
    """Mutable rolling-swap state while it propagates."""

    snapshot: ModelSnapshot
    hot_rows: Optional[HotRowMap]
    order: List[int]
    floor: int
    started_at: float
    index: int = 0
    replica_times: List[Tuple[int, float]] = field(default_factory=list)
    min_live_observed: int = 0
    dropped_in_flight: int = 0
    completed_at: Optional[float] = None

    def report(self) -> SwapReport:
        return SwapReport(
            version=self.snapshot.version,
            started_at=self.started_at,
            completed_at=self.completed_at,
            replica_times=tuple(self.replica_times),
            min_live_floor=self.floor,
            min_live_observed=self.min_live_observed,
            dropped_in_flight=self.dropped_in_flight,
        )


class ServingFleet:
    """N-replica serving tier with health-aware routing and hot-swap.

    Parameters
    ----------
    snapshot:
        The initial model every replica materializes independently.
    hot_rows:
        Hot-row map shared by every replica's cached lookups.
    config:
        Fleet shape: replica count, batching, admission, probing,
        degradation, retry, and optional autoscaling.
    service_time:
        Deterministic per-batch latency model (shared by replicas).
    injector:
        Optional fault injector supplying replica crashes, stuck
        windows, per-replica and fleet-wide slowdowns.
    """

    def __init__(
        self,
        snapshot: ModelSnapshot,
        hot_rows: Optional[HotRowMap] = None,
        config: Optional[FleetConfig] = None,
        service_time: Optional[ServiceTimeModel] = None,
        injector: Optional[FaultInjector] = None,
    ) -> None:
        self.snapshot = snapshot
        self.hot_rows = hot_rows
        self.config = config or FleetConfig()
        self.service_time = service_time or ServiceTimeModel()
        self.injector = injector
        self._fallback: Optional[
            Tuple[ModelSnapshot, Optional[HotRowMap], float]
        ] = None
        self._swaps: List[
            Tuple[float, ModelSnapshot, Optional[HotRowMap],
                  Optional[FaultSpec]]
        ] = []

    def set_fallback(
        self,
        snapshot: ModelSnapshot,
        hot_rows: Optional[HotRowMap] = None,
        time: float = 0.0,
    ) -> None:
        """Give every replica the same bounded-staleness fallback."""
        if time < 0:
            raise ValueError(f"fallback time must be >= 0, got {time}")
        self._fallback = (snapshot, hot_rows, float(time))

    def schedule_swap(
        self,
        time: float,
        snapshot: ModelSnapshot,
        hot_rows: Optional[HotRowMap] = None,
        spec: Optional[FaultSpec] = None,
    ) -> None:
        """Start a rolling hot-swap to ``snapshot`` at simulated ``time``.

        ``spec`` ties the swap to a ``SWAP @ fleet`` fault for chaos
        accounting (the injector records it as fired when it starts).
        """
        if time < 0:
            raise ValueError(f"swap time must be >= 0, got {time}")
        self._swaps.append((float(time), snapshot, hot_rows, spec))

    def _make_executor(
        self,
        replica_id: int,
        snapshot: ModelSnapshot,
        hot_rows: Optional[HotRowMap],
    ) -> ReplicaExecutor:
        executor = ReplicaExecutor(
            replica_id=replica_id,
            snapshot=snapshot,
            hot_rows=hot_rows,
            breaker_config=self.config.degradation.breaker,
            service_time=self.service_time,
        )
        if self._fallback is not None:
            fb_snapshot, fb_hot, fb_time = self._fallback
            executor.set_fallback(fb_snapshot, fb_hot, fb_time)
        return executor

    def run(self, requests: Sequence[InferenceRequest]) -> FleetOutcome:
        """Serve a request stream to completion (one fresh fleet run)."""
        return _FleetRun(self, requests).execute()


class _FleetRun:
    """One execution of a fleet over one request stream."""

    def __init__(
        self, fleet: ServingFleet, requests: Sequence[InferenceRequest]
    ) -> None:
        self.fleet = fleet
        self.cfg = fleet.config
        self.requests = list(requests)
        self.sim = Simulator()
        self.batcher = MicroBatcher(self.cfg.batching)
        self.queue = BatchingQueue(self.cfg.queue_capacity)
        self.metrics = ServingMetrics()
        self.router = FleetRouter(self.cfg.admission, self.cfg.retry)
        self.monitor = HealthMonitor(self.cfg.probe)
        self.replicas: List[ReplicaExecutor] = [
            fleet._make_executor(i, fleet.snapshot, fleet.hot_rows)
            for i in range(self.cfg.num_replicas)
        ]
        self.next_replica_id = self.cfg.num_replicas
        self.next_batch_id = 0
        self.outstanding = 0
        self.remaining_arrivals = len(self.requests)
        self.rejected_ids: List[int] = []
        self.shed_ids: List[int] = []
        self.stale_swaps = 0
        self.fleet_version = fleet.snapshot.version
        self.current_snapshot = fleet.snapshot
        self.current_hot_rows = fleet.hot_rows
        self.active_swap: Optional[_ActiveSwap] = None
        self.swap_backlog: List[
            Tuple[ModelSnapshot, Optional[HotRowMap]]
        ] = []
        self.completed_swaps: List[_ActiveSwap] = []
        self.autoscale_events: List[AutoscaleEvent] = []
        self.recent_latencies: List[float] = []
        self.low_streak = 0
        self.probe_pending = False
        self.max_fallback_age = 0.0

    # -- liveness ------------------------------------------------------
    def _live_count(self) -> int:
        return sum(1 for r in self.replicas if r.state == ReplicaState.LIVE)

    def _any_alive(self) -> bool:
        return any(r.alive for r in self.replicas)

    def _active(self) -> bool:
        return (
            self.outstanding > 0
            or self.remaining_arrivals > 0
            or self.active_swap is not None
            or bool(self.swap_backlog)
        )

    # -- event handlers ------------------------------------------------
    def arrive(self, request: InferenceRequest) -> None:
        self.remaining_arrivals -= 1
        if not self.batcher.offer(request, self.sim.now):
            self.rejected_ids.append(request.request_id)
            self.metrics.record_rejection()
            return
        self.outstanding += 1
        self.sim.schedule(self.cfg.batching.max_wait, self.service_cycle)
        self.service_cycle()

    def service_cycle(self) -> None:
        """Form ready batches, then dispatch while capacity allows."""
        progress = True
        while progress:
            progress = False
            # Formation is arrival/deadline-driven only (never gated on
            # replica capacity) so batch composition is fault-plan
            # independent — the bitwise chaos invariant rests on this.
            while (
                not self.queue.full()
                and self.batcher.ready(self.sim.now)
            ):
                micro = self.batcher.pop_batch(self.sim.now)
                assert micro is not None  # ready() just fired
                self.queue.put(
                    FleetBatch(batch_id=self.next_batch_id, micro=micro)
                )
                self.next_batch_id += 1
                progress = True
            while len(self.queue) > 0:
                use_fallback = False
                replica = self.router.select(self.replicas, self.sim.now)
                if replica is None:
                    fallback = self._fallback_candidate()
                    if fallback is None:
                        break
                    replica, use_fallback = fallback, True
                assert isinstance(replica, ReplicaExecutor)
                self.dispatch(self.queue.get(), replica, use_fallback)
                progress = True
        if not self._any_alive():
            self._shed_backlog("fleet outage")

    def _fallback_candidate(self) -> Optional[ReplicaExecutor]:
        """A replica able to serve on its stale fallback, or ``None``."""
        bound = self.cfg.degradation.max_staleness
        eligible: List[ReplicaExecutor] = []
        for replica in self.replicas:
            if not replica.admits():
                continue
            if replica.in_flight_count >= self.cfg.admission.max_in_flight:
                continue
            age = replica.fallback_age(self.sim.now)
            if age is None or age > bound:
                continue
            eligible.append(replica)
        if not eligible:
            return None
        eligible.sort(key=lambda r: (r.in_flight_count, r.replica_id))
        chosen = eligible[0]
        age = chosen.fallback_age(self.sim.now)
        assert age is not None
        self.max_fallback_age = max(self.max_fallback_age, age)
        return chosen

    def dispatch(
        self,
        fleet_batch: FleetBatch,
        replica: ReplicaExecutor,
        use_fallback: bool,
    ) -> None:
        record = replica.begin(
            fleet_batch, self.sim.now, use_fallback, self.fleet.injector
        )
        if record.completion_scheduled:
            self.sim.schedule(
                record.duration,
                lambda r=replica, t=record.token: self.complete(r, t),
            )
        # else: a stuck window swallowed the completion; the health
        # watchdog will declare the replica dead and redirect.

    def complete(self, replica: ReplicaExecutor, token: int) -> None:
        record = replica.complete(token)
        if record is None:
            return  # the replica crashed; this batch was redirected
        now = self.sim.now
        micro = record.fleet_batch.micro
        self.metrics.record_batch(
            ServedBatch(
                batch_id=record.fleet_batch.batch_id,
                request_ids=tuple(
                    r.request_id for r in micro.requests
                ),
                batch=record.coalesced,
                model_version=record.model_version,
                worker_id=replica.replica_id,
                start_time=record.start,
                finish_time=now,
                predictions=record.predictions,
                hot_lookups=record.hot_lookups,
                cold_lookups=record.cold_lookups,
            )
        )
        worst = 0.0
        for request, prob in zip(micro.requests, record.predictions):
            latency = now - request.arrival_time
            worst = max(worst, latency)
            self.metrics.record_result(
                RequestResult(
                    request_id=request.request_id,
                    arrival_time=request.arrival_time,
                    finish_time=now,
                    model_version=record.model_version,
                    prediction=float(prob),
                )
            )
        if record.is_primary:
            if worst > self.cfg.degradation.slo_target:
                replica.breaker.record_failure(now)
            else:
                replica.breaker.record_success(now)
        self.monitor.record_completion(replica.replica_id, worst)
        self.recent_latencies.append(worst)
        self.outstanding -= record.fleet_batch.size
        self.advance_swap()
        self._advance_retire(replica)
        self.service_cycle()

    def crash(self, replica_id: int, spec: FaultSpec) -> None:
        replica = self._replica_by_id(replica_id)
        injector = self.fleet.injector
        if replica is None or not replica.alive:
            if injector is not None:
                injector.fleet_fired(
                    spec, self.sim.now, "target already gone"
                )
            return
        orphans = replica.kill(self.sim.now)
        if injector is not None:
            injector.fleet_fired(
                spec, self.sim.now,
                f"killed with {len(orphans)} batches in flight",
            )
        for fleet_batch in orphans:
            self._redirect(fleet_batch, replica)
        self.advance_swap()
        self.service_cycle()

    def _declare_stuck(self, replica: ReplicaExecutor) -> None:
        replica.stuck_declared = True
        orphans = replica.kill(self.sim.now)
        for fleet_batch in orphans:
            self._redirect(fleet_batch, replica)

    def _redirect(
        self, fleet_batch: FleetBatch, from_replica: ReplicaExecutor
    ) -> None:
        fleet_batch.attempts += 1
        decision = self.router.plan_redirect(
            fleet_batch.batch_id,
            from_replica.replica_id,
            fleet_batch.attempts,
            self.sim.now,
        )
        if decision.action == "shed":
            self._shed_batch_requests(fleet_batch)
            return
        self.sim.schedule(
            decision.delay,
            lambda fb=fleet_batch: self._requeue(fb),
        )

    def _requeue(self, fleet_batch: FleetBatch) -> None:
        self.queue.put_front(fleet_batch)
        self.service_cycle()

    def _shed_batch_requests(self, fleet_batch: FleetBatch) -> None:
        for request in fleet_batch.micro.requests:
            self.shed_ids.append(request.request_id)
            self.metrics.record_rejection()
        self.outstanding -= fleet_batch.size

    def _shed_backlog(self, reason: str) -> None:
        """Fleet-wide outage: nothing alive, so shed all pending work."""
        while len(self.queue) > 0:
            self._shed_batch_requests(self.queue.get())
        while not self.batcher.empty():
            micro = self.batcher.force_pop(self.sim.now)
            assert micro is not None
            self._shed_batch_requests(
                FleetBatch(batch_id=self.next_batch_id, micro=micro)
            )
            self.next_batch_id += 1

    # -- probe loop ----------------------------------------------------
    def _maybe_schedule_probe(self) -> None:
        if self.probe_pending or not self._active():
            return
        self.probe_pending = True
        self.sim.schedule(self.cfg.probe.interval, self.probe_tick)

    def probe_tick(self) -> None:
        self.probe_pending = False
        now = self.sim.now
        for replica in self.replicas:
            self.monitor.observe(
                now,
                replica.replica_id,
                replica.alive,
                replica.breaker.state,
                replica.in_flight_count,
            )
        # Stuck watchdog: a replica whose oldest in-flight batch aged
        # past the timeout is declared dead and its work redirected.
        for replica in self.replicas:
            if not replica.alive:
                continue
            oldest = replica.oldest_start()
            if oldest is not None and self.monitor.is_stuck(oldest, now):
                self._declare_stuck(replica)
        self.advance_swap()
        self._autoscale_tick()
        self.service_cycle()
        self._maybe_schedule_probe()

    # -- rolling swap --------------------------------------------------
    def start_swap(
        self,
        snapshot: ModelSnapshot,
        hot_rows: Optional[HotRowMap],
        spec: Optional[FaultSpec],
    ) -> None:
        if spec is not None and self.fleet.injector is not None:
            self.fleet.injector.fleet_fired(
                spec, self.sim.now, "forced rolling swap"
            )
        if snapshot.version <= self.fleet_version:
            # Monotonicity guard: an acknowledged newer snapshot is
            # never displaced by a stale one.
            self.stale_swaps += 1
            return
        if self.active_swap is not None:
            if snapshot.version <= self.active_swap.snapshot.version:
                self.stale_swaps += 1
                return
            self.swap_backlog.append((snapshot, hot_rows))
            return
        order = [r.replica_id for r in self.replicas if r.alive]
        self.active_swap = _ActiveSwap(
            snapshot=snapshot,
            hot_rows=hot_rows,
            order=order,
            floor=math.ceil(len(order) / 2),
            started_at=self.sim.now,
            min_live_observed=self._live_count(),
        )
        self.advance_swap()
        self.service_cycle()

    def advance_swap(self) -> None:
        """Push the rolling swap as far as current drain state allows."""
        swap = self.active_swap
        if swap is None:
            return
        while True:
            if swap.index >= len(swap.order):
                self._finish_swap(swap)
                return
            replica = self._replica_by_id(swap.order[swap.index])
            if (
                replica is None
                or not replica.alive
                or replica.version >= swap.snapshot.version
            ):
                # Crashed mid-roll, retired, or already current: skip.
                swap.index += 1
                continue
            if replica.state == ReplicaState.LIVE:
                live = self._live_count()
                alive = sum(1 for r in self.replicas if r.alive)
                # The ⌈N/2⌉ floor can never exceed alive-1, or a swap
                # would wedge once crashes (or N=1) leave too few
                # replicas to both drain one and keep the floor.  A
                # one-replica fleet drains anyway: batches wait in the
                # shared queue during the brief install (DRAINING
                # counts as alive, so the outage shed does not fire).
                effective_floor = min(swap.floor, max(alive - 1, 0))
                if live - 1 < effective_floor:
                    return  # draining one more would breach the floor
                replica.begin_drain("swap")
                swap.min_live_observed = min(
                    swap.min_live_observed, self._live_count()
                )
            if replica.pending_action != "swap":
                return  # draining for retirement; wait it out
            if replica.in_flight_count > 0:
                return  # wait for the drain to finish
            replica.install(swap.snapshot, swap.hot_rows, self.sim.now)
            swap.replica_times.append((replica.replica_id, self.sim.now))
            swap.index += 1

    def _finish_swap(self, swap: _ActiveSwap) -> None:
        swap.completed_at = self.sim.now
        self.completed_swaps.append(swap)
        self.metrics.record_swap(self.sim.now)
        self.fleet_version = swap.snapshot.version
        self.current_snapshot = swap.snapshot
        if swap.hot_rows is not None:
            self.current_hot_rows = swap.hot_rows
        self.active_swap = None
        if self.swap_backlog:
            snapshot, hot_rows = self.swap_backlog.pop(0)
            self.start_swap(snapshot, hot_rows, None)

    # -- autoscaling ---------------------------------------------------
    def _autoscale_tick(self) -> None:
        policy = self.cfg.autoscale
        window = self.recent_latencies
        self.recent_latencies = []
        if policy is None or not window:
            return
        signal = max(window)
        slo = self.cfg.degradation.slo_target
        alive = sum(1 for r in self.replicas if r.alive)
        if signal > policy.high_watermark * slo:
            self.low_streak = 0
            if alive < policy.max_replicas:
                self._scale_up(signal)
        elif signal < policy.low_watermark * slo:
            self.low_streak += 1
            if (
                self.low_streak >= policy.cooldown_ticks
                and self._live_count() > policy.min_replicas
                and self.active_swap is None
            ):
                self._scale_down(signal)
                self.low_streak = 0
        else:
            self.low_streak = 0

    def _scale_up(self, signal: float) -> None:
        replica_id = self.next_replica_id
        self.next_replica_id += 1
        executor = self.fleet._make_executor(
            replica_id, self.current_snapshot, self.current_hot_rows
        )
        self.replicas.append(executor)
        self.autoscale_events.append(
            AutoscaleEvent(
                time=self.sim.now,
                action="scale_up",
                replica_id=replica_id,
                signal=signal,
                live_after=self._live_count(),
            )
        )

    def _scale_down(self, signal: float) -> None:
        live = [r for r in self.replicas if r.state == ReplicaState.LIVE]
        victim = max(live, key=lambda r: r.replica_id)
        victim.begin_drain("retire")
        self.autoscale_events.append(
            AutoscaleEvent(
                time=self.sim.now,
                action="scale_down",
                replica_id=victim.replica_id,
                signal=signal,
                live_after=self._live_count(),
            )
        )
        self._advance_retire(victim)

    def _advance_retire(self, replica: ReplicaExecutor) -> None:
        if (
            replica.state == ReplicaState.DRAINING
            and replica.pending_action == "retire"
            and replica.in_flight_count == 0
        ):
            replica.retire()

    # -- helpers -------------------------------------------------------
    def _replica_by_id(
        self, replica_id: int
    ) -> Optional[ReplicaExecutor]:
        for replica in self.replicas:
            if replica.replica_id == replica_id:
                return replica
        return None

    # -- run -----------------------------------------------------------
    def execute(self) -> FleetOutcome:
        first_arrival = (
            self.requests[0].arrival_time if self.requests else 0.0
        )
        for request in self.requests:
            self.sim.schedule(
                request.arrival_time, lambda r=request: self.arrive(r)
            )
        if self.fleet.injector is not None:
            for time, replica_id, spec in (
                self.fleet.injector.replica_crashes()
            ):
                self.sim.schedule(
                    time,
                    lambda rid=replica_id, s=spec: self.crash(rid, s),
                )
        for time, snapshot, hot_rows, spec in sorted(
            self.fleet._swaps, key=lambda s: s[0]
        ):
            self.sim.schedule(
                time,
                lambda sn=snapshot, h=hot_rows, sp=spec: self.start_swap(
                    sn, h, sp
                ),
            )
        self._maybe_schedule_probe()
        end_time = self.sim.run()
        # Safety net: anything still queued after the event heap drains
        # (e.g. every replica died) is shed so accounting closes.
        if len(self.queue) > 0 or not self.batcher.empty():
            self._shed_backlog("post-run sweep")
        return self._build_outcome(first_arrival, end_time)

    def _build_outcome(
        self, first_arrival: float, end_time: float
    ) -> FleetOutcome:
        hot = sum(b.hot_lookups for b in self.metrics.served_batches)
        cold = sum(b.cold_lookups for b in self.metrics.served_batches)
        num_hot_rows = (
            self.replicas[0].serving_model.num_hot_rows
            if self.replicas else 0
        )
        report = self.metrics.build_report(
            duration=max(end_time - first_arrival, 0.0),
            max_queue_depth=max(
                self.batcher.max_depth, self.queue.max_depth
            ),
            cache_hit_rate=hot / (hot + cold) if hot + cold else 0.0,
            num_hot_rows=num_hot_rows,
        )
        swaps = [s.report() for s in self.completed_swaps]
        if self.active_swap is not None:
            swaps.append(self.active_swap.report())
        replica_reports = tuple(
            ReplicaReport(
                replica_id=r.replica_id,
                final_state=r.state,
                final_version=r.version,
                batches_served=r.batches_served,
                requests_served=r.requests_served,
                fallback_batches=r.fallback_batches,
                crash_time=r.crash_time,
                stuck_declared=r.stuck_declared,
                swap_times=tuple(r.swap_times),
                breaker_transitions=tuple(r.breaker.transitions),
                final_breaker_state=r.breaker.state,
            )
            for r in self.replicas
        )
        return FleetOutcome(
            report=report,
            results=tuple(
                sorted(self.metrics.results, key=lambda r: r.request_id)
            ),
            served_batches=tuple(self.metrics.served_batches),
            rejected_ids=tuple(self.rejected_ids),
            shed_ids=tuple(sorted(self.shed_ids)),
            redirects=tuple(self.router.redirects),
            replicas=replica_reports,
            swaps=tuple(swaps),
            stale_swaps_rejected=self.stale_swaps,
            autoscale_events=tuple(self.autoscale_events),
            health_history=tuple(self.monitor.history),
            final_version=self.fleet_version,
            queue_max_depth=self.queue.max_depth,
            unaccounted=self.outstanding,
        )
