"""Memory-budget auto-tuner: pick strategy + params per table.

Given per-table :class:`~repro.reorder.stats.TableStats` (cardinality
plus measured hot-mass skew) and a global byte budget, the planner
emits a :class:`CompressionPlan` assigning each table a compression
strategy and its parameters so that the summed realized
``memory_bytes()`` stays under the budget.

The search has the shape of Hetu's ``TTEmbTrainer._get_rank``: an
*outer* binary search over a single global compression-rate knob
``r`` — each table's byte target is ``dense_bytes * r`` — with an
*inner* per-table parameter search (largest TT rank / hash bucket
count / ROBE array size / PQ codebook size whose footprint fits the
target).  Per-table footprints are monotone in ``r``, so the outer
bisection is sound; the returned plan is the largest ``r`` whose total
fits.

Everything here is pure integer/float arithmetic over stats sorted by
``table_idx`` — plans are bitwise deterministic and independent of the
caller's insertion order.

Strategy selection (``strategy="auto"``), per table:

====================================  ==========================
condition (first match wins)          choice
====================================  ==========================
dense fits the table's byte target    ``dense`` (no compression)
skewed (hot_mass > 2 * hot_fraction)  ``tt`` (exact: no aliasing
                                      of hot rows)
unique_fraction < 0.5                 ``hash`` (dead rows collide
                                      harmlessly)
rows >= 65536 and PQ code table fits  ``pq`` (per-row cost is 1
                                      int32 code tuple)
otherwise                             ``robe``
====================================  ==========================

A forced strategy (``"hash"``/``"robe"``/``"pq"``/``"tt"``) applies to
every table; only the parameter search runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.embeddings.dense import DenseEmbeddingBag
from repro.embeddings.eff_tt_embedding import EffTTEmbeddingBag
from repro.embeddings.hash_embedding import HashEmbeddingBag
from repro.embeddings.pq_embedding import (
    PQEmbeddingBag,
    default_pq_subspaces,
)
from repro.embeddings.protocol import CompressionSpec, SpecParamValue
from repro.embeddings.robe_embedding import RobeEmbeddingBag
from repro.embeddings.tt_core import TTSpec
from repro.embeddings.tt_embedding import TTEmbeddingBag
from repro.reorder.stats import TableStats
from repro.utils.factorize import ceil_balanced_factors, suggest_tt_shapes
from repro.utils.rng import RngLike

__all__ = [
    "TablePlan",
    "CompressionPlan",
    "plan_compression",
    "binary_search_max",
    "build_bag_from_plan",
    "build_bag_from_spec",
    "COMPRESS_STRATEGIES",
]

#: Strategies the planner can assign (``auto`` resolves to one of these).
COMPRESS_STRATEGIES: Tuple[str, ...] = ("dense", "tt", "hash", "robe", "pq")

#: TT rank search ceiling (Hetu searches 0..1000; ranks beyond this
#: stop compressing anything we train here).
_MAX_TT_RANK = 512

#: Row count above which PQ's fixed per-row code cost amortizes.
_PQ_ROWS_THRESHOLD = 65536

#: Outer bisection iterations: 2^-48 rate resolution.
_RATE_ITERS = 48


def binary_search_max(
    lo: int, hi: int, fits: Callable[[int], bool]
) -> Optional[int]:
    """Largest ``v`` in ``[lo, hi]`` with ``fits(v)``, or ``None``.

    ``fits`` must be monotone (True then False as ``v`` grows) — the
    Hetu ``_get_rank`` search shape.
    """
    if lo > hi or not fits(lo):
        return None
    best = lo
    while lo <= hi:
        mid = (lo + hi) // 2
        if fits(mid):
            best = mid
            lo = mid + 1
        else:
            hi = mid - 1
    return best


@dataclass(frozen=True)
class TablePlan:
    """One table's assignment: strategy, parameters, realized bytes."""

    table_idx: int
    num_rows: int
    strategy: str
    params: Tuple[Tuple[str, SpecParamValue], ...]
    memory_bytes: int
    dense_bytes: int

    def param_dict(self) -> Dict[str, SpecParamValue]:
        return {k: v for k, v in self.params}

    @property
    def compression_ratio(self) -> float:
        return self.dense_bytes / max(1, self.memory_bytes)


@dataclass(frozen=True)
class CompressionPlan:
    """Auto-tuner output: per-table strategy + params under a budget."""

    budget_bytes: int
    embedding_dim: int
    dtype_bytes: int
    rate: float
    tables: Tuple[TablePlan, ...] = field(default=())

    @property
    def total_bytes(self) -> int:
        return sum(t.memory_bytes for t in self.tables)

    @property
    def feasible(self) -> bool:
        return self.total_bytes <= self.budget_bytes

    @property
    def dense_total_bytes(self) -> int:
        return sum(t.dense_bytes for t in self.tables)

    def strategy_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for t in self.tables:
            counts[t.strategy] = counts.get(t.strategy, 0) + 1
        return counts

    def format_table(self) -> str:
        lines = [
            f"{'table':>5}  {'rows':>10}  {'strategy':<8}  "
            f"{'bytes':>12}  {'ratio':>8}  params",
            "-" * 72,
        ]
        for t in self.tables:
            params = ", ".join(
                f"{k}={v}" for k, v in t.params if k != "hash_params"
            )
            lines.append(
                f"{t.table_idx:>5}  {t.num_rows:>10}  {t.strategy:<8}  "
                f"{t.memory_bytes:>12}  {t.compression_ratio:>7.1f}x  "
                f"{params}"
            )
        lines.append("-" * 72)
        lines.append(
            f"total {self.total_bytes:,} B of {self.budget_bytes:,} B "
            f"budget (dense {self.dense_total_bytes:,} B, "
            f"rate={self.rate:.4g}, "
            f"{'feasible' if self.feasible else 'INFEASIBLE'})"
        )
        return "\n".join(lines)


@lru_cache(maxsize=4096)
def _tt_shapes(num_rows: int, embedding_dim: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    rows, cols, _ = suggest_tt_shapes(num_rows, embedding_dim)
    return tuple(rows), tuple(cols)


def _tt_bytes(
    num_rows: int, embedding_dim: int, tt_rank: int, dtype_bytes: int
) -> int:
    row_shape, col_shape = _tt_shapes(num_rows, embedding_dim)
    spec = TTSpec.create(list(row_shape), list(col_shape), tt_rank)
    return spec.num_params * dtype_bytes


def _pq_min_bytes(
    num_rows: int, embedding_dim: int, dtype_bytes: int
) -> int:
    m = default_pq_subspaces(embedding_dim)
    return PQEmbeddingBag.estimate_bytes(
        num_rows, embedding_dim, m, 1, dtype_bytes
    )


def _params_for_target(
    strategy: str,
    num_rows: int,
    embedding_dim: int,
    target_bytes: int,
    dtype_bytes: int,
) -> Tuple[Dict[str, SpecParamValue], int]:
    """Largest-parameter configuration of ``strategy`` within target.

    Returns ``(params, realized_bytes)``.  When even the minimal
    configuration exceeds the target, the minimal one is returned (the
    outer search marks the plan infeasible if the total still busts
    the budget).
    """
    if strategy == "dense":
        return {}, num_rows * embedding_dim * dtype_bytes
    if strategy == "tt":
        rank = binary_search_max(
            1,
            _MAX_TT_RANK,
            lambda r: _tt_bytes(num_rows, embedding_dim, r, dtype_bytes)
            <= target_bytes,
        )
        rank = 1 if rank is None else rank
        return {"tt_rank": rank}, _tt_bytes(
            num_rows, embedding_dim, rank, dtype_bytes
        )
    if strategy == "hash":
        row_bytes = embedding_dim * dtype_bytes
        buckets = max(1, min(num_rows, target_bytes // row_bytes))
        return {"num_buckets": int(buckets)}, HashEmbeddingBag.estimate_bytes(
            buckets, embedding_dim, dtype_bytes
        )
    if strategy == "robe":
        size = max(
            1, min(num_rows * embedding_dim, target_bytes // dtype_bytes)
        )
        return {"array_size": int(size)}, RobeEmbeddingBag.estimate_bytes(
            size, dtype_bytes
        )
    if strategy == "pq":
        # The int32 code table costs num_rows * M * 4 bytes no matter
        # how small the codebooks get, so the search walks M down the
        # divisors of the dim (largest = finest quantization first) and
        # takes the first subspace count whose floor fits the target.
        # Within that M, K^M >= rows already gives every row a distinct
        # code tuple; larger codebooks buy nothing (ceil-cube capacity
        # rule).
        divisors = [
            m
            for m in range(default_pq_subspaces(embedding_dim), 0, -1)
            if embedding_dim % m == 0
        ]
        codebook_row_bytes = embedding_dim * dtype_bytes  # summed over m
        chosen_m, chosen_k = divisors[-1], 1  # minimal fallback
        for m in divisors:
            floor = PQEmbeddingBag.estimate_bytes(
                num_rows, embedding_dim, m, 1, dtype_bytes
            )
            if floor > target_bytes:
                continue
            capacity = max(ceil_balanced_factors(num_rows, m))
            chosen_m = m
            chosen_k = max(
                1,
                min(
                    capacity,
                    1 + (target_bytes - floor) // codebook_row_bytes,
                ),
            )
            break
        return {
            "num_subspaces": chosen_m,
            "num_codes": int(chosen_k),
        }, PQEmbeddingBag.estimate_bytes(
            num_rows, embedding_dim, chosen_m, chosen_k, dtype_bytes
        )
    raise ValueError(f"unknown strategy {strategy!r}")


def _choose_strategy(
    st: TableStats,
    embedding_dim: int,
    target_bytes: int,
    dtype_bytes: int,
) -> str:
    """The ``auto`` decision rule (see module docstring)."""
    if st.num_rows * embedding_dim * dtype_bytes <= target_bytes:
        return "dense"
    if st.skewed:
        return "tt"
    if st.unique_fraction < 0.5:
        return "hash"
    if (
        st.num_rows >= _PQ_ROWS_THRESHOLD
        and _pq_min_bytes(st.num_rows, embedding_dim, dtype_bytes)
        <= target_bytes
    ):
        return "pq"
    return "robe"


def _plan_at_rate(
    stats: Sequence[TableStats],
    embedding_dim: int,
    rate: float,
    strategy: str,
    dtype_bytes: int,
) -> List[TablePlan]:
    plans: List[TablePlan] = []
    for st in stats:
        dense_bytes = st.num_rows * embedding_dim * dtype_bytes
        target = int(dense_bytes * rate)
        if strategy == "auto":
            chosen = _choose_strategy(
                st, embedding_dim, target, dtype_bytes
            )
        else:
            chosen = strategy
        params, realized = _params_for_target(
            chosen, st.num_rows, embedding_dim, target, dtype_bytes
        )
        plans.append(
            TablePlan(
                table_idx=st.table_idx,
                num_rows=st.num_rows,
                strategy=chosen,
                params=tuple(sorted(params.items())),
                memory_bytes=realized,
                dense_bytes=dense_bytes,
            )
        )
    return plans


def plan_compression(
    stats: Sequence[TableStats],
    embedding_dim: int,
    budget_bytes: int,
    strategy: str = "auto",
    dtype_bytes: int = 8,
) -> CompressionPlan:
    """Binary-search the largest global rate whose plan fits the budget.

    Parameters
    ----------
    stats:
        Per-table statistics (any order; the plan is sorted by
        ``table_idx`` and independent of input permutation).
    embedding_dim:
        Model embedding dimension (all tables share it).
    budget_bytes:
        Global byte budget over every table's ``memory_bytes()``.
    strategy:
        ``"auto"`` (per-table choice) or a forced strategy from
        :data:`COMPRESS_STRATEGIES` (minus ``dense`` — use a plain
        dense model for that).
    dtype_bytes:
        Float itemsize the tables will train at (8 = float64
        reference).
    """
    if strategy != "auto" and strategy not in COMPRESS_STRATEGIES:
        raise ValueError(
            f"strategy must be 'auto' or one of {COMPRESS_STRATEGIES}, "
            f"got {strategy!r}"
        )
    if budget_bytes < 1:
        raise ValueError(f"budget_bytes must be >= 1, got {budget_bytes}")
    if embedding_dim < 1:
        raise ValueError(
            f"embedding_dim must be >= 1, got {embedding_dim}"
        )
    ordered = sorted(stats, key=lambda s: s.table_idx)
    if len({s.table_idx for s in ordered}) != len(ordered):
        raise ValueError("duplicate table_idx in stats")

    def total_at(rate: float) -> int:
        return sum(
            p.memory_bytes
            for p in _plan_at_rate(
                ordered, embedding_dim, rate, strategy, dtype_bytes
            )
        )

    if total_at(1.0) <= budget_bytes:
        best_rate = 1.0
    elif total_at(0.0) > budget_bytes:
        # Even minimal parameters bust the budget: emit the minimal
        # plan and let the caller see feasible == False.
        best_rate = 0.0
    else:
        lo, hi = 0.0, 1.0
        for _ in range(_RATE_ITERS):
            mid = (lo + hi) / 2.0
            if total_at(mid) <= budget_bytes:
                lo = mid
            else:
                hi = mid
        best_rate = lo
    tables = _plan_at_rate(
        ordered, embedding_dim, best_rate, strategy, dtype_bytes
    )
    return CompressionPlan(
        budget_bytes=int(budget_bytes),
        embedding_dim=int(embedding_dim),
        dtype_bytes=int(dtype_bytes),
        rate=best_rate,
        tables=tuple(tables),
    )


def build_bag_from_plan(
    entry: TablePlan,
    embedding_dim: int,
    seed: RngLike = 0,
    dtype: np.dtype = np.float64,
):
    """Construct the bag a :class:`TablePlan` describes."""
    params = entry.param_dict()
    rows = entry.num_rows
    if entry.strategy == "dense":
        return DenseEmbeddingBag(rows, embedding_dim, seed=seed, dtype=dtype)
    if entry.strategy == "tt":
        return EffTTEmbeddingBag(
            rows,
            embedding_dim,
            tt_rank=int(params["tt_rank"]),
            seed=seed,
            dtype=dtype,
        )
    if entry.strategy == "hash":
        return HashEmbeddingBag(
            rows,
            embedding_dim,
            num_buckets=int(params["num_buckets"]),
            seed=seed,
            dtype=dtype,
        )
    if entry.strategy == "robe":
        return RobeEmbeddingBag(
            rows,
            embedding_dim,
            array_size=int(params["array_size"]),
            seed=seed,
            dtype=dtype,
        )
    if entry.strategy == "pq":
        return PQEmbeddingBag(
            rows,
            embedding_dim,
            num_subspaces=int(params["num_subspaces"]),
            num_codes=int(params["num_codes"]),
            seed=seed,
            dtype=dtype,
        )
    raise ValueError(f"unknown strategy {entry.strategy!r}")


def build_bag_from_spec(
    spec: CompressionSpec,
    seed: RngLike = 0,
    dtype: np.dtype = np.float64,
):
    """Construct an architecturally identical bag from its spec.

    The returned bag's ``state_arrays()`` accept the original bag's
    arrays bitwise (used by checkpoint restore for the kind-tagged
    formats).
    """
    params = spec.param_dict()
    rows, dim = spec.num_embeddings, spec.embedding_dim
    if spec.kind == "dense":
        return DenseEmbeddingBag(rows, dim, seed=seed, dtype=dtype)
    if spec.kind in ("tt", "eff_tt"):
        kwargs = dict(
            tt_rank=[int(r) for r in params["ranks"]],
            row_shape=[int(r) for r in params["row_shape"]],
            col_shape=[int(c) for c in params["col_shape"]],
            seed=seed,
            dtype=dtype,
        )
        if spec.kind == "tt":
            return TTEmbeddingBag(rows, dim, **kwargs)
        return EffTTEmbeddingBag(
            rows, dim, optimizer=str(params.get("optimizer", "sgd")), **kwargs
        )
    if spec.kind == "hash":
        return HashEmbeddingBag(
            rows,
            dim,
            num_buckets=int(params["num_buckets"]),
            seed=seed,
            dtype=dtype,
        )
    if spec.kind == "robe":
        hash_params = tuple(int(p) for p in params["hash_params"])
        return RobeEmbeddingBag(
            rows,
            dim,
            array_size=int(params["array_size"]),
            chunk_size=int(params["chunk_size"]),
            hash_params=hash_params,
            seed=seed,
            dtype=dtype,
        )
    if spec.kind == "pq":
        return PQEmbeddingBag(
            rows,
            dim,
            num_subspaces=int(params["num_subspaces"]),
            num_codes=int(params["num_codes"]),
            seed=seed,
            dtype=dtype,
        )
    raise ValueError(f"unknown spec kind {spec.kind!r}")
