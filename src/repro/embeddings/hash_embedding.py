"""Mod-hash compressed embedding bag (the "hashing trick").

The simplest compression strategy in the zoo: logical row ``i`` maps to
physical bucket ``i % num_buckets`` of a dense ``(num_buckets, dim)``
table.  Rows that collide share (and co-train) one vector.  This is
the baseline every compressed-embedding paper (Hetu's compression
suite, ROBE, DPQ) compares against: zero per-lookup arithmetic beyond
the modulo, footprint exactly ``num_buckets * dim`` floats, accuracy
degrading smoothly as buckets shrink.

Addressing is parameter-free (no hash constants), so a checkpoint
needs only ``num_buckets`` (in the spec) plus the weight array.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

import numpy as np

from repro.backend import (
    ZONE_COMPRESS_UPDATE,
    ZONE_HASH_LOOKUP,
    get_backend,
)
from repro.embeddings.base import (
    EmbeddingBagBase,
    expand_bag_ids,
    segment_sum,
)
from repro.embeddings.protocol import CompressionSpec
from repro.utils.factorize import ceil_balanced_factors
from repro.utils.rng import RngLike, ensure_rng

__all__ = ["HashEmbeddingBag", "default_hash_buckets"]


def default_hash_buckets(num_embeddings: int, compress_rate: float) -> int:
    """Default bucket count for a target compression rate.

    The raw target ``num_embeddings * compress_rate`` is rounded *up*
    to a near-balanced two-factor tile via
    :func:`~repro.utils.factorize.ceil_balanced_factors` — the same
    ceil-cube rule TT shape selection uses — so bucket tables stay
    rectangular-tileable, then clamped to ``[1, num_embeddings]``.
    """
    if not 0.0 < compress_rate <= 1.0:
        raise ValueError(
            f"compress_rate must be in (0, 1], got {compress_rate}"
        )
    target = max(1, math.ceil(num_embeddings * compress_rate))
    tiled = math.prod(ceil_balanced_factors(target, 2))
    return max(1, min(num_embeddings, tiled))


class HashEmbeddingBag(EmbeddingBagBase):
    """``(num_buckets, embedding_dim)`` table addressed by ``i % B``.

    Parameters
    ----------
    num_embeddings, embedding_dim:
        Logical table shape.
    num_buckets:
        Physical bucket count; defaults from ``compress_rate``.
    compress_rate:
        Target physical/logical row ratio when ``num_buckets`` is not
        given (Hetu-style global knob).
    seed:
        RNG for initialization.
    dtype:
        Storage dtype (float64 default, matching the NN substrate).
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        num_buckets: Optional[int] = None,
        compress_rate: float = 0.25,
        seed: RngLike = 0,
        dtype: np.dtype = np.float64,
    ) -> None:
        super().__init__(num_embeddings, embedding_dim)
        if num_buckets is None:
            num_buckets = default_hash_buckets(num_embeddings, compress_rate)
        num_buckets = int(num_buckets)
        if not 1 <= num_buckets <= num_embeddings:
            raise ValueError(
                f"num_buckets must be in [1, {num_embeddings}], "
                f"got {num_buckets}"
            )
        self.num_buckets = num_buckets
        self.dtype = np.dtype(dtype)
        rng = ensure_rng(seed)
        bound = 1.0 / np.sqrt(num_buckets)
        self.weight = rng.uniform(
            -bound, bound, size=(num_buckets, embedding_dim)
        ).astype(self.dtype)
        #: update counter for hot-row cache staleness detection
        self.version = 0
        self._saved_buckets: Optional[np.ndarray] = None
        self._saved_boundaries: Optional[np.ndarray] = None
        self._saved_row_grads: Optional[np.ndarray] = None

    def _bucketize(self, idx: np.ndarray) -> np.ndarray:
        return idx % np.int64(self.num_buckets)

    def forward(
        self, indices: np.ndarray, offsets: Optional[np.ndarray] = None
    ) -> np.ndarray:
        idx, boundaries = self._validate_inputs(indices, offsets)
        bk = get_backend()
        buckets = self._bucketize(idx)
        with bk.zone(ZONE_HASH_LOOKUP):
            rows = bk.gather_rows(self.weight, buckets)
        self._saved_buckets = buckets
        self._saved_boundaries = boundaries
        return segment_sum(rows, boundaries)

    def backward(self, grad_output: np.ndarray) -> None:
        if self._saved_buckets is None or self._saved_boundaries is None:
            raise RuntimeError("backward called before forward")
        bk = get_backend()
        grad_output = bk.asarray(grad_output, dtype=self.dtype)
        num_bags = self._saved_boundaries.size - 1
        if grad_output.shape != (num_bags, self.embedding_dim):
            raise ValueError(
                f"expected grad_output shape "
                f"{(num_bags, self.embedding_dim)}, got {grad_output.shape}"
            )
        bag_ids = expand_bag_ids(self._saved_boundaries)
        with bk.zone(ZONE_HASH_LOOKUP):
            # Sum pooling: every member of a bag gets the bag's grad.
            self._saved_row_grads = bk.gather_rows(grad_output, bag_ids)

    def step(self, lr: float) -> None:
        if self._saved_row_grads is None:
            raise RuntimeError("step called before backward")
        bk = get_backend()
        with bk.zone(ZONE_COMPRESS_UPDATE):
            bk.scatter_add_rows(
                self.weight,
                self._saved_buckets,
                self._saved_row_grads,
                scale=-lr,
            )
        self.version += 1
        self._saved_buckets = None
        self._saved_boundaries = None
        self._saved_row_grads = None

    # -- CompressedEmbedding protocol ---------------------------------
    def reconstruct_rows(self, indices: np.ndarray) -> np.ndarray:
        """Pure row lookup (no training state touched)."""
        idx = np.asarray(indices, dtype=np.int64).reshape(-1)
        if idx.size and (idx.min() < 0 or idx.max() >= self.num_embeddings):
            raise IndexError("row index out of range")
        bk = get_backend()
        with bk.zone(ZONE_HASH_LOOKUP):
            rows = bk.gather_rows(self.weight, self._bucketize(idx))
        return np.asarray(rows)

    def memory_bytes(self) -> int:
        return int(self.weight.nbytes)

    def state_arrays(self) -> Dict[str, np.ndarray]:
        """Live parameter arrays (callers copy before persisting)."""
        return {"weight": self.weight}

    def load_state_arrays(self, arrays: Mapping[str, np.ndarray]) -> None:
        weight = np.asarray(arrays["weight"], dtype=self.dtype)
        if weight.shape != self.weight.shape:
            raise ValueError(
                f"weight shape {weight.shape} != {self.weight.shape}"
            )
        self.weight[...] = weight
        self.version += 1

    def compression_spec(self) -> CompressionSpec:
        return CompressionSpec.create(
            "hash",
            self.num_embeddings,
            self.embedding_dim,
            {"num_buckets": self.num_buckets},
        )

    @property
    def nbytes(self) -> int:
        return self.weight.nbytes

    def nbytes_as(self, dtype: np.dtype = np.float32) -> int:
        """Footprint if stored at ``dtype``."""
        return self.weight.size * np.dtype(dtype).itemsize

    def compression_ratio(self) -> float:
        return self.num_embeddings / self.num_buckets

    @staticmethod
    def estimate_bytes(
        num_buckets: int, embedding_dim: int, dtype_bytes: int = 8
    ) -> int:
        """Planner-side footprint formula (matches ``memory_bytes``)."""
        return int(num_buckets) * int(embedding_dim) * int(dtype_bytes)
