"""The ``CompressedEmbedding`` protocol: one interface, many strategies.

EL-Rec's Eff-TT table was this repo's only compression strategy, and
its identity leaked into every layer (model config, serialization,
serving, resilience, placement).  This module turns that
single-implementation assumption into a structural protocol so dense,
TT, Eff-TT, hash, ROBE and PQ tables are interchangeable everywhere a
table is trained, checkpointed, placed, or served.

The protocol is *structural* (PEP 544): the bag classes do not import
this module, they simply implement the members.  ``isinstance(bag,
CompressedEmbedding)`` works at runtime via ``@runtime_checkable``.

Contract notes
--------------
``state_arrays()`` returns the **live** parameter arrays (not copies),
keyed by short stable names (``weight``, ``core0`` ..., ``codes``).
Callers that persist them must copy; callers that restore may write
in place or go through :meth:`load_state_arrays`.  Key order must be
iterated ``sorted()`` for deterministic payloads (detcheck DET001).

``version`` is a monotonically increasing update counter: every
parameter mutation (``step``/``apply_pending_update``/
``load_state_arrays``) must bump it so hot-row caches
(:class:`~repro.embeddings.inference.HotRowCachedLookup`) can detect
staleness.

``reconstruct_rows`` is the *pure* row materialization used by serving:
it must not touch training state (saved activations, pending grads).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Mapping, Protocol, Tuple, Union, runtime_checkable

import numpy as np

__all__ = [
    "CompressionSpec",
    "CompressedEmbedding",
    "SpecParamValue",
]

#: Spec parameter values: scalars or int tuples (TT shapes/ranks).
SpecParamValue = Union[int, float, str, Tuple[int, ...]]


@dataclass(frozen=True)
class CompressionSpec:
    """Strategy metadata sufficient to rebuild a bag's *shape*.

    ``params`` holds strategy-specific hyperparameters (bucket counts,
    TT shapes, hash constants, codebook sizes) — everything needed to
    reconstruct an architecturally identical bag whose
    ``state_arrays()`` accept this bag's arrays bitwise.  Learned
    parameters themselves live in ``state_arrays()``, not here.
    """

    kind: str
    num_embeddings: int
    embedding_dim: int
    params: Tuple[Tuple[str, SpecParamValue], ...] = field(default=())

    def __post_init__(self) -> None:
        # Normalize to sorted key order so equal specs compare equal
        # regardless of construction order (and JSON is canonical).
        object.__setattr__(
            self, "params", tuple(sorted(self.params, key=lambda kv: kv[0]))
        )

    @classmethod
    def create(
        cls,
        kind: str,
        num_embeddings: int,
        embedding_dim: int,
        params: Mapping[str, SpecParamValue] | None = None,
    ) -> "CompressionSpec":
        items = tuple((params or {}).items())
        return cls(kind, int(num_embeddings), int(embedding_dim), items)

    def param(self, key: str) -> SpecParamValue:
        for k, v in self.params:
            if k == key:
                return v
        raise KeyError(f"spec has no param {key!r}")

    def param_dict(self) -> Dict[str, SpecParamValue]:
        return {k: v for k, v in self.params}

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, tuples as lists)."""
        payload = {
            "kind": self.kind,
            "num_embeddings": self.num_embeddings,
            "embedding_dim": self.embedding_dim,
            "params": {
                k: (list(v) if isinstance(v, tuple) else v)
                for k, v in self.params
            },
        }
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CompressionSpec":
        payload = json.loads(text)
        params: Dict[str, SpecParamValue] = {}
        for k, v in payload.get("params", {}).items():
            params[str(k)] = tuple(int(x) for x in v) if isinstance(
                v, list
            ) else v
        return cls.create(
            str(payload["kind"]),
            int(payload["num_embeddings"]),
            int(payload["embedding_dim"]),
            params,
        )


@runtime_checkable
class CompressedEmbedding(Protocol):
    """Structural interface every embedding-table strategy satisfies.

    EmbeddingBag semantics (sum-pooled ``forward``/``backward``/``step``)
    plus the introspection surface the outer layers need: a byte
    footprint, named state arrays for checkpointing, a rebuildable
    spec, a staleness version counter, and pure row materialization
    for serving.
    """

    num_embeddings: int
    embedding_dim: int
    version: int

    def forward(
        self, indices: np.ndarray, offsets: np.ndarray
    ) -> np.ndarray: ...

    def backward(self, grad_output: np.ndarray) -> None: ...

    def step(self, lr: float) -> None: ...

    def lookup_rows(self, indices: np.ndarray) -> np.ndarray: ...

    def reconstruct_rows(self, indices: np.ndarray) -> np.ndarray: ...

    def memory_bytes(self) -> int: ...

    def state_arrays(self) -> Dict[str, np.ndarray]: ...

    def load_state_arrays(self, arrays: Mapping[str, np.ndarray]) -> None: ...

    def compression_spec(self) -> CompressionSpec: ...
