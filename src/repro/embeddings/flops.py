"""Exact FLOP accounting for TT-table kernels.

The Eff-TT optimizations are *computation-count* reductions: the reuse
buffer shrinks the partial-product GEMMs from one per occurrence to one
per unique prefix, and in-advance gradient aggregation shrinks the
backward chain from one per occurrence to one per unique row.  These
functions count the multiply-add FLOPs of each kernel variant exactly
(2 FLOPs per multiply-add), given a TT spec and the batch's reuse
statistics.

Three uses:

* the device cost model projects TT kernel times as
  ``flops / batched-GEMM-throughput`` — free of the Python-side
  overhead that inflates host wall-clock measurements;
* tests cross-check that the measured Eff-TT/TT-Rec speedups track the
  analytic FLOP ratios;
* :func:`measured_zone_flops` extracts the contraction FLOPs an
  :class:`~repro.backend.instrumented.InstrumentedBackend` observed in
  one kernel zone, so the analytic model here can be validated against
  what the kernels actually executed (shape-derived counts, not
  estimates).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Sequence, Tuple

from repro.embeddings.reuse_buffer import ReusePlan
from repro.embeddings.tt_core import TTSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backend.instrumented import InstrumentedBackend

__all__ = [
    "tt_forward_flops",
    "efftt_forward_flops",
    "tt_backward_flops",
    "efftt_backward_flops",
    "measured_zone_flops",
]

# The backend ops whose FLOPs constitute "chain contraction work" for
# cross-checks against the analytic counts below (gather/scatter are
# traffic, not FLOPs, in this accounting).
CONTRACTION_OPS: Tuple[str, ...] = ("matmul", "einsum")


def measured_zone_flops(
    backend: "InstrumentedBackend",
    zone: str,
    ops: Sequence[str] = CONTRACTION_OPS,
) -> int:
    """Contraction FLOPs an instrumented backend recorded in ``zone``.

    Sums the per-op counters for the given ops only, so elementwise
    and data-movement costs in the same zone do not pollute a
    comparison against the analytic chain counts.
    """
    return sum(
        stats.flops
        for (op_zone, op), stats in backend.op_stats.items()
        if op_zone == zone and op in ops
    )


def _chain_stage_flops(spec: TTSpec, k: int) -> int:
    """FLOPs of the k-th forward chain GEMM for ONE item.

    Stage ``k`` multiplies the accumulated prefix ``(a, R_{k-1})`` with
    the gathered slice ``(R_{k-1}, n_k * R_k)`` where
    ``a = prod_{l<k} n_l``.
    """
    a = math.prod(spec.col_shape[:k])
    return 2 * a * spec.ranks[k] * spec.col_shape[k] * spec.ranks[k + 1]


def tt_forward_flops(spec: TTSpec, num_items: int) -> int:
    """Naive (TT-Rec) lookup FLOPs: the full chain per index occurrence."""
    if num_items < 0:
        raise ValueError(f"num_items must be >= 0, got {num_items}")
    per_item = sum(
        _chain_stage_flops(spec, k) for k in range(1, spec.num_cores)
    )
    return per_item * num_items


def efftt_forward_flops(
    spec: TTSpec, num_unique_prefixes: int, num_unique_rows: int
) -> int:
    """Eff-TT lookup FLOPs with the reuse buffer.

    Stages ``1..d-2`` run once per unique prefix; the final stage runs
    once per unique row (paper §III-A: the Reuse Buffer holds the
    product of the first ``d-1`` cores).
    """
    if num_unique_prefixes < 0 or num_unique_rows < 0:
        raise ValueError("counts must be >= 0")
    prefix_flops = sum(
        _chain_stage_flops(spec, k) for k in range(1, spec.num_cores - 1)
    )
    final_flops = _chain_stage_flops(spec, spec.num_cores - 1)
    return (
        prefix_flops * num_unique_prefixes + final_flops * num_unique_rows
    )


def _backward_per_item_flops(spec: TTSpec) -> int:
    """Backward-chain FLOPs for ONE row gradient (Equation 6).

    Counts the suffix-partial chain plus, per core, the two GEMMs
    ``tmp = left^T G`` and ``grad = tmp right^T``.
    """
    d = spec.num_cores
    total = 0
    # suffix (right) partials: for k = d-1 .. 1, (r*b, s) @ (s, c)
    suffix_cols = 1
    for k in range(d - 1, 0, -1):
        r_prev, n_k, r_next = (
            spec.ranks[k],
            spec.col_shape[k],
            spec.ranks[k + 1],
        )
        total += 2 * r_prev * n_k * r_next * suffix_cols
        suffix_cols *= n_k
    # per-core slice gradients
    prefix_cols = 1
    for k in range(d):
        n_k = spec.col_shape[k]
        suffix = spec.embedding_dim // (prefix_cols * n_k)
        r_prev, r_next = spec.ranks[k], spec.ranks[k + 1]
        # tmp: (r, a) @ (a, b*c)
        total += 2 * r_prev * prefix_cols * n_k * suffix
        # grad: (r*b, c) @ (c, s)
        total += 2 * r_prev * n_k * suffix * r_next
        prefix_cols *= n_k
    return total


def tt_backward_flops(spec: TTSpec, num_items: int) -> int:
    """Naive (TT-Rec) backward FLOPs: full chain per index occurrence."""
    if num_items < 0:
        raise ValueError(f"num_items must be >= 0, got {num_items}")
    return _backward_per_item_flops(spec) * num_items


def efftt_backward_flops(spec: TTSpec, num_unique_rows: int) -> int:
    """Eff-TT backward FLOPs after in-advance gradient aggregation.

    The aggregation itself is additions over the embedding dimension
    (memory-bound, negligible FLOPs next to the chain); the chain then
    runs once per *unique* row (paper §III-B, Figure 6b).
    """
    if num_unique_rows < 0:
        raise ValueError(f"num_unique_rows must be >= 0, got {num_unique_rows}")
    return _backward_per_item_flops(spec) * num_unique_rows


def plan_forward_flops(spec: TTSpec, plan: ReusePlan, reuse: bool = True) -> int:
    """Forward FLOPs for a concrete batch plan."""
    if reuse:
        return efftt_forward_flops(
            spec, plan.num_unique_prefixes, plan.num_unique_rows
        )
    return tt_forward_flops(spec, plan.num_occurrences)


def plan_backward_flops(
    spec: TTSpec, plan: ReusePlan, aggregate: bool = True
) -> int:
    """Backward FLOPs for a concrete batch plan."""
    if aggregate:
        return efftt_backward_flops(spec, plan.num_unique_rows)
    return tt_backward_flops(spec, plan.num_occurrences)
