"""Tensor-Train core container, decomposition, and reconstruction.

Implements the embedding-table TT representation of paper §II-B: the
``(M, N)`` table with ``M = m_1 * ... * m_d`` and ``N = n_1 * ... * n_d``
becomes ``d`` cores ``C^(k)`` of shape ``(R_{k-1}, m_k * n_k, R_k)``
with ``R_0 = R_d = 1`` (Equation 2, Figure 3).

Storage layout: cores are kept as ``(m_k, R_{k-1}, n_k, R_k)`` so that
``core[i_k]`` yields the contiguous TT slice for sub-index ``i_k`` — the
gather that dominates the lookup hot path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backend import ZONE_TT_RECONSTRUCT, get_backend, get_plan_cache
from repro.embeddings.tt_indices import row_index_to_tt
from repro.utils.rng import RngLike, ensure_rng

__all__ = ["TTSpec", "TTCores", "tt_svd", "clamp_ranks"]


def clamp_ranks(
    row_shape: Sequence[int],
    col_shape: Sequence[int],
    ranks: Union[int, Sequence[int]],
) -> List[int]:
    """Resolve user-provided TT ranks to a valid boundary-rank list.

    Accepts a scalar rank (applied to every internal boundary, the
    paper's convention: "the setting of TT rank is 128") or an explicit
    list of ``d-1`` internal ranks.  Each internal rank ``R_k`` is
    clamped to the maximal useful value
    ``min(prod_{l<=k} m_l n_l, prod_{l>k} m_l n_l)``.

    Returns the full ``d+1`` boundary list ``[1, R_1, ..., R_{d-1}, 1]``.
    """
    d = len(row_shape)
    if len(col_shape) != d:
        raise ValueError(
            f"row_shape and col_shape must have equal length, got {d} and "
            f"{len(col_shape)}"
        )
    if d < 2:
        raise ValueError(f"TT decomposition needs >= 2 cores, got {d}")
    if isinstance(ranks, (int, np.integer)):
        internal = [int(ranks)] * (d - 1)
    else:
        internal = [int(r) for r in ranks]
        if len(internal) == d + 1:
            if internal[0] != 1 or internal[-1] != 1:
                raise ValueError(
                    f"boundary ranks must start and end with 1, got {internal}"
                )
            internal = internal[1:-1]
        if len(internal) != d - 1:
            raise ValueError(
                f"expected {d - 1} internal ranks, got {len(internal)}"
            )
    if any(r < 1 for r in internal):
        raise ValueError(f"ranks must be >= 1, got {internal}")
    dims = [m * n for m, n in zip(row_shape, col_shape)]
    clamped = []
    for k, rank in enumerate(internal, start=1):
        left = math.prod(dims[:k])
        right = math.prod(dims[k:])
        clamped.append(min(rank, left, right))
    return [1, *clamped, 1]


@dataclass(frozen=True)
class TTSpec:
    """Shape specification of a TT-compressed embedding table.

    Attributes
    ----------
    row_shape:
        Row factors ``[m_1, ..., m_d]``; ``prod`` is the padded row
        count (may exceed the logical ``num_embeddings``).
    col_shape:
        Column factors ``[n_1, ..., n_d]``; ``prod`` is the embedding
        dimension.
    ranks:
        Boundary ranks ``[1, R_1, ..., R_{d-1}, 1]``.
    """

    row_shape: Tuple[int, ...]
    col_shape: Tuple[int, ...]
    ranks: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "row_shape", tuple(int(m) for m in self.row_shape))
        object.__setattr__(self, "col_shape", tuple(int(n) for n in self.col_shape))
        object.__setattr__(self, "ranks", tuple(int(r) for r in self.ranks))
        d = len(self.row_shape)
        if len(self.col_shape) != d:
            raise ValueError("row_shape and col_shape lengths differ")
        if len(self.ranks) != d + 1:
            raise ValueError(
                f"ranks must have length d+1={d + 1}, got {len(self.ranks)}"
            )
        if self.ranks[0] != 1 or self.ranks[-1] != 1:
            raise ValueError("boundary ranks R_0 and R_d must be 1")
        if any(v < 1 for v in (*self.row_shape, *self.col_shape, *self.ranks)):
            raise ValueError("all shape entries and ranks must be >= 1")

    @classmethod
    def create(
        cls,
        row_shape: Sequence[int],
        col_shape: Sequence[int],
        rank: Union[int, Sequence[int]],
    ) -> "TTSpec":
        """Build a spec, clamping ranks to their maximal useful values."""
        return cls(
            tuple(row_shape),
            tuple(col_shape),
            tuple(clamp_ranks(row_shape, col_shape, rank)),
        )

    @property
    def num_cores(self) -> int:
        return len(self.row_shape)

    @property
    def padded_rows(self) -> int:
        return math.prod(self.row_shape)

    @property
    def embedding_dim(self) -> int:
        return math.prod(self.col_shape)

    def core_shape(self, k: int) -> Tuple[int, int, int, int]:
        """Storage shape of core ``k``: ``(m_k, R_{k-1}, n_k, R_k)``."""
        return (
            self.row_shape[k],
            self.ranks[k],
            self.col_shape[k],
            self.ranks[k + 1],
        )

    @property
    def num_params(self) -> int:
        """Total scalars across all cores."""
        return sum(math.prod(self.core_shape(k)) for k in range(self.num_cores))

    def compression_ratio(self, dtype_bytes: int = 4) -> float:
        """Dense footprint / TT footprint (same dtype on both sides)."""
        dense = self.padded_rows * self.embedding_dim
        return dense / self.num_params if self.num_params else float("inf")

    def nbytes(self, dtype_bytes: int = 8) -> int:
        return self.num_params * dtype_bytes


class TTCores:
    """Concrete TT cores with initialization, reconstruction, and access.

    Parameters
    ----------
    spec:
        Shape specification.
    cores:
        Optional pre-built core arrays (storage layout
        ``(m_k, R_{k-1}, n_k, R_k)``); validated against ``spec``.
    dtype:
        Floating dtype the cores are stored at (default ``np.float64``,
        the historical behavior; pass ``np.float32`` for the
        memory-matched configuration).
    """

    def __init__(
        self,
        spec: TTSpec,
        cores: Optional[List[np.ndarray]] = None,
        dtype: np.dtype = np.float64,
    ):
        self.spec = spec
        self.dtype = np.dtype(dtype)
        if cores is None:
            cores = [
                np.zeros(spec.core_shape(k), dtype=self.dtype)
                for k in range(spec.num_cores)
            ]
        if len(cores) != spec.num_cores:
            raise ValueError(
                f"expected {spec.num_cores} cores, got {len(cores)}"
            )
        for k, core in enumerate(cores):
            if core.shape != spec.core_shape(k):
                raise ValueError(
                    f"core {k} has shape {core.shape}, expected "
                    f"{spec.core_shape(k)}"
                )
        self.cores = [np.ascontiguousarray(c, dtype=self.dtype) for c in cores]

    # -- constructors --------------------------------------------------
    @classmethod
    def random_init(
        cls,
        spec: TTSpec,
        target_std: Optional[float] = None,
        seed: RngLike = 0,
        dtype: np.dtype = np.float64,
    ) -> "TTCores":
        """Gaussian cores scaled so reconstructed entries match ``target_std``.

        With i.i.d. ``N(0, s^2)`` core entries, a reconstructed table
        entry is a sum of ``prod_k R_k`` independent products of ``d``
        factors, so its variance is ``(prod R_k) * s^(2d)``.  Solving
        for ``s`` gives entries statistically equivalent to the dense
        initialization (TT-Rec's sampled-Gaussian-core initialization).

        ``target_std`` defaults to ``1 / (sqrt(3) * sqrt(padded_rows))``,
        the standard deviation of DLRM's uniform row init.
        """
        rng = ensure_rng(seed)
        if target_std is None:
            target_std = 1.0 / (np.sqrt(3.0) * np.sqrt(spec.padded_rows))
        if target_std <= 0:
            raise ValueError(f"target_std must be > 0, got {target_std}")
        rank_product = math.prod(spec.ranks[1:-1]) if spec.num_cores > 1 else 1
        core_std = (target_std**2 / rank_product) ** (1.0 / (2 * spec.num_cores))
        cores = [
            rng.normal(0.0, core_std, size=spec.core_shape(k))
            for k in range(spec.num_cores)
        ]
        return cls(spec, cores, dtype=dtype)

    @classmethod
    def from_dense(
        cls,
        table: np.ndarray,
        row_shape: Sequence[int],
        col_shape: Sequence[int],
        rank: Union[int, Sequence[int]],
    ) -> "TTCores":
        """TT-SVD decomposition of a dense table (see :func:`tt_svd`)."""
        cores, spec = tt_svd(table, row_shape, col_shape, rank)
        return cls(spec, cores)

    # -- accessors -------------------------------------------------------
    @property
    def num_params(self) -> int:
        return sum(c.size for c in self.cores)

    @property
    def nbytes(self) -> int:
        return sum(c.nbytes for c in self.cores)

    def flat_core(self, k: int) -> np.ndarray:
        """Core ``k`` in the canonical ``(R_{k-1}, m_k*n_k, R_k)`` layout."""
        m_k, r_prev, n_k, r_next = self.spec.core_shape(k)
        # Layout churn is intentional here: this is a cold-path exporter
        # from storage layout to the canonical TT layout, not a kernel.
        return (
            self.cores[k]  # reprolint: disable=layout-churn
            .transpose(1, 0, 2, 3)
            .reshape(r_prev, m_k * n_k, r_next)
        )

    # -- reconstruction ----------------------------------------------------
    def reconstruct_rows(self, indices: np.ndarray) -> np.ndarray:
        """Reference row reconstruction by sequential TT contraction.

        This is the *naive* (non-reused) lookup used to validate the
        optimized kernels; complexity is linear in the number of index
        occurrences.
        """
        idx = np.asarray(indices, dtype=np.int64)
        tt_idx = row_index_to_tt(idx, self.spec.row_shape)
        bk = get_backend()
        pc = get_plan_cache()
        with bk.zone(ZONE_TT_RECONSTRUCT):
            # left: (L, prefix_cols, R_k) accumulated product.
            left = bk.gather_rows(self.cores[0], tt_idx[0])  # (L, 1, n_1, R_1)
            batch = left.shape[0]
            left = left.reshape(batch, -1, self.spec.ranks[1])
            for k in range(1, self.spec.num_cores):
                slice_k = bk.gather_rows(self.cores[k], tt_idx[k])
                plan = pc.einsum_plan("lar,lrbs->labs", left, slice_k)
                left = bk.einsum("lar,lrbs->labs", left, slice_k, plan=plan)
                batch_, a, b, s = left.shape
                left = left.reshape(batch_, a * b, s)
            return left.reshape(batch, self.spec.embedding_dim)

    def reconstruct(self) -> np.ndarray:
        """Materialize the full ``(padded_rows, embedding_dim)`` table.

        Only for tests and small tables — the whole point of TT is to
        avoid this allocation.
        """
        all_rows = np.arange(self.spec.padded_rows, dtype=np.int64)
        return self.reconstruct_rows(all_rows)

    def copy(self) -> "TTCores":
        return TTCores(
            self.spec, [c.copy() for c in self.cores], dtype=self.dtype
        )


def tt_svd(
    table: np.ndarray,
    row_shape: Sequence[int],
    col_shape: Sequence[int],
    rank: Union[int, Sequence[int]],
) -> Tuple[List[np.ndarray], TTSpec]:
    """Decompose a dense table into TT cores via successive SVDs.

    The table is reshaped to the ``d``-dimensional tensor with mode
    sizes ``(m_1*n_1, ..., m_d*n_d)`` (row and column factors
    interleaved, Figure 3) and decomposed with the standard TT-SVD
    sweep, truncating each unfolding to the requested rank.

    Returns ``(cores, spec)`` where ``spec.ranks`` holds the *achieved*
    ranks (they may be smaller than requested when the unfolding's
    numerical rank is lower).
    """
    table = np.asarray(table, dtype=np.float64)
    d = len(row_shape)
    expected = (math.prod(row_shape), math.prod(col_shape))
    if table.shape != expected:
        raise ValueError(
            f"table shape {table.shape} does not match factorization "
            f"{expected}"
        )
    boundary = clamp_ranks(row_shape, col_shape, rank)

    # (M, N) -> (m_1..m_d, n_1..n_d) -> interleave -> (m_1*n_1, ..., m_d*n_d)
    tensor = table.reshape(*row_shape, *col_shape)
    perm = [axis for k in range(d) for axis in (k, d + k)]
    tensor = tensor.transpose(perm)
    mode_sizes = [m * n for m, n in zip(row_shape, col_shape)]
    tensor = tensor.reshape(mode_sizes)

    flat_cores: List[np.ndarray] = []
    achieved = [1]
    unfolding = tensor.reshape(mode_sizes[0], -1)
    for k in range(d - 1):
        r_prev = achieved[-1]
        rows = r_prev * mode_sizes[k]
        unfolding = unfolding.reshape(rows, -1)
        u, s, vt = np.linalg.svd(unfolding, full_matrices=False)
        # Drop numerically-zero singular values before rank truncation.
        tol = s[0] * max(unfolding.shape) * np.finfo(np.float64).eps if s.size else 0.0
        numerical_rank = max(1, int(np.count_nonzero(s > tol)))
        r_k = min(boundary[k + 1], numerical_rank)
        flat_cores.append(u[:, :r_k].reshape(r_prev, mode_sizes[k], r_k))
        unfolding = (s[:r_k, None] * vt[:r_k])
        achieved.append(r_k)
    flat_cores.append(
        unfolding.reshape(achieved[-1], mode_sizes[-1], 1)
    )
    achieved.append(1)

    spec = TTSpec(tuple(row_shape), tuple(col_shape), tuple(achieved))
    cores = []
    for k, flat in enumerate(flat_cores):
        m_k, n_k = row_shape[k], col_shape[k]
        r_prev, _, r_next = flat.shape
        cores.append(
            np.ascontiguousarray(
                flat.reshape(r_prev, m_k, n_k, r_next).transpose(1, 0, 2, 3)
            )
        )
    return cores, spec
