"""Eff-TT embedding bag — the paper's core contribution (§III).

Drop-in replacement for ``nn.EmbeddingBag`` backed by Tensor-Train
cores, with the three optimizations of the paper, each independently
toggleable for the ablation studies (Figures 14, 17, 18):

``enable_reuse``
    Two-level intermediate-result reuse (§III-A).  The forward pass
    deduplicates full rows across the batch (sample- *and* batch-level)
    and computes the partial product of the first ``d-1`` cores once
    per unique TT-index prefix via one batched einsum over the Reuse
    Buffer — the NumPy analog of Algorithm 1's pointer preparation +
    ``cublasGemmBatchedEx`` call.
``enable_grad_aggregation``
    In-advance gradient aggregation (§III-B).  Embedding-row gradients
    are summed over unique indices *before* the chain-rule contraction
    into TT cores, shrinking the expensive per-row tensor
    multiplications from one per occurrence to one per unique row.
``enable_fused_update``
    Fused TT-core update (§III-B).  The SGD step scatters
    ``-lr * slice_grad`` directly into the live cores instead of
    materializing full-size core-gradient arrays and running a separate
    dense optimizer pass.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backend import (
    ZONE_EFFTT_BACKWARD,
    ZONE_EFFTT_FORWARD,
    ZONE_FUSED_UPDATE,
    ZONE_OPTIMIZER,
    get_backend,
    get_plan_cache,
)
from repro.embeddings.base import (
    EmbeddingBagBase,
    expand_bag_ids,
    segment_sum,
)
from repro.embeddings.protocol import CompressionSpec
from repro.embeddings.reuse_buffer import ReusePlan, build_reuse_plan
from repro.embeddings.tt_core import TTCores, TTSpec
from repro.embeddings.tt_embedding import tt_chain_backward, tt_chain_forward
from repro.embeddings.tt_indices import row_index_to_tt
from repro.utils.factorize import suggest_tt_shapes
from repro.utils.rng import RngLike
from repro.utils.scatter import coalesce_rows

__all__ = ["EffTTEmbeddingBag"]


class EffTTEmbeddingBag(EmbeddingBagBase):
    """TT embedding bag with reuse, gradient aggregation and fused update.

    Parameters
    ----------
    num_embeddings, embedding_dim:
        Logical table shape; rows are padded to a balanced TT
        factorization.
    tt_rank:
        Scalar rank or explicit internal rank list (paper: 128 on V100,
        64 on T4).
    num_cores:
        ``d`` (paper uses 3).
    row_shape, col_shape:
        Optional explicit factorizations.
    enable_reuse, enable_grad_aggregation, enable_fused_update:
        Optimization toggles, all on by default.
    optimizer:
        ``"sgd"`` (the paper's setting) or ``"adagrad"`` — row-wise
        Adagrad on TT slices with coalesced sparse gradients (the
        TT-Rec training setup), still applied as a fused update.
    adagrad_eps:
        Adagrad denominator floor.
    seed:
        RNG for core initialization.
    dtype:
        Core / gradient floating dtype (default ``np.float64``, the
        historical behavior).  Forward, backward and the fused update
        all stay at this dtype — no silent float64 upcasts.

    Examples
    --------
    >>> bag = EffTTEmbeddingBag(1000, 16, tt_rank=8, seed=0)
    >>> out = bag.forward(np.array([1, 5, 5, 2]), np.array([0, 2, 4]))
    >>> out.shape
    (2, 16)
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        tt_rank: Union[int, Sequence[int]] = 64,
        num_cores: int = 3,
        row_shape: Optional[Sequence[int]] = None,
        col_shape: Optional[Sequence[int]] = None,
        enable_reuse: bool = True,
        enable_grad_aggregation: bool = True,
        enable_fused_update: bool = True,
        optimizer: str = "sgd",
        adagrad_eps: float = 1e-10,
        seed: RngLike = 0,
        dtype: np.dtype = np.float64,
    ) -> None:
        super().__init__(num_embeddings, embedding_dim)
        if row_shape is None or col_shape is None:
            auto_rows, auto_cols, _ = suggest_tt_shapes(
                num_embeddings, embedding_dim, num_cores
            )
            row_shape = row_shape if row_shape is not None else auto_rows
            col_shape = col_shape if col_shape is not None else auto_cols
        if math.prod(row_shape) < num_embeddings:
            raise ValueError(
                f"prod(row_shape)={math.prod(row_shape)} cannot address "
                f"{num_embeddings} rows"
            )
        if math.prod(col_shape) != embedding_dim:
            raise ValueError(
                f"prod(col_shape)={math.prod(col_shape)} != embedding_dim="
                f"{embedding_dim}"
            )
        self.spec = TTSpec.create(row_shape, col_shape, tt_rank)
        self.dtype = np.dtype(dtype)
        self.tt = TTCores.random_init(self.spec, seed=seed, dtype=self.dtype)
        self.enable_reuse = enable_reuse
        self.enable_grad_aggregation = enable_grad_aggregation
        self.enable_fused_update = enable_fused_update
        if optimizer not in ("sgd", "adagrad"):
            raise ValueError(
                f"optimizer must be 'sgd' or 'adagrad', got {optimizer!r}"
            )
        self.optimizer = optimizer
        if adagrad_eps <= 0:
            raise ValueError(f"adagrad_eps must be > 0, got {adagrad_eps}")
        self.adagrad_eps = float(adagrad_eps)
        self._adagrad_acc: Optional[List[np.ndarray]] = (
            [np.zeros_like(core) for core in self.tt.cores]
            if optimizer == "adagrad"
            else None
        )
        #: Monotonic core-update counter.  Serving-time views snapshot
        #: it to detect stale materialized rows (see
        #: :class:`~repro.embeddings.inference.HotRowCachedLookup`).
        self.version = 0
        self._saved: Optional[dict] = None
        self._pending_update: Optional[dict] = None
        self.last_plan: Optional[ReusePlan] = None

    @classmethod
    def from_dense_table(
        cls,
        table: np.ndarray,
        tt_rank: Union[int, Sequence[int]] = 64,
        num_cores: int = 3,
        **kwargs,
    ) -> "EffTTEmbeddingBag":
        """Warm-start an Eff-TT table from a pretrained dense table.

        TT-SVD compresses the given ``(num_rows, dim)`` weights (rows
        are zero-padded up to the balanced factorization; padding rows
        are never addressed).  This is the deployment path for
        compressing an existing model rather than training from
        scratch; reconstruction error is the optimal rank-``tt_rank``
        truncation error.
        """
        table = np.asarray(table, dtype=np.float64)
        if table.ndim != 2:
            raise ValueError(f"table must be 2-D, got shape {table.shape}")
        num_rows, dim = table.shape
        bag = cls(
            num_rows, dim, tt_rank=tt_rank, num_cores=num_cores, **kwargs
        )
        padded = np.zeros((bag.spec.padded_rows, dim), dtype=np.float64)
        padded[:num_rows] = table
        bag.tt = TTCores.from_dense(
            padded, bag.spec.row_shape, bag.spec.col_shape, tt_rank
        )
        # TT-SVD may achieve lower ranks than requested.
        bag.spec = bag.tt.spec
        bag.version += 1  # cores replaced wholesale
        return bag

    # ------------------------------------------------------------------
    # forward
    # ------------------------------------------------------------------
    def forward(
        self, indices: np.ndarray, offsets: Optional[np.ndarray] = None
    ) -> np.ndarray:
        idx, boundaries = self._validate_inputs(indices, offsets)
        plan = build_reuse_plan(idx, self.spec.row_shape)
        self.last_plan = plan
        if self.enable_reuse:
            rows_unique, left_stages = self._forward_reused(plan)
            rows = rows_unique[plan.row_inverse]
            self._saved = {
                "plan": plan,
                "boundaries": boundaries,
                "left_stages": left_stages,  # per unique prefix
                "reused": True,
            }
        else:
            occ_tt_idx = row_index_to_tt(idx, self.spec.row_shape)
            rows, left_partials = tt_chain_forward(self.tt.cores, occ_tt_idx)
            self._saved = {
                "plan": plan,
                "boundaries": boundaries,
                "occ_tt_idx": occ_tt_idx,
                "occ_left_partials": left_partials,
                "reused": False,
            }
        return segment_sum(rows, boundaries)

    def _forward_reused(
        self, plan: ReusePlan
    ) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Compute unique rows via the prefix Reuse Buffer.

        Returns ``(unique_rows_values, left_stages)`` where
        ``left_stages[k]`` is the product of cores ``0..k`` for each
        unique prefix (the Reuse Buffer content at stage ``k``).
        """
        cores = self.tt.cores
        d = self.spec.num_cores
        bk = get_backend()
        plan_chain = get_plan_cache().chain_plan(
            "chain_forward", tuple(c.shape for c in cores)
        )
        with bk.zone(ZONE_EFFTT_FORWARD):
            # Batched partial product over unique prefixes only.
            left = bk.gather_rows(cores[0], plan.prefix_tt_indices[0])  # (P,1,n1,R1)
            num_prefixes = left.shape[0]
            left = left.reshape(num_prefixes, -1, left.shape[-1])
            left_stages = [left]
            for stage in plan_chain.stages[1 : d - 1]:
                k = stage.core_index
                slice_k = bk.gather_rows(cores[k], plan.prefix_tt_indices[k])
                # batched GEMM over unique prefixes only (the Reuse Buffer
                # fill of Algorithm 1).
                left = bk.matmul(
                    left, slice_k.reshape(num_prefixes, stage.r_in, stage.out_width)
                ).reshape(num_prefixes, -1, stage.r_out)
                left_stages.append(left)
            # Final core applied per unique row, gathering its prefix partial.
            partial = bk.gather_rows(left, plan.prefix_ids)  # (U, A, R_{d-1})
            last = bk.gather_rows(cores[d - 1], plan.tt_indices[d - 1])
            last = last.reshape(last.shape[0], last.shape[1], -1)
            rows_unique = bk.matmul(partial, last)  # (U, A, n_d)
            rows_unique = rows_unique.reshape(rows_unique.shape[0], -1)
        return rows_unique, left_stages

    # ------------------------------------------------------------------
    # backward
    # ------------------------------------------------------------------
    def backward(self, grad_output: np.ndarray) -> None:
        if self._saved is None:
            raise RuntimeError("backward called before forward")
        saved = self._saved
        plan: ReusePlan = saved["plan"]
        boundaries = saved["boundaries"]
        bk = get_backend()
        grad_output = bk.asarray(grad_output, dtype=self.dtype)
        num_bags = boundaries.size - 1
        if grad_output.shape != (num_bags, self.embedding_dim):
            raise ValueError(
                f"expected grad_output shape {(num_bags, self.embedding_dim)}, "
                f"got {grad_output.shape}"
            )
        bag_ids = expand_bag_ids(boundaries)
        with bk.zone(ZONE_EFFTT_BACKWARD):
            row_grads = bk.gather_rows(grad_output, bag_ids)  # one per occurrence

        if self.enable_grad_aggregation:
            # In-advance aggregation: sum occurrence gradients into one
            # gradient per *unique* row before the expensive chain rule.
            with bk.zone(ZONE_EFFTT_BACKWARD):
                agg = bk.zeros(
                    (plan.num_unique_rows, self.embedding_dim),
                    dtype=grad_output.dtype,
                )
                bk.scatter_add_rows(agg, plan.row_inverse, row_grads)
            tt_idx = plan.tt_indices
            left_partials = self._unique_left_partials(saved, plan)
            slice_grads = tt_chain_backward(
                self.tt.cores,
                tt_idx,
                left_partials,
                agg,
                self.spec.col_shape,
                zone=ZONE_EFFTT_BACKWARD,
            )
        else:
            # Ablation path: per-occurrence chain rule, as TT-Rec does.
            if saved["reused"]:
                tt_idx = tuple(
                    arr[plan.row_inverse] for arr in plan.tt_indices
                )
                left_partials = [
                    stage[plan.prefix_ids][plan.row_inverse]
                    for stage in saved["left_stages"]
                ]
            else:
                tt_idx = saved["occ_tt_idx"]
                left_partials = saved["occ_left_partials"]
            slice_grads = tt_chain_backward(
                self.tt.cores,
                tt_idx,
                left_partials,
                row_grads,
                self.spec.col_shape,
                zone=ZONE_EFFTT_BACKWARD,
            )

        if self.enable_fused_update:
            # Defer only the scatter; step() applies it in place without
            # materializing core-sized gradient arrays.
            self._pending_update = {
                "mode": "fused",
                "tt_idx": tt_idx,
                "slice_grads": slice_grads,
            }
        else:
            with bk.zone(ZONE_EFFTT_BACKWARD):
                core_grads = [
                    bk.zeros(core.shape, dtype=core.dtype)
                    for core in self.tt.cores
                ]
                for k, grads_k in enumerate(slice_grads):
                    bk.scatter_add_rows(core_grads[k], tt_idx[k], grads_k)
            self._pending_update = {"mode": "dense", "core_grads": core_grads}
        self._saved = None

    def _unique_left_partials(
        self, saved: dict, plan: ReusePlan
    ) -> List[np.ndarray]:
        """Left-partial chain per unique row for the backward contraction."""
        if saved["reused"]:
            bk = get_backend()
            with bk.zone(ZONE_EFFTT_BACKWARD):
                return [
                    bk.gather_rows(stage, plan.prefix_ids)
                    for stage in saved["left_stages"]
                ]
        # Reuse disabled: recompute the (cheaper) chain over unique rows.
        _, left_partials = tt_chain_forward(
            self.tt.cores, plan.tt_indices, zone=ZONE_EFFTT_BACKWARD
        )
        return left_partials

    # ------------------------------------------------------------------
    # update
    # ------------------------------------------------------------------
    def step(self, lr: float) -> None:
        if self._pending_update is None:
            raise RuntimeError("step called before backward")
        self.apply_pending_update(self._pending_update, lr)
        self._pending_update = None

    def pop_pending_update(self) -> dict:
        """Detach the captured sparse update without applying it.

        Used by the data-parallel trainer (§V-A): replicas exchange
        pending updates (the TT-gradient AllReduce) and then apply the
        merged set via :meth:`apply_pending_update`.
        """
        if self._pending_update is None:
            raise RuntimeError("no pending update captured")
        pending = self._pending_update
        self._pending_update = None
        return pending

    def apply_pending_update(
        self, pending: dict, lr: float, scale: float = 1.0
    ) -> None:
        """Apply a (possibly remote) sparse update scaled by ``scale``."""
        self.version += 1
        if self.optimizer == "adagrad":
            if scale != 1.0:
                raise ValueError(
                    "adagrad updates are stateful and cannot be rescaled; "
                    "use the sgd optimizer for data-parallel training"
                )
            self._apply_adagrad(pending, lr)
            return
        step_size = lr * scale
        bk = get_backend()
        if pending["mode"] == "fused":
            with bk.zone(ZONE_FUSED_UPDATE):
                for k, grads_k in enumerate(pending["slice_grads"]):
                    bk.scatter_add_rows(
                        self.tt.cores[k],
                        pending["tt_idx"][k],
                        grads_k,
                        scale=-step_size,
                    )
        else:
            with bk.zone(ZONE_OPTIMIZER):
                for core, grad in zip(self.tt.cores, pending["core_grads"]):
                    bk.axpy(core, grad, -step_size)

    def _apply_adagrad(self, pending: dict, lr: float) -> None:
        """Fused row-wise Adagrad over TT slices.

        Sparse gradients are coalesced (duplicate slice rows summed)
        before squaring — PyTorch's sparse-Adagrad convention — then
        the accumulator and cores are updated with one gather/scatter
        per core.
        """
        assert self._adagrad_acc is not None
        bk = get_backend()
        if pending["mode"] == "fused":
            with bk.zone(ZONE_FUSED_UPDATE):
                for k, grads_k in enumerate(pending["slice_grads"]):
                    unique, summed = coalesce_rows(pending["tt_idx"][k], grads_k)
                    acc_flat = self._adagrad_acc[k].reshape(
                        self._adagrad_acc[k].shape[0], -1
                    )
                    core_flat = self.tt.cores[k].reshape(
                        self.tt.cores[k].shape[0], -1
                    )
                    acc_flat[unique] += summed**2
                    core_flat[unique] -= lr * summed / (
                        np.sqrt(acc_flat[unique]) + self.adagrad_eps
                    )
        else:
            with bk.zone(ZONE_OPTIMIZER):
                for core, acc, grad in zip(
                    self.tt.cores, self._adagrad_acc, pending["core_grads"]
                ):
                    acc += grad**2
                    core -= lr * grad / (np.sqrt(acc) + self.adagrad_eps)

    def backward_and_step(self, grad_output: np.ndarray, lr: float) -> None:
        """Fused backward + update in one call (the paper's fused kernel)."""
        self.backward(grad_output)
        self.step(lr)

    # ------------------------------------------------------------------
    # CompressedEmbedding protocol
    # ------------------------------------------------------------------
    def reconstruct_rows(self, indices: np.ndarray) -> np.ndarray:
        """Pure row materialization (no training state touched)."""
        return self.tt.reconstruct_rows(indices)

    def memory_bytes(self) -> int:
        total = int(self.tt.nbytes)
        if self._adagrad_acc is not None:
            total += sum(int(acc.nbytes) for acc in self._adagrad_acc)
        return total

    def state_arrays(self) -> Dict[str, np.ndarray]:
        """Live cores (+ adagrad accumulators) — callers copy to persist.

        Key names (``core{k}``, ``adagrad{k}``) match the resilience
        checkpoint layout so recovery stays bitwise across the refactor.
        """
        arrays: Dict[str, np.ndarray] = {
            f"core{k}": core for k, core in enumerate(self.tt.cores)
        }
        if self._adagrad_acc is not None:
            for k, acc in enumerate(self._adagrad_acc):
                arrays[f"adagrad{k}"] = acc
        return arrays

    def load_state_arrays(self, arrays: Mapping[str, np.ndarray]) -> None:
        live = self.state_arrays()
        staged = {}
        for name in sorted(live):
            stored = np.asarray(arrays[name], dtype=live[name].dtype)
            if stored.shape != live[name].shape:
                raise ValueError(
                    f"{name} shape {stored.shape} != {live[name].shape}"
                )
            staged[name] = stored
        for name in sorted(staged):
            live[name][...] = staged[name]
        self.version += 1

    def compression_spec(self) -> CompressionSpec:
        return CompressionSpec.create(
            "eff_tt",
            self.num_embeddings,
            self.embedding_dim,
            {
                "row_shape": tuple(self.spec.row_shape),
                "col_shape": tuple(self.spec.col_shape),
                "ranks": tuple(self.spec.ranks),
                "optimizer": self.optimizer,
            },
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        return self.tt.nbytes

    def nbytes_as(self, dtype: np.dtype = np.float32) -> int:
        """Footprint if cores were stored at ``dtype``."""
        return self.spec.num_params * np.dtype(dtype).itemsize

    def compression_ratio(self) -> float:
        """Dense ``num_embeddings x dim`` footprint over TT footprint."""
        dense = self.num_embeddings * self.embedding_dim
        return dense / self.spec.num_params

    def materialize(self) -> np.ndarray:
        """Reconstruct the logical table (tests / small tables only)."""
        return self.tt.reconstruct()[: self.num_embeddings]
