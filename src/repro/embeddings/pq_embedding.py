"""Product-quantization embedding bag (DPQ-style codebooks + code table).

The embedding dimension is split into ``num_subspaces`` contiguous
subvectors.  Each subspace ``m`` owns a trainable codebook of
``num_codes`` centroid subvectors, and every logical row carries a
fixed code tuple ``codes[i] = (c_1 .. c_M)`` selecting one centroid
per subspace; the row vector is the concatenation of the selected
centroids.  Footprint: ``M * K * (dim/M)`` floats of codebook plus an
``(rows, M)`` int32 code table — the codes are the only per-row state,
so compression scales with ``dim`` rather than ``rows * dim``.

Following DPQ's end-to-end regime (but without the differentiable
code-assignment machinery), the code table is drawn once from a seeded
RNG and frozen, and the *codebooks* train via sparse scatter-add of
the pooled gradients — rows sharing a centroid co-train it exactly
like colliding hash buckets.

Default codebook capacity uses the ceil-cube rule
(:func:`~repro.utils.factorize.ceil_balanced_factors`): with ``K >=
max(ceil_balanced_factors(rows, M))`` the code space ``K^M`` can give
every row a distinct tuple.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.backend import (
    ZONE_COMPRESS_UPDATE,
    ZONE_PQ_LOOKUP,
    get_backend,
)
from repro.embeddings.base import (
    EmbeddingBagBase,
    expand_bag_ids,
    segment_sum,
)
from repro.embeddings.protocol import CompressionSpec
from repro.utils.factorize import ceil_balanced_factors
from repro.utils.rng import RngLike, ensure_rng

__all__ = [
    "PQEmbeddingBag",
    "default_pq_subspaces",
    "default_pq_codes",
]

#: Largest codebook the planner/defaults will pick (one byte of code
#: space per subspace; explicit ``num_codes`` may exceed it).
MAX_DEFAULT_CODES = 256


def default_pq_subspaces(embedding_dim: int, target: int = 4) -> int:
    """Largest divisor of ``embedding_dim`` that is <= ``target``."""
    if embedding_dim < 1:
        raise ValueError(f"embedding_dim must be >= 1, got {embedding_dim}")
    for m in range(min(target, embedding_dim), 0, -1):
        if embedding_dim % m == 0:
            return m
    return 1


def default_pq_codes(num_embeddings: int, num_subspaces: int) -> int:
    """Smallest balanced per-subspace codebook covering the table.

    ``ceil_balanced_factors(rows, M)`` gives near-equal factors whose
    product is >= ``rows``; their max is the smallest uniform ``K``
    with ``K^M >= rows`` (distinct code tuples for every row), capped
    at :data:`MAX_DEFAULT_CODES`.
    """
    capacity = max(ceil_balanced_factors(num_embeddings, num_subspaces))
    return max(2, min(MAX_DEFAULT_CODES, capacity))


class PQEmbeddingBag(EmbeddingBagBase):
    """Trainable codebooks + frozen random code table, sum pooling.

    Parameters
    ----------
    num_embeddings, embedding_dim:
        Logical table shape.
    num_subspaces:
        Subvector count ``M`` (must divide ``embedding_dim``);
        defaults to the largest divisor <= 4.
    num_codes:
        Codebook size ``K`` per subspace; defaults from the ceil-cube
        capacity rule.
    seed:
        RNG for codebook init and the frozen code table.
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        num_subspaces: Optional[int] = None,
        num_codes: Optional[int] = None,
        seed: RngLike = 0,
        dtype: np.dtype = np.float64,
    ) -> None:
        super().__init__(num_embeddings, embedding_dim)
        if num_subspaces is None:
            num_subspaces = default_pq_subspaces(embedding_dim)
        num_subspaces = int(num_subspaces)
        if num_subspaces < 1 or embedding_dim % num_subspaces != 0:
            raise ValueError(
                f"num_subspaces must divide embedding_dim={embedding_dim}, "
                f"got {num_subspaces}"
            )
        if num_codes is None:
            num_codes = default_pq_codes(num_embeddings, num_subspaces)
        num_codes = int(num_codes)
        if num_codes < 1:
            raise ValueError(f"num_codes must be >= 1, got {num_codes}")
        self.num_subspaces = num_subspaces
        self.num_codes = num_codes
        self.subspace_dim = embedding_dim // num_subspaces
        self.dtype = np.dtype(dtype)
        rng = ensure_rng(seed)
        bound = 1.0 / np.sqrt(num_codes)
        self.codebooks: List[np.ndarray] = [
            rng.uniform(
                -bound, bound, size=(num_codes, self.subspace_dim)
            ).astype(self.dtype)
            for _ in range(num_subspaces)
        ]
        # Frozen code assignment: one centroid id per (row, subspace).
        self.codes = rng.integers(
            0, num_codes, size=(num_embeddings, num_subspaces),
            dtype=np.int32,
        )
        #: update counter for hot-row cache staleness detection
        self.version = 0
        self._saved_codes: Optional[np.ndarray] = None
        self._saved_boundaries: Optional[np.ndarray] = None
        self._saved_row_grads: Optional[np.ndarray] = None

    def _materialize(
        self, idx: np.ndarray
    ) -> "Tuple[np.ndarray, np.ndarray]":
        """Concatenate the selected centroids for each occurrence."""
        bk = get_backend()
        occ_codes = self.codes[idx]  # (L, M)
        with bk.zone(ZONE_PQ_LOOKUP):
            rows = bk.empty(
                (idx.size, self.embedding_dim), dtype=self.dtype
            )
            for m in range(self.num_subspaces):
                lo = m * self.subspace_dim
                rows[:, lo : lo + self.subspace_dim] = bk.gather_rows(
                    self.codebooks[m], occ_codes[:, m].astype(np.int64)
                )
        return np.asarray(rows), occ_codes

    def forward(
        self, indices: np.ndarray, offsets: Optional[np.ndarray] = None
    ) -> np.ndarray:
        idx, boundaries = self._validate_inputs(indices, offsets)
        rows, occ_codes = self._materialize(idx)
        self._saved_codes = occ_codes
        self._saved_boundaries = boundaries
        return segment_sum(rows, boundaries)

    def backward(self, grad_output: np.ndarray) -> None:
        if self._saved_codes is None or self._saved_boundaries is None:
            raise RuntimeError("backward called before forward")
        bk = get_backend()
        grad_output = bk.asarray(grad_output, dtype=self.dtype)
        num_bags = self._saved_boundaries.size - 1
        if grad_output.shape != (num_bags, self.embedding_dim):
            raise ValueError(
                f"expected grad_output shape "
                f"{(num_bags, self.embedding_dim)}, got {grad_output.shape}"
            )
        bag_ids = expand_bag_ids(self._saved_boundaries)
        with bk.zone(ZONE_PQ_LOOKUP):
            self._saved_row_grads = bk.gather_rows(grad_output, bag_ids)

    def step(self, lr: float) -> None:
        if self._saved_row_grads is None:
            raise RuntimeError("step called before backward")
        bk = get_backend()
        with bk.zone(ZONE_COMPRESS_UPDATE):
            for m in range(self.num_subspaces):
                lo = m * self.subspace_dim
                bk.scatter_add_rows(
                    self.codebooks[m],
                    self._saved_codes[:, m].astype(np.int64),
                    self._saved_row_grads[:, lo : lo + self.subspace_dim],
                    scale=-lr,
                )
        self.version += 1
        self._saved_codes = None
        self._saved_boundaries = None
        self._saved_row_grads = None

    # -- CompressedEmbedding protocol ---------------------------------
    def reconstruct_rows(self, indices: np.ndarray) -> np.ndarray:
        """Pure row materialization (no training state touched)."""
        idx = np.asarray(indices, dtype=np.int64).reshape(-1)
        if idx.size and (idx.min() < 0 or idx.max() >= self.num_embeddings):
            raise IndexError("row index out of range")
        rows, _ = self._materialize(idx)
        return rows

    def memory_bytes(self) -> int:
        return int(
            sum(book.nbytes for book in self.codebooks) + self.codes.nbytes
        )

    def state_arrays(self) -> Dict[str, np.ndarray]:
        """Live codebooks + code table (callers copy before persisting)."""
        arrays: Dict[str, np.ndarray] = {
            f"codebook{m}": book for m, book in enumerate(self.codebooks)
        }
        arrays["codes"] = self.codes
        return arrays

    def load_state_arrays(self, arrays: Mapping[str, np.ndarray]) -> None:
        live = self.state_arrays()
        staged = {}
        for name in sorted(live):
            stored = np.asarray(arrays[name], dtype=live[name].dtype)
            if stored.shape != live[name].shape:
                raise ValueError(
                    f"{name} shape {stored.shape} != {live[name].shape}"
                )
            staged[name] = stored
        for name in sorted(staged):
            live[name][...] = staged[name]
        self.version += 1

    def compression_spec(self) -> CompressionSpec:
        return CompressionSpec.create(
            "pq",
            self.num_embeddings,
            self.embedding_dim,
            {
                "num_subspaces": self.num_subspaces,
                "num_codes": self.num_codes,
            },
        )

    @property
    def nbytes(self) -> int:
        return self.memory_bytes()

    def nbytes_as(self, dtype: np.dtype = np.float32) -> int:
        """Footprint with codebooks at ``dtype`` (codes stay int32)."""
        floats = sum(book.size for book in self.codebooks)
        return floats * np.dtype(dtype).itemsize + self.codes.nbytes

    def compression_ratio(self) -> float:
        dense = self.num_embeddings * self.embedding_dim * self.dtype.itemsize
        return dense / self.memory_bytes()

    @staticmethod
    def estimate_bytes(
        num_embeddings: int,
        embedding_dim: int,
        num_subspaces: int,
        num_codes: int,
        dtype_bytes: int = 8,
    ) -> int:
        """Planner-side footprint formula (matches ``memory_bytes``)."""
        subspace_dim = embedding_dim // num_subspaces
        codebooks = num_subspaces * num_codes * subspace_dim * dtype_bytes
        codes = num_embeddings * num_subspaces * np.dtype(np.int32).itemsize
        return int(codebooks + codes)
