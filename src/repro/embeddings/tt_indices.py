"""TT-index conversion (paper Equation 3, §III-A Step 1).

A flat embedding-table row index ``i`` maps to one sub-index per TT
core via mixed-radix decomposition over the row factorization
``M = m_1 * m_2 * ... * m_d``:

    ``i_k = (i // prod_{l>k} m_l) mod m_k``

All functions are fully vectorized; these run on every batch in the
Eff-TT hot path.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["row_strides", "row_index_to_tt", "tt_to_row_index", "prefix_keys"]


def row_strides(row_shape: Sequence[int]) -> np.ndarray:
    """Mixed-radix strides: ``strides[k] = prod_{l>k} row_shape[l]``.

    >>> row_strides([4, 3, 2]).tolist()
    [6, 2, 1]
    """
    shape = np.asarray(row_shape, dtype=np.int64)
    if shape.ndim != 1 or shape.size == 0:
        raise ValueError(f"row_shape must be a non-empty 1-D sequence, got {row_shape}")
    if np.any(shape < 1):
        raise ValueError(f"row_shape entries must be >= 1, got {row_shape}")
    strides = np.ones_like(shape)
    strides[:-1] = np.cumprod(shape[::-1])[::-1][1:]
    return strides


def row_index_to_tt(
    indices: np.ndarray, row_shape: Sequence[int]
) -> List[np.ndarray]:
    """Decompose flat row indices into per-core TT indices.

    Parameters
    ----------
    indices:
        1-D int array of row indices in ``[0, prod(row_shape))``.
    row_shape:
        Per-core row factors ``[m_1, ..., m_d]``.

    Returns
    -------
    List of ``d`` int64 arrays, each the same length as ``indices``.

    Examples
    --------
    >>> [a.tolist() for a in row_index_to_tt(np.array([0, 5, 23]), [4, 3, 2])]
    [[0, 0, 3], [0, 2, 2], [0, 1, 1]]
    """
    idx = np.asarray(indices, dtype=np.int64)
    shape = np.asarray(row_shape, dtype=np.int64)
    strides = row_strides(row_shape)
    total = int(np.prod(shape))
    if idx.size and (idx.min() < 0 or idx.max() >= total):
        raise ValueError(
            f"indices must lie in [0, {total}), got range "
            f"[{idx.min()}, {idx.max()}]"
        )
    return [(idx // strides[k]) % shape[k] for k in range(shape.size)]


def tt_to_row_index(
    tt_indices: Sequence[np.ndarray], row_shape: Sequence[int]
) -> np.ndarray:
    """Inverse of :func:`row_index_to_tt`.

    >>> tt_to_row_index([np.array([3]), np.array([2]), np.array([1])], [4, 3, 2]).tolist()
    [23]
    """
    shape = np.asarray(row_shape, dtype=np.int64)
    if len(tt_indices) != shape.size:
        raise ValueError(
            f"expected {shape.size} index arrays, got {len(tt_indices)}"
        )
    strides = row_strides(row_shape)
    out = np.zeros_like(np.asarray(tt_indices[0], dtype=np.int64))
    for k, part in enumerate(tt_indices):
        part = np.asarray(part, dtype=np.int64)
        if part.size and (part.min() < 0 or part.max() >= shape[k]):
            raise ValueError(
                f"tt index {k} out of range [0, {shape[k]}): "
                f"[{part.min()}, {part.max()}]"
            )
        out = out + part * strides[k]
    return out


def prefix_keys(
    tt_indices: Sequence[np.ndarray], row_shape: Sequence[int], depth: int
) -> np.ndarray:
    """Collapse the first ``depth`` TT indices into a single key array.

    The Eff-TT reuse buffer (§III-A, Algorithm 1) identifies shared
    partial products by the tuple of the first ``d-1`` TT indices; this
    packs that tuple into one int64 key suitable for ``np.unique``.

    >>> tt = row_index_to_tt(np.array([0, 1, 6, 7]), [4, 3, 2])
    >>> prefix_keys(tt, [4, 3, 2], depth=2).tolist()
    [0, 0, 3, 3]
    """
    if not 1 <= depth <= len(tt_indices):
        raise ValueError(
            f"depth must be in [1, {len(tt_indices)}], got {depth}"
        )
    shape = np.asarray(row_shape, dtype=np.int64)
    key = np.asarray(tt_indices[0], dtype=np.int64).copy()
    for k in range(1, depth):
        key *= shape[k]
        key += np.asarray(tt_indices[k], dtype=np.int64)
    return key
