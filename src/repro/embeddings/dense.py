"""Uncompressed embedding bag — the PyTorch ``nn.EmbeddingBag`` stand-in.

This is the representation the DLRM and FAE baselines use, and the
memory-footprint reference for Table III's compression ratios.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from repro.embeddings.base import (
    EmbeddingBagBase,
    expand_bag_ids,
    segment_sum,
)
from repro.embeddings.protocol import CompressionSpec
from repro.nn.optim import SparseSGD
from repro.utils.rng import RngLike, ensure_rng

__all__ = ["DenseEmbeddingBag"]


class DenseEmbeddingBag(EmbeddingBagBase):
    """Dense ``(num_embeddings, embedding_dim)`` table with sum pooling.

    Initialization follows the reference DLRM: uniform in
    ``(-1/sqrt(num_embeddings), 1/sqrt(num_embeddings))``.

    Parameters
    ----------
    num_embeddings, embedding_dim:
        Table shape.
    seed:
        RNG for initialization.
    dtype:
        Storage dtype (float64 default to match the NN substrate; the
        footprint accounting in Table III reports float32-equivalent
        bytes via :meth:`nbytes_as` when comparing with the paper).
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        seed: RngLike = 0,
        dtype: np.dtype = np.float64,
    ) -> None:
        super().__init__(num_embeddings, embedding_dim)
        rng = ensure_rng(seed)
        bound = 1.0 / np.sqrt(num_embeddings)
        self.weight = rng.uniform(
            -bound, bound, size=(num_embeddings, embedding_dim)
        ).astype(dtype)
        #: update counter for hot-row cache staleness detection
        self.version = 0
        self._saved_indices: Optional[np.ndarray] = None
        self._saved_boundaries: Optional[np.ndarray] = None
        self._saved_row_grads: Optional[np.ndarray] = None

    def forward(
        self, indices: np.ndarray, offsets: Optional[np.ndarray] = None
    ) -> np.ndarray:
        idx, boundaries = self._validate_inputs(indices, offsets)
        self._saved_indices = idx
        self._saved_boundaries = boundaries
        rows = self.weight[idx]
        return segment_sum(rows, boundaries)

    def backward(self, grad_output: np.ndarray) -> None:
        if self._saved_indices is None or self._saved_boundaries is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        num_bags = self._saved_boundaries.size - 1
        if grad_output.shape != (num_bags, self.embedding_dim):
            raise ValueError(
                f"expected grad_output shape {(num_bags, self.embedding_dim)}, "
                f"got {grad_output.shape}"
            )
        bag_ids = expand_bag_ids(self._saved_boundaries)
        # Sum pooling: each member of a bag receives the bag's gradient.
        self._saved_row_grads = grad_output[bag_ids]

    def step(self, lr: float) -> None:
        if self._saved_row_grads is None:
            raise RuntimeError("step called before backward")
        SparseSGD(lr).step_rows(
            self.weight, self._saved_indices, self._saved_row_grads
        )
        self.version += 1
        self._saved_indices = None
        self._saved_boundaries = None
        self._saved_row_grads = None

    # -- gradient access for the PS / cache machinery -----------------
    def pop_row_gradients(self) -> tuple:
        """Return and clear ``(indices, per-row gradients)``.

        Used by the parameter-server path (§V) where the *server*
        applies the update after the gradient queue delivers it, rather
        than the table itself.
        """
        if self._saved_row_grads is None:
            raise RuntimeError("no gradients captured")
        out = (self._saved_indices, self._saved_row_grads)
        self._saved_indices = None
        self._saved_boundaries = None
        self._saved_row_grads = None
        return out

    # -- CompressedEmbedding protocol ---------------------------------
    def reconstruct_rows(self, indices: np.ndarray) -> np.ndarray:
        """Pure row lookup (no training state touched)."""
        idx = np.asarray(indices, dtype=np.int64).reshape(-1)
        return np.asarray(self.weight[idx])

    def memory_bytes(self) -> int:
        return int(self.weight.nbytes)

    def state_arrays(self) -> Dict[str, np.ndarray]:
        """Live parameter arrays (callers copy before persisting)."""
        return {"weight": self.weight}

    def load_state_arrays(self, arrays: Mapping[str, np.ndarray]) -> None:
        weight = np.asarray(arrays["weight"], dtype=self.weight.dtype)
        if weight.shape != self.weight.shape:
            raise ValueError(
                f"weight shape {weight.shape} != {self.weight.shape}"
            )
        self.weight[...] = weight
        self.version += 1

    def compression_spec(self) -> CompressionSpec:
        return CompressionSpec.create(
            "dense", self.num_embeddings, self.embedding_dim
        )

    @property
    def nbytes(self) -> int:
        return self.weight.nbytes

    def nbytes_as(self, dtype: np.dtype = np.float32) -> int:
        """Footprint if stored at ``dtype`` (paper reports fp32 tables)."""
        return self.weight.size * np.dtype(dtype).itemsize
