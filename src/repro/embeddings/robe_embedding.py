"""ROBE-style shared-array embedding bag (Random Offset Block Embedding).

Instead of one vector per (hashed) row, ROBE keeps a single flat
weight array of ``array_size`` floats and materializes each logical
row out of it on the fly: the row's ``embedding_dim`` values are read
as ``dim / chunk_size`` contiguous chunks whose start offsets come
from a deterministic universal hash of ``(row, chunk)``, each chunk
flipped by a universal sign hash.  Every float in the array is shared
by many (row, position) pairs, so the footprint is *independent of the
table cardinality* — the compression knob is just ``array_size``.

The hash family is the classic Carter–Wegman
``((a*x + b) mod P) mod S`` with ``P = 2^31 - 1`` (Mersenne prime) and
seed-derived constants.  The constants are part of
:meth:`compression_spec` so a checkpointed bag rebuilds with identical
addressing regardless of the restorer's seed.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.backend import (
    ZONE_COMPRESS_UPDATE,
    ZONE_ROBE_LOOKUP,
    get_backend,
)
from repro.embeddings.base import (
    EmbeddingBagBase,
    expand_bag_ids,
    segment_sum,
)
from repro.embeddings.protocol import CompressionSpec
from repro.utils.rng import RngLike, ensure_rng

__all__ = ["RobeEmbeddingBag", "default_robe_size", "MERSENNE_PRIME_31"]

#: Universal-hash modulus: the 31-bit Mersenne prime.
MERSENNE_PRIME_31 = 2**31 - 1


def default_robe_size(
    num_embeddings: int, embedding_dim: int, compress_rate: float
) -> int:
    """Default shared-array length for a target compression rate."""
    if not 0.0 < compress_rate <= 1.0:
        raise ValueError(
            f"compress_rate must be in (0, 1], got {compress_rate}"
        )
    dense = num_embeddings * embedding_dim
    return max(embedding_dim, min(dense, math.ceil(dense * compress_rate)))


class RobeEmbeddingBag(EmbeddingBagBase):
    """Flat shared weight array with universal-hash chunk addressing.

    Parameters
    ----------
    num_embeddings, embedding_dim:
        Logical table shape.
    array_size:
        Shared array length ``S``; defaults from ``compress_rate``.
    compress_rate:
        Target ``S / (rows * dim)`` ratio when ``array_size`` is absent.
    chunk_size:
        Block length ``Z`` (must divide ``embedding_dim``).  One hash
        per ``(row, chunk)``; ``Z == embedding_dim`` (default) hashes
        once per row, ``Z == 1`` hashes every element independently.
    hash_params:
        Optional explicit ``(a1, a2, a3, a4, b0, b1)`` universal-hash
        constants (checkpoint restore); drawn from ``seed`` otherwise.
    seed:
        RNG for initialization and hash constants.
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        array_size: Optional[int] = None,
        compress_rate: float = 0.25,
        chunk_size: Optional[int] = None,
        hash_params: Optional[Tuple[int, int, int, int, int, int]] = None,
        seed: RngLike = 0,
        dtype: np.dtype = np.float64,
    ) -> None:
        super().__init__(num_embeddings, embedding_dim)
        if array_size is None:
            array_size = default_robe_size(
                num_embeddings, embedding_dim, compress_rate
            )
        array_size = int(array_size)
        if array_size < 1:
            raise ValueError(f"array_size must be >= 1, got {array_size}")
        chunk_size = int(
            chunk_size if chunk_size is not None else embedding_dim
        )
        if chunk_size < 1 or embedding_dim % chunk_size != 0:
            raise ValueError(
                f"chunk_size must divide embedding_dim={embedding_dim}, "
                f"got {chunk_size}"
            )
        self.array_size = array_size
        self.chunk_size = chunk_size
        self.num_chunks = embedding_dim // chunk_size
        self.dtype = np.dtype(dtype)
        rng = ensure_rng(seed)
        if hash_params is None:
            draws = rng.integers(
                1, MERSENNE_PRIME_31, size=6, dtype=np.int64
            )
            hash_params = (
                int(draws[0]), int(draws[1]), int(draws[2]),
                int(draws[3]), int(draws[4]), int(draws[5]),
            )
        if len(hash_params) != 6 or any(
            not 0 < int(p) < MERSENNE_PRIME_31 for p in hash_params
        ):
            raise ValueError(
                "hash_params must be six ints in (0, 2^31 - 1), got "
                f"{hash_params!r}"
            )
        self.hash_params = tuple(int(p) for p in hash_params)
        bound = 1.0 / np.sqrt(array_size)
        self.weight = rng.uniform(
            -bound, bound, size=array_size
        ).astype(self.dtype)
        #: update counter for hot-row cache staleness detection
        self.version = 0
        self._saved_positions: Optional[np.ndarray] = None
        self._saved_signs: Optional[np.ndarray] = None
        self._saved_boundaries: Optional[np.ndarray] = None
        self._saved_row_grads: Optional[np.ndarray] = None

    # -- universal-hash addressing ------------------------------------
    def _positions_signs(
        self, idx: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Flat offsets + chunk signs for each occurrence.

        Returns ``(positions, signs)``, both ``(len(idx), dim)``;
        positions index the flat array, signs are ±1 in the bag dtype.
        All index math is int64: constants are < 2^31 and realistic
        cardinalities < 2^31, so products stay far below 2^63.
        """
        a1, a2, a3, a4, b0, b1 = self.hash_params
        prime = np.int64(MERSENNE_PRIME_31)
        size = np.int64(self.array_size)
        rows = idx[:, None].astype(np.int64)
        chunks = np.arange(self.num_chunks, dtype=np.int64)[None, :]
        offsets = ((a1 * rows + a2 * chunks + b0) % prime) % size  # (L, C)
        lanes = np.arange(self.chunk_size, dtype=np.int64)
        positions = (offsets[:, :, None] + lanes[None, None, :]) % size
        sign_bits = ((a3 * rows + a4 * chunks + b1) % prime) % np.int64(2)
        signs = (1 - 2 * sign_bits).astype(self.dtype)  # (L, C) in ±1
        return (
            positions.reshape(idx.size, self.embedding_dim),
            np.repeat(signs, self.chunk_size, axis=1),
        )

    def _gather(
        self, positions: np.ndarray, signs: np.ndarray
    ) -> np.ndarray:
        bk = get_backend()
        with bk.zone(ZONE_ROBE_LOOKUP):
            flat = bk.gather_rows(
                self.weight.reshape(-1, 1), positions.reshape(-1)
            )
            rows = flat.reshape(positions.shape) * signs
        return np.asarray(rows)

    def forward(
        self, indices: np.ndarray, offsets: Optional[np.ndarray] = None
    ) -> np.ndarray:
        idx, boundaries = self._validate_inputs(indices, offsets)
        positions, signs = self._positions_signs(idx)
        rows = self._gather(positions, signs)
        self._saved_positions = positions
        self._saved_signs = signs
        self._saved_boundaries = boundaries
        return segment_sum(rows, boundaries)

    def backward(self, grad_output: np.ndarray) -> None:
        if self._saved_positions is None or self._saved_boundaries is None:
            raise RuntimeError("backward called before forward")
        bk = get_backend()
        grad_output = bk.asarray(grad_output, dtype=self.dtype)
        num_bags = self._saved_boundaries.size - 1
        if grad_output.shape != (num_bags, self.embedding_dim):
            raise ValueError(
                f"expected grad_output shape "
                f"{(num_bags, self.embedding_dim)}, got {grad_output.shape}"
            )
        bag_ids = expand_bag_ids(self._saved_boundaries)
        with bk.zone(ZONE_ROBE_LOOKUP):
            row_grads = bk.gather_rows(grad_output, bag_ids)
            # Chain rule through the sign flip.
            self._saved_row_grads = row_grads * self._saved_signs

    def step(self, lr: float) -> None:
        if self._saved_row_grads is None:
            raise RuntimeError("step called before backward")
        bk = get_backend()
        with bk.zone(ZONE_COMPRESS_UPDATE):
            bk.scatter_add_rows(
                self.weight.reshape(-1, 1),
                self._saved_positions.reshape(-1),
                self._saved_row_grads.reshape(-1, 1),
                scale=-lr,
            )
        self.version += 1
        self._saved_positions = None
        self._saved_signs = None
        self._saved_boundaries = None
        self._saved_row_grads = None

    # -- CompressedEmbedding protocol ---------------------------------
    def reconstruct_rows(self, indices: np.ndarray) -> np.ndarray:
        """Pure row materialization (no training state touched)."""
        idx = np.asarray(indices, dtype=np.int64).reshape(-1)
        if idx.size and (idx.min() < 0 or idx.max() >= self.num_embeddings):
            raise IndexError("row index out of range")
        positions, signs = self._positions_signs(idx)
        return self._gather(positions, signs)

    def memory_bytes(self) -> int:
        return int(self.weight.nbytes)

    def state_arrays(self) -> Dict[str, np.ndarray]:
        """Live parameter arrays (callers copy before persisting)."""
        return {"weight": self.weight}

    def load_state_arrays(self, arrays: Mapping[str, np.ndarray]) -> None:
        weight = np.asarray(arrays["weight"], dtype=self.dtype).reshape(-1)
        if weight.shape != self.weight.shape:
            raise ValueError(
                f"weight shape {weight.shape} != {self.weight.shape}"
            )
        self.weight[...] = weight
        self.version += 1

    def compression_spec(self) -> CompressionSpec:
        return CompressionSpec.create(
            "robe",
            self.num_embeddings,
            self.embedding_dim,
            {
                "array_size": self.array_size,
                "chunk_size": self.chunk_size,
                "hash_params": self.hash_params,
            },
        )

    @property
    def nbytes(self) -> int:
        return self.weight.nbytes

    def nbytes_as(self, dtype: np.dtype = np.float32) -> int:
        """Footprint if stored at ``dtype``."""
        return self.weight.size * np.dtype(dtype).itemsize

    def compression_ratio(self) -> float:
        return (
            self.num_embeddings * self.embedding_dim / self.array_size
        )

    @staticmethod
    def estimate_bytes(array_size: int, dtype_bytes: int = 8) -> int:
        """Planner-side footprint formula (matches ``memory_bytes``)."""
        return int(array_size) * int(dtype_bytes)
