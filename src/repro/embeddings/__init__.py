"""Embedding-table implementations.

This package contains the paper's central artifact and its baselines:

* :class:`DenseEmbeddingBag` — uncompressed table, the PyTorch
  ``nn.EmbeddingBag`` equivalent (used by the DLRM / FAE baselines).
* :class:`TTEmbeddingBag` — TT-Rec-style Tensor-Train table: compressed
  storage, but naive per-occurrence lookup and per-occurrence backward
  with materialized core gradients.
* :class:`EffTTEmbeddingBag` — the paper's Eff-TT table (§III): batch
  reuse buffer over shared TT-index prefixes, in-advance gradient
  aggregation over unique indices, and a fused core update.
* :class:`HashEmbeddingBag` / :class:`RobeEmbeddingBag` /
  :class:`PQEmbeddingBag` — the compressed-embedding zoo: mod-hash
  bucketing, ROBE shared-array chunks, and DPQ-style product
  quantization.
* :class:`EmbeddingCache` — the LC-managed GPU-side cache that resolves
  the read-after-write conflict in pipelined training (§V-B).

All bags share one contract (see :class:`EmbeddingBagBase`):
``forward(indices, offsets) -> (B, dim)`` with sum pooling,
``backward(grad_output)`` capturing sparse gradient state, and
``step(lr)`` applying the update — plus the structural
:class:`CompressedEmbedding` protocol (footprint, state arrays, spec,
version counter, pure row reconstruction) that serialization, serving,
resilience and placement program against.  The memory-budget
auto-tuner lives in :mod:`repro.embeddings.autotune`.
"""

from repro.embeddings.base import EmbeddingBagBase, normalize_offsets, segment_sum
from repro.embeddings.protocol import CompressedEmbedding, CompressionSpec
from repro.embeddings.dense import DenseEmbeddingBag
from repro.embeddings.hash_embedding import HashEmbeddingBag
from repro.embeddings.robe_embedding import RobeEmbeddingBag
from repro.embeddings.pq_embedding import PQEmbeddingBag
from repro.embeddings.tt_indices import (
    prefix_keys,
    row_index_to_tt,
    tt_to_row_index,
)
from repro.embeddings.tt_core import TTCores, TTSpec, tt_svd
from repro.embeddings.tt_embedding import TTEmbeddingBag
from repro.embeddings.reuse_buffer import ReusePlan, build_reuse_plan
from repro.embeddings.eff_tt_embedding import EffTTEmbeddingBag
from repro.embeddings.cache import EmbeddingCache
from repro.embeddings.collection import EmbeddingCollection
from repro.embeddings.inference import HotRowCachedLookup, StaleCacheError
from repro.embeddings.autotune import (
    CompressionPlan,
    TablePlan,
    build_bag_from_plan,
    build_bag_from_spec,
    plan_compression,
)

__all__ = [
    "EmbeddingBagBase",
    "normalize_offsets",
    "segment_sum",
    "CompressedEmbedding",
    "CompressionSpec",
    "DenseEmbeddingBag",
    "HashEmbeddingBag",
    "RobeEmbeddingBag",
    "PQEmbeddingBag",
    "CompressionPlan",
    "TablePlan",
    "plan_compression",
    "build_bag_from_plan",
    "build_bag_from_spec",
    "row_index_to_tt",
    "tt_to_row_index",
    "prefix_keys",
    "TTSpec",
    "TTCores",
    "tt_svd",
    "TTEmbeddingBag",
    "ReusePlan",
    "build_reuse_plan",
    "EffTTEmbeddingBag",
    "EmbeddingCache",
    "HotRowCachedLookup",
    "StaleCacheError",
    "EmbeddingCollection",
]
