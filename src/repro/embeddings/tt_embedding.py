"""TT-Rec-style Tensor-Train embedding bag (the compression baseline).

This implements the TT table as TT-Rec [20] does, *without* the paper's
Eff-TT optimizations:

* forward: one full TT contraction chain **per index occurrence** — no
  dedup, no prefix reuse buffer;
* backward: per-occurrence slice gradients scattered into materialized
  full-size core-gradient arrays (the extra data copy the paper calls
  out in §III-B);
* update: a separate dense optimizer pass over whole cores.

The class is deliberately kept algorithmically naive so that the
Eff-TT/TT-Rec comparisons in Figures 14, 17 and 18 measure exactly the
paper's claimed optimizations on a shared substrate.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backend import (
    ZONE_OPTIMIZER,
    ZONE_TT_BACKWARD,
    ZONE_TT_FORWARD,
    get_backend,
    get_plan_cache,
)
from repro.embeddings.base import (
    EmbeddingBagBase,
    expand_bag_ids,
    segment_sum,
)
from repro.embeddings.protocol import CompressionSpec
from repro.embeddings.tt_core import TTCores, TTSpec
from repro.embeddings.tt_indices import row_index_to_tt
from repro.utils.factorize import suggest_tt_shapes
from repro.utils.rng import RngLike

__all__ = ["TTEmbeddingBag", "tt_chain_forward", "tt_chain_backward"]


def tt_chain_forward(
    cores: List[np.ndarray],
    tt_idx: Sequence[np.ndarray],
    zone: str = ZONE_TT_FORWARD,
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """Sequential TT contraction for a list of per-core indices.

    Returns ``(rows, left_partials)`` where ``rows`` is
    ``(L, embedding_dim)`` and ``left_partials[k]`` is the accumulated
    product of cores ``0..k`` gathered at the given indices, shape
    ``(L, prod_{l<=k} n_l, R_{k+1})`` — cached for the backward chain.

    ``zone`` names the kernel zone the contraction is attributed to
    (callers such as the Eff-TT bag re-tag the shared chain kernel).
    The batched-GEMM schedule is fetched from the process-wide
    :class:`~repro.backend.plan_cache.ContractionPlanCache`, keyed on
    the core shapes only — the second batch of a run hits the cache
    regardless of its occurrence count.
    """
    bk = get_backend()
    plan = get_plan_cache().chain_plan(
        "chain_forward", tuple(c.shape for c in cores)
    )
    with bk.zone(zone):
        left = bk.gather_rows(cores[0], tt_idx[0])  # (L, 1, n_1, R_1)
        batch = left.shape[0]
        left = left.reshape(batch, -1, left.shape[-1])
        left_partials = [left]
        for stage in plan.stages[1:]:
            k = stage.core_index
            slice_k = bk.gather_rows(cores[k], tt_idx[k])  # (L, R_{k-1}, n_k, R_k)
            # (L, a, r) @ (L, r, n*s) -> (L, a*n, s): one batched GEMM per
            # core, the cublasGemmBatchedEx shape of the paper's kernel.
            left = bk.matmul(
                left, slice_k.reshape(batch, stage.r_in, stage.out_width)
            )
            left = left.reshape(batch, -1, stage.r_out)
            left_partials.append(left)
        rows = left.reshape(batch, -1)
    return rows, left_partials


def tt_chain_backward(
    cores: List[np.ndarray],
    tt_idx: Sequence[np.ndarray],
    left_partials: List[np.ndarray],
    row_grads: np.ndarray,
    col_shape: Sequence[int],
    zone: str = ZONE_TT_BACKWARD,
) -> List[np.ndarray]:
    """Per-occurrence slice gradients for every core.

    Parameters
    ----------
    cores:
        Core arrays in storage layout ``(m_k, R_{k-1}, n_k, R_k)``.
    tt_idx:
        Per-core indices, each ``(L,)``.
    left_partials:
        Cached prefix products from :func:`tt_chain_forward`.
    row_grads:
        ``(L, embedding_dim)`` gradients of the looked-up rows.
    col_shape:
        Column factors ``[n_1, ..., n_d]``.
    zone:
        Kernel zone the contraction is attributed to.

    Returns
    -------
    List of ``d`` arrays, each ``(L, R_{k-1}, n_k, R_k)`` — the gradient
    of every gathered TT slice (Equation 6 evaluated for all cores).
    """
    bk = get_backend()
    get_plan_cache().chain_plan("chain_backward", tuple(c.shape for c in cores))
    d = len(cores)
    batch = row_grads.shape[0]
    with bk.zone(zone):
        # Right (suffix) partials: right[k] = product of slices k+1..d-1,
        # shape (L, R_k, prod_{l>k} n_l).  One batched GEMM per core.
        # Seeded at the row-gradient dtype so a float32-configured table
        # never silently upcasts the whole backward chain to float64.
        # One shared (L, 1, 1) identity seed: it is read-only on both the
        # suffix chain and the k==0 left partial, so a single allocation
        # serves every use.
        ones_seed = bk.ones((batch, 1, 1), dtype=row_grads.dtype)
        right = ones_seed
        rights: List[Optional[np.ndarray]] = [None] * d
        rights[d - 1] = right
        for k in range(d - 1, 0, -1):
            slice_k = bk.gather_rows(cores[k], tt_idx[k])  # (L, R_{k-1}, n_k, R_k)
            r_prev, n_k, r_next = slice_k.shape[1:]
            # (L, r*b, s) @ (L, s, c) -> (L, r*b, c) -> (L, r, b*c)
            right = bk.matmul(
                slice_k.reshape(batch, r_prev * n_k, r_next), right
            ).reshape(batch, r_prev, -1)
            rights[k - 1] = right

        slice_grads: List[np.ndarray] = []
        prefix_cols = 1
        for k in range(d):
            n_k = col_shape[k]
            suffix_cols = row_grads.shape[1] // (prefix_cols * n_k)
            grad_tensor = row_grads.reshape(batch, prefix_cols, n_k * suffix_cols)
            left = left_partials[k - 1] if k > 0 else ones_seed
            right_k = rights[k]
            assert right_k is not None
            # dSlice[l, r, b, s] = sum_{a, c} left[l,a,r] G[l,a,b,c] right[l,s,c]
            # as two batched GEMMs (Equation 6 in cuBLAS form):
            #   tmp = left^T G     : (L, r, a) @ (L, a, b*c) -> (L, r, b*c)
            #   grad = tmp right^T : (L, r*b, c) @ (L, c, s) -> (L, r*b, s)
            r_prev = left.shape[2]
            r_next = right_k.shape[1]
            tmp = bk.matmul(left.transpose(0, 2, 1), grad_tensor)
            grad_k = bk.matmul(
                tmp.reshape(batch, r_prev * n_k, suffix_cols),
                right_k.transpose(0, 2, 1),
            ).reshape(batch, r_prev, n_k, r_next)
            slice_grads.append(grad_k)
            prefix_cols *= n_k
    return slice_grads


class TTEmbeddingBag(EmbeddingBagBase):
    """Tensor-Train embedding bag with naive (TT-Rec-style) kernels.

    Parameters
    ----------
    num_embeddings, embedding_dim:
        Logical table shape; rows are padded up to a balanced TT
        factorization (padding rows are never addressed).
    tt_rank:
        Scalar TT rank or explicit internal rank list.
    num_cores:
        Number of TT cores ``d`` (paper uses 3).
    row_shape, col_shape:
        Optional explicit factorizations overriding the automatic ones.
    seed:
        RNG for core initialization.
    dtype:
        Core / gradient floating dtype (default ``np.float64``, the
        historical behavior).  The whole forward/backward/update path
        stays at this dtype — no silent float64 upcasts.
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        tt_rank: Union[int, Sequence[int]] = 64,
        num_cores: int = 3,
        row_shape: Optional[Sequence[int]] = None,
        col_shape: Optional[Sequence[int]] = None,
        seed: RngLike = 0,
        dtype: np.dtype = np.float64,
    ) -> None:
        super().__init__(num_embeddings, embedding_dim)
        if row_shape is None or col_shape is None:
            auto_rows, auto_cols, _ = suggest_tt_shapes(
                num_embeddings, embedding_dim, num_cores
            )
            row_shape = row_shape if row_shape is not None else auto_rows
            col_shape = col_shape if col_shape is not None else auto_cols
        if math.prod(row_shape) < num_embeddings:
            raise ValueError(
                f"prod(row_shape)={math.prod(row_shape)} cannot address "
                f"{num_embeddings} rows"
            )
        if math.prod(col_shape) != embedding_dim:
            raise ValueError(
                f"prod(col_shape)={math.prod(col_shape)} != embedding_dim="
                f"{embedding_dim}"
            )
        self.spec = TTSpec.create(row_shape, col_shape, tt_rank)
        self.dtype = np.dtype(dtype)
        self.tt = TTCores.random_init(self.spec, seed=seed, dtype=self.dtype)
        #: Monotonic core-update counter.  Serving-time views snapshot
        #: it to detect stale materialized rows (see
        #: :class:`~repro.embeddings.inference.HotRowCachedLookup`).
        self.version = 0
        self._saved: Optional[dict] = None
        self._core_grads: Optional[List[np.ndarray]] = None

    # -- forward -------------------------------------------------------
    def forward(
        self, indices: np.ndarray, offsets: Optional[np.ndarray] = None
    ) -> np.ndarray:
        idx, boundaries = self._validate_inputs(indices, offsets)
        tt_idx = row_index_to_tt(idx, self.spec.row_shape)
        rows, left_partials = tt_chain_forward(self.tt.cores, tt_idx)
        self._saved = {
            "tt_idx": tt_idx,
            "left_partials": left_partials,
            "boundaries": boundaries,
        }
        return segment_sum(rows, boundaries)

    # -- backward ----------------------------------------------------------
    def backward(self, grad_output: np.ndarray) -> None:
        if self._saved is None:
            raise RuntimeError("backward called before forward")
        saved = self._saved
        boundaries = saved["boundaries"]
        bk = get_backend()
        grad_output = bk.asarray(grad_output, dtype=self.dtype)
        num_bags = boundaries.size - 1
        if grad_output.shape != (num_bags, self.embedding_dim):
            raise ValueError(
                f"expected grad_output shape {(num_bags, self.embedding_dim)}, "
                f"got {grad_output.shape}"
            )
        bag_ids = expand_bag_ids(boundaries)
        with bk.zone(ZONE_TT_BACKWARD):
            row_grads = bk.gather_rows(grad_output, bag_ids)  # one per occurrence
        slice_grads = tt_chain_backward(
            self.tt.cores,
            saved["tt_idx"],
            saved["left_partials"],
            row_grads,
            self.spec.col_shape,
        )
        # TT-Rec path: materialize full-size core gradients (the extra
        # allocation + scatter the paper's fused update avoids).
        with bk.zone(ZONE_TT_BACKWARD):
            core_grads = [
                bk.zeros(core.shape, dtype=core.dtype) for core in self.tt.cores
            ]
            for k, grads_k in enumerate(slice_grads):
                bk.scatter_add_rows(core_grads[k], saved["tt_idx"][k], grads_k)
        self._core_grads = core_grads
        self._saved = None

    def step(self, lr: float) -> None:
        if self._core_grads is None:
            raise RuntimeError("step called before backward")
        # Separate dense optimizer pass over whole cores.
        bk = get_backend()
        with bk.zone(ZONE_OPTIMIZER):
            for core, grad in zip(self.tt.cores, self._core_grads):
                bk.axpy(core, grad, -lr)
        self._core_grads = None
        self.version += 1

    # -- CompressedEmbedding protocol -------------------------------------
    def reconstruct_rows(self, indices: np.ndarray) -> np.ndarray:
        """Pure row materialization (no training state touched)."""
        return self.tt.reconstruct_rows(indices)

    def memory_bytes(self) -> int:
        return int(self.tt.nbytes)

    def state_arrays(self) -> Dict[str, np.ndarray]:
        """Live TT cores keyed ``core{k}`` (callers copy to persist)."""
        return {f"core{k}": core for k, core in enumerate(self.tt.cores)}

    def load_state_arrays(self, arrays: Mapping[str, np.ndarray]) -> None:
        for k, core in enumerate(self.tt.cores):
            stored = np.asarray(arrays[f"core{k}"], dtype=core.dtype)
            if stored.shape != core.shape:
                raise ValueError(
                    f"core{k} shape {stored.shape} != {core.shape}"
                )
        for k, core in enumerate(self.tt.cores):
            core[...] = np.asarray(arrays[f"core{k}"], dtype=core.dtype)
        self.version += 1

    def compression_spec(self) -> CompressionSpec:
        return CompressionSpec.create(
            "tt",
            self.num_embeddings,
            self.embedding_dim,
            {
                "row_shape": tuple(self.spec.row_shape),
                "col_shape": tuple(self.spec.col_shape),
                "ranks": tuple(self.spec.ranks),
            },
        )

    # -- introspection ----------------------------------------------------
    @property
    def nbytes(self) -> int:
        return self.tt.nbytes

    def nbytes_as(self, dtype: np.dtype = np.float32) -> int:
        """Footprint if cores were stored at ``dtype``."""
        return self.spec.num_params * np.dtype(dtype).itemsize

    def compression_ratio(self) -> float:
        """Dense ``num_embeddings x dim`` footprint over TT footprint."""
        dense = self.num_embeddings * self.embedding_dim
        return dense / self.spec.num_params

    def materialize(self) -> np.ndarray:
        """Reconstruct the logical table (tests / small tables only)."""
        return self.tt.reconstruct()[: self.num_embeddings]
