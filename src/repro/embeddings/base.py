"""Shared embedding-bag contract and pooling helpers.

All embedding implementations expose PyTorch ``nn.EmbeddingBag``
semantics with ``mode="sum"``: a flat index array plus per-bag offsets,
one pooled embedding per bag.  The paper's Eff-TT table is explicitly a
drop-in replacement for that API (§I, §VI-A), so the reproduction keeps
the same calling convention everywhere.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.validation import check_1d_int_array

__all__ = ["normalize_offsets", "segment_sum", "EmbeddingBagBase"]


def normalize_offsets(
    offsets: np.ndarray, num_indices: int
) -> np.ndarray:
    """Canonicalize bag offsets to the ``B+1`` boundary form.

    Accepts either the PyTorch form (length ``B``, first element 0) or
    the boundary form (length ``B+1``, last element ``num_indices``).
    Returns the boundary form as int64.  Offsets must be
    non-decreasing and within ``[0, num_indices]``; empty bags
    (consecutive equal offsets) are allowed and pool to zeros.
    """
    off = check_1d_int_array(offsets, "offsets", min_value=0, max_value=num_indices)
    if off.size == 0:
        raise ValueError("offsets must contain at least one bag")
    if off[0] != 0:
        raise ValueError(f"offsets must start at 0, got {off[0]}")
    if np.any(np.diff(off) < 0):
        raise ValueError("offsets must be non-decreasing")
    if off[-1] != num_indices:
        off = np.concatenate([off, [num_indices]])
    return off


def segment_sum(values: np.ndarray, boundaries: np.ndarray) -> np.ndarray:
    """Sum ``values`` rows within each ``[boundaries[b], boundaries[b+1])`` span.

    Parameters
    ----------
    values:
        ``(L, dim)`` array of per-index rows.
    boundaries:
        ``(B+1,)`` boundary-form offsets (see :func:`normalize_offsets`).

    Returns
    -------
    ``(B, dim)`` pooled array; empty segments yield zero rows.
    """
    num_bags = boundaries.size - 1
    dim = values.shape[1]
    out = np.zeros((num_bags, dim), dtype=values.dtype)
    if values.shape[0] == 0:
        return out
    non_empty = boundaries[:-1] < boundaries[1:]
    if not non_empty.any():
        return out
    # reduceat needs strictly valid start positions; restrict to
    # non-empty segments then scatter back.
    starts = boundaries[:-1][non_empty]
    pooled = np.add.reduceat(values, starts, axis=0)
    out[non_empty] = pooled
    return out


def expand_bag_ids(boundaries: np.ndarray) -> np.ndarray:
    """Per-index bag id array for boundary-form offsets.

    ``expand_bag_ids([0, 2, 2, 5]) -> [0, 0, 2, 2, 2]``
    """
    lengths = np.diff(boundaries)
    return np.repeat(np.arange(lengths.size, dtype=np.int64), lengths)


class EmbeddingBagBase:
    """Abstract sum-pooling embedding bag.

    Subclasses implement :meth:`forward`, :meth:`backward` and
    :meth:`step`; shared validation lives here.

    Attributes
    ----------
    num_embeddings:
        Number of logical rows (valid index range ``[0, num_embeddings)``).
    embedding_dim:
        Width of each embedding row.
    """

    def __init__(self, num_embeddings: int, embedding_dim: int) -> None:
        if num_embeddings < 1:
            raise ValueError(f"num_embeddings must be >= 1, got {num_embeddings}")
        if embedding_dim < 1:
            raise ValueError(f"embedding_dim must be >= 1, got {embedding_dim}")
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim

    # -- helpers -------------------------------------------------------
    def _validate_inputs(
        self, indices: np.ndarray, offsets: Optional[np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        idx = check_1d_int_array(
            indices, "indices", min_value=0, max_value=self.num_embeddings - 1
        )
        if offsets is None:
            # One index per bag.
            boundaries = np.arange(idx.size + 1, dtype=np.int64)
        else:
            boundaries = normalize_offsets(offsets, idx.size)
        return idx, boundaries

    # -- interface -------------------------------------------------------
    def forward(
        self, indices: np.ndarray, offsets: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Pooled lookup: returns ``(num_bags, embedding_dim)``."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> None:
        """Capture sparse gradient state for the most recent forward."""
        raise NotImplementedError

    def step(self, lr: float) -> None:
        """Apply the captured gradients with SGD and clear them."""
        raise NotImplementedError

    def lookup_rows(self, indices: np.ndarray) -> np.ndarray:
        """Un-pooled lookup of individual rows, ``(len(indices), dim)``."""
        idx = check_1d_int_array(
            indices, "indices", min_value=0, max_value=self.num_embeddings - 1
        )
        boundaries = np.arange(idx.size + 1, dtype=np.int64)
        return self.forward(idx, boundaries)

    @property
    def nbytes(self) -> int:
        """Parameter memory footprint in bytes."""
        raise NotImplementedError

    def __call__(self, indices, offsets=None):
        return self.forward(indices, offsets)
