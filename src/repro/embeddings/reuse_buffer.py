"""Batch-level intermediate-result reuse planning (paper §III-A, Algorithm 1).

The paper's CUDA implementation prepares pointer lists so a batched
GEMM computes the partial product of the first TT cores exactly once
per *unique* TT-index prefix in the batch, storing results in a Reuse
Buffer.  The NumPy equivalent of pointer preparation is this module's
:func:`build_reuse_plan`: one pass of ``np.unique`` bookkeeping that
yields, for a batch of embedding indices,

* the unique row indices and the occurrence->unique scatter map
  (sample- and batch-level full-row reuse), and
* the unique prefix keys among those rows and the row->prefix gather
  map (the Reuse Buffer contents).

The plan is consumed by :class:`~repro.embeddings.eff_tt_embedding.EffTTEmbeddingBag`
and reported by the locality statistics in :mod:`repro.reorder.stats`.

Backend note: this module is deliberately *outside* the
:mod:`repro.backend` routing.  It performs integer index bookkeeping
only — ``np.unique``, mixed-radix prefix decoding — with no float
contractions or row movement to instrument; the gathers and GEMMs the
plan drives execute in ``eff_tt_embedding`` under the ``efftt_*``
kernel zones, and the plan's FLOP consequences are costed there (and
cross-checked against :mod:`repro.embeddings.flops`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.embeddings.tt_indices import prefix_keys, row_index_to_tt

__all__ = ["ReusePlan", "build_reuse_plan"]


@dataclass(frozen=True)
class ReusePlan:
    """Computation plan for one batch of TT-table lookups.

    Attributes
    ----------
    unique_rows:
        Sorted unique embedding row indices in the batch, shape ``(U,)``.
    row_inverse:
        For each of the ``L`` occurrences, the position of its row in
        ``unique_rows`` (scatter map), shape ``(L,)``.
    tt_indices:
        Per-core TT indices **of the unique rows**, ``d`` arrays of
        shape ``(U,)``.
    prefix_ids:
        For each unique row, the position of its (first ``d-1`` cores)
        prefix in the unique-prefix set, shape ``(U,)``.
    num_unique_prefixes:
        Number of distinct prefixes ``P`` — the number of partial-GEMM
        evaluations actually required.
    prefix_tt_indices:
        Per-core TT indices of the unique prefixes, ``d-1`` arrays of
        shape ``(P,)`` (the gather lists for the batched partial GEMM —
        the ``Ptr_a`` / ``Ptr_b`` analog of Algorithm 1).
    """

    unique_rows: np.ndarray
    row_inverse: np.ndarray
    tt_indices: Tuple[np.ndarray, ...]
    prefix_ids: np.ndarray
    num_unique_prefixes: int
    prefix_tt_indices: Tuple[np.ndarray, ...]

    @property
    def num_occurrences(self) -> int:
        return int(self.row_inverse.size)

    @property
    def num_unique_rows(self) -> int:
        return int(self.unique_rows.size)

    @property
    def full_row_reuse_ratio(self) -> float:
        """Occurrences served per computed row (>= 1; higher is better)."""
        if self.num_unique_rows == 0:
            return 1.0
        return self.num_occurrences / self.num_unique_rows

    @property
    def prefix_reuse_ratio(self) -> float:
        """Unique rows served per partial-product GEMM (>= 1)."""
        if self.num_unique_prefixes == 0:
            return 1.0
        return self.num_unique_rows / self.num_unique_prefixes

    def gemm_count(self) -> int:
        """Partial GEMMs issued under this plan."""
        return self.num_unique_prefixes

    def naive_gemm_count(self) -> int:
        """Partial GEMMs a per-occurrence implementation would issue."""
        return self.num_occurrences


def build_reuse_plan(
    indices: np.ndarray,
    row_shape: Sequence[int],
    prefix_depth: int | None = None,
) -> ReusePlan:
    """Analyze a batch of row indices and plan reused TT computation.

    Parameters
    ----------
    indices:
        Flat int array of embedding row indices (all occurrences in the
        batch, duplicates expected — see paper Figure 4b).
    row_shape:
        TT row factors ``[m_1, ..., m_d]``.
    prefix_depth:
        How many leading cores the reuse buffer covers.  Defaults to
        ``d - 1`` (the paper reuses the product of the first two cores
        for ``d = 3``).

    Notes
    -----
    Sorting inside ``np.unique`` plays the role of Algorithm 1's
    parallel duplicate detection: both identify, per distinct prefix,
    a single representative computation.
    """
    idx = np.asarray(indices, dtype=np.int64).ravel()
    d = len(row_shape)
    if prefix_depth is None:
        prefix_depth = d - 1
    if not 1 <= prefix_depth < d:
        raise ValueError(
            f"prefix_depth must be in [1, {d - 1}], got {prefix_depth}"
        )

    unique_rows, row_inverse = np.unique(idx, return_inverse=True)
    tt_idx: List[np.ndarray] = row_index_to_tt(unique_rows, row_shape)

    keys = prefix_keys(tt_idx, row_shape, depth=prefix_depth)
    unique_keys, prefix_ids = np.unique(keys, return_inverse=True)

    # Recover the per-core indices of each unique prefix by decoding the
    # packed key (the keys were built with mixed-radix packing over the
    # first `prefix_depth` row factors).
    prefix_tt: List[np.ndarray] = []
    remaining = unique_keys.copy()
    radices = list(row_shape[:prefix_depth])
    for k in range(prefix_depth - 1, -1, -1):
        prefix_tt.append(remaining % radices[k])
        remaining //= radices[k]
    prefix_tt.reverse()

    return ReusePlan(
        unique_rows=unique_rows,
        row_inverse=row_inverse.astype(np.int64),
        tt_indices=tuple(tt_idx),
        prefix_ids=prefix_ids.astype(np.int64),
        num_unique_prefixes=int(unique_keys.size),
        prefix_tt_indices=tuple(prefix_tt),
    )
