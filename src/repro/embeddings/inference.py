"""Serving-time hot-row cache over a compressed table.

Training wants the compressed representation (small, updatable);
serving wants latency.  Because the access distribution is power-law
(paper Figure 4a), materializing a small set of *hot* rows captures
most lookups: hot indices are served by a plain gather while the long
tail falls back to the strategy's row reconstruction (TT contraction,
ROBE chunk gather, PQ centroid concat, ...).  This combines the
paper's two observations — FAE-style hot caching and TT compression —
on the inference path.

The cache works over any
:class:`~repro.embeddings.protocol.CompressedEmbedding` except a plain
dense table, where a "cache" would just duplicate rows a single gather
already serves — constructing one over a dense bag raises.

The view is read-only, and staleness is *detected*, not trusted to the
caller: every bag carries a monotonic ``version`` counter that
increments on any parameter update, and the view snapshots it when the
hot rows are materialized.  A lookup against a bag that has trained
since then either raises :class:`StaleCacheError` (``on_stale="raise"``,
the default), transparently re-materializes (``on_stale="refresh"``),
or knowingly serves stale rows (``on_stale="ignore"``, for staleness
experiments).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.backend import ZONE_SERVING_LOOKUP, get_backend
from repro.embeddings.base import normalize_offsets, segment_sum
from repro.embeddings.dense import DenseEmbeddingBag
from repro.embeddings.eff_tt_embedding import EffTTEmbeddingBag
from repro.embeddings.protocol import CompressedEmbedding
from repro.embeddings.tt_embedding import TTEmbeddingBag
from repro.utils.validation import check_1d_int_array

__all__ = ["HotRowCachedLookup", "StaleCacheError"]

#: Backwards-compatible alias — the cache now accepts any non-dense
#: :class:`CompressedEmbedding`, not just the TT pair.
TTBag = Union[TTEmbeddingBag, EffTTEmbeddingBag]

_STALE_POLICIES = ("raise", "refresh", "ignore")


class StaleCacheError(RuntimeError):
    """The underlying parameters changed since the hot rows were built."""


class HotRowCachedLookup:
    """Read-only lookup view with materialized hot rows.

    Parameters
    ----------
    bag:
        The compressed table to serve from — any
        :class:`CompressedEmbedding` except a dense one.
    hot_rows:
        Row indices to materialize (e.g. the most frequent rows from a
        profiling pass, ``ZipfSampler.top_rows(n)``, or
        ``ZipfSampler.rows_covering(0.9)`` many).
    on_stale:
        What to do when the bag's ``version`` has moved past the cached
        one: ``"raise"`` (default), ``"refresh"`` (re-materialize and
        continue), or ``"ignore"`` (serve stale hot rows knowingly).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.embeddings import EffTTEmbeddingBag
    >>> bag = EffTTEmbeddingBag(1000, 8, tt_rank=4, seed=0)
    >>> view = HotRowCachedLookup(bag, hot_rows=np.arange(100))
    >>> out = view.forward(np.array([3, 500]), np.array([0, 1]))
    >>> out.shape
    (2, 8)
    >>> view.hits, view.misses
    (1, 1)
    """

    def __init__(
        self,
        bag: CompressedEmbedding,
        hot_rows: np.ndarray,
        on_stale: str = "raise",
    ) -> None:
        if isinstance(bag, DenseEmbeddingBag):
            raise TypeError(
                "dense tables need no hot-row cache — a lookup is already "
                "one gather; serve the bag directly"
            )
        if not isinstance(bag, CompressedEmbedding):
            raise TypeError(
                f"bag must be a compressed table, got {type(bag).__name__}"
            )
        if on_stale not in _STALE_POLICIES:
            raise ValueError(
                f"on_stale must be one of {_STALE_POLICIES}, got {on_stale!r}"
            )
        self.bag = bag
        self.on_stale = on_stale
        hot = np.unique(
            check_1d_int_array(
                hot_rows, "hot_rows", min_value=0,
                max_value=bag.num_embeddings - 1,
            )
        )
        self._hot_rows = hot
        self._hot_values: Optional[np.ndarray] = None
        self._cached_version = -1
        self.hits = 0
        self.misses = 0
        self.refreshes = 0
        self.refresh()

    def refresh(self) -> None:
        """Re-materialize the hot rows from the current parameters."""
        if self._hot_rows.size:
            self._hot_values = self.bag.reconstruct_rows(self._hot_rows)
        else:
            self._hot_values = np.zeros(
                (0, self.bag.embedding_dim), dtype=np.float64
            )
        self._cached_version = self.bag.version
        self.refreshes += 1

    @property
    def is_stale(self) -> bool:
        """Whether the bag has updated since the last refresh."""
        return self.bag.version != self._cached_version

    def _check_fresh(self) -> None:
        if not self.is_stale:
            return
        if self.on_stale == "refresh":
            self.refresh()
        elif self.on_stale == "raise":
            raise StaleCacheError(
                f"bag at version {self.bag.version} but hot rows were "
                f"materialized at version {self._cached_version}; call "
                "refresh() after training, or construct with "
                "on_stale='refresh'"
            )
        # "ignore": serve the stale rows knowingly.

    # ------------------------------------------------------------------
    def _split(self, idx: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Positions of cached indices and their slots in the cache."""
        pos = np.searchsorted(self._hot_rows, idx)
        pos = np.minimum(pos, max(0, self._hot_rows.size - 1))
        if self._hot_rows.size:
            is_hot = self._hot_rows[pos] == idx
        else:
            is_hot = np.zeros(idx.size, dtype=bool)
        return is_hot, pos

    def lookup_rows(self, indices: np.ndarray) -> np.ndarray:
        """Un-pooled row lookup, cache-accelerated."""
        self._check_fresh()
        idx = check_1d_int_array(
            indices, "indices", min_value=0,
            max_value=self.bag.num_embeddings - 1,
        )
        is_hot, pos = self._split(idx)
        bk = get_backend()
        with bk.zone(ZONE_SERVING_LOOKUP):
            rows = bk.empty((idx.size, self.bag.embedding_dim), dtype=np.float64)
            if is_hot.any():
                rows[is_hot] = bk.gather_rows(self._hot_values, pos[is_hot])
            cold = ~is_hot
            if cold.any():
                rows[cold] = self.bag.reconstruct_rows(idx[cold])
        self.hits += int(is_hot.sum())
        self.misses += int(cold.sum())
        return rows

    def forward(
        self, indices: np.ndarray, offsets: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Pooled lookup with EmbeddingBag semantics (sum pooling)."""
        idx = check_1d_int_array(
            indices, "indices", min_value=0,
            max_value=self.bag.num_embeddings - 1,
        )
        if offsets is None:
            boundaries = np.arange(idx.size + 1, dtype=np.int64)
        else:
            boundaries = normalize_offsets(offsets, idx.size)
        rows = self.lookup_rows(idx)
        return segment_sum(rows, boundaries)

    __call__ = forward

    # ------------------------------------------------------------------
    @property
    def num_hot_rows(self) -> int:
        return int(self._hot_rows.size)

    @property
    def cache_nbytes(self) -> int:
        return 0 if self._hot_values is None else self._hot_values.nbytes

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
