"""Placement-aware embedding collection.

A DLRM has one bag per sparse feature, and in EL-Rec's system those
bags live in different places: Eff-TT-compressed in HBM, small dense
tables in HBM, or dense-in-host behind the parameter server (§V-A).
:class:`EmbeddingCollection` materializes a
:class:`~repro.system.memory.PlacementPlan` into the concrete bag list
a :class:`~repro.models.dlrm.DLRM` consumes, together with the
host-table map the PS trainers need — replacing the hand-rolled
assembly scattered across experiments.

Optionally carries per-table index bijections (§IV) and applies them on
the way in, so callers keep original ids everywhere.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.dataloader import Batch
from repro.embeddings.autotune import CompressionPlan, build_bag_from_plan
from repro.embeddings.base import EmbeddingBagBase
from repro.embeddings.dense import DenseEmbeddingBag
from repro.embeddings.eff_tt_embedding import EffTTEmbeddingBag
from repro.embeddings.hash_embedding import HashEmbeddingBag
from repro.embeddings.pq_embedding import PQEmbeddingBag
from repro.embeddings.robe_embedding import RobeEmbeddingBag
from repro.embeddings.tt_embedding import TTEmbeddingBag
from repro.reorder.bijection import IndexBijection
from repro.system.memory import PlacementDecision, PlacementPlan
from repro.system.parameter_server import HostBackedEmbeddingBag
from repro.utils.rng import RngLike, spawn_rngs

__all__ = ["EmbeddingCollection"]


class EmbeddingCollection:
    """Concrete bag set for one model, built from a placement plan.

    Parameters
    ----------
    bags:
        One bag per sparse feature, in feature order.
    host_table_map:
        ``{feature_idx: server_table_idx}`` for host-resident tables.
    bijections:
        Optional per-feature index bijections (None = identity).
    """

    def __init__(
        self,
        bags: Sequence[EmbeddingBagBase],
        host_table_map: Optional[Dict[int, int]] = None,
        bijections: Optional[Sequence[Optional[IndexBijection]]] = None,
    ) -> None:
        self.bags: List[EmbeddingBagBase] = list(bags)
        self.host_table_map = dict(host_table_map or {})
        for pos in self.host_table_map:
            if not 0 <= pos < len(self.bags):
                raise ValueError(f"host table index {pos} out of range")
            if not isinstance(self.bags[pos], HostBackedEmbeddingBag):
                raise TypeError(
                    f"bag {pos} mapped to the server must be a "
                    "HostBackedEmbeddingBag"
                )
        if bijections is None:
            bijections = [None] * len(self.bags)
        if len(bijections) != len(self.bags):
            raise ValueError(
                f"expected {len(self.bags)} bijections, got {len(bijections)}"
            )
        self.bijections = list(bijections)

    # ------------------------------------------------------------------
    @classmethod
    def from_placement(
        cls,
        plan: PlacementPlan,
        embedding_dim: int,
        tt_rank: int = 32,
        seed: RngLike = 0,
        bijections: Optional[Sequence[Optional[IndexBijection]]] = None,
    ) -> "EmbeddingCollection":
        """Build bags according to a placement plan.

        ``GPU_TT`` tables become :class:`EffTTEmbeddingBag` (with the
        plan's TT spec shapes), ``GPU_DENSE`` become
        :class:`DenseEmbeddingBag`, and ``HOST_DENSE`` become
        :class:`HostBackedEmbeddingBag` views numbered in plan order
        (construct the matching
        :class:`~repro.system.parameter_server.HostParameterServer`
        with :meth:`host_table_rows`).
        """
        rngs = spawn_rngs(seed, len(plan.placements))
        bags: List[EmbeddingBagBase] = []
        host_map: Dict[int, int] = {}
        next_server_idx = 0
        for placement, rng in zip(plan.placements, rngs):
            if placement.decision is PlacementDecision.GPU_TT:
                spec = placement.tt_spec
                assert spec is not None
                bags.append(
                    EffTTEmbeddingBag(
                        placement.num_rows,
                        embedding_dim,
                        tt_rank=tt_rank,
                        row_shape=list(spec.row_shape),
                        col_shape=list(spec.col_shape),
                        seed=rng,
                    )
                )
            elif placement.decision is PlacementDecision.GPU_DENSE:
                bags.append(
                    DenseEmbeddingBag(
                        placement.num_rows, embedding_dim, seed=rng
                    )
                )
            else:
                bags.append(
                    HostBackedEmbeddingBag(placement.num_rows, embedding_dim)
                )
                host_map[placement.table_idx] = next_server_idx
                next_server_idx += 1
        return cls(bags, host_map, bijections)

    # ------------------------------------------------------------------
    @classmethod
    def from_compression_plan(
        cls,
        plan: CompressionPlan,
        seed: RngLike = 0,
        bijections: Optional[Sequence[Optional[IndexBijection]]] = None,
    ) -> "EmbeddingCollection":
        """Build bags from an auto-tuner :class:`CompressionPlan`.

        Every table is worker-resident (the memory budget already made
        it fit); each entry's strategy and searched parameters become
        the concrete bag via
        :func:`~repro.embeddings.autotune.build_bag_from_plan`, with
        one child RNG per table so the result is deterministic in the
        plan and the seed.
        """
        rngs = spawn_rngs(seed, len(plan.tables))
        bags: List[EmbeddingBagBase] = [
            build_bag_from_plan(entry, plan.embedding_dim, seed=rng)
            for entry, rng in zip(plan.tables, rngs)
        ]
        return cls(bags, host_table_map=None, bijections=bijections)

    # ------------------------------------------------------------------
    @property
    def num_tables(self) -> int:
        return len(self.bags)

    def host_table_rows(self) -> List[int]:
        """Cardinalities of the host tables, in server order."""
        ordered = sorted(self.host_table_map.items(), key=lambda kv: kv[1])
        return [self.bags[pos].num_embeddings for pos, _ in ordered]

    def remap(self, batch: Batch) -> Batch:
        """Apply the per-table bijections to a batch (if any)."""
        if all(b is None for b in self.bijections):
            return batch
        return batch.remap(self.bijections)

    def nbytes_local(self) -> int:
        """Worker-resident parameter bytes (host tables excluded)."""
        return sum(
            bag.nbytes
            for pos, bag in enumerate(self.bags)
            if pos not in self.host_table_map
        )

    def summary(self) -> Dict[str, int]:
        """Per-strategy table counts; values sum to :attr:`num_tables`."""
        return {
            "tt_tables": sum(
                isinstance(b, (TTEmbeddingBag, EffTTEmbeddingBag))
                for b in self.bags
            ),
            "dense_tables": sum(
                isinstance(b, DenseEmbeddingBag) for b in self.bags
            ),
            "hash_tables": sum(
                isinstance(b, HashEmbeddingBag) for b in self.bags
            ),
            "robe_tables": sum(
                isinstance(b, RobeEmbeddingBag) for b in self.bags
            ),
            "pq_tables": sum(
                isinstance(b, PQEmbeddingBag) for b in self.bags
            ),
            "host_tables": len(self.host_table_map),
        }
