"""GPU-side embedding cache with life-cycle management (paper §V-B).

Pipelined DLRM training prefetches host-resident embedding rows a few
batches ahead, so a prefetched row can be *stale*: an in-flight batch
may still owe it a gradient update (the read-after-write conflict of
Figure 10a).  The paper's fix is a small software-managed cache on the
worker:

* after a batch's update completes on the worker, its embedding rows
  are ``put`` into the cache with a life-cycle (LC) counter equal to
  the maximum request-queue length;
* each prefetched batch is ``synchronize``\\ d against the cache — rows
  found in the cache are replaced by the cache's fresh values;
* whenever the server drains one batch from the gradient queue (host
  memory now reflects that batch), ``decrement`` lowers the LC of that
  batch's rows; rows reaching LC 0 are evicted.

The cache therefore only ever holds rows whose updates have not yet
landed in host memory — the minimal footprint the paper claims.

Rows are stored in one contiguous buffer with a free-list so the
footprint is explicit and bounded; the index table is a hash map.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np
import numpy.typing as npt

from repro.backend import ZONE_LC_CACHE, get_backend
from repro.utils.validation import check_1d_int_array, check_positive

__all__ = ["EmbeddingCache"]

FloatArray = npt.NDArray[np.float64]
IntArray = npt.NDArray[np.int64]
BoolArray = npt.NDArray[np.bool_]

_INITIAL_CAPACITY = 64


class EmbeddingCache:
    """LC-managed embedding cache.

    Parameters
    ----------
    embedding_dim:
        Width of cached rows.
    default_lifecycle:
        LC assigned on ``put`` — set this to the maximum combined
        length of the prefetch and gradient queues (paper §V-B).

    Notes
    -----
    ``put`` on an already-cached index overwrites the value and resets
    its LC: the row has been written again by a newer batch and must
    survive until *that* batch's gradients reach host memory.
    """

    def __init__(self, embedding_dim: int, default_lifecycle: int) -> None:
        check_positive(embedding_dim, "embedding_dim")
        check_positive(default_lifecycle, "default_lifecycle")
        self.embedding_dim: int = int(embedding_dim)
        self.default_lifecycle: int = int(default_lifecycle)
        self._slots: Dict[int, int] = {}  # index -> buffer row
        self._buffer: FloatArray = get_backend().zeros(
            (_INITIAL_CAPACITY, self.embedding_dim), dtype=np.float64
        )
        self._lifecycle: IntArray = np.zeros(_INITIAL_CAPACITY, dtype=np.int64)
        self._slot_index: IntArray = np.full(
            _INITIAL_CAPACITY, -1, dtype=np.int64
        )
        self._free: List[int] = list(range(_INITIAL_CAPACITY - 1, -1, -1))
        self.hits: int = 0
        self.misses: int = 0
        self.evictions: int = 0

    # -- capacity management -------------------------------------------
    def _grow(self) -> None:
        old = self._buffer.shape[0]
        new = old * 2
        self._buffer = np.vstack(
            [
                self._buffer,
                get_backend().zeros((old, self.embedding_dim), dtype=np.float64),
            ]
        )
        self._lifecycle = np.concatenate(
            [self._lifecycle, np.zeros(old, dtype=np.int64)]
        )
        self._slot_index = np.concatenate(
            [self._slot_index, np.full(old, -1, dtype=np.int64)]
        )
        self._free.extend(range(new - 1, old - 1, -1))

    def _allocate(self) -> int:
        if not self._free:
            self._grow()
        return self._free.pop()

    # -- cache operations ----------------------------------------------
    def put(self, indices: IntArray, values: FloatArray) -> None:
        """Insert (or refresh) rows after a batch's update completes.

        Duplicate indices within the call are allowed; the *last*
        occurrence wins, matching sequential write order.
        """
        idx = check_1d_int_array(indices, "indices", min_value=0)
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (idx.size, self.embedding_dim):
            raise ValueError(
                f"values shape {values.shape} does not match "
                f"({idx.size}, {self.embedding_dim})"
            )
        for pos, index in enumerate(idx.tolist()):
            slot = self._slots.get(index)
            if slot is None:
                slot = self._allocate()
                self._slots[index] = slot
                self._slot_index[slot] = index
            self._buffer[slot] = values[pos]
            self._lifecycle[slot] = self.default_lifecycle

    def synchronize(
        self, indices: IntArray, values: FloatArray
    ) -> Tuple[FloatArray, BoolArray]:
        """Overwrite stale prefetched rows with cached fresh values.

        Parameters
        ----------
        indices:
            Row ids of a prefetched embedding batch.
        values:
            The (possibly stale) prefetched rows, ``(len(indices), dim)``.

        Returns
        -------
        (fresh_values, hit_mask):
            ``fresh_values`` is a new array with cache hits replaced;
            ``hit_mask[i]`` is True where the cache supplied the row.
        """
        idx = check_1d_int_array(indices, "indices", min_value=0)
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (idx.size, self.embedding_dim):
            raise ValueError(
                f"values shape {values.shape} does not match "
                f"({idx.size}, {self.embedding_dim})"
            )
        fresh = values.copy()
        slots = np.array(
            [self._slots.get(index, -1) for index in idx.tolist()],
            dtype=np.int64,
        )
        hit_mask: BoolArray = slots >= 0
        if hit_mask.any():
            bk = get_backend()
            with bk.zone(ZONE_LC_CACHE):
                fresh[hit_mask] = bk.gather_rows(self._buffer, slots[hit_mask])
        self.hits += int(hit_mask.sum())
        self.misses += int((~hit_mask).sum())
        return fresh, hit_mask

    def decrement(self, indices: IntArray) -> int:
        """Lower LC of the given rows by one; evict rows reaching zero.

        Called when the server drains one batch from the gradient
        queue.  Duplicate indices in the call decrement only once
        (a batch touches each unique row once on the host side).
        Returns the number of evictions.
        """
        idx = np.unique(check_1d_int_array(indices, "indices", min_value=0))
        evicted = 0
        for index in idx.tolist():
            slot = self._slots.get(index)
            if slot is None:
                continue
            self._lifecycle[slot] -= 1
            if self._lifecycle[slot] <= 0:
                del self._slots[index]
                self._slot_index[slot] = -1
                self._free.append(slot)
                evicted += 1
        self.evictions += evicted
        return evicted

    def get(self, index: int) -> Optional[FloatArray]:
        """Fetch one cached row (copy), or None on miss."""
        slot = self._slots.get(int(index))
        if slot is None:
            return None
        return self._buffer[slot].copy()

    def lifecycle_of(self, index: int) -> Optional[int]:
        """Remaining LC of a cached row, or None if absent."""
        slot = self._slots.get(int(index))
        if slot is None:
            return None
        return int(self._lifecycle[slot])

    def __contains__(self, index: int) -> bool:
        return int(index) in self._slots

    def __len__(self) -> int:
        return len(self._slots)

    @property
    def nbytes(self) -> int:
        """Current buffer footprint (allocated capacity, not occupancy)."""
        return (
            self._buffer.nbytes + self._lifecycle.nbytes + self._slot_index.nbytes
        )

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        capacity = self._buffer.shape[0]
        self._slots.clear()
        self._slot_index.fill(-1)
        self._lifecycle.fill(0)
        self._free = list(range(capacity - 1, -1, -1))
