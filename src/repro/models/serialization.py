"""Checkpoint save/load for DLRM models.

Serializes a model to a single ``.npz`` archive: the config as JSON,
every dense parameter, and every embedding bag's state (dense weights
or TT cores with their spec).  Deliberately framework-free so
checkpoints are portable and inspectable with plain NumPy.

Since format version 2 each bag also records its concrete *kind*
(``dense`` / ``tt`` / ``eff_tt``), so a checkpoint restores the exact
bag types even when they differ from what the config's
threshold rule would construct — the case for serving snapshots, where
host-resident parameter-server tables are materialized into local
dense bags (:mod:`repro.serving.snapshot`).  Version-1 checkpoints
(no kind tags) still load with the config-derived types.

Host-backed bags (parameter-server tables) own no local state; their
weights live in the server and must be checkpointed there — attempting
to save a model containing one raises.
"""

from __future__ import annotations

import io
import json
from typing import Dict, Union

import numpy as np

from repro.embeddings.dense import DenseEmbeddingBag
from repro.embeddings.eff_tt_embedding import EffTTEmbeddingBag
from repro.embeddings.tt_embedding import TTEmbeddingBag
from repro.models.config import DLRMConfig, EmbeddingBackend
from repro.models.dlrm import DLRM

__all__ = ["save_checkpoint", "load_checkpoint"]

_FORMAT_VERSION = 2
_READABLE_VERSIONS = (1, 2)

_BAG_KINDS = {
    DenseEmbeddingBag: "dense",
    TTEmbeddingBag: "tt",
    EffTTEmbeddingBag: "eff_tt",
}


def _config_to_json(config: DLRMConfig) -> str:
    return json.dumps(
        {
            "num_dense": config.num_dense,
            "table_rows": list(config.table_rows),
            "embedding_dim": config.embedding_dim,
            "bottom_mlp": list(config.bottom_mlp),
            "top_mlp": list(config.top_mlp),
            "backend": config.backend.value,
            "tt_rank": config.tt_rank,
            "tt_threshold_rows": config.tt_threshold_rows,
        }
    )


def _config_from_json(payload: str) -> DLRMConfig:
    raw = json.loads(payload)
    return DLRMConfig(
        num_dense=raw["num_dense"],
        table_rows=tuple(raw["table_rows"]),
        embedding_dim=raw["embedding_dim"],
        bottom_mlp=tuple(raw["bottom_mlp"]),
        top_mlp=tuple(raw["top_mlp"]),
        backend=EmbeddingBackend(raw["backend"]),
        tt_rank=raw["tt_rank"],
        tt_threshold_rows=raw["tt_threshold_rows"],
    )


def save_checkpoint(model: DLRM, path: Union[str, "io.IOBase"]) -> None:
    """Write the model's config and all parameters to ``path`` (.npz)."""
    arrays: Dict[str, np.ndarray] = {
        "__meta__": np.array(
            [json.dumps({"version": _FORMAT_VERSION})], dtype=object
        ),
        "__config__": np.array([_config_to_json(model.config)], dtype=object),
    }
    for name, param in model.named_parameters():
        arrays[f"param/{name}"] = param.data
    for t, bag in enumerate(model.embedding_bags):
        kind = _BAG_KINDS.get(type(bag))
        if kind is None:
            raise TypeError(
                f"bag {t} ({type(bag).__name__}) has no local parameters "
                "to checkpoint; persist its parameter-server state instead"
            )
        arrays[f"bag{t}/kind"] = np.array([kind], dtype=object)
        if isinstance(bag, DenseEmbeddingBag):
            arrays[f"bag{t}/weight"] = bag.weight
        else:
            spec = bag.spec
            arrays[f"bag{t}/row_shape"] = np.asarray(spec.row_shape)
            arrays[f"bag{t}/col_shape"] = np.asarray(spec.col_shape)
            arrays[f"bag{t}/ranks"] = np.asarray(spec.ranks)
            for k, core in enumerate(bag.tt.cores):
                arrays[f"bag{t}/core{k}"] = core
    np.savez_compressed(path, **arrays)


def _restore_bag(archive, t: int, kind: str, rows: int, dim: int):
    """Build a bag of an explicit kind from its stored state."""
    if kind == "dense":
        bag = DenseEmbeddingBag(rows, dim, seed=0)
        stored = archive[f"bag{t}/weight"]
        if stored.shape != bag.weight.shape:
            raise ValueError(
                f"bag {t} weight shape mismatch: {stored.shape} vs "
                f"{bag.weight.shape}"
            )
        bag.weight = stored.astype(np.float64)
        return bag
    cls = {"tt": TTEmbeddingBag, "eff_tt": EffTTEmbeddingBag}.get(kind)
    if cls is None:
        raise ValueError(f"bag {t} has unknown kind {kind!r}")
    row_shape = [int(m) for m in archive[f"bag{t}/row_shape"]]
    col_shape = [int(n) for n in archive[f"bag{t}/col_shape"]]
    ranks = [int(r) for r in archive[f"bag{t}/ranks"]]
    bag = cls(
        rows, dim, tt_rank=ranks, row_shape=row_shape, col_shape=col_shape,
        seed=0,
    )
    for k in range(bag.spec.num_cores):
        core = archive[f"bag{t}/core{k}"]
        if core.shape != bag.tt.cores[k].shape:
            raise ValueError(f"bag {t} core {k} shape mismatch")
        bag.tt.cores[k] = np.ascontiguousarray(core, dtype=np.float64)
    return bag


def load_checkpoint(path) -> DLRM:
    """Rebuild a DLRM (config + parameters) from a checkpoint."""
    with np.load(path, allow_pickle=True) as archive:
        meta = json.loads(str(archive["__meta__"][0]))
        if meta.get("version") not in _READABLE_VERSIONS:
            raise ValueError(
                f"unsupported checkpoint version {meta.get('version')!r}"
            )
        config = _config_from_json(str(archive["__config__"][0]))
        model = DLRM(config, seed=0)
        for name, param in model.named_parameters():
            key = f"param/{name}"
            if key not in archive:
                raise KeyError(f"checkpoint missing parameter {name!r}")
            stored = archive[key]
            if stored.shape != param.data.shape:
                raise ValueError(
                    f"parameter {name!r} shape mismatch: checkpoint "
                    f"{stored.shape} vs model {param.data.shape}"
                )
            param.data = stored.astype(np.float64)
        for t, bag in enumerate(model.embedding_bags):
            kind_key = f"bag{t}/kind"
            if kind_key in archive:
                # v2: the stored kind is authoritative — rebuild the bag
                # exactly as checkpointed (it may differ from what the
                # config's threshold rule constructs, and TT-SVD warm
                # starts may have achieved lower ranks than requested).
                kind = str(archive[kind_key][0])
                model.embedding_bags[t] = _restore_bag(
                    archive, t, kind,
                    bag.num_embeddings, bag.embedding_dim,
                )
            elif isinstance(bag, DenseEmbeddingBag):
                stored = archive[f"bag{t}/weight"]
                if stored.shape != bag.weight.shape:
                    raise ValueError(
                        f"bag {t} weight shape mismatch: {stored.shape} vs "
                        f"{bag.weight.shape}"
                    )
                bag.weight = stored.astype(np.float64)
            else:
                stored_rows = tuple(archive[f"bag{t}/row_shape"].tolist())
                if stored_rows != bag.spec.row_shape:
                    raise ValueError(
                        f"bag {t} TT row_shape mismatch: {stored_rows} vs "
                        f"{bag.spec.row_shape}"
                    )
                for k in range(bag.spec.num_cores):
                    core = archive[f"bag{t}/core{k}"]
                    if core.shape != bag.tt.cores[k].shape:
                        raise ValueError(
                            f"bag {t} core {k} shape mismatch"
                        )
                    bag.tt.cores[k] = np.ascontiguousarray(
                        core, dtype=np.float64
                    )
        return model
