"""Checkpoint save/load for DLRM models.

Serializes a model to a single ``.npz`` archive: the config as JSON,
every dense parameter, and every embedding bag's state (dense weights
or TT cores with their spec).  Deliberately framework-free so
checkpoints are portable and inspectable with plain NumPy.

Since format version 2 each bag also records its concrete *kind*
(``dense`` / ``tt`` / ``eff_tt``), so a checkpoint restores the exact
bag types even when they differ from what the config's
threshold rule would construct — the case for serving snapshots, where
host-resident parameter-server tables are materialized into local
dense bags (:mod:`repro.serving.snapshot`).  Version-1 checkpoints
(no kind tags) still load with the config-derived types.

Format version 3 adds an integrity manifest: a ``__crc__`` entry
holding a per-array CRC32 map.  :func:`load_checkpoint` verifies every
entry against it and converts *any* low-level archive failure — a
truncated zip, a flipped byte, a missing member — into a
:class:`CheckpointCorruptError` with an actionable message, instead of
surfacing a raw numpy/zipfile traceback.  Older versions (no CRC map)
still load; they simply skip the per-array verification.

Format version 4 extends the kind tags to the compressed-embedding
zoo (``hash`` / ``robe`` / ``pq``): those bags store a ``bag{t}/spec``
JSON entry (their :class:`~repro.embeddings.protocol.CompressionSpec`,
including hash constants) plus their ``state_arrays()`` under
``bag{t}/{name}``, and restore bitwise through
:func:`~repro.embeddings.autotune.build_bag_from_spec`.  The dense/TT
entry layout is unchanged from v3, so pre-existing checkpoints load
byte-for-byte identically.

Host-backed bags (parameter-server tables) own no local state; their
weights live in the server and must be checkpointed there — attempting
to save a model containing one raises.
"""

from __future__ import annotations

import io
import json
import zipfile
import zlib
from typing import Dict, Union

import numpy as np

from repro.embeddings.autotune import build_bag_from_spec
from repro.embeddings.dense import DenseEmbeddingBag
from repro.embeddings.eff_tt_embedding import EffTTEmbeddingBag
from repro.embeddings.hash_embedding import HashEmbeddingBag
from repro.embeddings.pq_embedding import PQEmbeddingBag
from repro.embeddings.protocol import CompressionSpec
from repro.embeddings.robe_embedding import RobeEmbeddingBag
from repro.embeddings.tt_embedding import TTEmbeddingBag
from repro.models.config import DLRMConfig, EmbeddingBackend
from repro.models.dlrm import DLRM

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "CheckpointCorruptError",
    "entry_crc32",
]

_FORMAT_VERSION = 4
_READABLE_VERSIONS = (1, 2, 3, 4)
#: Archive members excluded from the CRC map (the map itself).
_UNCHECKED_ENTRIES = ("__crc__",)


class CheckpointCorruptError(RuntimeError):
    """A checkpoint archive is truncated, tampered with, or unreadable.

    Raised instead of the underlying ``zipfile``/``numpy``/``json``
    error so callers (the parameter-server supervisor, the serving
    hot-swap path) can treat "this snapshot is bad, fall back to an
    older one" as a single well-defined condition.
    """


def entry_crc32(value: np.ndarray) -> int:
    """Stable CRC32 of one archive entry.

    Numeric arrays hash their raw little-endian bytes; object arrays
    (the JSON metadata strings and bag-kind tags) hash their string
    contents, since ``tobytes`` on an object array would hash pointer
    values.
    """
    arr = np.asarray(value)
    if arr.dtype == object:
        payload = "\x00".join(str(item) for item in arr.reshape(-1))
        return zlib.crc32(payload.encode("utf-8"))
    return zlib.crc32(np.ascontiguousarray(arr).tobytes())

_BAG_KINDS = {
    DenseEmbeddingBag: "dense",
    TTEmbeddingBag: "tt",
    EffTTEmbeddingBag: "eff_tt",
    HashEmbeddingBag: "hash",
    RobeEmbeddingBag: "robe",
    PQEmbeddingBag: "pq",
}

#: Kinds serialized via spec JSON + ``state_arrays()`` (v4); dense/TT
#: keep their explicit v2/v3 entry layout for byte-stable checkpoints.
_SPEC_KINDS = ("hash", "robe", "pq")


def _config_to_json(config: DLRMConfig) -> str:
    return json.dumps(
        {
            "num_dense": config.num_dense,
            "table_rows": list(config.table_rows),
            "embedding_dim": config.embedding_dim,
            "bottom_mlp": list(config.bottom_mlp),
            "top_mlp": list(config.top_mlp),
            "backend": config.backend.value,
            "tt_rank": config.tt_rank,
            "tt_threshold_rows": config.tt_threshold_rows,
            "compress_rate": config.compress_rate,
        }
    )


def _config_from_json(payload: str) -> DLRMConfig:
    raw = json.loads(payload)
    return DLRMConfig(
        num_dense=raw["num_dense"],
        table_rows=tuple(raw["table_rows"]),
        embedding_dim=raw["embedding_dim"],
        bottom_mlp=tuple(raw["bottom_mlp"]),
        top_mlp=tuple(raw["top_mlp"]),
        backend=EmbeddingBackend(raw["backend"]),
        tt_rank=raw["tt_rank"],
        tt_threshold_rows=raw["tt_threshold_rows"],
        # Absent in checkpoints written before format v4.
        compress_rate=raw.get("compress_rate", 0.25),
    )


def save_checkpoint(model: DLRM, path: Union[str, "io.IOBase"]) -> None:
    """Write the model's config and all parameters to ``path`` (.npz)."""
    arrays: Dict[str, np.ndarray] = {
        "__meta__": np.array(
            [json.dumps({"version": _FORMAT_VERSION})], dtype=object
        ),
        "__config__": np.array([_config_to_json(model.config)], dtype=object),
    }
    for name, param in model.named_parameters():
        arrays[f"param/{name}"] = param.data
    for t, bag in enumerate(model.embedding_bags):
        kind = _BAG_KINDS.get(type(bag))
        if kind is None:
            raise TypeError(
                f"bag {t} ({type(bag).__name__}) has no local parameters "
                "to checkpoint; persist its parameter-server state instead"
            )
        arrays[f"bag{t}/kind"] = np.array([kind], dtype=object)
        if isinstance(bag, DenseEmbeddingBag):
            arrays[f"bag{t}/weight"] = bag.weight
        elif kind in _SPEC_KINDS:
            arrays[f"bag{t}/spec"] = np.array(
                [bag.compression_spec().to_json()], dtype=object
            )
            for name, value in sorted(bag.state_arrays().items()):
                arrays[f"bag{t}/{name}"] = value
        else:
            spec = bag.spec
            arrays[f"bag{t}/row_shape"] = np.asarray(spec.row_shape)
            arrays[f"bag{t}/col_shape"] = np.asarray(spec.col_shape)
            arrays[f"bag{t}/ranks"] = np.asarray(spec.ranks)
            for k, core in enumerate(bag.tt.cores):
                arrays[f"bag{t}/core{k}"] = core
    crc_map = {
        name: entry_crc32(value) for name, value in sorted(arrays.items())
    }
    arrays["__crc__"] = np.array([json.dumps(crc_map)], dtype=object)
    np.savez_compressed(path, **arrays)


def _restore_bag(archive, t: int, kind: str, rows: int, dim: int):
    """Build a bag of an explicit kind from its stored state."""
    if kind == "dense":
        bag = DenseEmbeddingBag(rows, dim, seed=0)
        stored = archive[f"bag{t}/weight"]
        if stored.shape != bag.weight.shape:
            raise ValueError(
                f"bag {t} weight shape mismatch: {stored.shape} vs "
                f"{bag.weight.shape}"
            )
        bag.weight = stored.astype(np.float64)
        return bag
    if kind in _SPEC_KINDS:
        try:
            spec = CompressionSpec.from_json(str(archive[f"bag{t}/spec"][0]))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise CheckpointCorruptError(
                f"bag {t} spec entry is unreadable: {exc}"
            ) from exc
        if spec.kind != kind or (spec.num_embeddings, spec.embedding_dim) != (
            rows,
            dim,
        ):
            raise ValueError(
                f"bag {t} spec {spec.kind!r} "
                f"({spec.num_embeddings}, {spec.embedding_dim}) does not "
                f"match kind {kind!r} ({rows}, {dim})"
            )
        bag = build_bag_from_spec(spec, seed=0)
        bag.load_state_arrays(
            {
                name: archive[f"bag{t}/{name}"]
                for name in sorted(bag.state_arrays())
            }
        )
        return bag
    cls = {"tt": TTEmbeddingBag, "eff_tt": EffTTEmbeddingBag}.get(kind)
    if cls is None:
        raise ValueError(f"bag {t} has unknown kind {kind!r}")
    row_shape = [int(m) for m in archive[f"bag{t}/row_shape"]]
    col_shape = [int(n) for n in archive[f"bag{t}/col_shape"]]
    ranks = [int(r) for r in archive[f"bag{t}/ranks"]]
    bag = cls(
        rows, dim, tt_rank=ranks, row_shape=row_shape, col_shape=col_shape,
        seed=0,
    )
    for k in range(bag.spec.num_cores):
        core = archive[f"bag{t}/core{k}"]
        if core.shape != bag.tt.cores[k].shape:
            raise ValueError(f"bag {t} core {k} shape mismatch")
        bag.tt.cores[k] = np.ascontiguousarray(core, dtype=np.float64)
    return bag


class _VerifiedReader:
    """Read-side view of an open ``.npz`` archive with integrity checks.

    Every entry fetched through ``[]`` is CRC32-verified against the v3
    ``__crc__`` manifest (when present), and low-level decode failures
    (zlib errors on a flipped byte, truncated members, bad pickles in
    the object-dtype metadata) surface as :class:`CheckpointCorruptError`
    rather than whatever numpy/zipfile happened to raise.  ``KeyError``
    for a genuinely absent member still propagates — a *missing*
    parameter is a semantic mismatch, not archive corruption.
    """

    def __init__(self, archive: "np.lib.npyio.NpzFile") -> None:
        self._archive = archive
        self._crc: Dict[str, int] | None = None
        if "__crc__" in archive.files:
            raw = self._decode("__crc__")
            try:
                self._crc = {
                    str(k): int(v) for k, v in json.loads(str(raw[0])).items()
                }
            except (json.JSONDecodeError, IndexError, AttributeError,
                    TypeError, ValueError) as exc:
                raise CheckpointCorruptError(
                    f"checkpoint CRC manifest is unreadable: {exc}"
                ) from exc

    def _decode(self, key: str) -> np.ndarray:
        try:
            return self._archive[key]
        except KeyError:
            raise
        except Exception as exc:  # zlib.error, BadZipFile, UnpicklingError
            raise CheckpointCorruptError(
                f"checkpoint entry {key!r} failed to decode "
                f"({type(exc).__name__}: {exc}); the archive is likely "
                "truncated or corrupted"
            ) from exc

    def __contains__(self, key: str) -> bool:
        return key in self._archive.files

    def __getitem__(self, key: str) -> np.ndarray:
        value = self._decode(key)
        if self._crc is not None and key not in _UNCHECKED_ENTRIES:
            expected = self._crc.get(key)
            if expected is None:
                raise CheckpointCorruptError(
                    f"checkpoint entry {key!r} is absent from the CRC "
                    "manifest; the archive was tampered with or mis-written"
                )
            actual = entry_crc32(value)
            if actual != expected:
                raise CheckpointCorruptError(
                    f"checkpoint entry {key!r} failed its CRC32 check "
                    f"(manifest {expected:#010x}, computed {actual:#010x})"
                )
        return value


def load_checkpoint(path) -> DLRM:
    """Rebuild a DLRM (config + parameters) from a checkpoint.

    Raises :class:`CheckpointCorruptError` when the archive is
    truncated, has flipped bytes, or carries a damaged manifest.
    """
    try:
        raw_archive = np.load(path, allow_pickle=True)
    except (OSError, ValueError, EOFError, zipfile.BadZipFile) as exc:
        if isinstance(exc, FileNotFoundError):
            raise
        raise CheckpointCorruptError(
            f"checkpoint archive unreadable ({type(exc).__name__}: {exc})"
        ) from exc
    with raw_archive as npz:
        archive = _VerifiedReader(npz)
        try:
            meta = json.loads(str(archive["__meta__"][0]))
            version = meta.get("version")
        except KeyError as exc:
            raise CheckpointCorruptError(
                "checkpoint has no __meta__ entry; not a repro checkpoint "
                "or the archive lost members"
            ) from exc
        except (json.JSONDecodeError, AttributeError) as exc:
            raise CheckpointCorruptError(
                f"checkpoint metadata is unreadable: {exc}"
            ) from exc
        if version not in _READABLE_VERSIONS:
            raise ValueError(
                f"unsupported checkpoint version {version!r}"
            )
        config = _config_from_json(str(archive["__config__"][0]))
        model = DLRM(config, seed=0)
        for name, param in model.named_parameters():
            key = f"param/{name}"
            if key not in archive:
                raise KeyError(f"checkpoint missing parameter {name!r}")
            stored = archive[key]
            if stored.shape != param.data.shape:
                raise ValueError(
                    f"parameter {name!r} shape mismatch: checkpoint "
                    f"{stored.shape} vs model {param.data.shape}"
                )
            param.data = stored.astype(np.float64)
        for t, bag in enumerate(model.embedding_bags):
            kind_key = f"bag{t}/kind"
            if kind_key in archive:
                # v2: the stored kind is authoritative — rebuild the bag
                # exactly as checkpointed (it may differ from what the
                # config's threshold rule constructs, and TT-SVD warm
                # starts may have achieved lower ranks than requested).
                kind = str(archive[kind_key][0])
                model.embedding_bags[t] = _restore_bag(
                    archive, t, kind,
                    bag.num_embeddings, bag.embedding_dim,
                )
            elif isinstance(bag, DenseEmbeddingBag):
                stored = archive[f"bag{t}/weight"]
                if stored.shape != bag.weight.shape:
                    raise ValueError(
                        f"bag {t} weight shape mismatch: {stored.shape} vs "
                        f"{bag.weight.shape}"
                    )
                bag.weight = stored.astype(np.float64)
            else:
                stored_rows = tuple(archive[f"bag{t}/row_shape"].tolist())
                if stored_rows != bag.spec.row_shape:
                    raise ValueError(
                        f"bag {t} TT row_shape mismatch: {stored_rows} vs "
                        f"{bag.spec.row_shape}"
                    )
                for k in range(bag.spec.num_cores):
                    core = archive[f"bag{t}/core{k}"]
                    if core.shape != bag.tt.cores[k].shape:
                        raise ValueError(
                            f"bag {t} core {k} shape mismatch"
                        )
                    bag.tt.cores[k] = np.ascontiguousarray(
                        core, dtype=np.float64
                    )
        return model
