"""The DLRM model (paper Figure 2) with pluggable embedding backends.

Forward path::

    dense ──► bottom MLP ─┐
                          ├─► dot interaction ─► top MLP ─► logit
    sparse ─► embeddings ─┘

The embedding layer is a list of :class:`EmbeddingBagBase` objects, so
swapping ``nn.EmbeddingBag`` for the Eff-TT table is literally a
constructor argument — the paper's drop-in-replacement claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.dataloader import Batch
from repro.embeddings.base import EmbeddingBagBase
from repro.embeddings.dense import DenseEmbeddingBag
from repro.embeddings.eff_tt_embedding import EffTTEmbeddingBag
from repro.embeddings.hash_embedding import HashEmbeddingBag
from repro.embeddings.pq_embedding import PQEmbeddingBag
from repro.embeddings.robe_embedding import RobeEmbeddingBag
from repro.embeddings.tt_embedding import TTEmbeddingBag
from repro.models.config import DLRMConfig, EmbeddingBackend
from repro.nn.interaction import DotInteraction
from repro.nn.loss import BCEWithLogitsLoss
from repro.nn.mlp import MLP
from repro.nn.module import Module
from repro.nn.optim import SGD
from repro.utils.rng import RngLike, spawn_rngs

__all__ = ["DLRM", "TrainStepResult", "build_embedding_bag"]


def build_embedding_bag(
    backend: EmbeddingBackend,
    num_rows: int,
    embedding_dim: int,
    tt_rank: int,
    seed: RngLike = 0,
    compress_rate: float = 0.25,
    **kwargs,
) -> EmbeddingBagBase:
    """Construct one embedding bag of the requested backend.

    ``compress_rate`` sizes the hash/ROBE backends' default parameters
    (ignored by dense/TT); explicit strategy kwargs (``num_buckets``,
    ``array_size``, ``num_codes``, ...) pass through and override it.
    """
    if backend is EmbeddingBackend.DENSE:
        return DenseEmbeddingBag(num_rows, embedding_dim, seed=seed)
    if backend is EmbeddingBackend.TT:
        return TTEmbeddingBag(
            num_rows, embedding_dim, tt_rank=tt_rank, seed=seed, **kwargs
        )
    if backend is EmbeddingBackend.EFF_TT:
        return EffTTEmbeddingBag(
            num_rows, embedding_dim, tt_rank=tt_rank, seed=seed, **kwargs
        )
    if backend is EmbeddingBackend.HASH:
        return HashEmbeddingBag(
            num_rows,
            embedding_dim,
            compress_rate=compress_rate,
            seed=seed,
            **kwargs,
        )
    if backend is EmbeddingBackend.ROBE:
        return RobeEmbeddingBag(
            num_rows,
            embedding_dim,
            compress_rate=compress_rate,
            seed=seed,
            **kwargs,
        )
    if backend is EmbeddingBackend.PQ:
        return PQEmbeddingBag(num_rows, embedding_dim, seed=seed, **kwargs)
    raise ValueError(f"unknown backend {backend!r}")


@dataclass(frozen=True)
class TrainStepResult:
    """Outcome of one training step."""

    loss: float
    batch_size: int


class DLRM(Module):
    """Deep Learning Recommendation Model.

    Parameters
    ----------
    config:
        Architecture description.
    seed:
        Master RNG seed; MLPs and every table get independent child
        generators so models with different backends share MLP weights
        when built with the same seed (needed for apples-to-apples
        convergence comparisons, Figure 15).
    embedding_bags:
        Pre-built bags to use instead of constructing from the config
        (the parameter-server path injects host-resident tables here).
    """

    def __init__(
        self,
        config: DLRMConfig,
        seed: RngLike = 0,
        embedding_bags: Optional[Sequence[EmbeddingBagBase]] = None,
    ) -> None:
        super().__init__()
        self.config = config
        rngs = spawn_rngs(seed, 2 + config.num_tables)
        self.bottom_mlp = self.register_module(
            "bottom_mlp", MLP(config.bottom_mlp_sizes, seed=rngs[0])
        )
        self.top_mlp = self.register_module(
            "top_mlp", MLP(config.top_mlp_sizes, seed=rngs[1])
        )
        self.interaction = DotInteraction()
        self.loss_fn = BCEWithLogitsLoss()
        if embedding_bags is not None:
            bags = list(embedding_bags)
            if len(bags) != config.num_tables:
                raise ValueError(
                    f"expected {config.num_tables} bags, got {len(bags)}"
                )
            for t, bag in enumerate(bags):
                if (bag.num_embeddings, bag.embedding_dim) != (
                    config.table_rows[t],
                    config.embedding_dim,
                ):
                    raise ValueError(
                        f"bag {t} shape ({bag.num_embeddings}, "
                        f"{bag.embedding_dim}) does not match config "
                        f"({config.table_rows[t]}, {config.embedding_dim})"
                    )
            self.embedding_bags: List[EmbeddingBagBase] = bags
        else:
            self.embedding_bags = [
                build_embedding_bag(
                    config.backend_for_table(t),
                    rows,
                    config.embedding_dim,
                    config.tt_rank,
                    seed=rngs[2 + t],
                    compress_rate=config.compress_rate,
                )
                for t, rows in enumerate(config.table_rows)
            ]

    # ------------------------------------------------------------------
    # forward / backward
    # ------------------------------------------------------------------
    def forward(self, batch: Batch) -> np.ndarray:
        """Compute logits for a batch; returns ``(B,)``."""
        if batch.num_tables != self.config.num_tables:
            raise ValueError(
                f"batch has {batch.num_tables} sparse features, model expects "
                f"{self.config.num_tables}"
            )
        dense_out = self.bottom_mlp.forward(batch.dense)
        pooled = [
            bag.forward(idx, off)
            for bag, idx, off in zip(
                self.embedding_bags, batch.sparse_indices, batch.sparse_offsets
            )
        ]
        interacted = self.interaction.forward(dense_out, pooled)
        logits = self.top_mlp.forward(interacted)
        return logits.reshape(-1)

    def backward(self, grad_logits: np.ndarray) -> None:
        """Backpropagate a ``(B,)`` logit gradient through all components."""
        grad = np.asarray(grad_logits, dtype=np.float64).reshape(-1, 1)
        grad_interacted = self.top_mlp.backward(grad)
        grad_dense_out, grad_pooled = self.interaction.backward(grad_interacted)
        self.bottom_mlp.backward(grad_dense_out)
        for bag, g in zip(self.embedding_bags, grad_pooled):
            bag.backward(g)

    # ------------------------------------------------------------------
    # training / evaluation
    # ------------------------------------------------------------------
    def train_step(self, batch: Batch, lr: float) -> TrainStepResult:
        """One SGD step over a batch; returns the pre-update loss."""
        logits = self.forward(batch)
        loss = self.loss_fn.forward(logits, batch.labels)
        self.backward(self.loss_fn.backward())
        self.apply_gradients(lr)
        return TrainStepResult(loss=loss, batch_size=batch.batch_size)

    def apply_gradients(self, lr: float) -> None:
        """SGD update for MLPs and every embedding bag, then clear grads."""
        SGD(self.parameters(), lr=lr).step()
        self.zero_grad()
        for bag in self.embedding_bags:
            bag.step(lr)

    def predict_proba(self, batch: Batch) -> np.ndarray:
        """Click probabilities without touching training state caches."""
        probs = BCEWithLogitsLoss.predict_proba(self.forward(batch))
        return probs

    def evaluate(self, batches: Sequence[Batch]) -> Dict[str, float]:
        """Loss / accuracy / AUC over evaluation batches."""
        losses: List[float] = []
        all_probs: List[np.ndarray] = []
        all_labels: List[np.ndarray] = []
        for batch in batches:
            logits = self.forward(batch)
            losses.append(self.loss_fn.forward(logits, batch.labels))
            self.loss_fn.backward()  # clear cached state
            all_probs.append(BCEWithLogitsLoss.predict_proba(logits))
            all_labels.append(batch.labels)
        probs = np.concatenate(all_probs)
        labels = np.concatenate(all_labels)
        accuracy = float(((probs >= 0.5) == (labels >= 0.5)).mean())
        return {
            "loss": float(np.mean(losses)),
            "accuracy": accuracy,
            "auc": roc_auc(labels, probs),
        }

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def embedding_nbytes(self) -> int:
        """Total embedding-parameter footprint in bytes."""
        return sum(bag.nbytes for bag in self.embedding_bags)

    def mlp_nbytes(self) -> int:
        return sum(p.data.nbytes for p in self.parameters())


def roc_auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank-sum formulation.

    Returns 0.5 when one class is absent (undefined AUC).
    """
    labels = np.asarray(labels, dtype=np.float64).reshape(-1)
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have equal shape")
    positives = labels >= 0.5
    n_pos = int(positives.sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        return 0.5
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(labels.size, dtype=np.float64)
    # average ranks for ties
    sorted_scores = scores[order]
    ranks_sorted = np.arange(1, labels.size + 1, dtype=np.float64)
    boundaries = np.flatnonzero(np.diff(sorted_scores) != 0) + 1
    groups = np.split(ranks_sorted, boundaries)
    ranks[order] = np.concatenate([np.full(g.size, g.mean()) for g in groups])
    rank_sum = ranks[positives].sum()
    return float((rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))
