"""DLRM architecture configuration."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.data.datasets import DatasetSpec
from repro.nn.interaction import DotInteraction

__all__ = ["EmbeddingBackend", "DLRMConfig"]


class EmbeddingBackend(str, enum.Enum):
    """Which embedding-table implementation backs each sparse feature."""

    DENSE = "dense"
    TT = "tt"          # TT-Rec-style naive TT table
    EFF_TT = "eff_tt"  # the paper's Eff-TT table
    HASH = "hash"      # mod-hash bucket table
    ROBE = "robe"      # ROBE shared-array table
    PQ = "pq"          # product-quantization table


@dataclass(frozen=True)
class DLRMConfig:
    """Hyper-parameters of one DLRM instance.

    Attributes
    ----------
    num_dense:
        Dense (numerical) input width.
    table_rows:
        Cardinality per sparse feature.
    embedding_dim:
        Shared embedding width (must equal the bottom MLP output).
    bottom_mlp / top_mlp:
        Hidden widths; input/output widths are derived.
    backend:
        Default embedding backend for all tables.
    tt_rank:
        TT rank for compressed backends.
    tt_threshold_rows:
        Tables larger than this use the compressed backend, smaller
        ones stay dense (the paper compresses tables with more than 1M
        rows in the end-to-end comparison, §VI-A).
    compress_rate:
        Target physical/dense size ratio for the hash/ROBE backends'
        default parameter sizing (Hetu-style global knob; explicit
        per-table parameters from a
        :class:`~repro.embeddings.autotune.CompressionPlan` override
        it).
    """

    num_dense: int
    table_rows: Tuple[int, ...]
    embedding_dim: int = 16
    bottom_mlp: Tuple[int, ...] = (64, 32)
    top_mlp: Tuple[int, ...] = (64, 32)
    backend: EmbeddingBackend = EmbeddingBackend.EFF_TT
    tt_rank: int = 16
    tt_threshold_rows: int = 0
    compress_rate: float = 0.25

    def __post_init__(self) -> None:
        if self.num_dense < 1:
            raise ValueError(f"num_dense must be >= 1, got {self.num_dense}")
        if not self.table_rows:
            raise ValueError("table_rows must not be empty")
        if any(r < 1 for r in self.table_rows):
            raise ValueError(f"table_rows must all be >= 1, got {self.table_rows}")
        if self.embedding_dim < 1:
            raise ValueError(
                f"embedding_dim must be >= 1, got {self.embedding_dim}"
            )
        if not 0.0 < self.compress_rate <= 1.0:
            raise ValueError(
                f"compress_rate must be in (0, 1], got {self.compress_rate}"
            )
        object.__setattr__(self, "table_rows", tuple(int(r) for r in self.table_rows))
        object.__setattr__(self, "bottom_mlp", tuple(int(w) for w in self.bottom_mlp))
        object.__setattr__(self, "top_mlp", tuple(int(w) for w in self.top_mlp))

    @property
    def num_tables(self) -> int:
        return len(self.table_rows)

    @property
    def bottom_mlp_sizes(self) -> Tuple[int, ...]:
        """Full bottom-MLP widths: dense input -> ... -> embedding_dim."""
        return (self.num_dense, *self.bottom_mlp, self.embedding_dim)

    @property
    def interaction_dim(self) -> int:
        return DotInteraction.output_dim(self.embedding_dim, self.num_tables)

    @property
    def top_mlp_sizes(self) -> Tuple[int, ...]:
        """Full top-MLP widths: interaction output -> ... -> 1 logit."""
        return (self.interaction_dim, *self.top_mlp, 1)

    def backend_for_table(self, table_idx: int) -> EmbeddingBackend:
        """Resolve the backend for one table, honoring the TT threshold."""
        rows = self.table_rows[table_idx]
        if self.backend is EmbeddingBackend.DENSE:
            return EmbeddingBackend.DENSE
        if rows > self.tt_threshold_rows:
            return self.backend
        return EmbeddingBackend.DENSE

    @classmethod
    def from_dataset(
        cls,
        spec: DatasetSpec,
        embedding_dim: int = 16,
        backend: EmbeddingBackend = EmbeddingBackend.EFF_TT,
        tt_rank: int = 16,
        tt_threshold_rows: int = 0,
        bottom_mlp: Sequence[int] = (64, 32),
        top_mlp: Sequence[int] = (64, 32),
        compress_rate: float = 0.25,
    ) -> "DLRMConfig":
        """Derive a config from a dataset schema."""
        return cls(
            num_dense=spec.num_dense,
            table_rows=tuple(t.num_rows for t in spec.tables),
            embedding_dim=embedding_dim,
            bottom_mlp=tuple(bottom_mlp),
            top_mlp=tuple(top_mlp),
            backend=backend,
            tt_rank=tt_rank,
            tt_threshold_rows=tt_threshold_rows,
            compress_rate=compress_rate,
        )
