"""DLRM model assembly.

:class:`~repro.models.dlrm.DLRM` wires the NN substrate (bottom/top
MLPs, dot interaction, BCE loss) around pluggable embedding bags —
dense, TT-Rec-style, or Eff-TT — exactly as EL-Rec's drop-in-replacement
claim requires: the model code is identical across embedding backends.
"""

from repro.models.config import DLRMConfig, EmbeddingBackend
from repro.models.dlrm import DLRM, TrainStepResult
from repro.models.serialization import load_checkpoint, save_checkpoint

__all__ = [
    "DLRMConfig",
    "EmbeddingBackend",
    "DLRM",
    "TrainStepResult",
    "save_checkpoint",
    "load_checkpoint",
]
