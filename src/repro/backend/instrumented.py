"""Instrumenting backend wrapper: FLOP/byte/call counts per kernel zone.

:class:`InstrumentedBackend` wraps any :class:`~repro.backend.protocol.ArrayBackend`
(the reference :class:`~repro.backend.numpy_backend.NumpyBackend` by
default) and forwards every call to it unchanged — results are
therefore bitwise-identical to the wrapped backend — while accumulating
a :class:`KernelStats` per *kernel zone* (see
:data:`repro.backend.protocol.KERNEL_ZONE_NAMES`).  The counters feed
the bench harness (``repro bench --backend instrumented``) and
cross-check the analytic model in :mod:`repro.embeddings.flops`.

Cost model
----------
* ``matmul`` — ``2 * prod(batch) * m * k * n`` FLOPs from the runtime
  operand shapes; bytes = operands read + result written.
* ``einsum`` — the supplied plan's precomputed FLOP count when one is
  given; otherwise the plan cache derives one for the signature (so
  even un-planned calls are costed consistently).
* ``gather_rows`` / ``scatter_add_rows`` — pure traffic: rows read and
  written (scatter counts read-modify-write on the target rows, plus
  one FLOP per added element and one per scaled element).
* elementwise (``exp``/``maximum``/``where``/``axpy``) — one FLOP per
  output element (two for ``axpy``: multiply + add), read/write
  traffic from operand sizes.

Dtype drift
-----------
Inside an :meth:`InstrumentedBackend.expect_dtype` scope, every
floating-point array produced by the backend (allocations and
contraction results) is checked against the expected dtype; mismatches
are recorded in :attr:`dtype_violations` rather than raised, so a
regression test can assert the list stays empty over a full
forward/backward pass.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from .numpy_backend import NumpyBackend
from .plan_cache import EinsumPlan, get_plan_cache
from .protocol import ArrayBackend, DTypeLike, Shape

__all__ = ["KernelStats", "DtypeViolation", "InstrumentedBackend"]

UNZONED = "unzoned"


@dataclass
class KernelStats:
    """Accumulated cost of one kernel zone (or one (zone, op) pair)."""

    calls: int = 0
    flops: int = 0
    bytes: int = 0

    def add(self, flops: int, nbytes: int) -> None:
        self.calls += 1
        self.flops += flops
        self.bytes += nbytes

    def merge(self, other: "KernelStats") -> None:
        self.calls += other.calls
        self.flops += other.flops
        self.bytes += other.bytes


@dataclass(frozen=True)
class DtypeViolation:
    """One observed departure from the expected floating dtype."""

    zone: str
    op: str
    expected: str
    actual: str


class InstrumentedBackend:
    """Counting wrapper satisfying :class:`~repro.backend.protocol.ArrayBackend`."""

    def __init__(self, inner: Optional[ArrayBackend] = None) -> None:
        self.inner: ArrayBackend = inner if inner is not None else NumpyBackend()
        self.name = f"instrumented[{self.inner.name}]"
        self.zone_stats: Dict[str, KernelStats] = {}
        self.op_stats: Dict[Tuple[str, str], KernelStats] = {}
        self.dtype_violations: List[DtypeViolation] = []
        self._zone_stack: List[str] = []
        self._expected_dtype: Optional[np.dtype] = None

    # -- bookkeeping ---------------------------------------------------
    @property
    def current_zone(self) -> str:
        return self._zone_stack[-1] if self._zone_stack else UNZONED

    def reset(self) -> None:
        self.zone_stats.clear()
        self.op_stats.clear()
        self.dtype_violations.clear()

    def totals(self) -> KernelStats:
        total = KernelStats()
        for stats in self.zone_stats.values():
            total.merge(stats)
        return total

    def _record(self, op: str, flops: int, nbytes: int) -> None:
        zone = self.current_zone
        self.zone_stats.setdefault(zone, KernelStats()).add(flops, nbytes)
        self.op_stats.setdefault((zone, op), KernelStats()).add(flops, nbytes)

    def _check_dtype(self, op: str, out: np.ndarray) -> np.ndarray:
        expected = self._expected_dtype
        if expected is not None and np.issubdtype(out.dtype, np.floating) and out.dtype != expected:
            self.dtype_violations.append(
                DtypeViolation(
                    zone=self.current_zone,
                    op=op,
                    expected=str(expected),
                    actual=str(out.dtype),
                )
            )
        return out

    @contextlib.contextmanager
    def expect_dtype(self, dtype: DTypeLike) -> Iterator[None]:
        """Record any floating result whose dtype departs from ``dtype``."""
        previous = self._expected_dtype
        self._expected_dtype = np.dtype(dtype)
        try:
            yield
        finally:
            self._expected_dtype = previous

    @contextlib.contextmanager
    def zone(self, name: str) -> Iterator[None]:
        self._zone_stack.append(name)
        try:
            yield
        finally:
            self._zone_stack.pop()

    def report(self) -> str:
        """Fixed-width per-zone cost table (bench harness output)."""
        header = f"{'zone':<18} {'calls':>8} {'gflops':>10} {'mbytes':>10}"
        lines = [header, "-" * len(header)]
        for zone in sorted(self.zone_stats):
            stats = self.zone_stats[zone]
            lines.append(
                f"{zone:<18} {stats.calls:>8d} {stats.flops / 1e9:>10.4f} "
                f"{stats.bytes / 1e6:>10.3f}"
            )
        total = self.totals()
        lines.append("-" * len(header))
        lines.append(
            f"{'total':<18} {total.calls:>8d} {total.flops / 1e9:>10.4f} "
            f"{total.bytes / 1e6:>10.3f}"
        )
        return "\n".join(lines)

    # -- allocation ----------------------------------------------------
    def zeros(self, shape: Shape, dtype: DTypeLike) -> np.ndarray:
        out = self.inner.zeros(shape, dtype)
        self._record("zeros", 0, out.nbytes)
        return self._check_dtype("zeros", out)

    def ones(self, shape: Shape, dtype: DTypeLike) -> np.ndarray:
        out = self.inner.ones(shape, dtype)
        self._record("ones", 0, out.nbytes)
        return self._check_dtype("ones", out)

    def empty(self, shape: Shape, dtype: DTypeLike) -> np.ndarray:
        out = self.inner.empty(shape, dtype)
        self._record("empty", 0, out.nbytes)
        return self._check_dtype("empty", out)

    def full(self, shape: Shape, fill_value: float, dtype: DTypeLike) -> np.ndarray:
        out = self.inner.full(shape, fill_value, dtype)
        self._record("full", 0, out.nbytes)
        return self._check_dtype("full", out)

    def asarray(self, a: Any, dtype: Optional[DTypeLike] = None) -> np.ndarray:
        out = self.inner.asarray(a, dtype=dtype)
        self._record("asarray", 0, 0)
        return self._check_dtype("asarray", out)

    # -- contraction ---------------------------------------------------
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        out = self.inner.matmul(a, b)
        m = a.shape[-2] if a.ndim >= 2 else 1
        k = a.shape[-1]
        n = b.shape[-1] if b.ndim >= 2 else 1
        batch = int(np.prod(out.shape[:-2], dtype=np.int64)) if out.ndim > 2 else 1
        flops = 2 * batch * m * k * n
        nbytes = a.nbytes + b.nbytes + out.nbytes
        self._record("matmul", flops, nbytes)
        return self._check_dtype("matmul", out)

    def einsum(
        self, subscripts: str, *operands: np.ndarray, plan: Optional[EinsumPlan] = None
    ) -> np.ndarray:
        out = self.inner.einsum(subscripts, *operands, plan=plan)
        if plan is None:
            plan = get_plan_cache().einsum_plan(subscripts, *operands)
        nbytes = sum(op.nbytes for op in operands) + out.nbytes
        self._record("einsum", plan.flop_count, nbytes)
        return self._check_dtype("einsum", out)

    # -- sparse movement -----------------------------------------------
    def gather_rows(self, table: np.ndarray, indices: np.ndarray) -> np.ndarray:
        out = self.inner.gather_rows(table, indices)
        self._record("gather_rows", 0, 2 * out.nbytes)
        return self._check_dtype("gather_rows", out)

    def scatter_add_rows(
        self,
        target: np.ndarray,
        indices: np.ndarray,
        values: np.ndarray,
        scale: float = 1.0,
    ) -> None:
        self.inner.scatter_add_rows(target, indices, values, scale=scale)
        flops = values.size if scale == 1.0 else 2 * values.size
        self._record("scatter_add_rows", flops, 3 * values.nbytes)

    # -- elementwise ---------------------------------------------------
    def exp(self, a: np.ndarray) -> np.ndarray:
        out = self.inner.exp(a)
        self._record("exp", out.size, a.nbytes + out.nbytes)
        return self._check_dtype("exp", out)

    def maximum(self, a: Any, b: Any) -> np.ndarray:
        out = self.inner.maximum(a, b)
        self._record("maximum", out.size, 2 * out.nbytes)
        return self._check_dtype("maximum", out)

    def where(self, cond: np.ndarray, a: Any, b: Any) -> np.ndarray:
        out = self.inner.where(cond, a, b)
        self._record("where", out.size, 2 * out.nbytes)
        return self._check_dtype("where", out)

    def axpy(self, target: np.ndarray, values: np.ndarray, scale: float) -> None:
        self.inner.axpy(target, values, scale)
        self._record("axpy", 2 * values.size, 3 * values.nbytes)
