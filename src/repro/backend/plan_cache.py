"""Precompiled contraction plans for TT chain kernels and einsum calls.

The EL-Rec hot loop contracts the same TT chain thousands of times: the
two-level-reuse forward (§III-A) and the in-advance-aggregation
backward (§III-B) run once per batch, and within a training run the
batch *shape signature* — core shapes plus the rank of the index
batch — repeats almost always.  Re-deriving the contraction order (and
its FLOP cost) at every call is wasted work and, worse, makes FLOP
accounting ad hoc per call site.

This module precompiles the contraction once per signature and caches
it:

* :class:`ChainPlan` — the left-to-right batched-GEMM schedule of a TT
  chain (forward or backward sweep), one :class:`ChainStage` per core,
  with per-stage FLOP/byte costs derived purely from shapes;
* :class:`EinsumPlan` — a precomputed ``np.einsum_path`` contraction
  order + cost metadata for a concrete ``(subscripts, operand shapes)``
  signature;
* :class:`ContractionPlanCache` — an LRU-bounded cache over both plan
  kinds, with hit/miss counters surfaced by the bench harness and the
  pipeline ``TrainLog``.

Keying
------
Chain plans are keyed on ``(kind, core_shapes)`` only.  The contraction
*order* of the TT chain is fixed left-to-right and its per-row cost
depends only on the core shapes, not on how many unique rows a
particular batch produced — so the second batch of a training run hits
the cache even when its unique-row count differs.  Einsum plans are
keyed on the full ``(subscripts, operand shapes)`` signature because
``np.einsum_path`` output is shape-dependent.

Numeric note
------------
The reference :class:`~repro.backend.numpy_backend.NumpyBackend`
deliberately executes einsum with ``optimize=False`` even when a plan
is supplied: ``np.einsum(..., optimize=path)`` dispatches through BLAS
``tensordot`` and is *not* bitwise-identical to the unoptimized
evaluation that defines this repo's numerics.  The plan is metadata —
contraction order and cost — consumed by the instrumented wrapper and
by accelerated backends whose numeric contract is tolerance-based.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar, cast

_PlanT = TypeVar("_PlanT")

import numpy as np

__all__ = [
    "ChainStage",
    "ChainPlan",
    "EinsumPlan",
    "ContractionPlanCache",
    "get_plan_cache",
    "reset_plan_cache",
]

CoreShapes = Tuple[Tuple[int, int, int, int], ...]


@dataclass(frozen=True)
class ChainStage:
    """One batched GEMM of a TT chain sweep.

    Shapes are per-row (the batch extent multiplies in at run time):
    the stage contracts the ``(prefix_width, r_in)`` running product
    against the core slice reshaped to ``(r_in, n_k * r_out)``.  Stage
    0 is the initial slice gather — no GEMM, zero FLOPs.
    """

    core_index: int
    r_in: int
    n_k: int
    r_out: int
    # Rows of the accumulated left product entering this stage:
    # prod(n_l for l < k).  1 for the gather-only stage 0.
    prefix_width: int = 1

    @property
    def flops_per_row(self) -> int:
        """2*m*k*n for the per-row GEMM (multiply + add)."""
        if self.core_index == 0:
            return 0
        return 2 * self.prefix_width * self.r_in * self.n_k * self.r_out

    @property
    def out_width(self) -> int:
        return self.n_k * self.r_out


@dataclass(frozen=True)
class ChainPlan:
    """Left-to-right batched-GEMM schedule for a TT chain sweep."""

    kind: str  # "chain_forward" | "chain_backward"
    core_shapes: CoreShapes
    stages: Tuple[ChainStage, ...]

    @property
    def flops_per_row(self) -> int:
        return sum(stage.flops_per_row for stage in self.stages)

    def flops(self, batch: int) -> int:
        """Total chain FLOPs for ``batch`` independent rows."""
        return batch * self.flops_per_row


@dataclass(frozen=True)
class EinsumPlan:
    """Precomputed contraction order for one einsum signature."""

    subscripts: str
    operand_shapes: Tuple[Tuple[int, ...], ...]
    # np.einsum_path contraction list (first element "einsum_path" tag
    # included) — consumable directly as einsum's optimize= argument by
    # backends whose numeric contract permits optimized evaluation.
    path: Tuple[Any, ...]
    # Cost metadata parsed from the path report.
    flop_count: int

    @property
    def optimize_arg(self) -> List[Any]:
        return list(self.path)


def _chain_stages(core_shapes: CoreShapes) -> Tuple[ChainStage, ...]:
    stages = []
    prefix_width = 1
    for k, (_m_k, r_prev, n_k, r_next) in enumerate(core_shapes):
        stages.append(
            ChainStage(
                core_index=k, r_in=r_prev, n_k=n_k, r_out=r_next,
                prefix_width=prefix_width,
            )
        )
        prefix_width *= n_k
    return tuple(stages)


def _einsum_flops_from_report(report: str, operand_shapes: Sequence[Tuple[int, ...]]) -> int:
    # np.einsum_path reports "Optimized FLOP count: 1.2e+05"; fall back
    # to a dense upper bound if the report format ever changes.
    for line in report.splitlines():
        if "FLOP count" in line:
            try:
                return int(float(line.split(":")[-1].strip()))
            except ValueError:
                break
    bound = 1
    for shape in operand_shapes:
        for extent in shape:
            bound *= max(extent, 1)
    return 2 * bound


class ContractionPlanCache:
    """LRU cache of :class:`ChainPlan` / :class:`EinsumPlan` objects.

    A process-wide instance (:func:`get_plan_cache`) backs the TT chain
    kernels and the backend ``einsum`` call sites; hit/miss counters
    feed the bench harness and ``TrainLog``.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple[Any, ...], Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._entries)}

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def _get_or_build(
        self, key: Tuple[Any, ...], build: Callable[[], _PlanT]
    ) -> _PlanT:
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return cast(_PlanT, entry)
        self.misses += 1
        built = build()
        self._entries[key] = built
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return built

    # -- chain plans ---------------------------------------------------
    def chain_plan(self, kind: str, core_shapes: CoreShapes) -> ChainPlan:
        """Plan for a left-to-right TT chain sweep over ``core_shapes``.

        ``kind`` distinguishes forward from backward sweeps in the
        cache key (their schedules coincide stage-for-stage today, but
        the key keeps them separable for backends that fuse
        differently).
        """
        key = ("chain", kind, core_shapes)
        return self._get_or_build(
            key,
            lambda: ChainPlan(kind=kind, core_shapes=core_shapes, stages=_chain_stages(core_shapes)),
        )

    # -- einsum plans --------------------------------------------------
    def einsum_plan(self, subscripts: str, *operands: np.ndarray) -> EinsumPlan:
        shapes = tuple(tuple(int(d) for d in op.shape) for op in operands)
        key = ("einsum", subscripts, shapes)

        def build() -> EinsumPlan:
            path, report = np.einsum_path(subscripts, *operands, optimize="optimal")
            return EinsumPlan(
                subscripts=subscripts,
                operand_shapes=shapes,
                path=tuple(path),
                flop_count=_einsum_flops_from_report(report, shapes),
            )

        return self._get_or_build(key, build)

    def einsum_plan_for_shapes(
        self, subscripts: str, shapes: Sequence[Tuple[int, ...]]
    ) -> EinsumPlan:
        """Plan for a signature given only operand *shapes*.

        Shares the cache key with :meth:`einsum_plan` (``np.einsum_path``
        output depends only on shapes), so a plan built here is the plan
        a later real call hits — this is the introspection seam the
        static perfcheck analyzer and its calibration backend use to
        cost einsum sites without materialising operands.  The probe
        operands are stride-0 broadcast views of a scalar: no
        shape-sized allocation happens.
        """
        norm = tuple(tuple(int(d) for d in shape) for shape in shapes)
        key = ("einsum", subscripts, norm)

        def build() -> EinsumPlan:
            operands = [
                np.broadcast_to(np.zeros((), dtype=np.float32), shape)
                for shape in norm
            ]
            path, report = np.einsum_path(subscripts, *operands, optimize="optimal")
            return EinsumPlan(
                subscripts=subscripts,
                operand_shapes=norm,
                path=tuple(path),
                flop_count=_einsum_flops_from_report(report, norm),
            )

        return self._get_or_build(key, build)


_PLAN_CACHE = ContractionPlanCache()


def get_plan_cache() -> ContractionPlanCache:
    """The process-wide plan cache shared by all backends."""
    return _PLAN_CACHE


def reset_plan_cache() -> None:
    """Drop all cached plans and zero the hit/miss counters."""
    _PLAN_CACHE.clear()
