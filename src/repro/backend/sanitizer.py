"""numsan: a numeric-sanitizer backend wrapper.

:class:`SanitizerBackend` wraps any :class:`~repro.backend.protocol.ArrayBackend`
and forwards every call to it unchanged — results are bitwise-identical
to the wrapped backend — while *checking* what flows through:

* **non-finite outputs** — any NaN/Inf in a floating result of
  ``matmul``/``einsum``/``exp``/``maximum``/``where``/``gather_rows``
  (and in ``axpy``/``scatter_add_rows`` inputs and updated targets)
  trips a ``nonfinite`` trap.  ``empty()`` results are exempt: their
  bits are uninitialized by contract.
* **out-of-range gather/scatter indices** — checked *before* the inner
  call, because numpy silently wraps negative indices to the end of the
  table; a wrapped read is precisely the bug the paper's gather/scatter
  paths must never hit.
* **dtype drift** — a floating result wider than the widest floating
  operand means an implicit upcast (the float64 default leaking in);
  trips a ``dtype-drift`` trap.

Every trap is tagged with the innermost open kernel zone (see
``ArrayBackend.zone``), so a report reads "``nonfinite`` in
``efftt_backward``" rather than pointing at a random ufunc.  In the
default ``mode="raise"`` the first trap raises
:class:`NumericTrapError`; ``mode="record"`` accumulates
:class:`TrapRecord` entries for offline assertion (the quickcheck
equivalence gate runs this way).  In both modes every call is still
forwarded verbatim, so a hard out-of-bounds index that numpy itself
rejects will raise ``IndexError`` from the inner backend right after
the trap is recorded — the record tells you *which zone* it came from.

This is the dynamic half of the shapecheck story: the static checker
(:mod:`repro.analysis.shapecheck`) proves what it can at the AST level,
and the sanitizer enforces the same contracts on the values the static
domain had to leave symbolic.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional

import numpy as np

from .numpy_backend import NumpyBackend
from .plan_cache import EinsumPlan
from .protocol import ArrayBackend, DTypeLike, Shape

__all__ = ["NumericTrapError", "SanitizerBackend", "TrapRecord"]

UNZONED = "unzoned"


@dataclass(frozen=True)
class TrapRecord:
    """One sanitizer trap: where, what op, what kind, and the details."""

    zone: str
    op: str
    kind: str  # "nonfinite" | "gather-index" | "dtype-drift"
    detail: str

    def format(self) -> str:
        return f"[{self.zone}] {self.op}: {self.kind} — {self.detail}"


class NumericTrapError(RuntimeError):
    """Raised in ``mode="raise"`` when a sanitizer check trips."""

    def __init__(self, record: TrapRecord) -> None:
        super().__init__(record.format())
        self.record = record


class SanitizerBackend:
    """Checking wrapper satisfying :class:`~repro.backend.protocol.ArrayBackend`.

    Forwards unchanged to ``inner`` (bitwise-identical results) and
    traps NaN/Inf outputs, out-of-range row indices, and implicit
    floating upcasts, tagged with the enclosing kernel zone.
    """

    def __init__(
        self, inner: Optional[ArrayBackend] = None, mode: str = "raise"
    ) -> None:
        if mode not in ("raise", "record"):
            raise ValueError(f"mode must be 'raise' or 'record', got {mode!r}")
        self.inner: ArrayBackend = inner if inner is not None else NumpyBackend()
        self.name = f"sanitizer[{self.inner.name}]"
        self.mode = mode
        self.traps: List[TrapRecord] = []
        self._zone_stack: List[str] = []

    # -- bookkeeping ---------------------------------------------------
    @property
    def current_zone(self) -> str:
        return self._zone_stack[-1] if self._zone_stack else UNZONED

    def reset(self) -> None:
        self.traps.clear()

    def report(self) -> str:
        if not self.traps:
            return "numsan: no traps"
        lines = [f"numsan: {len(self.traps)} trap(s)"]
        lines.extend(record.format() for record in self.traps)
        return "\n".join(lines)

    @contextlib.contextmanager
    def zone(self, name: str) -> Iterator[None]:
        self._zone_stack.append(name)
        try:
            yield
        finally:
            self._zone_stack.pop()

    def _trap(self, op: str, kind: str, detail: str) -> None:
        record = TrapRecord(zone=self.current_zone, op=op, kind=kind, detail=detail)
        self.traps.append(record)
        if self.mode == "raise":
            raise NumericTrapError(record)

    # -- checks --------------------------------------------------------
    def _check_finite(self, op: str, out: np.ndarray, role: str = "result") -> np.ndarray:
        if np.issubdtype(out.dtype, np.floating) and not np.all(np.isfinite(out)):
            bad = int(out.size - np.count_nonzero(np.isfinite(out)))
            self._trap(
                op,
                "nonfinite",
                f"{role} of shape {out.shape} ({out.dtype}) contains "
                f"{bad} non-finite element(s)",
            )
        return out

    def _check_drift(self, op: str, out: np.ndarray, *operands: Any) -> np.ndarray:
        if not np.issubdtype(out.dtype, np.floating):
            return out
        widest = 0
        for operand in operands:
            if isinstance(operand, np.ndarray) and np.issubdtype(
                operand.dtype, np.floating
            ):
                widest = max(widest, operand.dtype.itemsize)
        if widest and out.dtype.itemsize > widest:
            self._trap(
                op,
                "dtype-drift",
                f"result dtype {out.dtype} is wider than the widest "
                f"floating operand ({widest * 8}-bit): implicit upcast",
            )
        return out

    def _check_indices(
        self, op: str, indices: np.ndarray, rows: int
    ) -> None:
        indices = np.asarray(indices)
        if indices.size == 0:
            return
        lo = int(indices.min())
        hi = int(indices.max())
        if lo < 0:
            self._trap(
                op,
                "gather-index",
                f"negative row index {lo} (numpy wraps it to row "
                f"{rows + lo} silently)",
            )
        elif hi >= rows:
            self._trap(
                op,
                "gather-index",
                f"row index {hi} out of range for a table with {rows} rows",
            )

    # -- allocation ----------------------------------------------------
    def zeros(self, shape: Shape, dtype: DTypeLike) -> np.ndarray:
        return self.inner.zeros(shape, dtype)

    def ones(self, shape: Shape, dtype: DTypeLike) -> np.ndarray:
        return self.inner.ones(shape, dtype)

    def empty(self, shape: Shape, dtype: DTypeLike) -> np.ndarray:
        # Uninitialized by contract: never finite-checked.
        return self.inner.empty(shape, dtype)

    def full(self, shape: Shape, fill_value: float, dtype: DTypeLike) -> np.ndarray:
        return self._check_finite("full", self.inner.full(shape, fill_value, dtype))

    def asarray(self, a: Any, dtype: Optional[DTypeLike] = None) -> np.ndarray:
        return self._check_finite("asarray", self.inner.asarray(a, dtype=dtype))

    # -- contraction ---------------------------------------------------
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        out = self.inner.matmul(a, b)
        self._check_drift("matmul", out, a, b)
        return self._check_finite("matmul", out)

    def einsum(
        self, subscripts: str, *operands: np.ndarray, plan: Optional[EinsumPlan] = None
    ) -> np.ndarray:
        out = self.inner.einsum(subscripts, *operands, plan=plan)
        self._check_drift(f"einsum[{subscripts}]", out, *operands)
        return self._check_finite(f"einsum[{subscripts}]", out)

    # -- sparse movement -----------------------------------------------
    def gather_rows(self, table: np.ndarray, indices: np.ndarray) -> np.ndarray:
        self._check_indices("gather_rows", indices, int(table.shape[0]))
        return self._check_finite("gather_rows", self.inner.gather_rows(table, indices))

    def scatter_add_rows(
        self,
        target: np.ndarray,
        indices: np.ndarray,
        values: np.ndarray,
        scale: float = 1.0,
    ) -> None:
        self._check_indices("scatter_add_rows", indices, int(target.shape[0]))
        self._check_finite("scatter_add_rows", np.asarray(values), role="values")
        self._check_drift("scatter_add_rows", target, values)
        self.inner.scatter_add_rows(target, indices, values, scale=scale)
        self._check_finite("scatter_add_rows", target, role="updated target")

    # -- elementwise ---------------------------------------------------
    def exp(self, a: np.ndarray) -> np.ndarray:
        # The repo's stable-sigmoid only exponentiates non-positive
        # arguments, so a non-finite exp output is always a bug.
        return self._check_finite("exp", self.inner.exp(a))

    def maximum(self, a: Any, b: Any) -> np.ndarray:
        out = self.inner.maximum(a, b)
        self._check_drift("maximum", out, a, b)
        return self._check_finite("maximum", out)

    def where(self, cond: np.ndarray, a: Any, b: Any) -> np.ndarray:
        out = self.inner.where(cond, a, b)
        self._check_drift("where", out, a, b)
        return self._check_finite("where", out)

    def axpy(self, target: np.ndarray, values: np.ndarray, scale: float) -> None:
        self._check_finite("axpy", np.asarray(values), role="values")
        if not np.isfinite(scale):
            self._trap("axpy", "nonfinite", f"scale is {scale!r}")
        self._check_drift("axpy", target, values)
        self.inner.axpy(target, values, scale)
        self._check_finite("axpy", target, role="updated target")
