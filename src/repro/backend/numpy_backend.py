# reprolint: disable-file=direct-numpy-in-kernel-zone
"""Reference backend: thin, bit-exact delegation to numpy.

This module is the numeric ground truth of the repository.  Every
method forwards to the *same* numpy call the pre-backend code used —
``np.matmul``, plain ``np.einsum`` with ``optimize=False``, fancy-index
gather, :func:`repro.utils.scatter.scatter_add_rows` — so routing a
kernel through :class:`NumpyBackend` is bitwise-identical to the direct
call it replaced.  The file-level reprolint pragma above opts this one
module out of REP005 (``direct-numpy-in-kernel-zone``): the reference
backend is the single place direct numpy contraction calls are allowed.

``einsum`` accepts a precompiled :class:`~repro.backend.plan_cache.EinsumPlan`
but deliberately ignores it for execution: ``np.einsum(..., optimize=path)``
routes through BLAS ``tensordot`` and produces bitwise-*different*
results from the unoptimized evaluation that defines this repo's
numerics.  Plans exist for instrumentation and for backends with a
tolerance-based numeric contract.
"""

from __future__ import annotations

import contextlib
from typing import Any, Iterator, Optional, cast

import numpy as np

from ..utils.scatter import scatter_add_rows as _scatter_add_rows
from .plan_cache import EinsumPlan
from .protocol import DTypeLike, Shape

__all__ = ["NumpyBackend"]


class NumpyBackend:
    """The reference :class:`~repro.backend.protocol.ArrayBackend`."""

    name = "numpy"

    # -- allocation ----------------------------------------------------
    def zeros(self, shape: Shape, dtype: DTypeLike) -> np.ndarray:
        return np.zeros(shape, dtype=dtype)

    def ones(self, shape: Shape, dtype: DTypeLike) -> np.ndarray:
        return np.ones(shape, dtype=dtype)

    def empty(self, shape: Shape, dtype: DTypeLike) -> np.ndarray:
        return np.empty(shape, dtype=dtype)

    def full(self, shape: Shape, fill_value: float, dtype: DTypeLike) -> np.ndarray:
        return np.full(shape, fill_value, dtype=dtype)

    def asarray(self, a: Any, dtype: Optional[DTypeLike] = None) -> np.ndarray:
        return np.asarray(a, dtype=dtype)

    # -- contraction ---------------------------------------------------
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return cast(np.ndarray, np.matmul(a, b))

    def einsum(
        self, subscripts: str, *operands: np.ndarray, plan: Optional[EinsumPlan] = None
    ) -> np.ndarray:
        # optimize=False always: bitwise identity with the historical
        # call sites trumps the planned contraction order here.
        return cast(np.ndarray, np.einsum(subscripts, *operands, optimize=False))

    # -- sparse movement -----------------------------------------------
    def gather_rows(self, table: np.ndarray, indices: np.ndarray) -> np.ndarray:
        return cast(np.ndarray, table[indices])

    def scatter_add_rows(
        self,
        target: np.ndarray,
        indices: np.ndarray,
        values: np.ndarray,
        scale: float = 1.0,
    ) -> None:
        _scatter_add_rows(target, indices, values, scale=scale)

    # -- elementwise ---------------------------------------------------
    def exp(self, a: np.ndarray) -> np.ndarray:
        return cast(np.ndarray, np.exp(a))

    def maximum(self, a: Any, b: Any) -> np.ndarray:
        return cast(np.ndarray, np.maximum(a, b))

    def where(self, cond: np.ndarray, a: Any, b: Any) -> np.ndarray:
        return cast(np.ndarray, np.where(cond, a, b))

    def axpy(self, target: np.ndarray, values: np.ndarray, scale: float) -> None:
        if scale == 1.0:
            target += values
        elif scale == -1.0:
            target -= values
        else:
            target += scale * values

    # -- instrumentation seam ------------------------------------------
    @contextlib.contextmanager
    def zone(self, name: str) -> Iterator[None]:
        yield
