"""The ``ArrayBackend`` protocol: the seam every hot-path kernel runs through.

Every hot-path kernel in this repository — the TT gather-contract chain
in :mod:`repro.embeddings`, the MLP/interaction matmuls in
:mod:`repro.nn`, the fused optimizer updates, the parameter-server
gathers and the serving-arm lookups — executes its array math through
the *active backend* (see :func:`repro.backend.get_backend`) instead of
calling numpy directly.  The backend is deliberately a small surface:

* **allocation with explicit dtype** — ``zeros/ones/empty/full`` take a
  *required* ``dtype``; there is no implicit-float64 default at the
  backend boundary (the PR-2 explicit-dtype policy, enforced statically
  by reprolint REP003 for raw numpy and dynamically by
  :class:`~repro.backend.instrumented.InstrumentedBackend` for backend
  allocations);
* **contraction** — ``matmul`` (the batched-GEMM workhorse of every TT
  kernel) and ``einsum`` with an optional precompiled
  :class:`~repro.backend.plan_cache.EinsumPlan`;
* **sparse movement** — ``gather_rows`` / ``scatter_add_rows``, the two
  primitives embedding tables live on;
* **elementwise** — the handful of ufuncs the activation/optimizer
  paths need (``exp``, ``maximum``, ``where``, ``axpy``);
* **zones** — ``zone(name)`` context manager tagging the *named kernel
  zone* the enclosed ops belong to, so an instrumenting backend can
  attribute FLOPs/bytes per zone.  The reference backend's ``zone`` is
  a no-op.

Implementations
---------------
:class:`~repro.backend.numpy_backend.NumpyBackend`
    The reference: thin, bit-exact delegation to numpy.  All existing
    numerics are defined by this backend.
:class:`~repro.backend.instrumented.InstrumentedBackend`
    Wraps any backend, counting calls/FLOPs/bytes per kernel zone and
    optionally recording dtype drift.
:class:`~repro.backend.torch_backend.TorchBackend`
    Optional PyTorch execution; import-guards cleanly when torch is
    absent (:class:`BackendUnavailableError`).
"""

from __future__ import annotations

from typing import Any, ContextManager, Optional, Protocol, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "ArrayBackend",
    "BackendUnavailableError",
    "DTypeLike",
    "Shape",
    "ZONE_TT_FORWARD",
    "ZONE_TT_BACKWARD",
    "ZONE_TT_RECONSTRUCT",
    "ZONE_EFFTT_FORWARD",
    "ZONE_EFFTT_BACKWARD",
    "ZONE_FUSED_UPDATE",
    "ZONE_MLP",
    "ZONE_INTERACTION",
    "ZONE_OPTIMIZER",
    "ZONE_LC_CACHE",
    "ZONE_PS_GATHER",
    "ZONE_PS_APPLY",
    "ZONE_SERVING_LOOKUP",
    "ZONE_SHARD_ROUTE",
    "ZONE_LINK_COMPRESS",
    "ZONE_HASH_LOOKUP",
    "ZONE_ROBE_LOOKUP",
    "ZONE_PQ_LOOKUP",
    "ZONE_COMPRESS_UPDATE",
    "KERNEL_ZONE_NAMES",
]

Shape = Union[int, Tuple[int, ...], Sequence[int]]
DTypeLike = Any  # np.dtype, dtype class, or dtype string

# -- named kernel zones ----------------------------------------------------
# One name per hot-path kernel family.  InstrumentedBackend aggregates
# per zone; the analytic FLOP model in repro.embeddings.flops predicts
# the tt_*/efftt_* zones exactly (cross-checked in the test suite).
ZONE_TT_FORWARD = "tt_forward"          # naive per-occurrence TT chain
ZONE_TT_BACKWARD = "tt_backward"        # naive TT backward chain
ZONE_TT_RECONSTRUCT = "tt_reconstruct"  # reference row reconstruction
ZONE_EFFTT_FORWARD = "efftt_forward"    # reuse-buffer lookup (§III-A)
ZONE_EFFTT_BACKWARD = "efftt_backward"  # aggregated backward (§III-B)
ZONE_FUSED_UPDATE = "fused_update"      # fused TT-core update (§III-B)
ZONE_MLP = "mlp"                        # Linear/activation stack
ZONE_INTERACTION = "interaction"        # pairwise dot interaction
ZONE_OPTIMIZER = "optimizer"            # dense SGD/Adagrad updates
ZONE_LC_CACHE = "lc_cache"              # §V-B life-cycle cache traffic
ZONE_PS_GATHER = "ps_gather"            # parameter-server row gather
ZONE_PS_APPLY = "ps_apply"              # server-side sparse update
ZONE_SERVING_LOOKUP = "serving_lookup"  # hot-row-cached inference arms
ZONE_SHARD_ROUTE = "shard_route"        # row -> shard routing index math
ZONE_LINK_COMPRESS = "link_compress"    # PS-link compression / quantization
ZONE_HASH_LOOKUP = "hash_lookup"        # mod-hash bucket gather
ZONE_ROBE_LOOKUP = "robe_lookup"        # ROBE shared-array chunk gather
ZONE_PQ_LOOKUP = "pq_lookup"            # PQ codebook gather + concat
ZONE_COMPRESS_UPDATE = "compress_update"  # hash/ROBE/PQ sparse updates

KERNEL_ZONE_NAMES: Tuple[str, ...] = (
    ZONE_TT_FORWARD,
    ZONE_TT_BACKWARD,
    ZONE_TT_RECONSTRUCT,
    ZONE_EFFTT_FORWARD,
    ZONE_EFFTT_BACKWARD,
    ZONE_FUSED_UPDATE,
    ZONE_MLP,
    ZONE_INTERACTION,
    ZONE_OPTIMIZER,
    ZONE_LC_CACHE,
    ZONE_PS_GATHER,
    ZONE_PS_APPLY,
    ZONE_SERVING_LOOKUP,
    ZONE_SHARD_ROUTE,
    ZONE_LINK_COMPRESS,
    ZONE_HASH_LOOKUP,
    ZONE_ROBE_LOOKUP,
    ZONE_PQ_LOOKUP,
    ZONE_COMPRESS_UPDATE,
)


class BackendUnavailableError(RuntimeError):
    """Requested backend cannot run in this environment (e.g. no torch)."""


class ArrayBackend(Protocol):
    """Protocol every execution backend implements.

    All methods accept and return ``np.ndarray`` — the repository's
    interchange format.  A non-numpy backend converts at the boundary;
    the reference backend passes arrays through untouched.  Semantics
    are fixed by :class:`~repro.backend.numpy_backend.NumpyBackend`:
    a conforming backend must match it to within its numeric contract
    (bitwise for the instrumented wrapper, a documented tolerance for
    accelerated backends).
    """

    name: str

    # -- allocation (explicit dtype required) --------------------------
    def zeros(self, shape: Shape, dtype: DTypeLike) -> np.ndarray:
        ...

    def ones(self, shape: Shape, dtype: DTypeLike) -> np.ndarray:
        ...

    def empty(self, shape: Shape, dtype: DTypeLike) -> np.ndarray:
        ...

    def full(self, shape: Shape, fill_value: float, dtype: DTypeLike) -> np.ndarray:
        ...

    def asarray(self, a: Any, dtype: Optional[DTypeLike] = None) -> np.ndarray:
        ...

    # -- contraction ---------------------------------------------------
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        ...

    def einsum(
        self, subscripts: str, *operands: np.ndarray, plan: Optional[Any] = None
    ) -> np.ndarray:
        ...

    # -- sparse movement -----------------------------------------------
    def gather_rows(self, table: np.ndarray, indices: np.ndarray) -> np.ndarray:
        ...

    def scatter_add_rows(
        self,
        target: np.ndarray,
        indices: np.ndarray,
        values: np.ndarray,
        scale: float = 1.0,
    ) -> None:
        ...

    # -- elementwise ---------------------------------------------------
    def exp(self, a: np.ndarray) -> np.ndarray:
        ...

    def maximum(self, a: Any, b: Any) -> np.ndarray:
        ...

    def where(self, cond: np.ndarray, a: Any, b: Any) -> np.ndarray:
        ...

    def axpy(self, target: np.ndarray, values: np.ndarray, scale: float) -> None:
        """In-place ``target += scale * values`` (the optimizer update)."""
        ...

    # -- instrumentation seam ------------------------------------------
    def zone(self, name: str) -> ContextManager[None]:
        """Tag enclosed ops as belonging to the named kernel zone."""
        ...
