"""Pluggable execution backends for all hot-path kernels.

Usage::

    from repro import backend

    bk = backend.get_backend()           # active backend (numpy default)
    with backend.use_backend("instrumented") as inst:
        model.train_step(batch)          # kernels counted per zone
        print(inst.report())

The active backend is a module-level global, so tests and benchmarks
swap execution paths without threading a parameter through every
constructor.  ``use_backend`` accepts either a backend *name*
(``"numpy"``, ``"instrumented"``, ``"torch"``) or an already-constructed
backend object, restores the previous backend on exit, and yields the
active instance (handy for reading instrumented counters afterwards).
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Tuple, Union

from .instrumented import DtypeViolation, InstrumentedBackend, KernelStats
from .numpy_backend import NumpyBackend
from .plan_cache import (
    ChainPlan,
    ChainStage,
    ContractionPlanCache,
    EinsumPlan,
    get_plan_cache,
    reset_plan_cache,
)
from .sanitizer import NumericTrapError, SanitizerBackend, TrapRecord
from .protocol import (
    KERNEL_ZONE_NAMES,
    ZONE_COMPRESS_UPDATE,
    ZONE_EFFTT_BACKWARD,
    ZONE_EFFTT_FORWARD,
    ZONE_FUSED_UPDATE,
    ZONE_HASH_LOOKUP,
    ZONE_INTERACTION,
    ZONE_LC_CACHE,
    ZONE_LINK_COMPRESS,
    ZONE_MLP,
    ZONE_OPTIMIZER,
    ZONE_PQ_LOOKUP,
    ZONE_PS_APPLY,
    ZONE_PS_GATHER,
    ZONE_ROBE_LOOKUP,
    ZONE_SERVING_LOOKUP,
    ZONE_SHARD_ROUTE,
    ZONE_TT_BACKWARD,
    ZONE_TT_FORWARD,
    ZONE_TT_RECONSTRUCT,
    ArrayBackend,
    BackendUnavailableError,
)
from .torch_backend import TorchBackend, torch_available

__all__ = [
    "ArrayBackend",
    "BackendUnavailableError",
    "NumpyBackend",
    "InstrumentedBackend",
    "SanitizerBackend",
    "NumericTrapError",
    "TrapRecord",
    "TorchBackend",
    "torch_available",
    "KernelStats",
    "DtypeViolation",
    "ChainPlan",
    "ChainStage",
    "EinsumPlan",
    "ContractionPlanCache",
    "get_plan_cache",
    "reset_plan_cache",
    "BACKEND_NAMES",
    "get_backend",
    "set_backend",
    "use_backend",
    "resolve_backend",
    "KERNEL_ZONE_NAMES",
    "ZONE_TT_FORWARD",
    "ZONE_TT_BACKWARD",
    "ZONE_TT_RECONSTRUCT",
    "ZONE_EFFTT_FORWARD",
    "ZONE_EFFTT_BACKWARD",
    "ZONE_FUSED_UPDATE",
    "ZONE_MLP",
    "ZONE_INTERACTION",
    "ZONE_OPTIMIZER",
    "ZONE_LC_CACHE",
    "ZONE_PS_GATHER",
    "ZONE_PS_APPLY",
    "ZONE_SERVING_LOOKUP",
    "ZONE_SHARD_ROUTE",
    "ZONE_LINK_COMPRESS",
    "ZONE_HASH_LOOKUP",
    "ZONE_ROBE_LOOKUP",
    "ZONE_PQ_LOOKUP",
    "ZONE_COMPRESS_UPDATE",
]

BACKEND_NAMES: Tuple[str, ...] = ("numpy", "instrumented", "sanitizer", "torch")

_DEFAULT_BACKEND = NumpyBackend()
_active_backend: ArrayBackend = _DEFAULT_BACKEND


def resolve_backend(spec: Union[str, ArrayBackend, None]) -> ArrayBackend:
    """Turn a backend name (or backend instance, or None) into a backend.

    ``None`` resolves to the currently active backend.  Raises
    :class:`BackendUnavailableError` for ``"torch"`` without torch, and
    :class:`ValueError` for unknown names.
    """
    if spec is None:
        return get_backend()
    if not isinstance(spec, str):
        return spec
    if spec == "numpy":
        return NumpyBackend()
    if spec == "instrumented":
        return InstrumentedBackend()
    if spec == "sanitizer":
        return SanitizerBackend()
    if spec == "torch":
        return TorchBackend()
    raise ValueError(f"unknown backend {spec!r}; expected one of {BACKEND_NAMES}")


def get_backend() -> ArrayBackend:
    """The backend all hot-path kernels currently execute through."""
    return _active_backend


def set_backend(spec: Union[str, ArrayBackend]) -> ArrayBackend:
    """Install a backend globally; returns the installed instance."""
    global _active_backend
    _active_backend = resolve_backend(spec)
    return _active_backend


@contextlib.contextmanager
def use_backend(spec: Union[str, ArrayBackend]) -> Iterator[ArrayBackend]:
    """Temporarily install a backend, restoring the previous one on exit."""
    global _active_backend
    previous = _active_backend
    _active_backend = resolve_backend(spec)
    try:
        yield _active_backend
    finally:
        _active_backend = previous
