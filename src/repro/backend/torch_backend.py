"""Optional PyTorch execution backend.

Importing this module never requires torch; construction does.  When
torch is absent, :class:`TorchBackend` raises
:class:`~repro.backend.protocol.BackendUnavailableError` with an
actionable message — the CLI surfaces it verbatim for
``--backend torch``.

Numeric contract: *tolerance-based*, not bitwise.  Torch dispatches
contractions through its own BLAS/kernels, so results agree with the
reference backend to float rounding (the equivalence suite asserts
``allclose`` at dtype-appropriate tolerances when torch is installed,
and skips otherwise).  Arrays cross the boundary via ``torch.from_numpy``
(zero-copy for contiguous inputs) and ``.numpy()`` on the way back; all
execution is CPU — device placement is a future PR's concern.
"""

from __future__ import annotations

import contextlib
from typing import Any, Iterator, Optional

import numpy as np

from .plan_cache import EinsumPlan
from .protocol import BackendUnavailableError, DTypeLike, Shape

__all__ = ["TorchBackend", "torch_available"]


def _import_torch() -> Any:
    try:
        import torch
    except ImportError as exc:
        raise BackendUnavailableError(
            "the 'torch' backend requires PyTorch, which is not installed in "
            "this environment; install torch or use --backend numpy / "
            "--backend instrumented"
        ) from exc
    return torch


def torch_available() -> bool:
    try:
        import torch  # noqa: F401
    except ImportError:
        return False
    return True


class TorchBackend:
    """CPU PyTorch :class:`~repro.backend.protocol.ArrayBackend`."""

    name = "torch"

    def __init__(self) -> None:
        self._torch = _import_torch()

    # -- boundary conversion -------------------------------------------
    def _to_torch(self, a: np.ndarray) -> Any:
        return self._torch.from_numpy(np.ascontiguousarray(a))

    @staticmethod
    def _to_numpy(t: Any) -> np.ndarray:
        return t.numpy()

    def _torch_dtype(self, dtype: DTypeLike) -> Any:
        mapping = {
            np.dtype(np.float32): self._torch.float32,
            np.dtype(np.float64): self._torch.float64,
            np.dtype(np.int32): self._torch.int32,
            np.dtype(np.int64): self._torch.int64,
        }
        key = np.dtype(dtype)
        if key not in mapping:
            raise ValueError(f"TorchBackend has no mapping for dtype {key}")
        return mapping[key]

    # -- allocation ----------------------------------------------------
    def zeros(self, shape: Shape, dtype: DTypeLike) -> np.ndarray:
        return np.zeros(shape, dtype=dtype)

    def ones(self, shape: Shape, dtype: DTypeLike) -> np.ndarray:
        return np.ones(shape, dtype=dtype)

    def empty(self, shape: Shape, dtype: DTypeLike) -> np.ndarray:
        return np.empty(shape, dtype=dtype)

    def full(self, shape: Shape, fill_value: float, dtype: DTypeLike) -> np.ndarray:
        return np.full(shape, fill_value, dtype=dtype)

    def asarray(self, a: Any, dtype: Optional[DTypeLike] = None) -> np.ndarray:
        return np.asarray(a, dtype=dtype)

    # -- contraction ---------------------------------------------------
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._to_numpy(self._torch.matmul(self._to_torch(a), self._to_torch(b)))

    def einsum(
        self, subscripts: str, *operands: np.ndarray, plan: Optional[EinsumPlan] = None
    ) -> np.ndarray:
        tensors = [self._to_torch(op) for op in operands]
        return self._to_numpy(self._torch.einsum(subscripts, *tensors))

    # -- sparse movement -----------------------------------------------
    def gather_rows(self, table: np.ndarray, indices: np.ndarray) -> np.ndarray:
        idx = self._torch.from_numpy(np.ascontiguousarray(indices, dtype=np.int64))
        return self._to_numpy(self._to_torch(table).index_select(0, idx))

    def scatter_add_rows(
        self,
        target: np.ndarray,
        indices: np.ndarray,
        values: np.ndarray,
        scale: float = 1.0,
    ) -> None:
        t = self._to_torch(target)
        idx = self._torch.from_numpy(np.ascontiguousarray(indices, dtype=np.int64))
        v = self._to_torch(values)
        if scale != 1.0:
            v = v * scale
        # from_numpy shares memory with a contiguous target, so the
        # index_add_ lands in the caller's array in place.
        t.index_add_(0, idx, v)
        if t.data_ptr() != self._torch.from_numpy(target).data_ptr():
            np.copyto(target, self._to_numpy(t))

    # -- elementwise ---------------------------------------------------
    def exp(self, a: np.ndarray) -> np.ndarray:
        return self._to_numpy(self._torch.exp(self._to_torch(a)))

    def maximum(self, a: Any, b: Any) -> np.ndarray:
        return np.maximum(a, b)

    def where(self, cond: np.ndarray, a: Any, b: Any) -> np.ndarray:
        return np.where(cond, a, b)

    def axpy(self, target: np.ndarray, values: np.ndarray, scale: float) -> None:
        target += scale * values

    # -- instrumentation seam ------------------------------------------
    @contextlib.contextmanager
    def zone(self, name: str) -> Iterator[None]:
        yield
