"""Wall-clock measurement helpers for kernels and benchmarks.

The guide for this domain is explicit: *no optimization without
measuring*.  These helpers wrap ``time.perf_counter`` with warmup and
median-of-repeats semantics so kernel comparisons (Eff-TT vs TT-Rec
lookup, Figures 14, 17, 18) are robust to scheduler noise.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["Timer", "measure_median", "percentiles", "LatencyHistogram"]


def percentiles(
    samples: Sequence[float],
    qs: Sequence[float] = (50.0, 95.0, 99.0),
) -> Dict[float, float]:
    """Percentiles of a sample set by linear interpolation.

    Matches ``numpy.percentile``'s default (``linear``) method so
    benches and serving metrics report identical numbers regardless of
    which path computed them.  Raises on an empty sample set — an SLO
    over zero requests is meaningless and should fail loudly.

    Examples
    --------
    >>> percentiles([1.0, 2.0, 3.0, 4.0], qs=(50,))
    {50: 2.5}
    """
    if not samples:
        raise ValueError("percentiles of an empty sample set")
    ordered = sorted(samples)
    n = len(ordered)
    out: Dict[float, float] = {}
    for q in qs:
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        pos = (q / 100.0) * (n - 1)
        lo = int(pos)
        hi = min(lo + 1, n - 1)
        frac = pos - lo
        out[q] = ordered[lo] * (1.0 - frac) + ordered[hi] * frac
    return out


class LatencyHistogram:
    """Streaming latency accumulator with exact percentiles.

    Keeps the raw samples (latency studies here are at most a few
    hundred thousand requests, so exactness is affordable) and offers
    the summary statistics every SLO report needs plus fixed-bucket
    counts for plotting.
    """

    def __init__(self) -> None:
        self.samples: List[float] = []

    def record(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"latency must be >= 0, got {value}")
        self.samples.append(float(value))

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def max(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def percentile(self, q: float) -> float:
        return percentiles(self.samples, qs=(q,))[q]

    def summary(self) -> Dict[str, float]:
        """p50/p95/p99 plus mean/max/count (zeros when empty)."""
        if not self.samples:
            return {
                "count": 0, "mean": 0.0, "max": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0,
            }
        pct = percentiles(self.samples, qs=(50.0, 95.0, 99.0))
        return {
            "count": float(len(self.samples)),
            "mean": self.mean,
            "max": self.max,
            "p50": pct[50.0],
            "p95": pct[95.0],
            "p99": pct[99.0],
        }

    def buckets(
        self, num_buckets: int = 10
    ) -> List[Tuple[float, float, int]]:
        """Equal-width ``(lo, hi, count)`` buckets over the sample range."""
        if num_buckets < 1:
            raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
        if not self.samples:
            return []
        lo, hi = min(self.samples), max(self.samples)
        width = (hi - lo) / num_buckets or 1.0
        counts = [0] * num_buckets
        for s in self.samples:
            slot = min(int((s - lo) / width), num_buckets - 1)
            counts[slot] += 1
        return [
            (lo + b * width, lo + (b + 1) * width, counts[b])
            for b in range(num_buckets)
        ]


@dataclass
class Timer:
    """Accumulating context-manager timer.

    Examples
    --------
    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(1000))
    >>> t.elapsed > 0
    True
    """

    elapsed: float = 0.0
    laps: List[float] = field(default_factory=list)
    _start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None, "Timer.__exit__ without __enter__"
        lap = time.perf_counter() - self._start
        self.laps.append(lap)
        self.elapsed += lap
        self._start = None

    def reset(self) -> None:
        self.elapsed = 0.0
        self.laps.clear()
        self._start = None

    @property
    def mean(self) -> float:
        """Mean lap time in seconds (0.0 when no laps recorded)."""
        return self.elapsed / len(self.laps) if self.laps else 0.0

    @property
    def median(self) -> float:
        """Median lap time in seconds (0.0 when no laps recorded)."""
        if not self.laps:
            return 0.0
        ordered = sorted(self.laps)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])


def measure_median(
    fn: Callable[[], object],
    repeats: int = 5,
    warmup: int = 1,
) -> float:
    """Median wall-clock seconds of ``fn()`` over ``repeats`` runs.

    ``warmup`` un-timed calls run first so one-time costs (allocator
    growth, cache population) do not pollute the measurement.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        fn()
    timer = Timer()
    for _ in range(repeats):
        with timer:
            fn()
    return timer.median
