"""Wall-clock measurement helpers for kernels and benchmarks.

The guide for this domain is explicit: *no optimization without
measuring*.  These helpers wrap ``time.perf_counter`` with warmup and
median-of-repeats semantics so kernel comparisons (Eff-TT vs TT-Rec
lookup, Figures 14, 17, 18) are robust to scheduler noise.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

__all__ = ["Timer", "measure_median"]


@dataclass
class Timer:
    """Accumulating context-manager timer.

    Examples
    --------
    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(1000))
    >>> t.elapsed > 0
    True
    """

    elapsed: float = 0.0
    laps: List[float] = field(default_factory=list)
    _start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None, "Timer.__exit__ without __enter__"
        lap = time.perf_counter() - self._start
        self.laps.append(lap)
        self.elapsed += lap
        self._start = None

    def reset(self) -> None:
        self.elapsed = 0.0
        self.laps.clear()
        self._start = None

    @property
    def mean(self) -> float:
        """Mean lap time in seconds (0.0 when no laps recorded)."""
        return self.elapsed / len(self.laps) if self.laps else 0.0

    @property
    def median(self) -> float:
        """Median lap time in seconds (0.0 when no laps recorded)."""
        if not self.laps:
            return 0.0
        ordered = sorted(self.laps)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])


def measure_median(
    fn: Callable[[], object],
    repeats: int = 5,
    warmup: int = 1,
) -> float:
    """Median wall-clock seconds of ``fn()`` over ``repeats`` runs.

    ``warmup`` un-timed calls run first so one-time costs (allocator
    growth, cache population) do not pollute the measurement.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        fn()
    timer = Timer()
    for _ in range(repeats):
        with timer:
            fn()
    return timer.median
