"""Seeded random-number-generator plumbing.

All stochastic components in the reproduction (parameter
initialization, synthetic data generation, index sampling) accept
either an integer seed, a ``numpy.random.Generator``, or ``None``.
Centralizing the coercion keeps experiments reproducible end to end.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

__all__ = ["ensure_rng", "spawn_rngs"]

RngLike = Union[None, int, Sequence[int], np.random.Generator]


def ensure_rng(seed: RngLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` yields a fresh nondeterministic generator; an ``int`` or a
    sequence of ints yields ``default_rng(seed)`` (sequences give cheap
    hierarchical seeding, e.g. ``(master, table_id, batch_id)``); a
    ``Generator`` is passed through unchanged (no copy, so state
    advances for the caller too).
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    if isinstance(seed, (tuple, list)) and all(
        isinstance(s, (int, np.integer)) for s in seed
    ):
        return np.random.default_rng([int(s) for s in seed])
    raise TypeError(
        f"seed must be None, an int, an int sequence, or a numpy "
        f"Generator, got {type(seed)!r}"
    )


def spawn_rngs(seed: RngLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Uses the SeedSequence spawning protocol, so children are
    independent regardless of how many draws the parent makes later.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    parent = ensure_rng(seed)
    return [
        np.random.default_rng(child)
        for child in parent.bit_generator.seed_seq.spawn(count)  # type: ignore[attr-defined]
    ]
