"""Seeded random-number-generator plumbing.

All stochastic components in the reproduction (parameter
initialization, synthetic data generation, index sampling) accept
either an integer seed, a ``numpy.random.Generator``, or the explicit
string ``"entropy"``.  Centralizing the coercion keeps experiments
reproducible end to end.

Nondeterminism is **opt-in**: ``ensure_rng(None)`` raises.  Callers
that genuinely want OS-entropy seeding (interactive exploration,
benchmark jitter) must say so with ``seed="entropy"`` so the intent is
visible at the call site and greppable by ``reprolint``.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

__all__ = ["ensure_rng", "spawn_rngs", "ENTROPY"]

#: Sentinel accepted by :func:`ensure_rng` for explicit nondeterminism.
ENTROPY = "entropy"

RngLike = Union[None, int, str, Sequence[int], np.random.Generator]


def ensure_rng(seed: RngLike) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    An ``int`` or a sequence of ints yields ``default_rng(seed)``
    (sequences give cheap hierarchical seeding, e.g. ``(master,
    table_id, batch_id)``); a ``Generator`` is passed through unchanged
    (no copy, so state advances for the caller too); the literal string
    ``"entropy"`` is the explicit opt-in for a fresh OS-entropy-seeded
    generator.  ``None`` raises: silent nondeterminism is exactly the
    bug class ``reprolint`` exists to catch.
    """
    if seed is None:
        raise TypeError(
            "seed=None is no longer accepted: pass an int seed for a "
            'reproducible generator, or seed="entropy" to explicitly '
            "opt in to OS-entropy seeding"
        )
    if isinstance(seed, str):
        if seed == ENTROPY:
            # The one sanctioned nondeterministic construction site.
            return np.random.default_rng()
        raise TypeError(
            f'string seeds must be "entropy", got {seed!r}'
        )
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    if isinstance(seed, (tuple, list)) and all(
        isinstance(s, (int, np.integer)) for s in seed
    ):
        return np.random.default_rng([int(s) for s in seed])
    raise TypeError(
        f'seed must be an int, an int sequence, "entropy", or a numpy '
        f"Generator, got {type(seed)!r}"
    )


def spawn_rngs(seed: RngLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Uses the SeedSequence spawning protocol, so children are
    independent regardless of how many draws the parent makes later.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    parent = ensure_rng(seed)
    return [
        np.random.default_rng(child)
        for child in parent.bit_generator.seed_seq.spawn(count)  # type: ignore[attr-defined]
    ]
