"""Fast duplicate-safe scatter-add.

``np.add.at`` is the semantically correct primitive for sparse
embedding updates but is notoriously slow (unbuffered per-element
loop).  The embedding workload scatters *rows*, so duplicates can be
pre-summed with a sort + ``add.reduceat`` segment reduction and applied
with one vectorized indexed add — the NumPy analog of the sorted,
atomics-free scatter a tuned GPU kernel performs.  Used by every
embedding backend, so baselines and Eff-TT share the same substrate
efficiency.
"""

from __future__ import annotations

import numpy as np

__all__ = ["scatter_add_rows", "coalesce_rows"]


def coalesce_rows(indices: np.ndarray, values: np.ndarray):
    """Sum rows of ``values`` sharing an index; return ``(unique, summed)``.

    The sparse-gradient coalescing primitive (PyTorch's
    ``coalesce()``): ``unique`` is sorted and ``summed[i]`` is the sum
    of all ``values`` rows whose index equals ``unique[i]``.  ``values``
    is flattened to 2-D on the trailing axes.
    """
    idx = np.asarray(indices)
    vals = np.asarray(values)
    if idx.size == 0:
        # reshape(-1) cannot infer a dimension from 0 elements
        width = int(np.prod(vals.shape[1:])) if vals.ndim > 1 else 1
        return idx.astype(np.int64), vals.reshape(0, max(width, 1))
    flat_vals = vals.reshape(idx.size, -1)
    unique, inverse = np.unique(idx, return_inverse=True)
    if unique.size == idx.size:
        order = np.argsort(idx, kind="stable")
        return idx[order].astype(np.int64), flat_vals[order]
    order = np.argsort(inverse, kind="stable")
    sorted_vals = flat_vals[order]
    sorted_inv = inverse[order]
    starts = np.concatenate([[0], np.flatnonzero(np.diff(sorted_inv)) + 1])
    summed = np.add.reduceat(sorted_vals, starts, axis=0)
    return unique.astype(np.int64), summed


def scatter_add_rows(
    target: np.ndarray,
    indices: np.ndarray,
    values: np.ndarray,
    scale: float = 1.0,
) -> None:
    """``target[indices] += scale * values`` with duplicate accumulation.

    Parameters
    ----------
    target:
        Array updated in place; rows are indexed along axis 0.  Must be
        C-contiguous (all parameter stores in this package are).
    indices:
        1-D integer row ids, duplicates allowed.
    values:
        ``(len(indices), *target.shape[1:])`` addends.
    scale:
        Multiplier fused into the scatter.  Applied *after* the
        duplicate reduction, so ``scale=-lr`` performs an SGD update
        without materializing a scaled copy of ``values`` — the data
        movement the paper's fused TT-core update eliminates (§III-B).

    Exactly equivalent to ``np.add.at(target, indices, scale * values)``.
    """
    idx = np.asarray(indices)
    if idx.size == 0:
        return
    unique, inverse = np.unique(idx, return_inverse=True)
    if unique.size == idx.size:
        # No duplicates: plain fancy-indexed (scaled) add is exact.
        if scale == 1.0:
            target[idx] += values
        else:
            target[idx] += scale * values
        return
    flat_vals = values.reshape(idx.size, -1)
    order = np.argsort(inverse, kind="stable")
    sorted_vals = flat_vals[order]
    sorted_inv = inverse[order]
    starts = np.concatenate([[0], np.flatnonzero(np.diff(sorted_inv)) + 1])
    summed = np.add.reduceat(sorted_vals, starts, axis=0)
    if scale != 1.0:
        summed *= scale  # applied post-reduction: one small array
    target_flat = target.reshape(target.shape[0], -1)
    target_flat[unique] += summed
