"""Balanced integer factorization for Tensor-Train shape selection.

A TT-compressed embedding table of logical shape ``(M, N)`` requires
factorizations ``M = m_1 * m_2 * ... * m_d`` and
``N = n_1 * n_2 * ... * n_d`` (paper §II-B, Figure 3).  Compression is
best when the per-dimension factors are as balanced as possible: the
TT-core parameter count is ``sum_k R_{k-1} * m_k * n_k * R_k``, which is
minimized for near-cubic factors.

The paper (and TT-Rec before it) rounds the number of table rows up to
the nearest integer that factors nicely; :func:`suggest_tt_shapes`
implements that policy.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

__all__ = [
    "prime_factors",
    "balanced_factorization",
    "ceil_balanced_factors",
    "factorize_pair",
    "suggest_tt_shapes",
]


def prime_factors(value: int) -> List[int]:
    """Return the prime factorization of ``value`` in ascending order.

    Parameters
    ----------
    value:
        Integer >= 1.  ``1`` yields an empty list.

    Examples
    --------
    >>> prime_factors(360)
    [2, 2, 2, 3, 3, 5]
    """
    if value < 1:
        raise ValueError(f"value must be >= 1, got {value}")
    factors: List[int] = []
    remaining = value
    divisor = 2
    while divisor * divisor <= remaining:
        while remaining % divisor == 0:
            factors.append(divisor)
            remaining //= divisor
        divisor += 1 if divisor == 2 else 2
    if remaining > 1:
        factors.append(remaining)
    return factors


def balanced_factorization(value: int, num_factors: int) -> List[int]:
    """Factor ``value`` into ``num_factors`` near-balanced integer factors.

    The factors multiply exactly to ``value`` (no padding).  Prime
    factors are greedily assigned largest-first to the currently
    smallest bucket, which is the classic LPT heuristic for multiway
    product balancing.  The result is sorted in descending order.

    Raises
    ------
    ValueError
        If ``value`` cannot be expressed as a product of
        ``num_factors`` integers each >= 1 (always possible — padding
        with 1s — so only invalid arguments raise).

    Examples
    --------
    >>> balanced_factorization(1000, 3)
    [10, 10, 10]
    >>> balanced_factorization(12, 3)
    [3, 2, 2]
    """
    if num_factors < 1:
        raise ValueError(f"num_factors must be >= 1, got {num_factors}")
    if value < 1:
        raise ValueError(f"value must be >= 1, got {value}")
    buckets = [1] * num_factors
    for prime in sorted(prime_factors(value), reverse=True):
        smallest = min(range(num_factors), key=buckets.__getitem__)
        buckets[smallest] *= prime
    return sorted(buckets, reverse=True)


def ceil_balanced_factors(value: int, num_factors: int) -> List[int]:
    """Near-balanced factors whose product is >= ``value`` (ceil-cube).

    Unlike :func:`balanced_factorization` the product may exceed
    ``value``: each factor starts at the rounded ``num_factors``-th root
    and the smallest factor is bumped until the product covers the
    cardinality.  This is the rounding rule TT-Rec/Hetu use to pad a
    table's row count before factoring it (``_get_decomp_emb``), and the
    same rule sizes hash-bucket tiles and PQ codebook capacity.

    Guarantees (property-tested):

    - ``prod(result) >= value``
    - ``max(result) - min(result) <= 1`` (near-balanced)
    - ``len(result) == num_factors``, every factor >= 1
    - result sorted in descending order

    Examples
    --------
    >>> ceil_balanced_factors(1000000, 3)
    [100, 100, 100]
    >>> ceil_balanced_factors(10131227, 3)
    [217, 217, 216]
    """
    if value < 1:
        raise ValueError(f"value must be >= 1, got {value}")
    if num_factors < 1:
        raise ValueError(f"num_factors must be >= 1, got {num_factors}")
    ideal = int(round(value ** (1.0 / num_factors)))
    factors = [max(1, ideal)] * num_factors
    while math.prod(factors) < value:
        smallest = min(range(num_factors), key=factors.__getitem__)
        factors[smallest] += 1
    return sorted(factors, reverse=True)


def factorize_pair(
    num_rows: int, embedding_dim: int, num_cores: int = 3
) -> Tuple[List[int], List[int]]:
    """Factor an embedding table shape for TT decomposition.

    Returns ``(row_shape, col_shape)`` with
    ``prod(row_shape) == num_rows`` and
    ``prod(col_shape) == embedding_dim``; both have ``num_cores``
    entries.

    The caller is responsible for padding ``num_rows`` to a value that
    factors well (see :func:`suggest_tt_shapes`); this function factors
    exactly.
    """
    row_shape = balanced_factorization(num_rows, num_cores)
    col_shape = balanced_factorization(embedding_dim, num_cores)
    return row_shape, col_shape


def _balance_score(factors: Sequence[int]) -> float:
    """Smaller is better: ratio of max factor to geometric mean."""
    gmean = math.prod(factors) ** (1.0 / len(factors))
    return max(factors) / gmean


def suggest_tt_shapes(
    num_rows: int,
    embedding_dim: int,
    num_cores: int = 3,
    max_padding_ratio: float = 0.2,
) -> Tuple[List[int], List[int], int]:
    """Choose TT factor shapes, padding the row count when beneficial.

    Real embedding-table cardinalities (e.g. Criteo's 10131227-row
    table) rarely factor into balanced triples.  TT-Rec and EL-Rec both
    round the row count up to a near value with a balanced
    factorization; the padded rows are never indexed.

    Parameters
    ----------
    num_rows, embedding_dim:
        Logical table shape.  ``embedding_dim`` must factor exactly
        (it is chosen by the modeler, typically a power of two).
    num_cores:
        Number of TT cores ``d``.
    max_padding_ratio:
        Upper bound on ``(padded_rows - num_rows) / num_rows``.

    Returns
    -------
    (row_shape, col_shape, padded_rows)
        ``prod(row_shape) == padded_rows >= num_rows``.

    Examples
    --------
    >>> rows, cols, padded = suggest_tt_shapes(1000000, 64)
    >>> padded >= 1000000 and len(rows) == len(cols) == 3
    True
    """
    if num_rows < 1 or embedding_dim < 1:
        raise ValueError("num_rows and embedding_dim must be >= 1")
    if num_cores < 1:
        raise ValueError(f"num_cores must be >= 1, got {num_cores}")
    if max_padding_ratio < 0:
        raise ValueError("max_padding_ratio must be >= 0")

    col_shape = balanced_factorization(embedding_dim, num_cores)

    # The ideal per-dimension factor is the d-th root of num_rows; any
    # padded candidate with all factors <= ceil(root)+1 is close to
    # balanced.  Scan padded row counts and keep the best-balanced one.
    best: Tuple[float, int, List[int]] | None = None
    limit = max(num_rows + 1, int(num_rows * (1.0 + max_padding_ratio)) + 1)
    # Fast path: build a candidate directly from ceil-balanced factors.
    direct = ceil_balanced_factors(num_rows, num_cores)
    direct_rows = math.prod(direct)
    if direct_rows <= limit:
        best = (_balance_score(direct), direct_rows, direct)

    step = max(1, num_rows // 4096)
    for padded in range(num_rows, limit, step):
        factors = balanced_factorization(padded, num_cores)
        score = _balance_score(factors)
        if best is None or (score, padded) < (best[0], best[1]):
            best = (score, padded, factors)
        if score < 1.05:
            break
    assert best is not None
    _, padded_rows, row_shape = best
    return row_shape, col_shape, padded_rows
