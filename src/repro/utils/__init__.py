"""Shared utilities for the EL-Rec reproduction.

This package hosts small, dependency-free helpers used across the
substrates: balanced integer factorization for Tensor-Train shape
selection, seeded random-number-generator plumbing, wall-clock timers,
and argument-validation helpers.
"""

from repro.utils.factorize import (
    balanced_factorization,
    factorize_pair,
    prime_factors,
    suggest_tt_shapes,
)
from repro.utils.rng import ENTROPY, ensure_rng, spawn_rngs
from repro.utils.scatter import scatter_add_rows
from repro.utils.timer import Timer, measure_median
from repro.utils.validation import (
    check_1d_int_array,
    check_positive,
    check_probability,
)

__all__ = [
    "balanced_factorization",
    "factorize_pair",
    "prime_factors",
    "suggest_tt_shapes",
    "ENTROPY",
    "ensure_rng",
    "scatter_add_rows",
    "spawn_rngs",
    "Timer",
    "measure_median",
    "check_1d_int_array",
    "check_positive",
    "check_probability",
]
