"""Argument-validation helpers.

Public API entry points validate aggressively and raise with messages
that name the offending argument; hot inner loops do not re-validate.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["check_1d_int_array", "check_positive", "check_probability"]


def check_1d_int_array(
    array: np.ndarray,
    name: str,
    *,
    min_value: Optional[int] = None,
    max_value: Optional[int] = None,
) -> np.ndarray:
    """Validate and canonicalize a 1-D integer index array.

    Returns the array as contiguous ``int64`` (copying only if
    needed).  Bounds are checked inclusively when provided.
    """
    arr = np.asarray(array)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if not np.issubdtype(arr.dtype, np.integer):
        raise TypeError(f"{name} must have an integer dtype, got {arr.dtype}")
    arr = np.ascontiguousarray(arr, dtype=np.int64)
    if arr.size:
        if min_value is not None and arr.min() < min_value:
            raise ValueError(
                f"{name} contains value {arr.min()} below minimum {min_value}"
            )
        if max_value is not None and arr.max() > max_value:
            raise ValueError(
                f"{name} contains value {arr.max()} above maximum {max_value}"
            )
    return arr


def check_positive(value: float, name: str, *, strict: bool = True) -> float:
    """Require ``value > 0`` (or ``>= 0`` when ``strict=False``)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Require ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value
