"""EL-Rec reproduction.

A from-scratch Python implementation of *EL-Rec: Efficient Large-Scale
Recommendation Model Training via Tensor-Train Embedding Table*
(Wang et al., SC 2022), including every substrate the paper depends on:

* a manual-backward NN stack and the full DLRM model (:mod:`repro.nn`,
  :mod:`repro.models`);
* dense / TT-Rec / Eff-TT embedding bags with the paper's three kernel
  optimizations as toggleable flags (:mod:`repro.embeddings`);
* locality-based index reordering with a from-scratch Louvain
  (:mod:`repro.reorder`);
* synthetic Avazu/Criteo-shaped click logs (:mod:`repro.data`);
* the parameter-server pipeline with the LC-managed embedding cache,
  plus functional data parallelism and a calibrated device cost model
  (:mod:`repro.system`);
* strategy models of the DLRM / FAE / TT-Rec / HugeCTR / TorchRec
  baselines (:mod:`repro.frameworks`);
* a pluggable execution-backend layer all hot-path kernels route
  through — reference numpy, an instrumented FLOP/byte counter, and an
  optional torch backend — with plan-cached TT contractions
  (:mod:`repro.backend`).

Quickstart::

    import numpy as np
    from repro import EffTTEmbeddingBag

    bag = EffTTEmbeddingBag(num_embeddings=1_000_000, embedding_dim=64,
                            tt_rank=32, seed=0)
    pooled = bag(np.array([3, 17, 17, 99]), np.array([0, 2, 4]))
    # drop-in for torch.nn.EmbeddingBag(mode="sum")
"""

from repro.backend import (
    InstrumentedBackend,
    NumpyBackend,
    get_backend,
    set_backend,
    use_backend,
)
from repro.embeddings import (
    DenseEmbeddingBag,
    EffTTEmbeddingBag,
    EmbeddingCache,
    TTEmbeddingBag,
)
from repro.models import DLRM, DLRMConfig, EmbeddingBackend
from repro.reorder import IndexBijection, build_bijection
from repro.data import (
    SyntheticClickLog,
    avazu_like,
    criteo_kaggle_like,
    criteo_tb_like,
)

__version__ = "1.0.0"

__all__ = [
    "NumpyBackend",
    "InstrumentedBackend",
    "get_backend",
    "set_backend",
    "use_backend",
    "DenseEmbeddingBag",
    "TTEmbeddingBag",
    "EffTTEmbeddingBag",
    "EmbeddingCache",
    "DLRM",
    "DLRMConfig",
    "EmbeddingBackend",
    "IndexBijection",
    "build_bijection",
    "SyntheticClickLog",
    "avazu_like",
    "criteo_kaggle_like",
    "criteo_tb_like",
    "__version__",
]
