"""Benchmark harness shared by the per-figure/table benchmarks.

:mod:`repro.bench.harness` measures real substrate kernels into
:class:`~repro.frameworks.base.WorkloadProfile` objects and provides
plain-text table/series printers so every benchmark emits the same
rows and series the paper reports.
"""

from repro.bench.harness import (
    format_series,
    format_table,
    measure_workload,
    workload_for_dataset,
)

__all__ = [
    "measure_workload",
    "workload_for_dataset",
    "format_table",
    "format_series",
]
