"""Workload measurement and plain-text reporting for the benchmarks.

``measure_workload`` is the bridge between the real substrate and the
framework cost models: it builds actual tables and MLPs at a scaled
cardinality, runs the real NumPy kernels on real synthetic batches, and
records their median wall-clock times into a
:class:`~repro.frameworks.base.WorkloadProfile`.  Framework models then
compose those *measured* numbers with device scaling and communication
costs — no component of an end-to-end figure is a made-up constant.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataloader import Batch, SyntheticClickLog
from repro.data.datasets import DatasetSpec
from repro.embeddings.dense import DenseEmbeddingBag
from repro.embeddings.eff_tt_embedding import EffTTEmbeddingBag
from repro.embeddings.tt_embedding import TTEmbeddingBag
from repro.frameworks.base import WorkloadProfile
from repro.models.config import DLRMConfig
from repro.nn.interaction import DotInteraction
from repro.nn.mlp import MLP
from repro.utils.timer import measure_median

__all__ = [
    "measure_workload",
    "workload_for_dataset",
    "format_table",
    "format_series",
]


def _measure_mlp(
    config: DLRMConfig, batch: Batch, repeats: int
) -> float:
    """Real fwd+bwd time of bottom MLP + interaction + top MLP."""
    bottom = MLP(config.bottom_mlp_sizes, seed=0)
    top = MLP(config.top_mlp_sizes, seed=1)
    interaction = DotInteraction()
    rng = np.random.default_rng(0)
    fake_embeddings = [
        rng.standard_normal((batch.batch_size, config.embedding_dim))
        for _ in range(config.num_tables)
    ]
    grad = rng.standard_normal((batch.batch_size, 1))

    def run() -> None:
        dense_out = bottom.forward(batch.dense)
        inter = interaction.forward(dense_out, fake_embeddings)
        top.forward(inter)
        g_inter = top.backward(grad)
        g_dense, _ = interaction.backward(g_inter)
        bottom.backward(g_dense)
        bottom.zero_grad()
        top.zero_grad()

    return measure_median(run, repeats=repeats, warmup=1)


def _measure_bags(
    bags: Sequence, batch: Batch, table_ids: Sequence[int], repeats: int,
    split_fwd_bwd: bool, lr: float = 0.01,
) -> Tuple[float, float]:
    """Real (forward, backward+update) times over the given tables."""
    rng = np.random.default_rng(1)
    grads = [
        rng.standard_normal((batch.batch_size, bag.embedding_dim))
        for bag in bags
    ]

    def fwd() -> None:
        for bag, t in zip(bags, table_ids):
            bag.forward(batch.sparse_indices[t], batch.sparse_offsets[t])

    def bwd() -> None:
        for bag, g in zip(bags, grads):
            bag.backward(g)
            bag.step(lr)

    t_fwd = measure_median(fwd, repeats=repeats, warmup=1)
    if not split_fwd_bwd:
        return t_fwd, 0.0
    # backward needs a fresh forward before each run
    def fwd_bwd() -> None:
        fwd()
        bwd()

    t_total = measure_median(fwd_bwd, repeats=repeats, warmup=1)
    return t_fwd, max(t_total - t_fwd, 1e-9)


def measure_workload(
    spec: DatasetSpec,
    batch_size: int = 2048,
    embedding_dim: int = 32,
    tt_rank: int = 32,
    tt_threshold_rows: int | None = None,
    measure_scale: float = 1.0,
    repeats: int = 3,
    seed: int = 0,
    hot_fraction: float = 0.75,
) -> WorkloadProfile:
    """Measure one dataset's kernels into a :class:`WorkloadProfile`.

    Parameters
    ----------
    spec:
        Dataset schema (usually already scaled down; ``measure_scale``
        additionally shrinks the tables actually built for timing).
    batch_size, embedding_dim, tt_rank:
        Training configuration to measure.
    tt_threshold_rows:
        Tables above this row count are measured with the TT backends;
        defaults to the paper's 1M rows scaled by the spec's scale.
    repeats:
        Timing repeats per kernel (median is recorded).
    hot_fraction:
        FAE hot-batch fraction recorded into the profile.
    """
    if tt_threshold_rows is None:
        tt_threshold_rows = max(1, int(1_000_000 * spec.scale * measure_scale))
    log = SyntheticClickLog(spec, batch_size=batch_size, seed=seed)
    batch = log.batch(0)

    config = DLRMConfig.from_dataset(
        spec, embedding_dim=embedding_dim, tt_rank=tt_rank
    )
    t_mlp = _measure_mlp(config, batch, repeats)

    # Dense path over every table.
    dense_bags = [
        DenseEmbeddingBag(t.num_rows, embedding_dim, seed=(seed, 2, i))
        for i, t in enumerate(spec.tables)
    ]
    all_ids = list(range(spec.num_sparse))
    d_fwd, d_bwd = _measure_bags(dense_bags, batch, all_ids, repeats, True)

    # Compressed paths over the large tables only (paper §VI-A: tables
    # above the threshold are decomposed, the rest stay dense — the
    # dense remainder's cost is shared and excluded from both).
    tt_ids = [
        i for i, t in enumerate(spec.tables) if t.num_rows > tt_threshold_rows
    ]
    if not tt_ids:
        # Degenerate tiny spec: compress the single largest table.
        tt_ids = [max(all_ids, key=lambda i: spec.tables[i].num_rows)]
    tt_bags = [
        TTEmbeddingBag(
            spec.tables[i].num_rows, embedding_dim, tt_rank=tt_rank,
            seed=(seed, 3, i),
        )
        for i in tt_ids
    ]
    tt_fwd, tt_bwd = _measure_bags(tt_bags, batch, tt_ids, repeats, True)
    eff_bags = [
        EffTTEmbeddingBag(
            spec.tables[i].num_rows, embedding_dim, tt_rank=tt_rank,
            seed=(seed, 3, i),
        )
        for i in tt_ids
    ]
    eff_fwd, eff_bwd = _measure_bags(eff_bags, batch, tt_ids, repeats, True)

    tt_param_bytes = sum(bag.nbytes_as(np.float32) for bag in eff_bags) + sum(
        spec.tables[i].num_rows * embedding_dim * 4
        for i in all_ids
        if i not in tt_ids
    )

    # Analytic FLOP counts for the TT kernels on this exact batch.
    from repro.embeddings.flops import (
        plan_backward_flops,
        plan_forward_flops,
    )
    from repro.embeddings.reuse_buffer import build_reuse_plan

    tt_fwd_flops = tt_bwd_flops = eff_fwd_flops = eff_bwd_flops = 0
    for bag, i in zip(eff_bags, tt_ids):
        plan = build_reuse_plan(batch.sparse_indices[i], bag.spec.row_shape)
        tt_fwd_flops += plan_forward_flops(bag.spec, plan, reuse=False)
        tt_bwd_flops += plan_backward_flops(bag.spec, plan, aggregate=False)
        eff_fwd_flops += plan_forward_flops(bag.spec, plan, reuse=True)
        eff_bwd_flops += plan_backward_flops(bag.spec, plan, aggregate=True)
    indices_per_batch = sum(idx.size for idx in batch.sparse_indices)
    # Kernel-launch counts: TT-Rec issues fwd, bwd-per-core, grad
    # materialization, and optimizer kernels per compressed table;
    # Eff-TT fuses backward+update into one kernel per table.
    num_tt_tables = len(tt_ids)
    return WorkloadProfile(
        name=spec.name,
        batch_size=batch_size,
        embedding_dim=embedding_dim,
        table_rows=tuple(t.num_rows for t in spec.tables),
        indices_per_batch=indices_per_batch,
        host_mlp_time=t_mlp,
        host_dense_emb_time=d_fwd + d_bwd,
        host_tt_fwd_time=tt_fwd,
        host_tt_bwd_time=tt_bwd,
        host_efftt_fwd_time=eff_fwd,
        host_efftt_bwd_time=eff_bwd,
        hot_fraction=hot_fraction,
        tt_kernel_launches=8 * num_tt_tables,
        efftt_kernel_launches=3 * num_tt_tables,
        tt_param_bytes=int(tt_param_bytes),
        tt_gflops_fwd=tt_fwd_flops / 1e9,
        tt_gflops_bwd=tt_bwd_flops / 1e9,
        efftt_gflops_fwd=eff_fwd_flops / 1e9,
        efftt_gflops_bwd=eff_bwd_flops / 1e9,
    )


def workload_for_dataset(
    dataset: str,
    scale: float = 2e-4,
    **kwargs,
) -> WorkloadProfile:
    """Convenience: build + measure a named dataset's workload."""
    from repro.data.datasets import DATASET_FACTORIES

    if dataset not in DATASET_FACTORIES:
        raise KeyError(
            f"unknown dataset {dataset!r}; choose from "
            f"{sorted(DATASET_FACTORIES)}"
        )
    spec = DATASET_FACTORIES[dataset](scale=scale)
    return measure_workload(spec, **kwargs)


# ---------------------------------------------------------------------------
# reporting
# ---------------------------------------------------------------------------
def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width text table (the benchmarks' output format)."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[c]) for r in str_rows)) if str_rows else len(str(h))
        for c, h in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    x_values: Sequence[object],
    series: Dict[str, Sequence[float]],
) -> str:
    """Text rendering of a figure: one row per x, one column per series."""
    headers = [x_label, *series.keys()]
    rows = [
        [x, *(vals[i] for vals in series.values())]
        for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 1e-3:
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)
