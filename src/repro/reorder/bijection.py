"""Index-bijection generation (paper §IV-C, Figure 8).

Combines the global frequency ordering with the community structure of
the index graph into one permutation of the table's row ids:

* hot indices (top ``hot_ratio`` by access frequency) occupy the first
  ``hot_count`` new ids, ordered by frequency — they cluster into a
  small set of shared TT prefixes regardless of batch composition;
* remaining indices are grouped by community, communities ordered by
  total access frequency, members within a community ordered by
  frequency — co-occurring indices receive *contiguous* new ids and
  therefore share TT prefixes.

Because embedding rows are randomly initialized, relabeling rows before
training is semantics-free (§IV-B): the bijection is applied to the
training data (offline) and to any serving-time lookups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.reorder.community import louvain_communities
from repro.reorder.index_graph import IndexGraph, build_index_graph
from repro.utils.rng import RngLike
from repro.utils.validation import check_1d_int_array

__all__ = ["IndexBijection", "build_bijection", "build_frequency_bijection"]


@dataclass(frozen=True)
class IndexBijection:
    """A permutation of table row ids with O(1) apply/invert.

    Attributes
    ----------
    new_from_old:
        ``new_from_old[i]`` is the new id of original index ``i``.
    old_from_new:
        Inverse permutation.
    """

    new_from_old: np.ndarray
    old_from_new: np.ndarray

    def __post_init__(self) -> None:
        nfo = np.asarray(self.new_from_old, dtype=np.int64)
        ofn = np.asarray(self.old_from_new, dtype=np.int64)
        if nfo.shape != ofn.shape or nfo.ndim != 1:
            raise ValueError("permutation arrays must be 1-D and equal length")
        object.__setattr__(self, "new_from_old", nfo)
        object.__setattr__(self, "old_from_new", ofn)

    @classmethod
    def identity(cls, num_rows: int) -> "IndexBijection":
        eye = np.arange(num_rows, dtype=np.int64)
        return cls(eye, eye.copy())

    @classmethod
    def from_forward(cls, new_from_old: np.ndarray) -> "IndexBijection":
        """Build from the forward map, validating it is a permutation."""
        nfo = np.asarray(new_from_old, dtype=np.int64)
        n = nfo.size
        seen = np.zeros(n, dtype=bool)
        if nfo.min(initial=0) < 0 or nfo.max(initial=-1) >= n:
            raise ValueError("forward map values out of range")
        seen[nfo] = True
        if not seen.all():
            raise ValueError("forward map is not a permutation")
        ofn = np.empty(n, dtype=np.int64)
        ofn[nfo] = np.arange(n, dtype=np.int64)
        return cls(nfo, ofn)

    @property
    def num_rows(self) -> int:
        return int(self.new_from_old.size)

    def apply(self, indices: np.ndarray) -> np.ndarray:
        """Map original indices to reordered indices."""
        idx = check_1d_int_array(
            indices, "indices", min_value=0, max_value=self.num_rows - 1
        )
        return self.new_from_old[idx]

    def invert(self, indices: np.ndarray) -> np.ndarray:
        """Map reordered indices back to original indices."""
        idx = check_1d_int_array(
            indices, "indices", min_value=0, max_value=self.num_rows - 1
        )
        return self.old_from_new[idx]

    def is_identity(self) -> bool:
        return bool(
            np.array_equal(self.new_from_old, np.arange(self.num_rows))
        )

    def compose(self, other: "IndexBijection") -> "IndexBijection":
        """Return the bijection applying ``self`` then ``other``."""
        if other.num_rows != self.num_rows:
            raise ValueError("cannot compose bijections of different sizes")
        return IndexBijection.from_forward(other.new_from_old[self.new_from_old])


def build_frequency_bijection(
    batches: Iterable[np.ndarray], num_rows: int
) -> IndexBijection:
    """Global-information-only baseline: sort rows by access frequency.

    The paper's §IV argument is that frequency ordering alone (the
    *global* information prior frameworks use) is not enough — the
    *local* co-occurrence structure is what creates shared TT prefixes
    within a batch.  This bijection implements the frequency-only
    strategy so that claim can be measured (see
    ``benchmarks/bench_ablation_reorder_strategy.py``).
    """
    from repro.reorder.index_graph import frequency_order

    index_of_rank, rank_of_index = frequency_order(list(batches), num_rows)
    return IndexBijection.from_forward(rank_of_index)


def build_bijection(
    batches: Iterable[np.ndarray],
    num_rows: int,
    hot_ratio: float = 0.01,
    seed: RngLike = 0,
    graph: Optional[IndexGraph] = None,
    resolution: float = 1.0,
) -> IndexBijection:
    """Generate the locality-based index bijection from training batches.

    Parameters
    ----------
    batches:
        Per-batch index arrays for one embedding table (a sample of the
        training set suffices; generation is offline, §IV-C).
    num_rows:
        Table length.
    hot_ratio:
        Fraction of rows pinned as hot.
    seed:
        RNG seed for the (order-dependent) Louvain sweep.
    graph:
        Pre-built index graph; when given, ``batches``/``hot_ratio``
        are ignored.
    resolution:
        Louvain resolution.

    Returns
    -------
    :class:`IndexBijection` mapping original to locality-improved ids.
    """
    if graph is None:
        graph = build_index_graph(list(batches), num_rows, hot_ratio)
    if graph.num_vertices + graph.hot_count != num_rows:
        raise ValueError(
            "graph size does not match num_rows: "
            f"{graph.num_vertices} + {graph.hot_count} != {num_rows}"
        )
    labels = louvain_communities(
        graph.num_vertices, graph.src, graph.dst, graph.weight,
        seed=seed, resolution=resolution,
    )

    # Order communities by their best (lowest) frequency rank so that
    # frequently-accessed communities sit next to the hot region.
    num_comms = int(labels.max()) + 1 if labels.size else 0
    first_rank = np.full(num_comms, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(first_rank, labels, np.arange(graph.num_vertices))
    comm_order = np.argsort(first_rank, kind="stable")
    comm_position = np.empty_like(comm_order)
    comm_position[comm_order] = np.arange(num_comms)

    # Sort vertices by (community position, frequency rank) — members
    # of one community become contiguous, ordered by frequency.
    sort_keys = comm_position[labels] * np.int64(graph.num_vertices) + np.arange(
        graph.num_vertices
    )
    vertex_order = np.argsort(sort_keys, kind="stable")

    new_from_old = np.empty(num_rows, dtype=np.int64)
    # Hot region: frequency ranks 0..hot_count-1 keep their rank as id.
    hot_indices = graph.index_of_rank[: graph.hot_count]
    new_from_old[hot_indices] = np.arange(graph.hot_count, dtype=np.int64)
    # Non-hot region: vertex v (frequency rank hot_count + v) gets id
    # hot_count + position in the community-sorted order.
    nonhot_indices = graph.index_of_rank[graph.hot_count :]
    positions = np.empty(graph.num_vertices, dtype=np.int64)
    positions[vertex_order] = np.arange(graph.num_vertices, dtype=np.int64)
    new_from_old[nonhot_indices] = graph.hot_count + positions
    return IndexBijection.from_forward(new_from_old)
