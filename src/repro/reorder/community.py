"""Modularity-based community detection (paper §IV-C).

The paper leverages "the modularity-based community detection
algorithm [34], [35]" (Louvain) to partition the index graph; this
module implements Louvain from scratch on a COO/CSR representation.
``networkx`` is used only in the test suite as a cross-checking oracle.

Modularity (paper's Equation in §IV-C):

    ``Q = sum_c [ Sigma_in_c / (2m) - (Sigma_tot_c / (2m))^2 ]``

where ``Sigma_in_c`` counts intra-community edge weight (both
directions), ``Sigma_tot_c`` the total degree of community ``c``, and
``m`` the total edge weight of the graph.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.utils.rng import RngLike, ensure_rng

__all__ = ["modularity", "louvain_communities"]


def _validate_edges(
    num_vertices: int, src: np.ndarray, dst: np.ndarray, weight: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    weight = np.asarray(weight, dtype=np.float64)
    if not (src.shape == dst.shape == weight.shape) or src.ndim != 1:
        raise ValueError("src, dst, weight must be 1-D arrays of equal length")
    if src.size and (
        min(src.min(), dst.min()) < 0 or max(src.max(), dst.max()) >= num_vertices
    ):
        raise ValueError("edge endpoints out of range")
    if np.any(weight < 0):
        raise ValueError("edge weights must be non-negative")
    return src, dst, weight


def modularity(
    labels: np.ndarray,
    num_vertices: int,
    src: np.ndarray,
    dst: np.ndarray,
    weight: np.ndarray,
    resolution: float = 1.0,
) -> float:
    """Weighted modularity of a partition (networkx-compatible).

    ``labels`` maps each vertex to its community id.  Self-loops are
    supported (they contribute degree ``2w`` and intra weight ``2w``).
    Returns 0.0 for an empty graph.
    """
    src, dst, weight = _validate_edges(num_vertices, src, dst, weight)
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape != (num_vertices,):
        raise ValueError(
            f"labels must have shape ({num_vertices},), got {labels.shape}"
        )
    total = weight.sum()
    if total <= 0:
        return 0.0
    degree = np.zeros(num_vertices)
    np.add.at(degree, src, weight)
    np.add.at(degree, dst, weight)
    # (self-loops are counted twice by the two adds above, the
    # standard degree convention)
    num_comms = labels.max() + 1 if labels.size else 0
    sigma_tot = np.zeros(num_comms)
    np.add.at(sigma_tot, labels, degree)
    intra = labels[src] == labels[dst]
    sigma_in = np.zeros(num_comms)
    # Every intra-community edge (self-loops included) contributes its
    # weight in both directions: Sigma_in = 2 * L_c.
    np.add.at(sigma_in, labels[src][intra], 2.0 * weight[intra])
    two_m = 2.0 * total
    return float(
        np.sum(sigma_in / two_m - resolution * (sigma_tot / two_m) ** 2)
    )


def _build_csr(
    num_vertices: int, src: np.ndarray, dst: np.ndarray, weight: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Symmetric CSR adjacency (self-loops separated out).

    Returns ``(indptr, indices, weights, self_loop)``.
    """
    self_mask = src == dst
    self_loop = np.zeros(num_vertices)
    np.add.at(self_loop, src[self_mask], weight[self_mask])
    s, d, w = src[~self_mask], dst[~self_mask], weight[~self_mask]
    # Symmetrize.
    all_src = np.concatenate([s, d])
    all_dst = np.concatenate([d, s])
    all_w = np.concatenate([w, w])
    order = np.argsort(all_src, kind="stable")
    all_src, all_dst, all_w = all_src[order], all_dst[order], all_w[order]
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    counts = np.bincount(all_src, minlength=num_vertices)
    indptr[1:] = np.cumsum(counts)
    return indptr, all_dst, all_w, self_loop


def _local_moving(
    num_vertices: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    self_loop: np.ndarray,
    two_m: float,
    resolution: float,
    rng: np.random.Generator,
    max_passes: int,
) -> np.ndarray:
    """Phase 1 of Louvain: greedy single-node moves until stable."""
    comm = np.arange(num_vertices, dtype=np.int64)
    # degree = incident edge weight + 2 * self-loop weight
    degree = np.add.reduceat(
        np.concatenate([weights, [0.0]]), np.minimum(indptr[:-1], weights.size)
    )
    degree[np.diff(indptr) == 0] = 0.0
    degree += 2.0 * self_loop
    sigma_tot = degree.copy()

    # Isolated vertices never move (no neighboring community can gain);
    # skipping them makes local moving linear in *edges*, which matters
    # for embedding-table graphs where most rows never co-occur.
    order = np.flatnonzero(np.diff(indptr) > 0)
    for _ in range(max_passes):
        rng.shuffle(order)
        moved = 0
        for v in order:
            start, end = indptr[v], indptr[v + 1]
            neigh = indices[start:end]
            w_edge = weights[start:end]
            current = comm[v]
            # Weight from v to each neighboring community.
            links: Dict[int, float] = {}
            for u, w in zip(neigh.tolist(), w_edge.tolist()):
                c = comm[u]
                links[c] = links.get(c, 0.0) + w
            sigma_tot[current] -= degree[v]
            w_to_current = links.get(current, 0.0)
            best_comm = current
            best_gain = w_to_current - resolution * sigma_tot[current] * degree[v] / two_m
            for c, w_to_c in links.items():
                if c == current:
                    continue
                gain = w_to_c - resolution * sigma_tot[c] * degree[v] / two_m
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_comm = c
            sigma_tot[best_comm] += degree[v]
            if best_comm != current:
                comm[v] = best_comm
                moved += 1
        if moved == 0:
            break
    return comm


def _aggregate(
    labels: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    weight: np.ndarray,
) -> Tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Phase 2: contract communities into super-vertices.

    Returns ``(num_super, src, dst, weight, compact_labels)`` where
    ``compact_labels`` renumbers ``labels`` to ``0..num_super-1``.
    """
    unique, compact = np.unique(labels, return_inverse=True)
    num_super = unique.size
    cs, cd = compact[src], compact[dst]
    lo = np.minimum(cs, cd)
    hi = np.maximum(cs, cd)
    keys = lo * np.int64(num_super) + hi
    uniq_keys, inverse = np.unique(keys, return_inverse=True)
    agg_w = np.zeros(uniq_keys.size)
    np.add.at(agg_w, inverse, weight)
    new_src = (uniq_keys // num_super).astype(np.int64)
    new_dst = (uniq_keys % num_super).astype(np.int64)
    return num_super, new_src, new_dst, agg_w, compact.astype(np.int64)


def louvain_communities(
    num_vertices: int,
    src: np.ndarray,
    dst: np.ndarray,
    weight: np.ndarray,
    seed: RngLike = 0,
    resolution: float = 1.0,
    max_levels: int = 10,
    max_passes: int = 10,
) -> np.ndarray:
    """Louvain community detection on a weighted undirected graph.

    Parameters
    ----------
    num_vertices:
        Vertex count; isolated vertices become singleton communities.
    src, dst, weight:
        COO edges (undirected; duplicates are summed implicitly by the
        degree computation).
    seed:
        RNG controlling the node-visit order (Louvain is order
        dependent; a fixed seed makes runs reproducible).
    resolution:
        Modularity resolution parameter ``gamma``.
    max_levels, max_passes:
        Safety bounds on the two nested loops.

    Returns
    -------
    ``(num_vertices,)`` int64 community labels, compact in
    ``0..num_communities-1``.
    """
    src, dst, weight = _validate_edges(num_vertices, src, dst, weight)
    if num_vertices == 0:
        return np.empty(0, dtype=np.int64)
    rng = ensure_rng(seed)
    total = weight.sum()
    if total <= 0:
        return np.arange(num_vertices, dtype=np.int64)
    two_m = 2.0 * total

    # mapping from original vertex to current super-vertex
    assignment = np.arange(num_vertices, dtype=np.int64)
    cur_n, cur_src, cur_dst, cur_w = num_vertices, src, dst, weight
    prev_q = modularity(assignment, num_vertices, src, dst, weight, resolution)

    for _ in range(max_levels):
        indptr, indices, weights, self_loop = _build_csr(
            cur_n, cur_src, cur_dst, cur_w
        )
        labels = _local_moving(
            cur_n,
            indptr,
            indices,
            weights,
            self_loop,
            two_m,
            resolution,
            rng,
            max_passes,
        )
        cur_n, cur_src, cur_dst, cur_w, compact = _aggregate(
            labels, cur_src, cur_dst, cur_w
        )
        assignment = compact[labels[assignment]]
        new_q = modularity(assignment, num_vertices, src, dst, weight, resolution)
        if new_q <= prev_q + 1e-9:
            break
        prev_q = new_q
        if cur_n == 1:
            break

    # Compact final labels.
    _, compact_final = np.unique(assignment, return_inverse=True)
    return compact_final.astype(np.int64)
