"""Index-graph generation from batched training data (paper Algorithm 2).

Global information: indices are ranked by global access frequency; the
top ``hot_ratio`` fraction ("hot embeddings") are pinned and excluded
from the graph.  Local information: every pair of non-hot indices that
co-occurs in a batch contributes an edge; multiplicity becomes edge
weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.utils.validation import check_1d_int_array, check_probability

__all__ = ["IndexGraph", "build_index_graph", "frequency_order"]


@dataclass(frozen=True)
class IndexGraph:
    """Weighted undirected co-occurrence graph over non-hot indices.

    Vertices are *frequency ranks shifted past the hot region*: vertex
    ``v`` corresponds to the index of global frequency rank
    ``hot_count + v``.  Attributes mirror a COO adjacency.

    Attributes
    ----------
    num_vertices:
        Number of non-hot vertices (``table_rows - hot_count``).
    src, dst, weight:
        Deduplicated undirected edges (``src < dst``) with
        co-occurrence counts.
    hot_count:
        Number of pinned hot indices.
    rank_of_index / index_of_rank:
        The global-frequency bijection: ``rank_of_index[i]`` is the
        frequency rank of original index ``i`` (0 = most accessed),
        ``index_of_rank`` its inverse.
    """

    num_vertices: int
    src: np.ndarray
    dst: np.ndarray
    weight: np.ndarray
    hot_count: int
    rank_of_index: np.ndarray
    index_of_rank: np.ndarray

    @property
    def num_edges(self) -> int:
        return int(self.src.size)

    def degree_weights(self) -> np.ndarray:
        """Weighted degree per vertex."""
        deg = np.zeros(self.num_vertices)
        np.add.at(deg, self.src, self.weight)
        np.add.at(deg, self.dst, self.weight)
        return deg


def frequency_order(
    batches: Sequence[np.ndarray], num_rows: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Global access-frequency ordering of all table indices.

    Returns ``(index_of_rank, rank_of_index)``: ``index_of_rank[r]`` is
    the original index with the ``r``-th highest access count (ties
    broken by index for determinism); ``rank_of_index`` is the inverse
    permutation.  Indices never accessed sort to the tail.
    """
    counts = np.zeros(num_rows, dtype=np.int64)
    for batch in batches:
        idx = check_1d_int_array(batch, "batch", min_value=0, max_value=num_rows - 1)
        np.add.at(counts, idx, 1)
    # stable argsort on negated counts: frequency desc, index asc.
    index_of_rank = np.argsort(-counts, kind="stable").astype(np.int64)
    rank_of_index = np.empty_like(index_of_rank)
    rank_of_index[index_of_rank] = np.arange(num_rows, dtype=np.int64)
    return index_of_rank, rank_of_index


def _batch_edges(vertices: np.ndarray, max_pairs_per_batch: int) -> np.ndarray:
    """All unordered vertex pairs within one batch (``self_combinations``).

    Duplicate vertices are collapsed first (an index appearing twice in
    a batch pairs with others once).  Very large batches are subsampled
    to bound the quadratic blow-up, matching practical implementations.
    """
    verts = np.unique(vertices)
    if verts.size < 2:
        return np.empty((0, 2), dtype=np.int64)
    num_pairs = verts.size * (verts.size - 1) // 2
    if num_pairs > max_pairs_per_batch:
        # Keep the pair budget by sampling a subset of vertices.
        keep = int(np.floor((1 + np.sqrt(1 + 8 * max_pairs_per_batch)) / 2))
        verts = verts[:: max(1, verts.size // keep)][:keep]
        if verts.size < 2:
            return np.empty((0, 2), dtype=np.int64)
    left, right = np.triu_indices(verts.size, k=1)
    return np.stack([verts[left], verts[right]], axis=1)


def build_index_graph(
    batches: Iterable[np.ndarray],
    num_rows: int,
    hot_ratio: float = 0.01,
    max_pairs_per_batch: int = 200_000,
) -> IndexGraph:
    """Run Algorithm 2: batched indices -> weighted index graph.

    Parameters
    ----------
    batches:
        Iterable of 1-D arrays, each the sparse indices of one training
        batch for **one** embedding table.
    num_rows:
        Table length.
    hot_ratio:
        Fraction of the table treated as pinned hot embeddings
        (``Hot_thre = Table_length * Hot_ratio``).
    max_pairs_per_batch:
        Safety bound on per-batch edge generation.

    Notes
    -----
    Following Algorithm 2 line 4, hot indices are clamped out: any
    batch member whose frequency rank falls below the hot threshold is
    dropped before edge generation, and remaining ranks are shifted by
    ``hot_count`` so graph vertices start at 0.
    """
    check_probability(hot_ratio, "hot_ratio")
    batch_list: List[np.ndarray] = [np.asarray(b) for b in batches]
    index_of_rank, rank_of_index = frequency_order(batch_list, num_rows)
    hot_count = int(num_rows * hot_ratio)
    num_vertices = num_rows - hot_count

    edge_chunks: List[np.ndarray] = []
    for batch in batch_list:
        ranks = rank_of_index[np.asarray(batch, dtype=np.int64)]
        non_hot = ranks[ranks >= hot_count] - hot_count
        edges = _batch_edges(non_hot, max_pairs_per_batch)
        if edges.size:
            edge_chunks.append(edges)

    if edge_chunks:
        all_edges = np.concatenate(edge_chunks, axis=0)
        # Canonical direction then dedup with multiplicity as weight.
        lo = np.minimum(all_edges[:, 0], all_edges[:, 1])
        hi = np.maximum(all_edges[:, 0], all_edges[:, 1])
        keys = lo * np.int64(num_vertices) + hi
        unique_keys, counts = np.unique(keys, return_counts=True)
        src = (unique_keys // num_vertices).astype(np.int64)
        dst = (unique_keys % num_vertices).astype(np.int64)
        weight = counts.astype(np.float64)
    else:
        src = np.empty(0, dtype=np.int64)
        dst = np.empty(0, dtype=np.int64)
        weight = np.empty(0, dtype=np.float64)

    return IndexGraph(
        num_vertices=num_vertices,
        src=src,
        dst=dst,
        weight=weight,
        hot_count=hot_count,
        rank_of_index=rank_of_index,
        index_of_rank=index_of_rank,
    )
