"""Locality-based index reordering (paper §IV).

The Eff-TT reuse buffer profits when indices inside a batch share TT
prefixes.  This package builds the paper's offline index bijection:

1. :mod:`repro.reorder.index_graph` — Algorithm 2: convert batched
   training indices into a weighted *index graph* (vertices = non-hot
   indices, edges = same-batch co-occurrence), with hot indices pinned
   by global access frequency.
2. :mod:`repro.reorder.community` — our own Louvain modularity
   community detection (validated against networkx in tests).
3. :mod:`repro.reorder.bijection` — assign new contiguous ids per
   community to produce the final index bijection.
4. :mod:`repro.reorder.stats` — locality metrics quantifying the
   effect (unique-prefix counts, reuse ratios).
"""

from repro.reorder.index_graph import IndexGraph, build_index_graph
from repro.reorder.community import louvain_communities, modularity
from repro.reorder.bijection import (
    IndexBijection,
    build_bijection,
    build_frequency_bijection,
)
from repro.reorder.stats import (
    TableStats,
    batch_locality_stats,
    measure_table_stats,
    reuse_improvement,
    table_stats_from_log,
)

__all__ = [
    "IndexGraph",
    "build_index_graph",
    "louvain_communities",
    "modularity",
    "IndexBijection",
    "build_bijection",
    "build_frequency_bijection",
    "batch_locality_stats",
    "reuse_improvement",
    "TableStats",
    "measure_table_stats",
    "table_stats_from_log",
]
