"""Locality metrics quantifying the effect of index reordering.

These metrics drive the reordering ablations (Figures 14, 17, 18): the
Eff-TT reuse buffer issues one partial GEMM per unique TT prefix in a
batch, so the unique-prefix count directly measures the computation a
reordering saves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.data.synthetic import analytic_hot_mass
from repro.embeddings.reuse_buffer import build_reuse_plan
from repro.reorder.bijection import IndexBijection

__all__ = [
    "BatchLocalityStats",
    "batch_locality_stats",
    "reuse_improvement",
    "TableStats",
    "measure_table_stats",
    "table_stats_from_log",
]


@dataclass(frozen=True)
class BatchLocalityStats:
    """Reuse statistics of one batch against one TT factorization.

    Attributes
    ----------
    num_occurrences:
        Total index occurrences ``L`` in the batch.
    num_unique_rows:
        Unique row count ``U`` (Figure 4b's gap is ``L - U``).
    num_unique_prefixes:
        Unique TT-prefix count ``P`` — partial GEMMs required.
    """

    num_occurrences: int
    num_unique_rows: int
    num_unique_prefixes: int

    @property
    def full_row_reuse_ratio(self) -> float:
        return (
            self.num_occurrences / self.num_unique_rows
            if self.num_unique_rows
            else 1.0
        )

    @property
    def prefix_reuse_ratio(self) -> float:
        return (
            self.num_unique_rows / self.num_unique_prefixes
            if self.num_unique_prefixes
            else 1.0
        )


def batch_locality_stats(
    indices: np.ndarray,
    row_shape: Sequence[int],
    bijection: Optional[IndexBijection] = None,
) -> BatchLocalityStats:
    """Compute reuse statistics for one batch, optionally reordered."""
    idx = np.asarray(indices, dtype=np.int64)
    if bijection is not None:
        idx = bijection.apply(idx)
    plan = build_reuse_plan(idx, row_shape)
    return BatchLocalityStats(
        num_occurrences=plan.num_occurrences,
        num_unique_rows=plan.num_unique_rows,
        num_unique_prefixes=plan.num_unique_prefixes,
    )


def reuse_improvement(
    batches: Iterable[np.ndarray],
    row_shape: Sequence[int],
    bijection: IndexBijection,
) -> Dict[str, float]:
    """Aggregate before/after-reordering reuse statistics.

    Returns a dict with mean unique-prefix counts before and after the
    bijection and the resulting partial-GEMM reduction factor
    (``>1`` means the reordering saved work).
    """
    before_prefixes = []
    after_prefixes = []
    for batch in batches:
        before = batch_locality_stats(batch, row_shape)
        after = batch_locality_stats(batch, row_shape, bijection)
        before_prefixes.append(before.num_unique_prefixes)
        after_prefixes.append(after.num_unique_prefixes)
    if not before_prefixes:
        raise ValueError("no batches supplied")
    mean_before = float(np.mean(before_prefixes))
    mean_after = float(np.mean(after_prefixes))
    return {
        "mean_unique_prefixes_before": mean_before,
        "mean_unique_prefixes_after": mean_after,
        "partial_gemm_reduction": mean_before / mean_after if mean_after else 1.0,
    }


# ---------------------------------------------------------------------------
# per-table access statistics for placement planning
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TableStats:
    """Access-distribution summary of one sparse table.

    The statistics the RecShard-style placement planner
    (:mod:`repro.sharding.placement`) consumes: cardinality, measured
    Zipf skew, and hot-set mass.  Built either from an observed index
    stream (:func:`measure_table_stats` /
    :func:`table_stats_from_log`) or analytically from a dataset
    spec's configured skew (:meth:`from_spec`).

    Attributes
    ----------
    table_idx:
        Position of the table in the model / dataset spec.
    num_rows:
        Table cardinality.
    zipf_alpha:
        Skew exponent: a least-squares fit of ``log(count)`` against
        ``log(rank)`` over the observed rows (0 = uniform).
    hot_fraction:
        Fraction of rows considered the "hot set" (rank order).
    hot_mass:
        Fraction of accesses landing in the hot set — the quantity
        that decides whether a hot/cold split pays off.
    total_accesses:
        Number of index occurrences the measurement saw (0 for
        analytic stats).
    unique_fraction:
        Observed distinct rows / ``num_rows`` (1.0 for analytic
        stats) — low values mean most of the table is dead weight.
    """

    table_idx: int
    num_rows: int
    zipf_alpha: float
    hot_fraction: float
    hot_mass: float
    total_accesses: int = 0
    unique_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.num_rows < 1:
            raise ValueError(f"num_rows must be >= 1, got {self.num_rows}")
        if not 0.0 <= self.hot_mass <= 1.0:
            raise ValueError(f"hot_mass must be in [0, 1], got {self.hot_mass}")

    @property
    def hot_rows(self) -> int:
        """Row count of the hot set (``ceil(hot_fraction * num_rows)``)."""
        return int(np.ceil(self.hot_fraction * self.num_rows))

    @property
    def skewed(self) -> bool:
        """Whether the hot set dominates (mass above its row share)."""
        return self.hot_mass > min(1.0, 2.0 * self.hot_fraction)

    @classmethod
    def from_spec(
        cls,
        table_idx: int,
        num_rows: int,
        alpha: float,
        hot_fraction: float = 0.1,
    ) -> "TableStats":
        """Analytic stats from a configured Zipf exponent (no stream)."""
        return cls(
            table_idx=table_idx,
            num_rows=int(num_rows),
            zipf_alpha=float(alpha),
            hot_fraction=float(hot_fraction),
            hot_mass=analytic_hot_mass(num_rows, alpha, hot_fraction),
        )


def measure_table_stats(
    indices: np.ndarray,
    num_rows: int,
    table_idx: int = 0,
    hot_fraction: float = 0.1,
) -> TableStats:
    """Measure :class:`TableStats` from an observed index stream.

    The Zipf exponent is fit by least squares on the log-log
    rank/frequency curve over rows that were actually accessed — the
    standard frequency-plot estimate, deterministic and robust enough
    to separate "uniform" from "paper-grade skew" for placement.
    """
    if num_rows < 1:
        raise ValueError(f"num_rows must be >= 1, got {num_rows}")
    if not 0.0 < hot_fraction <= 1.0:
        raise ValueError(
            f"hot_fraction must be in (0, 1], got {hot_fraction}"
        )
    idx = np.asarray(indices, dtype=np.int64).ravel()
    if idx.size == 0:
        raise ValueError("cannot measure statistics from an empty stream")
    if idx.min() < 0 or idx.max() >= num_rows:
        raise ValueError(
            f"indices out of range [0, {num_rows}) for table {table_idx}"
        )
    counts = np.bincount(idx, minlength=num_rows)
    ordered = np.sort(counts)[::-1].astype(np.float64)
    total = float(ordered.sum())
    hot_rows = int(np.ceil(hot_fraction * num_rows))
    hot_mass = float(ordered[:hot_rows].sum()) / total

    observed = ordered[ordered > 0]
    if observed.size < 2:
        alpha = 0.0
    else:
        log_rank = np.log(np.arange(1, observed.size + 1, dtype=np.float64))
        log_freq = np.log(observed)
        slope = float(np.polyfit(log_rank, log_freq, 1)[0])
        alpha = max(0.0, -slope)
    return TableStats(
        table_idx=table_idx,
        num_rows=int(num_rows),
        zipf_alpha=alpha,
        hot_fraction=float(hot_fraction),
        hot_mass=hot_mass,
        total_accesses=int(idx.size),
        unique_fraction=float(observed.size) / float(num_rows),
    )


def table_stats_from_log(
    log,
    table_idx: int,
    num_batches: int,
    hot_fraction: float = 0.1,
) -> TableStats:
    """Measure one table's :class:`TableStats` over a click-log prefix.

    ``log`` is a :class:`~repro.data.dataloader.SyntheticClickLog` (or
    anything with deterministic ``batch(i).sparse_indices`` and a
    ``spec.tables`` schema); batches ``0..num_batches-1`` form the
    profiling window, mirroring how RecShard profiles a training-data
    prefix before planning placement.
    """
    if num_batches < 1:
        raise ValueError(f"num_batches must be >= 1, got {num_batches}")
    streams = [
        np.asarray(log.batch(i).sparse_indices[table_idx], dtype=np.int64)
        for i in range(num_batches)
    ]
    return measure_table_stats(
        np.concatenate(streams),
        num_rows=log.spec.tables[table_idx].num_rows,
        table_idx=table_idx,
        hot_fraction=hot_fraction,
    )
