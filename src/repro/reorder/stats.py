"""Locality metrics quantifying the effect of index reordering.

These metrics drive the reordering ablations (Figures 14, 17, 18): the
Eff-TT reuse buffer issues one partial GEMM per unique TT prefix in a
batch, so the unique-prefix count directly measures the computation a
reordering saves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.embeddings.reuse_buffer import build_reuse_plan
from repro.reorder.bijection import IndexBijection

__all__ = ["BatchLocalityStats", "batch_locality_stats", "reuse_improvement"]


@dataclass(frozen=True)
class BatchLocalityStats:
    """Reuse statistics of one batch against one TT factorization.

    Attributes
    ----------
    num_occurrences:
        Total index occurrences ``L`` in the batch.
    num_unique_rows:
        Unique row count ``U`` (Figure 4b's gap is ``L - U``).
    num_unique_prefixes:
        Unique TT-prefix count ``P`` — partial GEMMs required.
    """

    num_occurrences: int
    num_unique_rows: int
    num_unique_prefixes: int

    @property
    def full_row_reuse_ratio(self) -> float:
        return (
            self.num_occurrences / self.num_unique_rows
            if self.num_unique_rows
            else 1.0
        )

    @property
    def prefix_reuse_ratio(self) -> float:
        return (
            self.num_unique_rows / self.num_unique_prefixes
            if self.num_unique_prefixes
            else 1.0
        )


def batch_locality_stats(
    indices: np.ndarray,
    row_shape: Sequence[int],
    bijection: Optional[IndexBijection] = None,
) -> BatchLocalityStats:
    """Compute reuse statistics for one batch, optionally reordered."""
    idx = np.asarray(indices, dtype=np.int64)
    if bijection is not None:
        idx = bijection.apply(idx)
    plan = build_reuse_plan(idx, row_shape)
    return BatchLocalityStats(
        num_occurrences=plan.num_occurrences,
        num_unique_rows=plan.num_unique_rows,
        num_unique_prefixes=plan.num_unique_prefixes,
    )


def reuse_improvement(
    batches: Iterable[np.ndarray],
    row_shape: Sequence[int],
    bijection: IndexBijection,
) -> Dict[str, float]:
    """Aggregate before/after-reordering reuse statistics.

    Returns a dict with mean unique-prefix counts before and after the
    bijection and the resulting partial-GEMM reduction factor
    (``>1`` means the reordering saved work).
    """
    before_prefixes = []
    after_prefixes = []
    for batch in batches:
        before = batch_locality_stats(batch, row_shape)
        after = batch_locality_stats(batch, row_shape, bijection)
        before_prefixes.append(before.num_unique_prefixes)
        after_prefixes.append(after.num_unique_prefixes)
    if not before_prefixes:
        raise ValueError("no batches supplied")
    mean_before = float(np.mean(before_prefixes))
    mean_after = float(np.mean(after_prefixes))
    return {
        "mean_unique_prefixes_before": mean_before,
        "mean_unique_prefixes_after": mean_after,
        "partial_gemm_reduction": mean_before / mean_after if mean_after else 1.0,
    }
